//! Run an assembly file on the simulator.
//!
//! ```sh
//! cargo run --release --example run_asm -- path/to/program.s [N] [M]
//! ```
//!
//! Assembles the file (see `dda::program::assemble` for the syntax), runs
//! it functionally, then on the "(N+M)" machine (default (2+2) with the
//! paper's optimizations), and reports both.

use dda::core::{MachineConfig, Simulator};
use dda::program::assemble;
use dda::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: run_asm <file.s> [N] [M]");
        std::process::exit(2);
    };
    let n: u32 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(2);
    let m: u32 = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(2);

    let source = std::fs::read_to_string(path)?;
    let program = assemble(&source)?;
    println!(
        "{path}: {} instructions, {} functions",
        program.len(),
        program.functions().len()
    );

    let mut vm = Vm::new(program.clone());
    let summary = vm.run(100_000_000)?;
    println!(
        "functional: {} instructions, {} ($v0 = {})",
        summary.executed,
        if summary.halted {
            "halted"
        } else {
            "budget exhausted"
        },
        vm.gpr(dda::isa::Gpr::V0)
    );

    let cfg = if m > 0 {
        MachineConfig::n_plus_m(n, m).with_optimizations()
    } else {
        MachineConfig::n_plus_m(n, m)
    };
    let r = Simulator::new(cfg)?.run(&program, summary.executed.max(1))?;
    println!(
        "({n}+{m}): {} cycles, IPC {:.2}; LVAQ {} loads / {} stores, {} fast fwds",
        r.cycles,
        r.ipc(),
        r.lvaq.loads,
        r.lvaq.stores,
        r.lvaq.fast_forwards
    );
    Ok(())
}
