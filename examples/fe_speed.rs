//! Front-end throughput probe: interpreter vs block replay.
//!
//! Streams the same instruction budget through `Vm::step` (decode every
//! dynamic instance) and `Vm::step_block` (decode-once traces replayed
//! from the translation cache) and prints the MIPS of each — isolating
//! the front-end's share of the fast kernel's speedup from the scheduler
//! work the pipeline adds on top.
//!
//! ```text
//! cargo run --release --example fe_speed
//! ```

use std::sync::Arc;
use std::time::Instant;

use dda::vm::Vm;
use dda::workloads::Benchmark;

fn main() {
    const N: u64 = 300_000;
    for bench in [Benchmark::Compress, Benchmark::Vortex, Benchmark::Swim] {
        let program = Arc::new(bench.program(u32::MAX / 2));
        // Interpretive front-end: one decoded instruction per step.
        let t = Instant::now();
        let mut vm = Vm::new(Arc::clone(&program));
        let mut n = 0u64;
        while n < N {
            match vm.step().expect("workload executes cleanly") {
                Some(_) => n += 1,
                None => break,
            }
        }
        let interp = t.elapsed().as_secs_f64();
        // Block-replay front-end: one pre-decoded basic block per refill.
        let t = Instant::now();
        let mut vm = Vm::new(Arc::clone(&program));
        let mut ring = Vec::new();
        let mut n = 0u64;
        while n < N {
            ring.clear();
            if vm.step_block(&mut ring).is_some() {
                break;
            }
            if ring.is_empty() {
                break;
            }
            n += ring.len() as u64;
        }
        let replay = t.elapsed().as_secs_f64();
        println!(
            "{bench}: interp {:.1} MIPS ({:.2} ms) replay {:.1} MIPS ({:.2} ms) = {:.2}x",
            N as f64 / interp / 1e6,
            interp * 1e3,
            N as f64 / replay / 1e6,
            replay * 1e3,
            interp / replay
        );
    }
}
