//! Port sweep: reproduce the paper's Figure 5 question — "how much data
//! cache bandwidth does each program need?" — for one benchmark, and show
//! where an LVC changes the answer.
//!
//! ```sh
//! cargo run --release --example port_sweep [benchmark] [instructions]
//! ```
//!
//! `benchmark` is a SPEC95 name or suffix (default `147.vortex`).

use dda::core::{MachineConfig, Simulator};
use dda::workloads::Benchmark;
use dda_stats::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match args.first() {
        Some(name) => Benchmark::ALL
            .into_iter()
            .find(|b| b.name().contains(name.as_str()))
            .ok_or_else(|| format!("unknown benchmark `{name}`"))?,
        None => Benchmark::Vortex,
    };
    let budget: u64 = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(300_000);

    let program = bench.program(u32::MAX / 2);
    println!(
        "{bench}: {} static instructions across {} functions\n",
        program.len(),
        program.functions().len()
    );

    let mut table = Table::new(["config", "cycles", "IPC", "vs (1+0)", "LVC miss"]);
    table.title(format!("Port sweep, first {budget} instructions"));
    table.numeric();

    let mut base_ipc = None;
    for (n, m) in [(1, 0), (2, 0), (3, 0), (4, 0), (2, 2), (3, 2), (3, 3)] {
        let cfg = if m > 0 {
            MachineConfig::n_plus_m(n, m).with_optimizations()
        } else {
            MachineConfig::n_plus_m(n, m)
        };
        let r = Simulator::new(cfg)?.run(&program, budget)?;
        let ipc = r.ipc();
        let base = *base_ipc.get_or_insert(ipc);
        table.row([
            format!("({n}+{m})"),
            r.cycles.to_string(),
            format!("{ipc:.2}"),
            format!("{:.2}x", ipc / base),
            r.lvc
                .map(|c| format!("{:.2}%", 100.0 * c.miss_rate()))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    println!("{table}");
    println!("(N+M) = N-port L1 data cache + M-port 2 KB local variable cache.");
    Ok(())
}
