//! Pipeline viewer: assemble a program from text, run it on a decoupled
//! machine with tracing, and print each instruction's journey through the
//! pipeline — which queue it used, and whether it was serviced by the
//! cache, by in-queue forwarding, or by fast data forwarding.
//!
//! ```sh
//! cargo run --release --example pipeline_viewer
//! ```

use dda::core::{MachineConfig, Simulator};
use dda::program::assemble;

const SOURCE: &str = r"
# A little spill-heavy kernel: the stores/loads at $sp offsets are the
# local-variable traffic the LVAQ captures.
main:
    addi  $sp, $sp, -32
    li    $t0, 10
    li    $s0, 0
.loop:
    sw    $t0, 8($sp) !local        # spill the counter
    lw    $t1, 0($gp) !nonlocal     # a global read
    add   $s0, $s0, $t1
    sw    $s0, 12($sp) !local       # spill the accumulator
    lw    $t2, 12($sp) !local       # ... and reload it
    lw    $t0, 8($sp) !local        # reload the counter
    addi  $t0, $t0, -1
    bne   $t0, $zero, .loop
    addi  $sp, $sp, 32
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    println!(
        "Program ({} instructions):\n{}",
        program.len(),
        program.listing()
    );

    let cfg = MachineConfig::n_plus_m(2, 2).with_optimizations();
    let sim = Simulator::new(cfg)?;
    let (result, traces) = sim.run_traced(&program, 10_000, 64)?;

    println!(
        "Ran to {} in {} cycles (IPC {:.2}); {} fast forwards, {} in-queue forwards.\n",
        if result.halted { "halt" } else { "budget" },
        result.cycles,
        result.ipc(),
        result.lvaq.fast_forwards,
        result.lvaq.forwards,
    );
    println!("   seq  pc    instruction                        D=dispatch I=issue A=addr C=complete R=retire");
    for t in &traces {
        println!("{}", t.render());
    }
    Ok(())
}
