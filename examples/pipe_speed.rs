//! Quick host-throughput probe for the full pipeline kernel.
//!
//! Times the decoupled (4+2) machine end to end on two representative
//! workloads and prints host MIPS — a fast inner-loop check while tuning
//! the simulation kernel, without the full `throughput` benchmark's
//! matrix and JSON report. Pass `--reference` to time the
//! rescan-per-cycle reference kernel instead of the incremental one.
//!
//! ```text
//! cargo run --release --example pipe_speed [-- --reference]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dda::core::{MachineConfig, Simulator};
use dda::workloads::Benchmark;

fn main() {
    let reference = std::env::args().any(|a| a == "--reference");
    const N: u64 = 2_000_000;
    for bench in [Benchmark::Compress, Benchmark::Vortex] {
        let program = Arc::new(bench.program(u32::MAX / 2));
        let mut cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        cfg.reference_kernel = reference;
        let sim = Simulator::new(cfg).expect("valid machine configuration");
        let t = Instant::now();
        let res = sim
            .run_shared(Arc::clone(&program), N)
            .expect("workload executes cleanly");
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{bench}: {:.2} MIPS ({} cycles)",
            res.committed as f64 / secs / 1e6,
            res.cycles
        );
    }
}
