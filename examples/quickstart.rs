//! Quickstart: build a small program, run it on the paper's base machine
//! and on a data-decoupled machine, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dda::core::{MachineConfig, Simulator};
use dda::isa::{AluOp, Gpr};
use dda::program::{FunctionBuilder, ProgramBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy program with the paper's favourite pattern: a recursive
    // function that saves and restores registers on the run-time stack
    // (local-variable traffic) while also touching global data.
    let mut main_fn = FunctionBuilder::new("main");
    main_fn.load_imm(Gpr::A0, 14);
    main_fn.call("fib");
    main_fn.halt();

    // fib(n): naive recursion — bursty stack save/restore around calls.
    let mut fib = FunctionBuilder::with_frame("fib", 16);
    let recurse = fib.new_label();
    fib.load_imm(Gpr::T0, 2);
    fib.branch(dda::isa::BranchCond::Ge, Gpr::A0, Gpr::T0, recurse);
    fib.mov(Gpr::V0, Gpr::A0); // fib(0)=0, fib(1)=1
    fib.ret();
    fib.bind(recurse);
    fib.addi(Gpr::SP, Gpr::SP, -16);
    fib.store_local(Gpr::RA, 0);
    fib.store_local(Gpr::A0, 4);
    fib.addi(Gpr::A0, Gpr::A0, -1);
    fib.call("fib");
    fib.store_local(Gpr::V0, 8); // spill fib(n-1)
    fib.load_local(Gpr::A0, 4);
    fib.addi(Gpr::A0, Gpr::A0, -2);
    fib.call("fib");
    fib.load_local(Gpr::T1, 8); // reload fib(n-1)
    fib.alu(AluOp::Add, Gpr::V0, Gpr::V0, Gpr::T1);
    fib.load_local(Gpr::RA, 0);
    fib.addi(Gpr::SP, Gpr::SP, 16);
    fib.ret();

    let mut b = ProgramBuilder::new();
    b.add_function(main_fn);
    b.add_function(fib);
    let program = b.build()?;

    // Check the architectural result first with the functional simulator.
    let mut vm = dda::vm::Vm::new(program.clone());
    vm.run(10_000_000)?;
    println!("fib(14) = {} (architectural)", vm.gpr(Gpr::V0));

    // The paper's base machine: 16-issue, 2-port L1, no LVC — "(2+0)".
    let base = Simulator::new(MachineConfig::n_plus_m(2, 0))?.run(&program, 10_000_000)?;
    // Data-decoupled machine with both §2.2.2 optimizations — "(2+2)".
    let dec = Simulator::new(MachineConfig::n_plus_m(2, 2).with_optimizations())?
        .run(&program, 10_000_000)?;

    println!("(2+0): {} cycles, IPC {:.2}", base.cycles, base.ipc());
    println!(
        "(2+2): {} cycles, IPC {:.2}  (speedup {:.1}%)",
        dec.cycles,
        dec.ipc(),
        100.0 * (dec.speedup_over(&base) - 1.0)
    );
    println!(
        "LVAQ: {} loads, {} stores, {} forwarded, {} fast-forwarded",
        dec.lvaq.loads, dec.lvaq.stores, dec.lvaq.forwards, dec.lvaq.fast_forwards
    );
    if let Some(lvc) = dec.lvc {
        println!(
            "LVC: {} accesses, {:.2}% miss rate",
            lvc.accesses(),
            100.0 * lvc.miss_rate()
        );
    }
    Ok(())
}
