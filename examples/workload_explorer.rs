//! Workload explorer: profile a benchmark's dynamic stream — the paper's
//! Figure 2/3 measurements for a single program — and print a frame-size
//! histogram.
//!
//! ```sh
//! cargo run --release --example workload_explorer [benchmark] [instructions]
//! ```

use dda::vm::{StreamProfiler, Vm};
use dda::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match args.first() {
        Some(name) => Benchmark::ALL
            .into_iter()
            .find(|b| b.name().contains(name.as_str()))
            .ok_or_else(|| format!("unknown benchmark `{name}`"))?,
        None => Benchmark::Li,
    };
    let budget: u64 = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1_000_000);

    let program = bench.program(u32::MAX / 2);
    let mut vm = Vm::new(program.clone());
    let mut prof = StreamProfiler::new(&program);
    for _ in 0..budget {
        match vm.step()? {
            Some(d) => prof.observe(&d),
            None => break,
        }
    }
    let s = prof.stats();

    println!("{bench} — paper input: {}", bench.paper_input());
    println!("dynamic instructions : {}", s.instructions);
    println!(
        "loads                : {} ({:.1}% of instructions, {:.1}% local)",
        s.loads,
        100.0 * s.load_fraction(),
        100.0 * s.local_load_fraction()
    );
    println!(
        "stores               : {} ({:.1}% of instructions, {:.1}% local)",
        s.stores,
        100.0 * s.store_fraction(),
        100.0 * s.local_store_fraction()
    );
    println!(
        "local share of refs  : {:.1}%",
        100.0 * s.local_mem_fraction()
    );
    println!(
        "dynamic calls        : {} (max depth {})",
        s.calls,
        vm.max_call_depth()
    );
    println!(
        "mean frame           : {:.1} words dynamic / {:.1} words static",
        s.frame_words.mean().unwrap_or(0.0),
        program.mean_static_frame_words()
    );

    println!("\nDynamic frame-size distribution (words):");
    let total = s.frame_words.samples().max(1);
    for (words, count) in s.frame_words.bucketed(4) {
        let pct = 100.0 * count as f64 / total as f64;
        let bar = "#".repeat((pct / 2.0).ceil() as usize);
        println!("  {:>4}-{:<4} {:>6.1}% {bar}", words, words + 3, pct);
    }
    Ok(())
}
