//! Decoupling study: for every benchmark, compare the conventional (4+0)
//! machine against the equal-port-count data-decoupled (2+2) machine with
//! the paper's optimizations — the paper's headline "comparable
//! performance with simpler hardware" claim (§4.4).
//!
//! ```sh
//! cargo run --release --example decoupling_study [instructions]
//! ```

use dda::core::{MachineConfig, Simulator};
use dda::workloads::Benchmark;
use dda_stats::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(200_000);

    let mut table = Table::new([
        "benchmark",
        "(4+0) IPC",
        "(2+2) IPC",
        "(2+2)/(4+0)",
        "local refs",
        "LVAQ fwd",
        "combined",
    ]);
    table.title(format!(
        "Equal port count: 4-port unified L1 vs 2-port L1 + 2-port LVC ({budget} instructions)"
    ));
    table.numeric();

    let four = MachineConfig::n_plus_m(4, 0);
    let two_two = MachineConfig::n_plus_m(2, 2).with_optimizations();

    let mut ratios = Vec::new();
    for bench in Benchmark::ALL {
        let program = bench.program(u32::MAX / 2);
        let a = Simulator::new(four.clone())?.run(&program, budget)?;
        let b = Simulator::new(two_two.clone())?.run(&program, budget)?;
        let ratio = b.speedup_over(&a);
        ratios.push(ratio.ln());
        table.row([
            bench.name().to_string(),
            format!("{:.2}", a.ipc()),
            format!("{:.2}", b.ipc()),
            format!("{ratio:.3}"),
            (b.lvaq.loads + b.lvaq.stores).to_string(),
            (b.lvaq.forwards + b.lvaq.fast_forwards).to_string(),
            b.lvaq.combined.to_string(),
        ]);
    }
    let gm = (ratios.iter().sum::<f64>() / ratios.len() as f64).exp();
    println!("{table}");
    println!(
        "geometric-mean (2+2)/(4+0) = {gm:.3} — the data-decoupled machine delivers \
         {}% of the 4-port unified design with half the L1 ports.",
        (gm * 100.0).round()
    );
    Ok(())
}
