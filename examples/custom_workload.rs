//! Build a *custom* calibrated workload with the public generator API,
//! profile it, and measure how much an LVC helps it.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use dda::core::{MachineConfig, Simulator};
use dda::vm::{StreamProfiler, Vm};
use dda::workloads::{generate_int, BlockMix, IntParams, RecursionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fictional "database-like" workload: call-dense, save-heavy,
    // pointer-chasing, with a deep recursive walker.
    let params = IntParams {
        name: "custom.db",
        seed: 42,
        n_top: 3,
        n_mid: 6,
        n_leaf: 6,
        top_frame_words: (6, 10),
        mid_frame_words: (4, 8),
        leaf_frame_words: (2, 4),
        top_saves: 5,
        mid_saves: 4,
        leaf_saves: 2,
        body_loops: 2,
        blocks_per_loop: 1,
        mix: BlockMix {
            alu: 12,
            local_pairs: 1,
            local_loads: 2,
            local_stores: 1,
            heap_loads: 2,
            heap_stores: 1,
            global_loads: 1,
            global_stores: 0,
        },
        calls_per_loop_top: 2,
        calls_per_loop_mid: 2,
        recursion: Some(RecursionSpec {
            depth: 12,
            frame_words: 10,
            binary: false,
            weight_of_8: 2,
            touched_slots: 2,
            alu: 8,
            heap_loads: 2,
            heap_stores: 1,
            chase: 1,
        }),
        heap_bytes: 256 << 10,
        global_bytes: 64 << 10,
        heap_stride: 16,
        byte_heap: false,
        ambiguous_mids: true,
        chase: 1,
        ring_bytes: 48 << 10,
        ilp: 3,
        base_iters: 50,
    };
    let program = generate_int(&params, u32::MAX / 2);

    // Profile the stream the way the paper's Figure 2 does.
    let mut vm = Vm::new(program.clone());
    let mut prof = StreamProfiler::new(&program);
    for _ in 0..500_000 {
        match vm.step()? {
            Some(d) => prof.observe(&d),
            None => break,
        }
    }
    let s = prof.into_stats();
    println!("custom.db stream profile:");
    println!(
        "  loads {:.1}% of instrs ({:.1}% local), stores {:.1}% ({:.1}% local)",
        100.0 * s.load_fraction(),
        100.0 * s.local_load_fraction(),
        100.0 * s.store_fraction(),
        100.0 * s.local_store_fraction()
    );
    println!(
        "  mean dynamic frame {:.1} words over {} calls",
        s.frame_words.mean().unwrap_or(0.0),
        s.calls
    );

    // Does decoupling pay off for it?
    for (n, m) in [(2, 0), (2, 2), (4, 0)] {
        let cfg = if m > 0 {
            MachineConfig::n_plus_m(n, m).with_optimizations()
        } else {
            MachineConfig::n_plus_m(n, m)
        };
        let r = Simulator::new(cfg)?.run(&program, 200_000)?;
        println!("  ({n}+{m}): IPC {:.2}", r.ipc());
    }
    Ok(())
}
