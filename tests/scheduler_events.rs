//! Randomized cross-checks for the event-driven memory scheduler.
//!
//! The fast kernel replaces the reference kernel's per-cycle queue
//! rescans with wake lists driven by address-ready / disambiguation /
//! port events. These tests hammer that equivalence with randomized
//! machine shapes, budgets and fault plans (seeded xoshiro, so failures
//! reproduce), and pin the one counter the event-driven rewrite is most
//! likely to silently break: `port_stall_cycles` over a long stretch
//! where every port grant is being dropped or delayed.

use dda::core::{FaultPlan, MachineConfig, SimError, SimResult, Simulator};
use dda::stats::Rng;
use dda::workloads::Benchmark;

/// Runs `bench` under both kernels and asserts bit-identical outcomes.
///
/// Successful runs must agree on the full [`SimResult`]; failing runs
/// must at least fail the same way (the deadlock diagnostic dump may
/// legally differ between kernels — pending wake events are a fast-kernel
/// implementation detail — so only the error variant is compared).
fn cross_check(label: &str, bench: Benchmark, cfg: &MachineConfig, budget: u64) {
    let program = bench.program(u32::MAX / 2);
    let mut fast_cfg = cfg.clone();
    fast_cfg.reference_kernel = false;
    let mut ref_cfg = cfg.clone();
    ref_cfg.reference_kernel = true;
    let fast = Simulator::new(fast_cfg).unwrap().run(&program, budget);
    let reference = Simulator::new(ref_cfg).unwrap().run(&program, budget);
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f, r, "{label}: kernels diverged on {bench}");
        }
        (Err(f), Err(r)) => {
            assert_eq!(
                std::mem::discriminant(&f),
                std::mem::discriminant(&r),
                "{label}: kernels failed differently on {bench}: {f:?} vs {r:?}"
            );
        }
        (f, r) => panic!("{label}: one kernel failed on {bench}: {f:?} vs {r:?}"),
    }
}

/// A random but always-valid (N+M) machine drawn from `rng`.
fn random_config(rng: &mut Rng) -> MachineConfig {
    let n = rng.gen_range(1..=4u32);
    let m = rng.gen_range(0..=2u32);
    let mut cfg = MachineConfig::n_plus_m(n, m);
    if m > 0 {
        cfg = cfg.with_fast_forwarding(rng.gen_bool(0.5));
        if rng.gen_bool(0.5) {
            cfg = cfg.with_combining(rng.gen_range(2..=4u32));
        }
    }
    if rng.gen_bool(0.3) {
        cfg = cfg.with_l1_hit_latency(rng.gen_range(1..=3u32));
    }
    cfg.audit = rng.gen_bool(0.25);
    cfg
}

/// A tame random fault plan: every class may fire, but at rates low
/// enough that the machine keeps retiring instructions (a wedge would
/// turn the comparison into one of diagnostic dumps, which the fast
/// kernel is allowed to render differently).
fn random_fault_plan(rng: &mut Rng) -> FaultPlan {
    FaultPlan {
        seed: rng.next_u64(),
        flip_lvc_line: if rng.gen_bool(0.5) { 0.02 } else { 0.0 },
        flip_l1_line: if rng.gen_bool(0.5) { 0.02 } else { 0.0 },
        drop_port_grant: if rng.gen_bool(0.5) { 0.02 } else { 0.0 },
        delay_port_grant: if rng.gen_bool(0.5) { 0.05 } else { 0.0 },
        delay_cycles: rng.gen_range(1..=8u32),
        corrupt_forward: if rng.gen_bool(0.3) { 0.05 } else { 0.0 },
    }
}

fn random_bench(rng: &mut Rng) -> Benchmark {
    let i: usize = rng.gen_range(0..Benchmark::ALL.len());
    Benchmark::ALL[i]
}

#[test]
fn random_configs_are_bit_identical_across_kernels() {
    let mut rng = Rng::seed_from_u64(0xDDA0_0003);
    for trial in 0..12 {
        let cfg = random_config(&mut rng);
        let budget: u64 = rng.gen_range(5_000..=30_000u64);
        let bench = random_bench(&mut rng);
        cross_check(&format!("clean trial {trial}"), bench, &cfg, budget);
    }
}

#[test]
fn random_fault_plans_are_bit_identical_across_kernels() {
    // Fault injection draws from a per-run RNG whose consumption order
    // depends on the order memory operations are examined — exactly what
    // the event-driven scheduler reorders internally. Bit-identity here
    // means the wake lists replay the reference examination order.
    let mut rng = Rng::seed_from_u64(0xDDA0_FA17);
    for trial in 0..10 {
        let cfg = random_config(&mut rng).with_fault_plan(random_fault_plan(&mut rng));
        let budget: u64 = rng.gen_range(5_000..=20_000u64);
        let bench = random_bench(&mut rng);
        cross_check(&format!("fault trial {trial}"), bench, &cfg, budget);
    }
}

#[test]
fn audited_random_runs_stay_clean() {
    // The fast kernel's liveness auditor (every schedulable load must be
    // reachable from a wake list or a store's waiter list) runs on every
    // cycle here; an invariant break surfaces as SimError::Invariant.
    let mut rng = Rng::seed_from_u64(0xA0D1_7000);
    for trial in 0..6 {
        let mut cfg = random_config(&mut rng).with_audit(true);
        cfg.reference_kernel = false;
        let budget: u64 = rng.gen_range(5_000..=20_000u64);
        let bench = random_bench(&mut rng);
        let program = bench.program(u32::MAX / 2);
        let res: Result<SimResult, SimError> = Simulator::new(cfg).unwrap().run(&program, budget);
        assert!(res.is_ok(), "audit trial {trial} on {bench}: {res:?}");
    }
}

#[test]
fn port_stall_cycles_count_exactly_through_a_stalled_stretch() {
    // A single-L1-port machine where most port grants are revoked after
    // arbitration: loads sit launchable-but-refused for long stretches,
    // and the event-driven kernel must re-arm them every cycle so
    // `port_stall_cycles` counts each stalled cycle exactly as the
    // rescanning reference does.
    let budget = 15_000;
    let plan = FaultPlan {
        seed: 21,
        drop_port_grant: 0.8,
        ..FaultPlan::none()
    };
    for bench in [Benchmark::Compress, Benchmark::Vortex] {
        let program = bench.program(u32::MAX / 2);
        let cfg = MachineConfig::n_plus_m(1, 0).with_fault_plan(plan);
        let run = |reference: bool| {
            let mut c = cfg.clone();
            c.reference_kernel = reference;
            Simulator::new(c)
                .unwrap()
                .run(&program, budget)
                .expect("stalled machine still retires")
        };
        let fast = run(false);
        let reference = run(true);
        assert_eq!(
            fast, reference,
            "{bench}: kernels diverged under port starvation"
        );
        assert!(
            fast.lsq.port_stall_cycles > budget / 10,
            "{bench}: the stretch must actually stall (got {} stall cycles)",
            fast.lsq.port_stall_cycles
        );
        assert_eq!(
            fast.lsq.port_stall_cycles, reference.lsq.port_stall_cycles,
            "{bench}: port_stall_cycles accounting diverged"
        );
    }
}
