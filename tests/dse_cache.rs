//! Cache-correctness gates for the memoized DSE service.
//!
//! The result cache is only sound if a hit is indistinguishable from a
//! fresh simulation — every counter, the fault-RNG draw order included —
//! and if the key honestly covers every result-affecting input. These
//! tests enforce both over randomized config matrices, plus the failure
//! path: a corrupted store record must degrade to a miss (recompute and
//! re-save), never to a wrong answer.

use std::path::PathBuf;
use std::sync::Arc;

use dda::core::{FaultPlan, MachineConfig};
use dda::stats::Rng;
use dda::workloads::Benchmark;
use dda_bench::dse::{DEFAULT_SEED, KERNEL_VERSION};
use dda_bench::{
    compute_cell, result_key, CellOutcome, CellStatus, CheckpointStore, DseCell, DseService,
    ResultStore, RunPlan, SamplingConfig,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dda-dsecache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small randomized config matrix: port grids, decoupling knobs, and
/// one active fault plan (the fault-RNG draw order is part of
/// measurement identity and must survive the cache byte-for-byte).
fn randomized_cells(rng: &mut Rng) -> Vec<DseCell> {
    let benches = [Benchmark::Compress, Benchmark::Li, Benchmark::Vortex];
    let mut cells = Vec::new();
    for i in 0..5 {
        let bench = benches[rng.gen_range(0..benches.len())];
        let n = [1u32, 2, 4][rng.gen_range(0..3usize)];
        let m = [0u32, 1, 2, 4][rng.gen_range(0..4usize)];
        let mut cfg = MachineConfig::n_plus_m(n, m);
        if m > 0 {
            cfg = cfg
                .with_combining(rng.gen_range(1..4u32))
                .with_fast_forwarding(rng.gen_bool(0.5));
        }
        cells.push(DseCell {
            bench,
            cfg,
            label: format!("rand{i}/{n}+{m}"),
        });
    }
    // One faulting point: cached FaultStats must equal a fresh run's.
    cells.push(DseCell {
        bench: Benchmark::Li,
        cfg: MachineConfig::n_plus_m(4, 2)
            .with_optimizations()
            .with_fault_plan(FaultPlan {
                seed: 0xDDA,
                flip_lvc_line: 0.01,
                flip_l1_line: 0.01,
                drop_port_grant: 0.02,
                ..FaultPlan::none()
            }),
        label: "faulty/4+2".into(),
    });
    cells
}

fn collect(
    svc: &DseService,
    cells: &[DseCell],
    plan: &RunPlan,
) -> Vec<(usize, CellStatus, Option<CellOutcome>, u64)> {
    let mut out = Vec::new();
    svc.run_streaming(cells, DEFAULT_SEED, plan, &mut |r| {
        out.push((r.index, r.status, r.outcome, r.sim_insts));
    });
    out.sort_by_key(|(i, ..)| *i);
    out
}

#[test]
fn cached_results_are_bit_identical_to_fresh_simulation() {
    let dir = temp_dir("diff");
    let svc = DseService::new(ResultStore::open(&dir).expect("store opens"), None);
    let mut rng = Rng::seed_from_u64(0xD5E_CACE);
    let cells = randomized_cells(&mut rng);
    let plan = RunPlan::Full { budget: 5_000 };

    let cold = collect(&svc, &cells, &plan);
    let warm = collect(&svc, &cells, &plan);
    assert!(cold.iter().all(|(_, s, ..)| *s == CellStatus::Miss));
    assert!(warm.iter().all(|(_, s, ..)| *s == CellStatus::Hit));
    assert!(warm.iter().all(|(.., insts)| *insts == 0));

    for (i, cell) in cells.iter().enumerate() {
        let program = Arc::new(cell.bench.program(DEFAULT_SEED));
        let (fresh, _) = compute_cell(&cell.cfg, program, &plan, None).expect("fresh run succeeds");
        // Miss, hit, and an independent fresh computation all agree on
        // every byte of the outcome (fault counters included for the
        // faulty cell — RNG draw order survives the cache).
        assert_eq!(cold[i].2.as_ref(), Some(&fresh), "{} (cold)", cell.label);
        assert_eq!(warm[i].2.as_ref(), Some(&fresh), "{} (warm)", cell.label);
        if cell.label.starts_with("faulty") {
            match &fresh {
                CellOutcome::Full(r) => assert!(
                    r.faults.l1_flips_injected + r.faults.grants_dropped > 0,
                    "fault plan injected nothing — the RNG-order check is vacuous"
                ),
                CellOutcome::Sampled(_) => unreachable!("full plan"),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn key_invalidation_matrix() {
    let dir = temp_dir("keys");
    let store = ResultStore::open(&dir).expect("store opens");
    let svc = DseService::new(store.clone(), None);
    let cell = DseCell {
        bench: Benchmark::Compress,
        cfg: MachineConfig::n_plus_m(4, 2).with_optimizations(),
        label: "base".into(),
    };
    let plan = RunPlan::Full { budget: 3_000 };
    let cells = std::slice::from_ref(&cell);

    // Cold miss, then a no-op rerun hits.
    let first = collect(&svc, cells, &plan);
    assert_eq!(first[0].1, CellStatus::Miss);
    let rerun = collect(&svc, cells, &plan);
    assert_eq!(rerun[0].1, CellStatus::Hit, "no-op rerun must hit");

    // A kernel-version bump invalidates silently (same store!).
    let bumped = DseService::new(store.clone(), None).with_kernel_version(KERNEL_VERSION + 1);
    let r = collect(&bumped, cells, &plan);
    assert_eq!(r[0].1, CellStatus::Miss, "kernel bump must miss");

    // A result-affecting config change misses.
    let changed = DseCell {
        cfg: cell.cfg.clone().with_combining(3),
        ..cell.clone()
    };
    let r = collect(&svc, std::slice::from_ref(&changed), &plan);
    assert_eq!(r[0].1, CellStatus::Miss, "config change must miss");

    // A seed (workload-scale) change misses.
    let mut out = Vec::new();
    svc.run_streaming(cells, DEFAULT_SEED - 1, &plan, &mut |rep| {
        out.push(rep.status);
    });
    assert_eq!(out[0], CellStatus::Miss, "seed change must miss");

    // A plan change misses.
    let r = collect(&svc, cells, &RunPlan::Full { budget: 3_001 });
    assert_eq!(r[0].1, CellStatus::Miss, "budget change must miss");

    // ...while result-neutral flags still hit: the audited config maps
    // to the same key.
    let audited = DseCell {
        cfg: cell.cfg.clone().with_audit(true),
        ..cell.clone()
    };
    let r = collect(&svc, std::slice::from_ref(&audited), &plan);
    assert_eq!(r[0].1, CellStatus::Hit, "audit flag must not key");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_records_degrade_to_fresh_simulation() {
    let dir = temp_dir("corrupt");
    let store = ResultStore::open(&dir).expect("store opens");
    let svc = DseService::new(store.clone(), None);
    let cell = DseCell {
        bench: Benchmark::Compress,
        cfg: MachineConfig::n_plus_m(2, 2),
        label: "victim".into(),
    };
    let plan = RunPlan::Full { budget: 3_000 };
    let cells = std::slice::from_ref(&cell);
    let cold = collect(&svc, cells, &plan);
    let good = cold[0].2.clone().expect("outcome present");

    // Truncate the stored record and also plant pure garbage.
    let program = Arc::new(cell.bench.program(DEFAULT_SEED));
    let key = result_key(
        KERNEL_VERSION,
        &cell.cfg,
        dda_bench::program_fingerprint(&program),
        DEFAULT_SEED,
        &plan,
    );
    let path = store.path_for(key);
    assert!(path.exists(), "cold pass persisted the record");
    std::fs::write(&path, b"not a result record").expect("corruption writes");
    assert!(
        store.load(key).is_err(),
        "corrupt record surfaces as InvalidData, not as a value"
    );

    // The engine recomputes (miss), answers correctly, and re-saves.
    let after = collect(&svc, cells, &plan);
    assert_eq!(after[0].1, CellStatus::Miss, "corrupt record must miss");
    assert_eq!(after[0].2.as_ref(), Some(&good));
    let healed = store
        .load(key)
        .expect("store readable")
        .expect("record present");
    assert_eq!(healed, good, "good bytes overwrote the corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_checkpoints_do_not_perturb_sampled_measurements() {
    // Satellite (a): DSE workers share one CheckpointStore of
    // fast-forward positions; measurement identity vs the unshared path
    // is the acceptance bar.
    let ckpt_dir = temp_dir("ckpt");
    let res_a = temp_dir("res-a");
    let res_b = temp_dir("res-b");
    let plan = RunPlan::Sampled(SamplingConfig {
        windows: 3,
        window_insts: 800,
        warmup_insts: 400,
        budget: 24_000,
        ..SamplingConfig::for_budget(24_000)
    });
    let cells: Vec<DseCell> = [(2u32, 2u32), (4, 2)]
        .iter()
        .map(|&(n, m)| DseCell {
            bench: Benchmark::Li,
            cfg: MachineConfig::n_plus_m(n, m).with_optimizations(),
            label: format!("li/{n}+{m}"),
        })
        .collect();

    let shared = DseService::new(
        ResultStore::open(&res_a).expect("store opens"),
        Some(CheckpointStore::open(&ckpt_dir).expect("ckpt store opens")),
    );
    let unshared = DseService::new(ResultStore::open(&res_b).expect("store opens"), None);
    let with_ckpt = collect(&shared, &cells, &plan);
    let without = collect(&unshared, &cells, &plan);
    let ckpts = CheckpointStore::open(&ckpt_dir).expect("ckpt store reopens");
    assert!(
        !ckpts.is_empty().expect("ckpt dir readable"),
        "the shared store actually captured fast-forward positions"
    );
    for ((_, _, a, _), (_, _, b, _)) in with_ckpt.iter().zip(&without) {
        assert_eq!(a, b, "checkpoint sharing changed a measurement");
    }
    // And a rerun with the now-warm checkpoint store still matches.
    let rerun_store = temp_dir("res-c");
    let warm_ckpts = DseService::new(
        ResultStore::open(&rerun_store).expect("store opens"),
        Some(CheckpointStore::open(&ckpt_dir).expect("ckpt store opens")),
    );
    let warm = collect(&warm_ckpts, &cells, &plan);
    for ((_, _, a, _), (_, _, b, _)) in warm.iter().zip(&without) {
        assert_eq!(a, b, "warm checkpoint store changed a measurement");
    }
    for d in [ckpt_dir, res_a, res_b, rerun_store] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
