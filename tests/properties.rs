//! Randomized property tests over the core data structures and invariants.
//!
//! Originally written with `proptest`; rewritten as plain `#[test]`
//! functions over the in-tree [`dda_stats::Rng`] so the workspace builds
//! with no external crates (offline). Each property draws a few hundred
//! random cases from a fixed seed — deterministic, so failures reproduce.

use std::collections::HashMap;

use dda::isa::{AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, Instr, MemWidth, Reg, StreamHint};
use dda::mem::{CacheConfig, CacheCore, DataCache, L2Config, L2Source, PortMeter, L2};
use dda::program::MemoryLayout;
use dda::vm::SparseMemory;
use dda_stats::{Histogram, Rng};

// ---------------------------------------------------------------- ISA --

fn arb_gpr(rng: &mut Rng) -> Gpr {
    Gpr::new(rng.gen_range(0u8..32))
}

fn arb_fpr(rng: &mut Rng) -> Fpr {
    Fpr::new(rng.gen_range(0u8..32))
}

fn arb_hint(rng: &mut Rng) -> StreamHint {
    [StreamHint::Unknown, StreamHint::Local, StreamHint::NonLocal][rng.gen_range(0..3usize)]
}

fn arb_width(rng: &mut Rng) -> MemWidth {
    [MemWidth::Byte, MemWidth::Half, MemWidth::Word][rng.gen_range(0..3usize)]
}

fn arb_i32(rng: &mut Rng) -> i32 {
    rng.next_u32() as i32
}

fn arb_instr(rng: &mut Rng) -> Instr {
    match rng.gen_range(0..18usize) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::Ret,
        3 => Instr::Alu {
            op: AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())],
            rd: arb_gpr(rng),
            rs: arb_gpr(rng),
            rt: arb_gpr(rng),
        },
        4 => Instr::AluImm {
            op: AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())],
            rd: arb_gpr(rng),
            rs: arb_gpr(rng),
            imm: arb_i32(rng),
        },
        5 => Instr::LoadImm {
            rd: arb_gpr(rng),
            imm: arb_i32(rng),
        },
        6 => Instr::Fpu {
            op: FpuOp::ALL[rng.gen_range(0..FpuOp::ALL.len())],
            fd: arb_fpr(rng),
            fs: arb_fpr(rng),
            ft: arb_fpr(rng),
        },
        7 => Instr::FpCmp {
            cond: FpCond::ALL[rng.gen_range(0..FpCond::ALL.len())],
            rd: arb_gpr(rng),
            fs: arb_fpr(rng),
            ft: arb_fpr(rng),
        },
        8 => Instr::IntToFp {
            fd: arb_fpr(rng),
            rs: arb_gpr(rng),
        },
        9 => Instr::FpToInt {
            rd: arb_gpr(rng),
            fs: arb_fpr(rng),
        },
        10 => Instr::Load {
            rd: arb_gpr(rng),
            base: arb_gpr(rng),
            offset: arb_i32(rng),
            width: arb_width(rng),
            hint: arb_hint(rng),
        },
        11 => Instr::Store {
            rs: arb_gpr(rng),
            base: arb_gpr(rng),
            offset: arb_i32(rng),
            width: arb_width(rng),
            hint: arb_hint(rng),
        },
        12 => Instr::FLoad {
            fd: arb_fpr(rng),
            base: arb_gpr(rng),
            offset: arb_i32(rng),
            hint: arb_hint(rng),
        },
        13 => Instr::FStore {
            fs: arb_fpr(rng),
            base: arb_gpr(rng),
            offset: arb_i32(rng),
            hint: arb_hint(rng),
        },
        14 => Instr::Branch {
            cond: BranchCond::ALL[rng.gen_range(0..BranchCond::ALL.len())],
            rs: arb_gpr(rng),
            rt: arb_gpr(rng),
            target: rng.next_u32(),
        },
        15 => Instr::Jump {
            target: rng.next_u32(),
        },
        16 => Instr::Call {
            target: rng.next_u32(),
        },
        _ => Instr::CallReg { rs: arb_gpr(rng) },
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = Rng::seed_from_u64(0x1541);
    for _ in 0..2_000 {
        let instr = arb_instr(&mut rng);
        assert_eq!(Instr::decode(instr.encode()), Ok(instr));
    }
}

#[test]
fn defs_and_uses_are_well_formed() {
    let mut rng = Rng::seed_from_u64(0x1542);
    for _ in 0..2_000 {
        let instr = arb_instr(&mut rng);
        // A def is always writable; $zero never appears as a destination.
        if let Some(d) = instr.def() {
            assert!(d.is_writable());
        }
        // Unified indices of uses are in range.
        for u in instr.uses().into_iter().flatten() {
            assert!(u.unified_index() < Reg::UNIFIED_COUNT);
        }
        // Memory classification is consistent.
        assert_eq!(instr.is_mem(), instr.mem_operand().is_some());
        assert!(!(instr.is_load() && instr.is_store()));
    }
}

#[test]
fn branch_negation_is_involutive() {
    let mut rng = Rng::seed_from_u64(0x1543);
    for cond in BranchCond::ALL {
        assert_eq!(cond.negate().negate(), cond);
        for _ in 0..200 {
            let (a, b) = (arb_i32(&mut rng), arb_i32(&mut rng));
            assert_eq!(cond.eval(a, b), !cond.negate().eval(a, b));
        }
    }
}

// ------------------------------------------- fuzzer-emitted programs --

#[test]
fn fuzzed_programs_are_an_assembler_fixpoint() {
    // The full rendering chain on generator output: a fuzzed program's
    // `to_asm()` re-assembles to the identical image, every instruction
    // of that image survives encode -> decode -> disassemble -> re-parse,
    // and a second rendering is byte-identical to the first (fixpoint).
    use dda::program::assemble;
    use dda::program::fuzz::{derive_seed, fuzz_program, FuzzWeights};
    for (pi, (name, w)) in FuzzWeights::presets().iter().enumerate() {
        for k in 0..8u64 {
            let seed = derive_seed(0x51DE, pi as u64 * 100 + k);
            let p = fuzz_program(seed, w);
            let src = p.to_asm();
            let q = assemble(&src)
                .unwrap_or_else(|e| panic!("{name} seed {seed:#x}: did not re-assemble: {e}"));
            assert_eq!(
                p, q,
                "{name} seed {seed:#x}: assemble(to_asm) changed the program"
            );
            assert_eq!(
                src,
                q.to_asm(),
                "{name} seed {seed:#x}: to_asm is not a fixpoint"
            );
            for &i in p.instrs() {
                assert_eq!(Instr::decode(i.encode()), Ok(i));
            }
        }
    }
}

#[test]
fn mutated_programs_stay_round_trippable() {
    use dda::program::assemble;
    use dda::program::fuzz::{derive_seed, fuzz_program, mutate, FuzzWeights};
    let presets = FuzzWeights::presets();
    for k in 0..30u64 {
        let (_, w) = presets[(k % presets.len() as u64) as usize];
        let p = fuzz_program(derive_seed(0x51DF, k), &w);
        let m = mutate(&p, derive_seed(0xAB1E, k));
        let src = m.to_asm();
        let q = assemble(&src).unwrap_or_else(|e| panic!("mutant {k}: {e}"));
        assert_eq!(m, q, "mutant {k}: assemble(to_asm) changed the program");
        assert_eq!(src, q.to_asm(), "mutant {k}: to_asm is not a fixpoint");
    }
}

// ------------------------------------------------------------- memory --

#[test]
fn sparse_memory_matches_reference() {
    let mut rng = Rng::seed_from_u64(0x1544);
    for _ in 0..50 {
        let mut mem = SparseMemory::new();
        let mut reference: HashMap<u32, u8> = HashMap::new();
        for _ in 0..rng.gen_range(1..200usize) {
            let addr = rng.next_u32();
            let value = rng.gen_range(0u8..=255);
            if rng.gen_bool(0.5) {
                mem.write_u8(addr, value);
                reference.insert(addr, value);
            } else {
                let expect = reference.get(&addr).copied().unwrap_or(0);
                assert_eq!(mem.read_u8(addr), expect);
            }
        }
        for (addr, value) in reference {
            assert_eq!(mem.read_u8(addr), value);
        }
    }
}

#[test]
fn sparse_memory_wide_accesses_are_byte_composable() {
    let mut rng = Rng::seed_from_u64(0x1545);
    for _ in 0..500 {
        let addr = rng.next_u32();
        let value = rng.next_u64();
        let mut mem = SparseMemory::new();
        mem.write_u64(addr, value);
        let mut rebuilt = 0u64;
        for i in 0..8 {
            rebuilt |= (mem.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        assert_eq!(rebuilt, value);
    }
}

#[test]
fn memory_layout_regions_partition_addresses() {
    use dda::program::MemRegion;
    let mut rng = Rng::seed_from_u64(0x1546);
    let l = MemoryLayout::standard();
    for _ in 0..2_000 {
        let addr = rng.next_u32();
        let region = l.region_of(addr);
        // is_stack agrees with region_of.
        assert_eq!(l.is_stack(addr), region == MemRegion::Stack);
    }
    // Region base addresses classify into their own regions.
    assert_eq!(l.region_of(l.global_base()), MemRegion::Global);
    assert_eq!(l.region_of(l.heap_base()), MemRegion::Heap);
    assert_eq!(l.region_of(l.stack_base() - 4), MemRegion::Stack);
}

// -------------------------------------------------------------- cache --

/// Reference fully-associative LRU model.
struct RefLru {
    capacity: usize,
    lines: Vec<u32>, // most recent last
}

impl RefLru {
    fn access(&mut self, line: u32) -> bool {
        if let Some(i) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(i);
            self.lines.push(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.remove(0);
            }
            self.lines.push(line);
            false
        }
    }
}

#[test]
fn fully_associative_cache_core_matches_reference_lru() {
    let mut rng = Rng::seed_from_u64(0x1547);
    for _ in 0..30 {
        // 8 lines of 32 bytes, fully associative.
        let cfg = CacheConfig {
            size_bytes: 256,
            assoc: 8,
            line_bytes: 32,
            hit_latency: 1,
            ports: 1,
            mshrs: 1,
        };
        let mut cache = CacheCore::new(&cfg);
        let mut reference = RefLru {
            capacity: 8,
            lines: Vec::new(),
        };
        for _ in 0..rng.gen_range(1..300usize) {
            let addr = rng.gen_range(0u32..4096);
            let hit = cache.access(addr, false);
            if !hit {
                cache.fill(addr, false);
            }
            let ref_hit = reference.access(addr >> 5);
            assert_eq!(hit, ref_hit, "address {addr:#x}");
        }
    }
}

#[test]
fn cache_stats_are_consistent() {
    let mut rng = Rng::seed_from_u64(0x1548);
    for _ in 0..30 {
        let mut cache = CacheCore::new(&CacheConfig::lvc_2k());
        let n = rng.gen_range(1..300usize);
        for _ in 0..n {
            let addr = rng.gen_range(0u32..65536);
            let w = rng.gen_bool(0.5);
            if !cache.access(addr, w) {
                cache.fill(addr, w);
            }
        }
        let s = cache.stats();
        assert_eq!(s.accesses(), n as u64);
        assert_eq!(s.misses, s.fills);
        assert!(s.writebacks <= s.fills);
        assert!(s.miss_rate() >= 0.0 && s.miss_rate() <= 1.0);
    }
}

#[test]
fn lockup_free_cache_timing_is_sane() {
    let mut rng = Rng::seed_from_u64(0x1549);
    for _ in 0..20 {
        let mut l2 = L2::new(L2Config::iscapaper_base());
        let mut cache = DataCache::new(CacheConfig::l1_32k(), L2Source::L1);
        for now in 0u64..rng.gen_range(1..100u64) {
            let addr = rng.gen_range(0u32..(1 << 20));
            let c = cache.access(now, 0x2000_0000 + addr, false, &mut l2);
            // Completion is causal and bounded below by the hit latency.
            assert!(c.complete_at >= now + 2);
        }
    }
}

#[test]
fn port_meter_never_exceeds_budget() {
    let mut rng = Rng::seed_from_u64(0x154A);
    for _ in 0..50 {
        let ports = rng.gen_range(1u32..6);
        let mut claims: Vec<u64> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(0u64..50))
            .collect();
        claims.sort_unstable();
        let mut meter = PortMeter::new(ports);
        let mut per_cycle: HashMap<u64, u32> = HashMap::new();
        for cycle in claims {
            if meter.try_claim(cycle) {
                *per_cycle.entry(cycle).or_insert(0) += 1;
            }
        }
        for (_, granted) in per_cycle {
            assert!(granted <= ports);
        }
    }
}

// -------------------------------------------------------------- stats --

#[test]
fn histogram_quantiles_are_monotone() {
    let mut rng = Rng::seed_from_u64(0x154B);
    for _ in 0..50 {
        let values: Vec<u64> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(0u64..1000))
            .collect();
        let h: Histogram = values.iter().copied().collect();
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut last = 0;
        for q in qs {
            let v = h.quantile(q).unwrap();
            assert!(v >= last);
            last = v;
        }
        assert_eq!(h.quantile(1.0), h.max());
        assert_eq!(h.samples(), values.len() as u64);
        // The mean lies within [min, max].
        let mean = h.mean().unwrap();
        assert!(mean >= h.min().unwrap() as f64);
        assert!(mean <= h.max().unwrap() as f64);
    }
}

#[test]
fn histogram_cdf_is_monotone_and_normalised() {
    let mut rng = Rng::seed_from_u64(0x154C);
    for _ in 0..50 {
        let values: Vec<u64> = (0..rng.gen_range(1..100usize))
            .map(|_| rng.gen_range(0u64..100))
            .collect();
        let h: Histogram = values.iter().copied().collect();
        let mut last = 0.0f64;
        for v in 0..100 {
            let c = h.cdf(v);
            assert!(c >= last - 1e-12);
            last = c;
        }
        assert!((h.cdf(u64::MAX) - 1.0).abs() < 1e-12);
    }
}

// ----------------------------------------------------- whole programs --

#[test]
fn random_programs_run_identically_on_vm_and_pipeline() {
    use dda::program::{FunctionBuilder, ProgramBuilder};
    for seed in 0u64..16 {
        let mut rng = Rng::seed_from_u64(0x9_0000 + seed);
        let n_funcs = rng.gen_range(1usize..4);
        let body = rng.gen_range(2u32..12);

        // Build a random but well-formed program: straight-line bodies of
        // ALU and stack/global memory operations plus calls down a chain.
        let mut builder = ProgramBuilder::new();
        let mut main = FunctionBuilder::new("main");
        main.addi(Gpr::SP, Gpr::SP, -32);
        if n_funcs > 1 {
            main.store_local(Gpr::RA, 0);
            main.call("f1");
            main.load_local(Gpr::RA, 0);
        }
        main.addi(Gpr::SP, Gpr::SP, 32);
        main.halt();
        builder.add_function(main);
        for f_idx in 1..n_funcs {
            let mut f = FunctionBuilder::with_frame(format!("f{f_idx}"), 32);
            f.addi(Gpr::SP, Gpr::SP, -32);
            f.store_local(Gpr::RA, 0);
            for _ in 0..body {
                match rng.gen_range(0..4usize) {
                    0 => {
                        let op = AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())];
                        f.alui(op, Gpr::T0, Gpr::T1, rng.gen_range(-8..8));
                    }
                    1 => {
                        f.store_local(Gpr::T0, rng.gen_range(1..8) * 4);
                    }
                    2 => {
                        f.load_local(Gpr::T1, rng.gen_range(1..8) * 4);
                    }
                    _ => {
                        f.load(
                            Gpr::T2,
                            Gpr::GP,
                            rng.gen_range(0..64) * 4,
                            MemWidth::Word,
                            StreamHint::NonLocal,
                        );
                    }
                }
            }
            if f_idx + 1 < n_funcs {
                f.call(format!("f{}", f_idx + 1));
            }
            f.load_local(Gpr::RA, 0);
            f.addi(Gpr::SP, Gpr::SP, 32);
            f.ret();
            builder.add_function(f);
        }
        let program = builder.build().unwrap();

        let mut vm = dda::vm::Vm::new(program.clone());
        let summary = vm.run(100_000).unwrap();
        assert!(summary.halted);

        use dda::core::{MachineConfig, Simulator};
        for cfg in [
            MachineConfig::n_plus_m(2, 0),
            MachineConfig::n_plus_m(2, 2).with_optimizations(),
        ] {
            let r = Simulator::new(cfg).unwrap().run(&program, 100_000).unwrap();
            assert!(r.halted);
            assert_eq!(r.committed, summary.executed);
        }
    }
}

// --------------------------------------------- timing vs architecture --

/// The golden rule of a timing simulator: no machine configuration —
/// widths, queue sizes, ports, latencies, optimizations, steering —
/// may ever change *what* commits, only *when*.
#[test]
fn timing_configuration_never_changes_architecture() {
    use dda::core::{MachineConfig, Simulator, SteerPolicy};
    use dda::workloads::Benchmark;

    let program = Benchmark::Perl.program(u32::MAX / 2);
    let budget = 5_000u64;
    let mut vm = dda::vm::Vm::new(program.clone());
    let mut executed = 0;
    for _ in 0..budget {
        match vm.step().unwrap() {
            Some(_) => executed += 1,
            None => break,
        }
    }
    let oracle = Simulator::new(MachineConfig::iscapaper_base())
        .unwrap()
        .run(&program, budget)
        .unwrap();

    let mut rng = Rng::seed_from_u64(0x154D);
    for _ in 0..12 {
        let mut cfg = MachineConfig::n_plus_m(rng.gen_range(1u32..5), rng.gen_range(0u32..4));
        let dispatch = rng.gen_range(1u32..17);
        cfg.dispatch_width = dispatch;
        cfg.issue_width = dispatch;
        cfg.commit_width = dispatch;
        cfg.rob_size = rng.gen_range(8usize..129);
        let lsq = rng.gen_range(4usize..65);
        cfg.lsq_size = lsq;
        cfg.decoupling.lvaq_size = lsq;
        cfg.hierarchy.l1.hit_latency = rng.gen_range(1u32..4);
        cfg.decoupling.fast_forwarding = rng.gen_bool(0.5);
        cfg.decoupling.combining_degree = rng.gen_range(1u32..5);
        cfg.decoupling.steer = match rng.gen_range(0u8..4) {
            0 => SteerPolicy::Oracle,
            1 => SteerPolicy::Hint,
            2 => SteerPolicy::SpBase,
            _ => SteerPolicy::Replicate,
        };

        let r = Simulator::new(cfg).unwrap().run(&program, budget).unwrap();
        assert_eq!(r.committed, executed);
        // Memory-traffic bookkeeping is conserved across any split.
        let mem_total = r.lsq.loads + r.lsq.stores + r.lvaq.loads + r.lvaq.stores;
        assert_eq!(mem_total, oracle.lsq.loads + oracle.lsq.stores);
    }
}

// ---------------------------------------------------------- assembler --

/// Every instruction's disassembly re-parses to the same instruction
/// (modulo the unary-FPU normalisation: `neg.d $f1, $f2` carries no
/// second source, so `ft` reads back equal to `fs`).
#[test]
fn disassembly_reassembles() {
    use dda::program::assemble;
    let mut rng = Rng::seed_from_u64(0x154E);
    for _ in 0..500 {
        let instr = arb_instr(&mut rng);
        let expected = match instr {
            Instr::Fpu { op, fd, fs, .. } if !op.is_binary() => Instr::Fpu { op, fd, fs, ft: fs },
            other => other,
        };
        let source = format!("main:\n    {instr}\n");
        let program =
            assemble(&source).unwrap_or_else(|e| panic!("`{instr}` failed to assemble: {e}"));
        assert_eq!(program.fetch(0), expected);
    }
}
