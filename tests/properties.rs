//! Property-based tests over the core data structures and invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use dda::isa::{
    AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, Instr, MemWidth, Reg, StreamHint,
};
use dda::mem::{CacheConfig, CacheCore, L2Config, L2Source, PortMeter, DataCache, L2};
use dda::program::MemoryLayout;
use dda::vm::SparseMemory;
use dda_stats::Histogram;

// ---------------------------------------------------------------- ISA --

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr::new)
}

fn arb_fpr() -> impl Strategy<Value = Fpr> {
    (0u8..32).prop_map(Fpr::new)
}

fn arb_hint() -> impl Strategy<Value = StreamHint> {
    prop_oneof![
        Just(StreamHint::Unknown),
        Just(StreamHint::Local),
        Just(StreamHint::NonLocal)
    ]
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::Byte), Just(MemWidth::Half), Just(MemWidth::Word)]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        (proptest::sample::select(&AluOp::ALL[..]), arb_gpr(), arb_gpr(), arb_gpr())
            .prop_map(|(op, rd, rs, rt)| Instr::Alu { op, rd, rs, rt }),
        (proptest::sample::select(&AluOp::ALL[..]), arb_gpr(), arb_gpr(), any::<i32>())
            .prop_map(|(op, rd, rs, imm)| Instr::AluImm { op, rd, rs, imm }),
        (arb_gpr(), any::<i32>()).prop_map(|(rd, imm)| Instr::LoadImm { rd, imm }),
        (proptest::sample::select(&FpuOp::ALL[..]), arb_fpr(), arb_fpr(), arb_fpr())
            .prop_map(|(op, fd, fs, ft)| Instr::Fpu { op, fd, fs, ft }),
        (proptest::sample::select(&FpCond::ALL[..]), arb_gpr(), arb_fpr(), arb_fpr())
            .prop_map(|(cond, rd, fs, ft)| Instr::FpCmp { cond, rd, fs, ft }),
        (arb_fpr(), arb_gpr()).prop_map(|(fd, rs)| Instr::IntToFp { fd, rs }),
        (arb_gpr(), arb_fpr()).prop_map(|(rd, fs)| Instr::FpToInt { rd, fs }),
        (arb_gpr(), arb_gpr(), any::<i32>(), arb_width(), arb_hint())
            .prop_map(|(rd, base, offset, width, hint)| Instr::Load {
                rd, base, offset, width, hint
            }),
        (arb_gpr(), arb_gpr(), any::<i32>(), arb_width(), arb_hint())
            .prop_map(|(rs, base, offset, width, hint)| Instr::Store {
                rs, base, offset, width, hint
            }),
        (arb_fpr(), arb_gpr(), any::<i32>(), arb_hint())
            .prop_map(|(fd, base, offset, hint)| Instr::FLoad { fd, base, offset, hint }),
        (arb_fpr(), arb_gpr(), any::<i32>(), arb_hint())
            .prop_map(|(fs, base, offset, hint)| Instr::FStore { fs, base, offset, hint }),
        (proptest::sample::select(&BranchCond::ALL[..]), arb_gpr(), arb_gpr(), any::<u32>())
            .prop_map(|(cond, rs, rt, target)| Instr::Branch { cond, rs, rt, target }),
        any::<u32>().prop_map(|target| Instr::Jump { target }),
        any::<u32>().prop_map(|target| Instr::Call { target }),
        arb_gpr().prop_map(|rs| Instr::CallReg { rs }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(instr in arb_instr()) {
        prop_assert_eq!(Instr::decode(instr.encode()), Ok(instr));
    }

    #[test]
    fn defs_and_uses_are_well_formed(instr in arb_instr()) {
        // A def is always writable; $zero never appears as a destination.
        if let Some(d) = instr.def() {
            prop_assert!(d.is_writable());
        }
        // Unified indices of uses are in range.
        for u in instr.uses().into_iter().flatten() {
            prop_assert!(u.unified_index() < Reg::UNIFIED_COUNT);
        }
        // Memory classification is consistent.
        prop_assert_eq!(instr.is_mem(), instr.mem_operand().is_some());
        prop_assert!(!(instr.is_load() && instr.is_store()));
    }

    #[test]
    fn branch_negation_is_involutive(
        cond in proptest::sample::select(&BranchCond::ALL[..]),
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        prop_assert_eq!(cond.negate().negate(), cond);
        prop_assert_eq!(cond.eval(a, b), !cond.negate().eval(a, b));
    }
}

// ------------------------------------------------------------- memory --

proptest! {
    #[test]
    fn sparse_memory_matches_reference(
        ops in proptest::collection::vec(
            (any::<u32>(), any::<u8>(), any::<bool>()), 1..200)
    ) {
        let mut mem = SparseMemory::new();
        let mut reference: HashMap<u32, u8> = HashMap::new();
        for (addr, value, is_write) in ops {
            if is_write {
                mem.write_u8(addr, value);
                reference.insert(addr, value);
            } else {
                let expect = reference.get(&addr).copied().unwrap_or(0);
                prop_assert_eq!(mem.read_u8(addr), expect);
            }
        }
        for (addr, value) in reference {
            prop_assert_eq!(mem.read_u8(addr), value);
        }
    }

    #[test]
    fn sparse_memory_wide_accesses_are_byte_composable(
        addr in any::<u32>(),
        value in any::<u64>(),
    ) {
        let mut mem = SparseMemory::new();
        mem.write_u64(addr, value);
        let mut rebuilt = 0u64;
        for i in 0..8 {
            rebuilt |= (mem.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        prop_assert_eq!(rebuilt, value);
    }

    #[test]
    fn memory_layout_regions_partition_addresses(addr in any::<u32>()) {
        use dda::program::MemRegion;
        let l = MemoryLayout::standard();
        let region = l.region_of(addr);
        // is_stack agrees with region_of.
        prop_assert_eq!(l.is_stack(addr), region == MemRegion::Stack);
        // Region base addresses classify into their own regions.
        prop_assert_eq!(l.region_of(l.global_base()), MemRegion::Global);
        prop_assert_eq!(l.region_of(l.heap_base()), MemRegion::Heap);
        prop_assert_eq!(l.region_of(l.stack_base() - 4), MemRegion::Stack);
    }
}

// -------------------------------------------------------------- cache --

/// Reference fully-associative LRU model.
struct RefLru {
    capacity: usize,
    lines: Vec<u32>, // most recent last
}

impl RefLru {
    fn access(&mut self, line: u32) -> bool {
        if let Some(i) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(i);
            self.lines.push(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.remove(0);
            }
            self.lines.push(line);
            false
        }
    }
}

proptest! {
    #[test]
    fn fully_associative_cache_core_matches_reference_lru(
        addrs in proptest::collection::vec(0u32..4096, 1..300)
    ) {
        // 8 lines of 32 bytes, fully associative.
        let cfg = CacheConfig {
            size_bytes: 256,
            assoc: 8,
            line_bytes: 32,
            hit_latency: 1,
            ports: 1,
            mshrs: 1,
        };
        let mut cache = CacheCore::new(&cfg);
        let mut reference = RefLru { capacity: 8, lines: Vec::new() };
        for addr in addrs {
            let hit = cache.access(addr, false);
            if !hit {
                cache.fill(addr, false);
            }
            let ref_hit = reference.access(addr >> 5);
            prop_assert_eq!(hit, ref_hit, "address {:#x}", addr);
        }
    }

    #[test]
    fn cache_stats_are_consistent(
        addrs in proptest::collection::vec(0u32..65536, 1..300),
        writes in proptest::collection::vec(any::<bool>(), 300),
    ) {
        let mut cache = CacheCore::new(&CacheConfig::lvc_2k());
        for (addr, w) in addrs.iter().zip(&writes) {
            if !cache.access(*addr, *w) {
                cache.fill(*addr, *w);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert_eq!(s.misses, s.fills);
        prop_assert!(s.writebacks <= s.fills);
        prop_assert!(s.miss_rate() >= 0.0 && s.miss_rate() <= 1.0);
    }

    #[test]
    fn lockup_free_cache_timing_is_sane(
        addrs in proptest::collection::vec(0u32..(1 << 20), 1..100)
    ) {
        let mut l2 = L2::new(L2Config::iscapaper_base());
        let mut cache = DataCache::new(CacheConfig::l1_32k(), L2Source::L1);
        for (now, addr) in (0u64..).zip(addrs) {
            let c = cache.access(now, 0x2000_0000 + addr, false, &mut l2);
            // Completion is causal and bounded below by the hit latency.
            prop_assert!(c.complete_at >= now + 2);
        }
    }

    #[test]
    fn port_meter_never_exceeds_budget(
        ports in 1u32..6,
        claims in proptest::collection::vec(0u64..50, 1..200),
    ) {
        let mut sorted = claims.clone();
        sorted.sort_unstable();
        let mut meter = PortMeter::new(ports);
        let mut per_cycle: HashMap<u64, u32> = HashMap::new();
        for cycle in sorted {
            if meter.try_claim(cycle) {
                *per_cycle.entry(cycle).or_insert(0) += 1;
            }
        }
        for (_, granted) in per_cycle {
            prop_assert!(granted <= ports);
        }
    }
}

// -------------------------------------------------------------- stats --

proptest! {
    #[test]
    fn histogram_quantiles_are_monotone(
        values in proptest::collection::vec(0u64..1000, 1..200)
    ) {
        let h: Histogram = values.iter().copied().collect();
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut last = 0;
        for q in qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
        prop_assert_eq!(h.samples(), values.len() as u64);
        // The mean lies within [min, max].
        let mean = h.mean().unwrap();
        prop_assert!(mean >= h.min().unwrap() as f64);
        prop_assert!(mean <= h.max().unwrap() as f64);
    }

    #[test]
    fn histogram_cdf_is_monotone_and_normalised(
        values in proptest::collection::vec(0u64..100, 1..100)
    ) {
        let h: Histogram = values.iter().copied().collect();
        let mut last = 0.0f64;
        for v in 0..100 {
            let c = h.cdf(v);
            prop_assert!(c >= last - 1e-12);
            last = c;
        }
        prop_assert!((h.cdf(u64::MAX) - 1.0).abs() < 1e-12);
    }
}

// ----------------------------------------------------- whole programs --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_programs_run_identically_on_vm_and_pipeline(
        seed in any::<u64>(),
        n_funcs in 1usize..4,
        body in 2u32..12,
    ) {
        use dda::program::{FunctionBuilder, ProgramBuilder};
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

        // Build a random but well-formed program: straight-line bodies of
        // ALU and stack/global memory operations plus calls down a chain.
        let mut builder = ProgramBuilder::new();
        let mut main = FunctionBuilder::new("main");
        main.addi(Gpr::SP, Gpr::SP, -32);
        if n_funcs > 1 {
            main.store_local(Gpr::RA, 0);
            main.call("f1");
            main.load_local(Gpr::RA, 0);
        }
        main.addi(Gpr::SP, Gpr::SP, 32);
        main.halt();
        builder.add_function(main);
        for f_idx in 1..n_funcs {
            let mut f = FunctionBuilder::with_frame(format!("f{f_idx}"), 32);
            f.addi(Gpr::SP, Gpr::SP, -32);
            f.store_local(Gpr::RA, 0);
            for _ in 0..body {
                match rng.gen_range(0..4) {
                    0 => {
                        let op = AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())];
                        f.alui(op, Gpr::T0, Gpr::T1, rng.gen_range(-8..8));
                    }
                    1 => {
                        f.store_local(Gpr::T0, rng.gen_range(1..8) * 4);
                    }
                    2 => {
                        f.load_local(Gpr::T1, rng.gen_range(1..8) * 4);
                    }
                    _ => {
                        f.load(
                            Gpr::T2,
                            Gpr::GP,
                            rng.gen_range(0..64) * 4,
                            MemWidth::Word,
                            StreamHint::NonLocal,
                        );
                    }
                }
            }
            if f_idx + 1 < n_funcs {
                f.call(format!("f{}", f_idx + 1));
            }
            f.load_local(Gpr::RA, 0);
            f.addi(Gpr::SP, Gpr::SP, 32);
            f.ret();
            builder.add_function(f);
        }
        let program = builder.build().unwrap();

        let mut vm = dda::vm::Vm::new(program.clone());
        let summary = vm.run(100_000).unwrap();
        prop_assert!(summary.halted);

        use dda::core::{MachineConfig, Simulator};
        for cfg in [
            MachineConfig::n_plus_m(2, 0),
            MachineConfig::n_plus_m(2, 2).with_optimizations(),
        ] {
            let r = Simulator::new(cfg).run(&program, 100_000).unwrap();
            prop_assert!(r.halted);
            prop_assert_eq!(r.committed, summary.executed);
        }
    }
}


// --------------------------------------------- timing vs architecture --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// The golden rule of a timing simulator: no machine configuration —
    /// widths, queue sizes, ports, latencies, optimizations, steering —
    /// may ever change *what* commits, only *when*.
    #[test]
    fn timing_configuration_never_changes_architecture(
        dispatch in 1u32..17,
        rob in 8usize..129,
        lsq in 4usize..65,
        n_ports in 1u32..5,
        m_ports in 0u32..4,
        l1_lat in 1u32..4,
        ff in any::<bool>(),
        combine in 1u32..5,
        steer_pick in 0u8..4,
    ) {
        use dda::core::{MachineConfig, Simulator, SteerPolicy};
        use dda::workloads::Benchmark;

        let mut cfg = MachineConfig::n_plus_m(n_ports, m_ports);
        cfg.dispatch_width = dispatch;
        cfg.issue_width = dispatch;
        cfg.commit_width = dispatch;
        cfg.rob_size = rob;
        cfg.lsq_size = lsq;
        cfg.decoupling.lvaq_size = lsq;
        cfg.hierarchy.l1.hit_latency = l1_lat;
        cfg.decoupling.fast_forwarding = ff;
        cfg.decoupling.combining_degree = combine;
        cfg.decoupling.steer = match steer_pick {
            0 => SteerPolicy::Oracle,
            1 => SteerPolicy::Hint,
            2 => SteerPolicy::SpBase,
            _ => SteerPolicy::Replicate,
        };

        let program = Benchmark::Perl.program(u32::MAX / 2);
        let budget = 5_000u64;
        let mut vm = dda::vm::Vm::new(program.clone());
        let mut executed = 0;
        for _ in 0..budget {
            match vm.step().unwrap() {
                Some(_) => executed += 1,
                None => break,
            }
        }
        let r = Simulator::new(cfg).run(&program, budget).unwrap();
        prop_assert_eq!(r.committed, executed);
        // Memory-traffic bookkeeping is conserved across any split.
        let mem_total = r.lsq.loads + r.lsq.stores + r.lvaq.loads + r.lvaq.stores;
        let oracle = Simulator::new(dda::core::MachineConfig::iscapaper_base())
            .run(&program, budget)
            .unwrap();
        prop_assert_eq!(mem_total, oracle.lsq.loads + oracle.lsq.stores);
    }
}


// ---------------------------------------------------------- assembler --

proptest! {
    /// Every instruction's disassembly re-parses to the same instruction
    /// (modulo the unary-FPU normalisation: `neg.d $f1, $f2` carries no
    /// second source, so `ft` reads back equal to `fs`).
    #[test]
    fn disassembly_reassembles(instr in arb_instr()) {
        use dda::program::assemble;
        let expected = match instr {
            Instr::Fpu { op, fd, fs, .. } if !op.is_binary() => {
                Instr::Fpu { op, fd, fs, ft: fs }
            }
            other => other,
        };
        let source = format!("main:\n    {instr}\n");
        let program = assemble(&source)
            .unwrap_or_else(|e| panic!("`{instr}` failed to assemble: {e}"));
        prop_assert_eq!(program.fetch(0), expected);
    }
}
