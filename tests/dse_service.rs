//! Wire-protocol gates for the DSE TCP service: greeting first, at
//! least one incremental `CELL` line before `DONE`, an all-hit second
//! connection against the same store, and a typed `ERR` for malformed
//! requests — all over a real socket, exactly as the binaries speak it.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use dda_bench::dse::serve;
use dda_bench::{DseService, ResultStore};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dda-dsesrv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One exchange: returns (hello, cell lines, final line).
fn exchange(addr: &str, request: &str) -> (String, Vec<String>, String) {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clones"));
    let mut out = stream;
    let mut hello = String::new();
    reader.read_line(&mut hello).expect("greeting arrives");
    writeln!(out, "{request}").expect("request sends");
    out.flush().expect("request flushes");
    let mut cells = Vec::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("line arrives") > 0,
            "server closed before DONE/ERR"
        );
        let line = line.trim_end().to_string();
        if line.starts_with("CELL ") {
            cells.push(line);
        } else if line.starts_with("DONE ") || line.starts_with("ERR ") {
            return (hello.trim_end().to_string(), cells, line);
        }
    }
}

fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{line:?} has no numeric {key}="))
}

#[test]
fn protocol_streams_cells_then_serves_hits() {
    let dir = temp_dir("proto");
    let svc = DseService::new(ResultStore::open(&dir).expect("store opens"), None);
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("has addr").to_string();
    let server = std::thread::spawn(move || serve(&listener, &svc, Some(3)));

    let request = "DSE v1 benches=compress,li grid=2+0,4+2 budget=3000";

    // Cold connection: greeting first, every cell streamed before DONE,
    // all misses.
    let (hello, cells, done) = exchange(&addr, request);
    assert!(
        hello.starts_with("HELLO dse v1 kernel="),
        "greeting was {hello:?}"
    );
    assert_eq!(cells.len(), 4, "2 benches x 2 grid points");
    assert!(
        cells.iter().all(|c| c.contains("status=miss")),
        "cold pass must miss: {cells:?}"
    );
    assert!(done.starts_with("DONE "), "final line was {done:?}");
    assert_eq!(field(&done, "cells"), 4);
    assert_eq!(field(&done, "misses"), 4);
    assert_eq!(field(&done, "errors"), 0);
    assert!(field(&done, "sim_insts") > 0);

    // Warm connection: identical request, every cell a hit, nothing
    // simulated.
    let (_, cells, done) = exchange(&addr, request);
    assert_eq!(cells.len(), 4);
    assert!(
        cells
            .iter()
            .all(|c| c.contains("status=hit") && c.contains(" sim=0")),
        "warm pass must hit: {cells:?}"
    );
    assert_eq!(field(&done, "hits"), 4);
    assert_eq!(field(&done, "sim_insts"), 0);

    // Malformed request: a typed ERR naming the problem, no cells.
    let (_, cells, err) = exchange(&addr, "DSE v1 grid=2+0");
    assert!(cells.is_empty());
    assert!(
        err.starts_with("ERR ") && err.contains("benches"),
        "error line was {err:?}"
    );

    server
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
