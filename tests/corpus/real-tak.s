main: frame 16
    addi  $sp, $sp, -16
    sw    $ra, 0($sp) !local
    li    $a0, 18
    li    $a1, 12
    li    $a2, 6
    jal   10
    sw    $v0, 24($gp) !nonlocal
    lw    $ra, 0($sp) !local
    addi  $sp, $sp, 16
    halt
tak: frame 32
    bge   $a1, $a0, 37
    addi  $sp, $sp, -32
    sw    $ra, 0($sp) !local
    sw    $a0, 4($sp) !local
    sw    $a1, 8($sp) !local
    sw    $a2, 12($sp) !local
    addi  $a0, $a0, -1
    jal   10
    sw    $v0, 16($sp) !local
    lw    $a0, 8($sp) !local
    addi  $a0, $a0, -1
    lw    $a1, 12($sp) !local
    lw    $a2, 4($sp) !local
    jal   10
    sw    $v0, 20($sp) !local
    lw    $a0, 12($sp) !local
    addi  $a0, $a0, -1
    lw    $a1, 4($sp) !local
    lw    $a2, 8($sp) !local
    jal   10
    or    $a2, $v0, $zero
    lw    $a0, 16($sp) !local
    lw    $a1, 20($sp) !local
    jal   10
    lw    $ra, 0($sp) !local
    addi  $sp, $sp, 32
    jr    $ra
    or    $v0, $a2, $zero
    jr    $ra
