# Minimized differential-fuzzing reproducer.
# campaign seed 51966, input 1 (preset stack_heavy, input seed 6306229426436461176)
# reduced 29 -> 3 instructions (43 probes, compacted)
# fast:      ok: 58 committed / 130 cycles, lsq 0+1 lvaq 12+9, port stalls l1 0 lvc 59, misclass 4
# reference: ok: 58 committed / 130 cycles, lsq 0+1 lvaq 12+9, port stalls l1 0 lvc 54, misclass 4
#
# Replay: tests/corpus_replay.rs asserts fast == reference on every
# file in tests/corpus/ under the (4+2) optimized machine.
main: frame 64
    addi  $sp, $sp, -64
    s.d   $f1, 40($sp) !local
    halt
