main: frame 32
    addi  $sp, $sp, -32
    sw    $ra, 0($sp) !local
    li    $t0, 536870912
    li    $t1, 536875520
    li    $t2, 0
    li    $t3, 7
    rem   $t4, $t2, $t3
    addi  $t4, $t4, 1
    mtc1d $f1, $t4
    s.d   $f1, 0($t0) !nonlocal
    addi  $t0, $t0, 8
    addi  $t2, $t2, 1
    blt   $t0, $t1, 6
    li    $t0, 536875520
    li    $t1, 536880128
    li    $t2, 0
    li    $t3, 5
    rem   $t4, $t2, $t3
    addi  $t4, $t4, 2
    mtc1d $f1, $t4
    s.d   $f1, 0($t0) !nonlocal
    addi  $t0, $t0, 8
    addi  $t2, $t2, 1
    blt   $t0, $t1, 17
    li    $s0, 536870912
    li    $s3, 536880128
    li    $s4, 536884736
    mtc1d $f20, $zero
    li    $s1, 536875520
    li    $s2, 536875712
    or    $a0, $s0, $zero
    or    $a1, $s1, $zero
    jal   44
    s.d   $f0, 0($s3) !nonlocal
    add.d $f20, $f20, $f0
    addi  $s3, $s3, 8
    addi  $s1, $s1, 8
    blt   $s1, $s2, 30
    addi  $s0, $s0, 192
    blt   $s3, $s4, 28
    s.d   $f20, 8($gp) !nonlocal
    lw    $ra, 0($sp) !local
    addi  $sp, $sp, 32
    halt
dot: frame 16
    addi  $sp, $sp, -16
    addi  $t0, $a0, 192
    sw    $t0, 0($sp) !local
    mtc1d $f0, $zero
    l.d   $f1, 0($a0) !nonlocal
    l.d   $f2, 0($a1) !nonlocal
    mul.d $f1, $f1, $f2
    add.d $f0, $f0, $f1
    addi  $a0, $a0, 8
    addi  $a1, $a1, 192
    lw    $t0, 0($sp) !local
    blt   $a0, $t0, 48
    addi  $sp, $sp, 16
    jr    $ra
