main: frame 16
    addi  $sp, $sp, -16
    sw    $ra, 0($sp) !local
    li    $t0, 536870912
    li    $t1, 536872960
    li    $s0, 24301
    li    $t2, 1103515245
    mul   $s0, $s0, $t2
    addi  $s0, $s0, 12345
    sw    $s0, 0($t0) !nonlocal
    addi  $t0, $t0, 4
    blt   $t0, $t1, 6
    li    $a0, 536870912
    li    $a1, 536872956
    jal   32
    li    $t0, 536870912
    li    $t1, 536872956
    li    $t5, 0
    li    $t6, 0
    lw    $t2, 0($t0) !nonlocal
    lw    $t3, 4($t0) !nonlocal
    add   $t6, $t6, $t2
    ble   $t2, $t3, 23
    addi  $t5, $t5, 1
    addi  $t0, $t0, 4
    blt   $t0, $t1, 18
    lw    $t3, 0($t0) !nonlocal
    add   $t6, $t6, $t3
    sw    $t5, 0($gp) !nonlocal
    sw    $t6, 4($gp) !nonlocal
    lw    $ra, 0($sp) !local
    addi  $sp, $sp, 16
    halt
qsort: frame 32
    bge   $a0, $a1, 68
    addi  $sp, $sp, -32
    sw    $ra, 0($sp) !local
    sw    $s0, 4($sp) !local
    sw    $s1, 8($sp) !local
    sw    $s2, 12($sp) !local
    or    $s0, $a0, $zero
    or    $s1, $a1, $zero
    lw    $t0, 0($s1) !nonlocal
    addi  $t1, $s0, -4
    or    $t2, $s0, $zero
    bge   $t2, $s1, 52
    lw    $t3, 0($t2) !nonlocal
    bgt   $t3, $t0, 50
    addi  $t1, $t1, 4
    lw    $t4, 0($t1) !nonlocal
    sw    $t3, 0($t1) !nonlocal
    sw    $t4, 0($t2) !nonlocal
    addi  $t2, $t2, 4
    j     43
    addi  $t1, $t1, 4
    lw    $t4, 0($t1) !nonlocal
    sw    $t4, 0($s1) !nonlocal
    sw    $t0, 0($t1) !nonlocal
    or    $s2, $t1, $zero
    or    $a0, $s0, $zero
    addi  $a1, $s2, -4
    jal   32
    addi  $a0, $s2, 4
    or    $a1, $s1, $zero
    jal   32
    lw    $ra, 0($sp) !local
    lw    $s0, 4($sp) !local
    lw    $s1, 8($sp) !local
    lw    $s2, 12($sp) !local
    addi  $sp, $sp, 32
    jr    $ra
