//! Checkpoint round-trip and resume bit-identity.
//!
//! The sampling/checkpoint machinery is only sound if restoration is
//! *transparent*: a detailed window started from a restored
//! [`dda::vm::Checkpoint`] must be bit-identical to the same window
//! reached by continuous simulation — architectural state, cycle counts,
//! cache statistics, and (the subtle one) the fault-injection RNG draw
//! order under an active [`FaultPlan`]. These tests enforce that
//! discipline end-to-end, through serialized bytes, not just in-memory
//! clones.

use std::sync::Arc;

use dda::core::{FaultPlan, MachineConfig, Simulator};
use dda::vm::{Checkpoint, Vm};
use dda::workloads::{Benchmark, RealWorkload};
use dda_bench::{
    config_fingerprint, program_fingerprint, sample_program, sample_program_stored,
    tags_from_checkpoint, CheckpointStore, Confidence, SamplingConfig,
};
use dda_mem::FunctionalWarmup;

fn faulty_machine() -> MachineConfig {
    MachineConfig::n_plus_m(4, 2)
        .with_optimizations()
        .with_fault_plan(FaultPlan {
            seed: 0xfab,
            flip_lvc_line: 0.01,
            flip_l1_line: 0.01,
            drop_port_grant: 0.02,
            delay_port_grant: 0.02,
            delay_cycles: 3,
            corrupt_forward: 0.005,
        })
}

/// Functional state must survive serialization exactly: registers, FP
/// bits, memory pages, `$sp` version, and the continuation itself.
#[test]
fn restored_vm_continues_bit_identically() {
    let program = Arc::new(Benchmark::Vortex.program(u32::MAX / 2));
    let (phash, chash) = (program_fingerprint(&program), 7);
    let mut cont = Vm::new(Arc::clone(&program));
    cont.fast_forward(25_000).unwrap();
    let ck = Checkpoint::from_bytes(&cont.checkpoint(phash, chash).to_bytes()).unwrap();
    let mut rest = Vm::restore(Arc::clone(&program), &ck).unwrap();
    assert_eq!(rest.instructions_executed(), 25_000);
    for n in [1u64, 999, 10_000] {
        cont.fast_forward(n).unwrap();
        rest.fast_forward(n).unwrap();
        assert_eq!(rest.pc(), cont.pc());
        assert_eq!(rest.sp_version(), cont.sp_version());
        assert_eq!(rest.instructions_executed(), cont.instructions_executed());
        for r in dda::isa::Gpr::all() {
            assert_eq!(rest.gpr(r), cont.gpr(r), "{r:?} diverged after +{n}");
        }
        for f in dda::isa::Fpr::all() {
            assert_eq!(
                rest.fpr(f).to_bits(),
                cont.fpr(f).to_bits(),
                "{f:?} diverged after +{n}"
            );
        }
        let pages: Vec<_> = cont.memory().resident_page_bytes().collect();
        let rpages: Vec<_> = rest.memory().resident_page_bytes().collect();
        assert_eq!(pages.len(), rpages.len());
        for ((ai, ab), (bi, bb)) in pages.iter().zip(&rpages) {
            assert_eq!(ai, bi, "page set diverged");
            assert_eq!(ab, bb, "page {ai} bytes diverged");
        }
    }
    // The translation-cache front-end is deterministic across restores:
    // two VMs from the same checkpoint report identical tcache stats.
    let mut r1 = Vm::restore(Arc::clone(&program), &ck).unwrap();
    let mut r2 = Vm::restore(Arc::clone(&program), &ck).unwrap();
    r1.fast_forward(20_000).unwrap();
    r2.fast_forward(20_000).unwrap();
    assert_eq!(r1.tcache_stats(), r2.tcache_stats());
}

/// The tentpole discipline: a detailed window from a restored checkpoint
/// equals the continuous-fast-forward window, [`dda::core::SimResult`]
/// for [`dda::core::SimResult`] — with fault injection armed, so the
/// fault-RNG draw order is part of the contract.
#[test]
fn resumed_window_is_bit_identical_even_under_faults() {
    for cfg in [
        MachineConfig::n_plus_m(4, 2).with_optimizations(),
        faulty_machine(),
    ] {
        let sim = Simulator::new(cfg.clone()).unwrap();
        let program = Arc::new(Benchmark::Li.program(u32::MAX / 2));
        let (phash, chash) = (program_fingerprint(&program), config_fingerprint(&cfg));
        let mut vm = Vm::new(Arc::clone(&program));
        let mut warm = FunctionalWarmup::new(&cfg.hierarchy);
        vm.fast_forward_observed(30_000, |d| {
            if let Some(m) = &d.mem {
                warm.touch(m.addr, m.is_store, m.is_local());
            }
        })
        .unwrap();
        let tags = warm.tags();
        let mut ck = vm.checkpoint(phash, chash);
        ck.cache_tags = Some(tags.to_bytes());
        let ck = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();

        let direct = sim.run_window(vm, Some(&tags), 2_000, 4_000).unwrap();
        let restored = Vm::restore(Arc::clone(&program), &ck).unwrap();
        let rtags = tags_from_checkpoint(&ck).unwrap().expect("tags survive");
        let resumed = sim
            .run_window(restored, Some(&rtags), 2_000, 4_000)
            .unwrap();
        assert_eq!(
            direct.total,
            resumed.total,
            "total drifted (faults = {})",
            !cfg.fault_plan.is_none()
        );
        assert_eq!(
            direct.window,
            resumed.window,
            "window drifted (faults = {})",
            !cfg.fault_plan.is_none()
        );
    }
}

/// The sampling driver resumes through an on-disk store without changing
/// a single measurement — under an active fault plan — so sweep workers
/// picking up checkpoints see exactly what a cold run would.
#[test]
fn sampling_through_a_store_is_transparent_under_faults() {
    let dir = std::env::temp_dir().join(format!("dda-ckpt-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).unwrap();
    let cfg = faulty_machine();
    let program = Arc::new(RealWorkload::Quicksort.program());
    let scfg = SamplingConfig {
        windows: 3,
        window_insts: 600,
        warmup_insts: 300,
        budget: 24_000,
        confidence: Confidence::C95,
        functional_warmup: true,
        ..SamplingConfig::for_budget(0)
    };
    let plain = sample_program(&cfg, Arc::clone(&program), &scfg).unwrap();
    let cold = sample_program_stored(&cfg, Arc::clone(&program), &scfg, Some(&store)).unwrap();
    let hot = sample_program_stored(&cfg, program, &scfg, Some(&store)).unwrap();
    for s in [&cold, &hot] {
        assert_eq!(s.windows.len(), plain.windows.len());
        for (x, y) in s.windows.iter().zip(&plain.windows) {
            assert_eq!(
                (x.start_inst, x.committed, x.cycles),
                (y.start_inst, y.committed, y.cycles)
            );
        }
    }
    assert_eq!(hot.fast_forwarded, 0, "hot store run still replayed");
    let _ = std::fs::remove_dir_all(&dir);
}
