//! Calibration regression tests: loose bounds on the workload statistics
//! the whole reproduction depends on (see EXPERIMENTS.md for the exact
//! paper targets). If a generator or preset change pushes a benchmark out
//! of these envelopes, the paper's figures stop reproducing — fail fast
//! here rather than in a 30-minute sweep.

use dda::vm::{StreamProfiler, Vm};
use dda::workloads::Benchmark;

const BUDGET: u64 = 300_000;

fn stats(b: Benchmark) -> dda::vm::StreamStats {
    let program = b.program(u32::MAX / 2);
    let mut vm = Vm::new(program.clone());
    let mut prof = StreamProfiler::new(&program);
    for _ in 0..BUDGET {
        match vm.step().unwrap() {
            Some(d) => prof.observe(&d),
            None => break,
        }
    }
    prof.into_stats()
}

#[test]
fn integer_average_local_fractions_track_the_paper() {
    // Paper Fig. 2: ~30 % of loads and ~48 % of stores are local on
    // average over SPECint.
    let mut ll = 0.0;
    let mut ls = 0.0;
    for b in Benchmark::INTEGER {
        let s = stats(b);
        ll += s.local_load_fraction();
        ls += s.local_store_fraction();
    }
    ll /= Benchmark::INTEGER.len() as f64;
    ls /= Benchmark::INTEGER.len() as f64;
    assert!(
        (0.22..=0.42).contains(&ll),
        "avg local-load fraction {ll:.3}"
    );
    assert!(
        (0.38..=0.60).contains(&ls),
        "avg local-store fraction {ls:.3}"
    );
}

#[test]
fn vortex_is_the_most_local_heavy_integer_program() {
    let vortex = stats(Benchmark::Vortex).local_mem_fraction();
    for b in Benchmark::INTEGER {
        if b != Benchmark::Vortex {
            assert!(
                stats(b).local_mem_fraction() <= vortex + 1e-9,
                "{b} out-localled vortex ({vortex:.3})"
            );
        }
    }
    assert!(vortex > 0.5, "vortex local share {vortex:.3}");
}

#[test]
fn compress_is_the_least_local_integer_program() {
    let compress = stats(Benchmark::Compress).local_mem_fraction();
    assert!(compress < 0.25, "compress local share {compress:.3}");
    for b in Benchmark::INTEGER {
        if b != Benchmark::Compress {
            assert!(
                stats(b).local_mem_fraction() >= compress - 1e-9,
                "{b} under-localled compress ({compress:.3})"
            );
        }
    }
}

#[test]
fn fp_programs_have_little_local_traffic() {
    for b in Benchmark::FLOAT {
        let f = stats(b).local_mem_fraction();
        assert!(f < 0.25, "{b}: local share {f:.3}");
    }
}

#[test]
fn memory_instruction_frequency_is_spec_like() {
    // Paper: ~40 % of instructions are memory references, program
    // dependent (Fig. 2 shows roughly 25–50 %).
    for b in Benchmark::ALL {
        let s = stats(b);
        let mem = s.mem_fraction();
        assert!((0.2..=0.55).contains(&mem), "{b}: memory fraction {mem:.3}");
        assert!(
            s.load_fraction() > s.store_fraction(),
            "{b}: stores outnumber loads"
        );
    }
}

#[test]
fn frames_are_small_and_calls_are_shallow_mostly() {
    // Paper Fig. 3 / §2.2.1: typical frames of a few words, typical call
    // depth 4–5 (deep recursive excursions excepted).
    for b in Benchmark::INTEGER {
        let s = stats(b);
        let p50 = s.frame_words.quantile(0.5).unwrap_or(0);
        assert!((1..=24).contains(&p50), "{b}: median frame {p50} words");
        assert!(s.calls > 100, "{b}: only {} calls", s.calls);
    }
}

#[test]
fn gcc_is_the_lvc_exception() {
    // Paper Fig. 6: a 2 KB LVC exceeds 99 % hit rate for everything
    // except 126.gcc.
    use dda::mem::{CacheConfig, CacheCore};
    let miss_rate = |b: Benchmark| {
        let program = b.program(u32::MAX / 2);
        let mut vm = Vm::new(program);
        let mut cache = CacheCore::new(&CacheConfig::lvc_2k());
        for _ in 0..1_000_000 {
            match vm.step().unwrap() {
                Some(d) => {
                    if let Some(m) = d.mem {
                        if m.is_local() && !cache.access(m.addr, m.is_store) {
                            cache.fill(m.addr, m.is_store);
                        }
                    }
                }
                None => break,
            }
        }
        cache.stats().miss_rate()
    };
    assert!(
        miss_rate(Benchmark::Gcc) > 0.01,
        "gcc must miss in a 2 KB LVC"
    );
    for b in [
        Benchmark::Vortex,
        Benchmark::Li,
        Benchmark::Compress,
        Benchmark::Go,
    ] {
        assert!(
            miss_rate(b) < 0.01,
            "{b} must exceed 99 % hit in a 2 KB LVC"
        );
    }
}
