//! Determinism regression tests.
//!
//! The incremental scheduler kernel (worklists, scan cursors, the event
//! wheel) must be a pure wall-clock optimization: repeated runs and the
//! rescan-per-cycle reference kernel must all produce the *full*
//! [`SimResult`] bit for bit — every counter, histogram and cache
//! statistic, not just IPC.

use std::sync::Arc;

use dda::core::{MachineConfig, SimResult, Simulator};
use dda::workloads::Benchmark;

const BUDGET: u64 = 40_000;

fn run(bench: Benchmark, cfg: &MachineConfig) -> SimResult {
    let program = bench.program(u32::MAX / 2);
    Simulator::new(cfg.clone())
        .unwrap()
        .run(&program, BUDGET)
        .expect("benchmark executes cleanly")
}

/// The machine configurations the paper's figures sweep most often.
fn configs() -> Vec<MachineConfig> {
    vec![
        MachineConfig::iscapaper_base(),
        MachineConfig::n_plus_m(2, 2),
        MachineConfig::n_plus_m(4, 2).with_optimizations(),
    ]
}

#[test]
fn repeated_runs_are_bit_identical() {
    for bench in [Benchmark::Compress, Benchmark::Li, Benchmark::Swim] {
        for cfg in configs() {
            let a = run(bench, &cfg);
            let b = run(bench, &cfg);
            assert_eq!(a, b, "{bench}: two identical runs diverged");
        }
    }
}

#[test]
fn shared_program_runs_match_owned_program_runs() {
    let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
    for bench in [Benchmark::Compress, Benchmark::Vortex] {
        let program = bench.program(u32::MAX / 2);
        let owned = Simulator::new(cfg.clone())
            .unwrap()
            .run(&program, BUDGET)
            .expect("runs");
        let shared = Simulator::new(cfg.clone())
            .unwrap()
            .run_shared(Arc::new(program), BUDGET)
            .expect("runs");
        assert_eq!(
            owned, shared,
            "{bench}: Arc-shared program changed the result"
        );
    }
}

#[test]
fn incremental_kernel_matches_reference_kernel() {
    for bench in [
        Benchmark::Compress,
        Benchmark::Li,
        Benchmark::Vortex,
        Benchmark::Tomcatv,
    ] {
        for mut cfg in configs() {
            cfg.reference_kernel = false;
            let fast = run(bench, &cfg);
            cfg.reference_kernel = true;
            let reference = run(bench, &cfg);
            assert_eq!(
                fast, reference,
                "{bench}: incremental kernel diverged from the reference kernel"
            );
        }
    }
}
