//! End-to-end tests of the text assembler: source → program → functional
//! execution → cycle-level simulation.

use dda::core::{MachineConfig, Simulator};
use dda::isa::Gpr;
use dda::program::assemble;
use dda::vm::Vm;

#[test]
fn assembled_gcd_computes_correctly() {
    let program = assemble(
        r"
# Euclid's algorithm: gcd(1071, 462) = 21, via repeated remainder.
main:
    li    $a0, 1071
    li    $a1, 462
.loop:
    beq   $a1, $zero, .done
    rem   $t0, $a0, $a1
    or    $a0, $a1, $zero
    or    $a1, $t0, $zero
    j     .loop
.done:
    or    $v0, $a0, $zero
    halt
",
    )
    .unwrap();
    let mut vm = Vm::new(program);
    assert!(vm.run(10_000).unwrap().halted);
    assert_eq!(vm.gpr(Gpr::V0), 21);
}

#[test]
fn assembled_recursion_balances_stack_and_simulates() {
    let program = assemble(
        r"
main:
    li    $a0, 8
    jal   fact
    halt

fact: frame 16
    li    $t0, 1
    bgt   $a0, $t0, .recurse
    li    $v0, 1
    jr    $ra
.recurse:
    addi  $sp, $sp, -16
    sw    $ra, 0($sp) !local
    sw    $a0, 4($sp) !local
    addi  $a0, $a0, -1
    jal   fact
    lw    $ra, 0($sp) !local
    lw    $a0, 4($sp) !local
    mul   $v0, $v0, $a0
    addi  $sp, $sp, 16
    jr    $ra
",
    )
    .unwrap();

    // Functional result.
    let mut vm = Vm::new(program.clone());
    assert!(vm.run(100_000).unwrap().halted);
    assert_eq!(vm.gpr(Gpr::V0), 40320);
    assert_eq!(vm.gpr(Gpr::SP) as u32, program.layout().stack_base());

    // The pipeline commits the same stream on unified and decoupled
    // machines, and the decoupled run steers the frame traffic to the
    // LVAQ.
    let unified = Simulator::new(MachineConfig::n_plus_m(2, 0))
        .unwrap()
        .run(&program, 100_000)
        .unwrap();
    let decoupled = Simulator::new(MachineConfig::n_plus_m(2, 2).with_optimizations())
        .unwrap()
        .run(&program, 100_000)
        .unwrap();
    assert_eq!(unified.committed, decoupled.committed);
    assert_eq!(unified.committed, vm.instructions_executed());
    assert!(decoupled.lvaq.stores > 0);
    assert_eq!(
        decoupled.lsq.stores, 0,
        "all stores in this program are local"
    );
}

#[test]
fn assembler_and_builder_agree() {
    // The same tiny program written both ways produces identical images.
    use dda::program::{FunctionBuilder, ProgramBuilder};

    let text = assemble(
        "main:\n    li $t0, 5\n    addi $t1, $t0, 2\n    sw $t1, 0($gp) !nonlocal\n    halt\n",
    )
    .unwrap();

    let mut f = FunctionBuilder::new("main");
    f.load_imm(Gpr::T0, 5);
    f.addi(Gpr::T1, Gpr::T0, 2);
    f.store(
        Gpr::T1,
        Gpr::GP,
        0,
        dda::isa::MemWidth::Word,
        dda::isa::StreamHint::NonLocal,
    );
    f.halt();
    let mut b = ProgramBuilder::new();
    b.add_function(f);
    let built = b.build().unwrap();

    assert_eq!(text.instrs(), built.instrs());
}

#[test]
fn listing_of_assembled_program_reassembles() {
    // Program::listing uses numeric targets, which the assembler accepts:
    // strip the listing decoration and re-assemble.
    let original = assemble(
        r"
main:
    li    $t0, 3
.top:
    addi  $t0, $t0, -1
    bne   $t0, $zero, .top
    halt
",
    )
    .unwrap();
    let mut source = String::new();
    for f in original.functions() {
        source.push_str(&format!("{}:\n", f.name));
        for pc in f.start..f.end {
            source.push_str(&format!("    {}\n", original.fetch(pc)));
        }
    }
    let reassembled = assemble(&source).unwrap();
    assert_eq!(original.instrs(), reassembled.instrs());
}
