//! Acceptance tests for the differential fuzzing campaign: a clean
//! seeded campaign finds nothing, the campaign is deterministic, the two
//! kernels agree on deliberately trapping inputs, and the planted
//! test-only kernel defect is caught, minimized to a handful of
//! instructions, and replayable from its rendered corpus entry.
//!
//! Budgets here are deliberately small — these run in debug CI; the
//! 500-program release campaign lives in `scripts/verify.sh` and
//! `BENCH_fuzz.json`.

use std::sync::Arc;

use dda::core::MachineConfig;
use dda::program::assemble;
use dda::program::fuzz::{derive_seed, fuzz_program, FuzzWeights};
use dda_bench::campaign::{
    corpus_entry_source, differential, diverges, run_campaign, CampaignConfig,
};

fn small_campaign(seed: u64, inputs: u32) -> CampaignConfig {
    let mut cc = CampaignConfig::new(seed, inputs);
    cc.budget = 1_500;
    cc.deadlock_window = 10_000;
    cc
}

#[test]
fn seeded_campaign_is_clean() {
    let r = run_campaign(&small_campaign(0xF00D, 12));
    assert_eq!(r.inputs, 12);
    assert!(
        r.clean(),
        "clean campaign found {} divergences / {} host panics",
        r.divergences.len(),
        r.host_panics
    );
    assert_eq!(r.unminimized(), 0);
    // Inputs must actually exercise the machine.
    assert!(r.completed > 0, "no input completed");
    assert!(r.coverage.op_classes_seen() >= 20, "coverage too thin");
    assert!(r.coverage.observed() > 1_000, "streams too short");
}

#[test]
fn campaign_is_deterministic() {
    let a = run_campaign(&small_campaign(0xD0_0D, 10));
    let b = run_campaign(&small_campaign(0xD0_0D, 10));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.trapped, b.trapped);
    assert_eq!(a.deadlocked, b.deadlocked);
    assert_eq!(a.invariant_violations, b.invariant_violations);
    assert_eq!(a.committed_total, b.committed_total);
    assert_eq!(a.coverage.op_classes_seen(), b.coverage.op_classes_seen());
    assert_eq!(
        a.coverage.edge_buckets_seen(),
        b.coverage.edge_buckets_seen()
    );
    assert_eq!(a.coverage.observed(), b.coverage.observed());
    assert_eq!(a.divergences.len(), b.divergences.len());
}

#[test]
fn kernels_agree_on_deliberate_trap_sites() {
    // The trapping preset plants misaligned / unmapped / overflowing
    // accesses; the fast and reference kernels must report the *same*
    // structured trap at the same commit point.
    let cfg = MachineConfig::n_plus_m(4, 2)
        .with_optimizations()
        .with_audit(true)
        .with_deadlock_window(10_000);
    let w = FuzzWeights::trapping();
    for k in 0..10u64 {
        let p = Arc::new(fuzz_program(derive_seed(0x7BA9, k), &w));
        let d = differential(&cfg, &p, 1_500);
        assert!(
            !d.panicked(),
            "trap input {k} escaped the typed error model"
        );
        assert!(d.agrees(), "kernels disagreed on trap input {k}");
    }
}

#[test]
fn planted_defect_is_caught_minimized_and_replayable() {
    // End-to-end self-test of the oracle + minimizer + corpus pipeline:
    // arm the test-only kernel defect, fuzz, and require that the bug is
    // (a) caught, (b) delta-debugged to a small reproducer, and (c) that
    // the rendered corpus entry re-assembles into a program that still
    // flips the oracle.
    let mut cc = small_campaign(0xDEFEC7, 24);
    cc.budget = 2_500;
    cc.plant_defect = true;
    let r = run_campaign(&cc);
    assert!(r.host_panics == 0, "{} host panics", r.host_panics);
    assert!(
        !r.divergences.is_empty(),
        "planted defect escaped a 24-input campaign"
    );
    assert_eq!(r.unminimized(), 0, "a divergence failed to minimize");

    let mut machine = cc.machine.clone().with_audit(true);
    machine.deadlock_cycles = cc.deadlock_window;
    machine.planted_defect = true;
    for d in &r.divergences {
        let min = d.minimized.as_ref().expect("minimized");
        assert!(
            min.instructions <= 20,
            "input {}: minimizer left {} instructions (wanted <= 20)",
            d.index,
            min.instructions
        );
        let src = corpus_entry_source(cc.seed, d).expect("corpus entry renders");
        let replay = assemble(&src).expect("corpus entry re-assembles");
        assert!(
            diverges(&machine, &Arc::new(replay), cc.budget),
            "input {}: replayed corpus entry no longer diverges",
            d.index
        );
    }
}
