//! Integration tests for the hardened runtime: typed configuration
//! errors, the deadlock watchdog's diagnostic dump, and the
//! fault-injection harness (containment, determinism, and the
//! non-interference of a [`FaultPlan::none`] build).

use dda::core::{ConfigError, FaultPlan, MachineConfig, SimError, Simulator};
use dda::workloads::Benchmark;

const BUDGET: u64 = 30_000;

fn program() -> dda::program::Program {
    Benchmark::Li.program(u32::MAX / 2)
}

/// A machine guaranteed to wedge: every memory-port grant is revoked, so
/// no load or store can ever launch and the watchdog must fire.
fn wedged_config() -> MachineConfig {
    let mut cfg = MachineConfig::n_plus_m(4, 2)
        .with_optimizations()
        .with_fault_plan(FaultPlan {
            drop_port_grant: 1.0,
            seed: 7,
            ..FaultPlan::none()
        });
    cfg.deadlock_cycles = 5_000;
    cfg
}

#[test]
fn invalid_configs_are_typed_errors_not_panics() {
    let mut cfg = MachineConfig::n_plus_m(2, 0);
    cfg.rob_size = 0;
    match Simulator::new(cfg) {
        Err(SimError::Config(ConfigError::ZeroRobSize)) => {}
        other => panic!("expected ZeroRobSize, got {other:?}"),
    }

    let cfg = MachineConfig::n_plus_m(2, 0).with_fault_plan(FaultPlan {
        flip_l1_line: 2.0,
        ..FaultPlan::none()
    });
    match Simulator::new(cfg) {
        Err(SimError::Config(ConfigError::FaultRateOutOfRange { field, .. })) => {
            assert_eq!(field, "flip_l1_line");
        }
        other => panic!("expected FaultRateOutOfRange, got {other:?}"),
    }

    let cfg = MachineConfig::n_plus_m(2, 0).with_fault_plan(FaultPlan {
        delay_port_grant: 0.5,
        delay_cycles: 0,
        ..FaultPlan::none()
    });
    match Simulator::new(cfg) {
        Err(SimError::Config(ConfigError::ZeroFaultDelay)) => {}
        other => panic!("expected ZeroFaultDelay, got {other:?}"),
    }
}

#[test]
fn wedged_machine_deadlocks_with_a_populated_dump() {
    let p = program();
    let err = Simulator::new(wedged_config())
        .unwrap()
        .run(&p, BUDGET)
        .unwrap_err();
    let SimError::Deadlock(dump) = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert_eq!(dump.watchdog_window, 5_000);
    assert!(dump.cycle >= 5_000);
    // The pipeline is genuinely wedged: the ROB is occupied, the head is
    // a stuck instruction, and the dump explains the stall.
    assert!(dump.rob_len > 0, "wedged ROB should not be empty");
    let head = dump.head.expect("wedged ROB has a head entry");
    assert!(
        !head.completed,
        "the head of a wedged pipeline cannot be complete"
    );
    assert!(
        !dump.recent_pcs.is_empty(),
        "some instructions retired before the wedge"
    );
    // The human rendering carries the occupancy numbers.
    let text = dump.to_string();
    assert!(
        text.contains("rob") && text.contains("recent retired pcs"),
        "{text}"
    );
}

#[test]
fn deadlock_dumps_are_deterministic_across_runs() {
    let p = program();
    let runs: Vec<_> = (0..3)
        .map(
            |_| match Simulator::new(wedged_config()).unwrap().run(&p, BUDGET) {
                Err(SimError::Deadlock(d)) => *d,
                other => panic!("expected Deadlock, got {other:?}"),
            },
        )
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "same config + seed must wedge identically"
    );
    assert_eq!(
        runs[1], runs[2],
        "same config + seed must wedge identically"
    );
}

#[test]
fn fault_free_plan_is_bit_identical_to_the_reference_kernel() {
    let p = program();
    let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
    let fast = Simulator::new(cfg.clone())
        .unwrap()
        .run(&p, BUDGET)
        .unwrap();
    let mut ref_cfg = cfg.clone();
    ref_cfg.reference_kernel = true;
    let reference = Simulator::new(ref_cfg).unwrap().run(&p, BUDGET).unwrap();
    assert_eq!(
        fast, reference,
        "FaultPlan::none must not perturb the kernel"
    );
    assert_eq!(fast.faults, Default::default(), "no injector, no counters");

    // The auditor is pure observation: enabling it changes nothing.
    let audited = Simulator::new(cfg.with_audit(true))
        .unwrap()
        .run(&p, BUDGET)
        .unwrap();
    assert_eq!(
        fast, audited,
        "the invariant auditor must not perturb results"
    );
}

#[test]
fn every_fault_class_is_contained_and_accounted() {
    let p = program();
    let none = FaultPlan::none();
    let classes = [
        (
            "lvc_flip",
            FaultPlan {
                flip_lvc_line: 0.05,
                ..none
            },
        ),
        (
            "l1_flip",
            FaultPlan {
                flip_l1_line: 0.05,
                ..none
            },
        ),
        (
            "drop_grant",
            FaultPlan {
                drop_port_grant: 0.05,
                ..none
            },
        ),
        (
            "delay_grant",
            FaultPlan {
                delay_port_grant: 0.05,
                delay_cycles: 8,
                ..none
            },
        ),
        (
            "corrupt_forward",
            FaultPlan {
                corrupt_forward: 0.2,
                ..none
            },
        ),
    ];
    for (name, plan) in classes {
        let cfg = MachineConfig::n_plus_m(4, 2)
            .with_optimizations()
            .with_audit(true)
            .with_fault_plan(FaultPlan { seed: 3, ..plan });
        let res = Simulator::new(cfg)
            .unwrap()
            .run(&p, BUDGET)
            .unwrap_or_else(|e| panic!("{name}: injection must be survivable, got {e}"));
        assert_eq!(
            res.committed, BUDGET,
            "{name}: the workload still completes"
        );
        assert!(
            res.faults.injected() > 0,
            "{name}: the class must actually fire"
        );
        // Every injected flip is accounted for: detected by a later
        // parity check, evicted before one, or still latent at the end.
        let flips = res.faults.l1_flips_injected + res.faults.lvc_flips_injected;
        assert_eq!(
            flips,
            res.faults.flips_detected + res.faults.flips_evicted + res.faults.flips_latent,
            "{name}: flip accounting must balance"
        );
        // A corrupted forward is always caught by the commit-time audit.
        assert_eq!(
            res.faults.forwards_corrupted, res.faults.forwards_detected,
            "{name}: corrupted forwards are caught at commit"
        );
    }
}

#[test]
fn injection_is_seed_deterministic() {
    let p = program();
    let plan = FaultPlan {
        seed: 11,
        flip_l1_line: 0.02,
        delay_port_grant: 0.05,
        delay_cycles: 4,
        ..FaultPlan::none()
    };
    let run = || {
        let cfg = MachineConfig::n_plus_m(4, 2)
            .with_optimizations()
            .with_fault_plan(plan);
        Simulator::new(cfg).unwrap().run(&p, BUDGET).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must inject identically");
    assert!(a.faults.injected() > 0);

    let other = {
        let cfg = MachineConfig::n_plus_m(4, 2)
            .with_optimizations()
            .with_fault_plan(FaultPlan { seed: 12, ..plan });
        Simulator::new(cfg).unwrap().run(&p, BUDGET).unwrap()
    };
    assert_ne!(
        a.faults, other.faults,
        "a different seed draws a different stream"
    );
}

#[test]
fn checked_harness_reports_structured_failures_per_run() {
    // A parallel sweep where one configuration is wedged: the checked
    // entry points degrade that run to an Err value and the good runs
    // still return results.
    let good = MachineConfig::n_plus_m(4, 2).with_optimizations();
    let results = dda_bench::run_configs_checked(Benchmark::Compress, &[good, wedged_config()]);
    assert_eq!(results.len(), 2);
    assert!(results[0].is_ok(), "the healthy config still simulates");
    assert!(
        matches!(results[1], Err(SimError::Deadlock(_))),
        "the wedged config degrades to a structured error"
    );
}
