//! Regression-corpus replay: every minimized reproducer checked into
//! `tests/corpus/` is re-assembled and rerun through both simulation
//! kernels on the recommended (4+2) optimized machine.
//!
//! Two guarantees per entry:
//!
//! 1. **Regression guard** — with no defect armed, the fast and
//!    reference kernels must agree on the entry. Each of these programs
//!    once exposed a divergence; this keeps them permanently in the
//!    oracle's path.
//! 2. **Reproducer fidelity** — entries named `planted-*` were minimized
//!    against the test-only planted kernel defect and must *still*
//!    diverge when that defect is armed: the corpus stays an honest
//!    witness, not a stale artifact.

use std::sync::Arc;

use dda::core::MachineConfig;
use dda::program::assemble;
use dda::workloads::RealWorkload;
use dda_bench::campaign::{differential, diverges};
use dda_bench::{sample_program, Confidence, SamplingConfig};

const BUDGET: u64 = 20_000;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_entries() -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let dir = corpus_dir();
    let rd = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()));
    for entry in rd {
        let entry = entry.expect("readable dir entry");
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("s") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        entries.push((name, src));
    }
    entries.sort();
    entries
}

fn machine() -> MachineConfig {
    MachineConfig::n_plus_m(4, 2)
        .with_optimizations()
        .with_audit(true)
        .with_deadlock_window(25_000)
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_entries().is_empty(),
        "tests/corpus/ holds no .s entries — the regression corpus went missing"
    );
}

#[test]
fn every_corpus_entry_replays_clean_without_the_defect() {
    for (name, src) in corpus_entries() {
        let program = assemble(&src).unwrap_or_else(|e| panic!("{name}: does not assemble: {e}"));
        let d = differential(&machine(), &Arc::new(program), BUDGET);
        assert!(
            !d.panicked(),
            "{name}: replay escaped the typed error model"
        );
        assert!(
            d.agrees(),
            "{name}: fast and reference kernels disagree — a fixed divergence regressed\n\
             (this entry was minimized from a real divergence; investigate before touching it)"
        );
    }
}

#[test]
fn real_entries_match_their_generators() {
    // The checked-in `real-*.s` files are generated artifacts
    // (`cargo run -p dda-workloads --example dump_real`); drift between
    // the source in `crates/workloads/src/real.rs` and the corpus would
    // silently fork what the oracle replays from what the tests verify.
    for w in RealWorkload::ALL {
        let path = corpus_dir().join(format!("{}.s", w.name()));
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing from corpus (rerun dump_real): {e}", w));
        let checked_in = assemble(&src).unwrap_or_else(|e| panic!("{w}: does not assemble: {e}"));
        assert_eq!(
            checked_in.instrs(),
            w.program().instrs(),
            "{w}: corpus entry is stale — rerun `cargo run -p dda-workloads --example dump_real`"
        );
    }
}

#[test]
fn real_workloads_run_under_the_sampling_driver() {
    let scfg = SamplingConfig {
        windows: 3,
        window_insts: 500,
        warmup_insts: 250,
        budget: 20_000,
        confidence: Confidence::C95,
        functional_warmup: true,
        ..SamplingConfig::for_budget(0)
    };
    for w in RealWorkload::ALL {
        let s = sample_program(&machine(), Arc::new(w.program()), &scfg)
            .unwrap_or_else(|e| panic!("{w}: sampling failed: {e}"));
        assert!(!s.windows.is_empty(), "{w}: no window measured");
        assert!(s.cpi.mean > 0.0, "{w}: degenerate CPI");
    }
}

#[test]
fn planted_entries_still_reproduce_their_defect() {
    let mut armed = machine();
    armed.planted_defect = true;
    let mut planted = 0;
    for (name, src) in corpus_entries() {
        if !name.starts_with("planted-") {
            continue;
        }
        planted += 1;
        let program = assemble(&src).unwrap_or_else(|e| panic!("{name}: does not assemble: {e}"));
        assert!(
            diverges(&armed, &Arc::new(program), BUDGET),
            "{name}: no longer reproduces the planted defect it was minimized against"
        );
    }
    assert!(planted > 0, "no planted-* entry in tests/corpus/");
}
