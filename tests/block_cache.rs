//! Differential tests for the basic-block translation cache: block replay
//! (`Vm::step_block`) must be observationally identical to the interpretive
//! front-end (`Vm::step`) — same `DynInst` stream, same final architectural
//! state, same `VmError` at the same pc — across randomized programs,
//! deliberate fault paths, stack-slot versioning, and fault-injected
//! pipeline runs (RNG draw order).

use std::sync::Arc;

use dda::core::{FaultPlan, MachineConfig, Simulator};
use dda::isa::{AluOp, Fpr, FpuOp, Gpr, MemWidth, StreamHint};
use dda::program::{FunctionBuilder, Program, ProgramBuilder};
use dda::stats::Rng;
use dda::vm::{DynInst, StreamProfiler, Vm, VmError};
use dda::workloads::Benchmark;

/// Safety net against generator bugs producing non-terminating programs.
const STEP_CAP: u64 = 2_000_000;

/// Drains a [`Vm`] through the interpretive front-end.
fn interp_run(program: &Arc<Program>, cap: u64) -> (Vec<DynInst>, Option<VmError>, Vm) {
    let mut vm = Vm::new(Arc::clone(program));
    let mut stream = Vec::new();
    let err = loop {
        if stream.len() as u64 >= cap {
            break None;
        }
        match vm.step() {
            Ok(Some(d)) => stream.push(d),
            Ok(None) => break None,
            Err(e) => break Some(e),
        }
    };
    (stream, err, vm)
}

/// Drains a [`Vm`] through the block-replay front-end.
fn replay_run(program: &Arc<Program>, cap: u64) -> (Vec<DynInst>, Option<VmError>, Vm) {
    let mut vm = Vm::new(Arc::clone(program));
    let mut stream = Vec::new();
    let mut ring = Vec::new();
    let err = loop {
        if stream.len() as u64 >= cap {
            break None;
        }
        ring.clear();
        let fault = vm.step_block(&mut ring);
        stream.extend(ring.iter().copied());
        if let Some(e) = fault {
            break Some(e);
        }
        if ring.is_empty() {
            break None;
        }
    };
    (stream, err, vm)
}

/// Asserts the two machines ended in the same architectural state. Memory
/// is compared at every address the committed stream touched (the sparse
/// store has no global equality, and untouched pages are zero in both).
fn assert_same_state(label: &str, a: &Vm, b: &Vm, stream: &[DynInst]) {
    assert_eq!(a.pc(), b.pc(), "{label}: final pc");
    assert_eq!(a.is_halted(), b.is_halted(), "{label}: halted flag");
    assert_eq!(
        a.instructions_executed(),
        b.instructions_executed(),
        "{label}: executed count"
    );
    assert_eq!(a.sp_version(), b.sp_version(), "{label}: sp_version");
    assert_eq!(a.call_depth(), b.call_depth(), "{label}: call depth");
    assert_eq!(
        a.max_call_depth(),
        b.max_call_depth(),
        "{label}: max call depth"
    );
    for i in 0..32u8 {
        let r = Gpr::new(i);
        assert_eq!(a.gpr(r), b.gpr(r), "{label}: gpr {i}");
        let f = Fpr::new(i);
        assert_eq!(
            a.fpr(f).to_bits(),
            b.fpr(f).to_bits(),
            "{label}: fpr {i} bit pattern"
        );
    }
    for d in stream {
        if let Some(m) = d.mem {
            for off in 0..m.bytes {
                let addr = m.addr.wrapping_add(off);
                assert_eq!(
                    a.memory().read_u8(addr),
                    b.memory().read_u8(addr),
                    "{label}: memory byte {addr:#x} (touched at pc {})",
                    d.pc
                );
            }
        }
    }
}

/// Runs both front-ends to completion and asserts full observational
/// equivalence: identical streams, identical error (or none), identical
/// final state. Returns the committed stream for further inspection.
fn assert_equivalent(label: &str, program: Program) -> Vec<DynInst> {
    let program = Arc::new(program);
    let (si, ei, vi) = interp_run(&program, STEP_CAP);
    let (sb, eb, vb) = replay_run(&program, STEP_CAP);
    assert!(
        (si.len() as u64) < STEP_CAP,
        "{label}: generator produced a runaway program"
    );
    assert_eq!(si.len(), sb.len(), "{label}: stream lengths differ");
    for (i, (x, y)) in si.iter().zip(&sb).enumerate() {
        assert_eq!(x, y, "{label}: DynInst #{i} differs");
    }
    assert_eq!(ei, eb, "{label}: VmError differs");
    assert_same_state(label, &vi, &vb, &si);
    si
}

// ---------------------------------------------------------------------------
// Randomized program generation
// ---------------------------------------------------------------------------

const SCRATCH: [Gpr; 14] = [
    Gpr::V0,
    Gpr::V1,
    Gpr::A0,
    Gpr::A1,
    Gpr::A2,
    Gpr::A3,
    Gpr::T0,
    Gpr::T1,
    Gpr::T2,
    Gpr::T3,
    Gpr::S0,
    Gpr::S1,
    Gpr::S2,
    Gpr::S3,
];

fn reg(rng: &mut Rng) -> Gpr {
    SCRATCH[rng.gen_range(0..SCRATCH.len())]
}

fn fpr(rng: &mut Rng) -> Fpr {
    Fpr::new(rng.gen_range(0u8..8))
}

/// Emits `n` random straight-line instructions into `f`. Local accesses
/// stay inside the `frame` bytes of the current frame; global accesses
/// stay inside the first 256 bytes of the global region.
fn random_body(f: &mut FunctionBuilder, rng: &mut Rng, frame: u32, n: usize) {
    for _ in 0..n {
        match rng.gen_range(0u32..12) {
            0 | 1 => {
                let op = AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())];
                f.alu(op, reg(rng), reg(rng), reg(rng));
            }
            2 => {
                let op = AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())];
                f.alui(op, reg(rng), reg(rng), rng.gen_range(-64i32..64));
            }
            3 => {
                f.load_imm(reg(rng), rng.gen_range(-1000i32..1000));
            }
            4 | 5 => {
                let slots = (frame / 4).max(1);
                f.store_local(reg(rng), 4 * rng.gen_range(0i32..slots as i32));
            }
            6 | 7 => {
                let slots = (frame / 4).max(1);
                f.load_local(reg(rng), 4 * rng.gen_range(0i32..slots as i32));
            }
            8 => {
                // Global word access, always 4-aligned, hint exercised.
                let off = 4 * rng.gen_range(0i32..64);
                let hint = [StreamHint::Unknown, StreamHint::NonLocal, StreamHint::Local]
                    [rng.gen_range(0usize..3)];
                if rng.gen_bool(0.5) {
                    f.store(reg(rng), Gpr::GP, off, MemWidth::Word, hint);
                } else {
                    f.load(reg(rng), Gpr::GP, off, MemWidth::Word, hint);
                }
            }
            9 => {
                // Sub-word accesses: bytes anywhere, halves 2-aligned.
                if rng.gen_bool(0.5) {
                    f.load(
                        reg(rng),
                        Gpr::GP,
                        rng.gen_range(0i32..256),
                        MemWidth::Byte,
                        StreamHint::NonLocal,
                    );
                } else {
                    f.store(
                        reg(rng),
                        Gpr::GP,
                        2 * rng.gen_range(0i32..128),
                        MemWidth::Half,
                        StreamHint::NonLocal,
                    );
                }
            }
            10 => {
                let op = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Mov][rng.gen_range(0usize..4)];
                f.fpu(op, fpr(rng), fpr(rng), fpr(rng));
            }
            _ => {
                if rng.gen_bool(0.5) {
                    f.int_to_fp(fpr(rng), reg(rng));
                } else {
                    f.fp_to_int(reg(rng), fpr(rng));
                }
            }
        }
    }
}

/// Builds a random terminating program: a main loop with random bodies,
/// conditional branches, and calls into one or two frame-owning helpers.
/// With `faulty`, the tail deliberately traps on one of the VM's error
/// paths so the differential run covers mid-block fault delivery.
fn random_program(rng: &mut Rng, faulty: bool) -> Program {
    let mut b = ProgramBuilder::new();

    // `with_frame` records metadata only: each function adjusts $sp
    // itself, exactly as the generated workloads do.
    let mut leaf = FunctionBuilder::with_frame("leaf", 64);
    leaf.addi(Gpr::SP, Gpr::SP, -64);
    let n = rng.gen_range(2usize..6);
    random_body(&mut leaf, rng, 64, n);
    leaf.addi(Gpr::SP, Gpr::SP, 64);
    leaf.ret();
    b.add_function(leaf);

    let mut helper = FunctionBuilder::with_frame("helper", 32);
    helper.addi(Gpr::SP, Gpr::SP, -32);
    let n = rng.gen_range(1usize..4);
    random_body(&mut helper, rng, 32, n);
    helper.call("leaf");
    let n = rng.gen_range(1usize..4);
    random_body(&mut helper, rng, 32, n);
    helper.addi(Gpr::SP, Gpr::SP, 32);
    helper.ret();
    b.add_function(helper);

    let mut main = FunctionBuilder::with_frame("main", 128);
    main.addi(Gpr::SP, Gpr::SP, -128);
    let iters = rng.gen_range(8i32..40);
    main.load_imm(Gpr::T9, iters);
    let top = main.new_label();
    let skip = main.new_label();
    main.bind(top);
    let n = rng.gen_range(4usize..12);
    random_body(&mut main, rng, 128, n);
    // A data-dependent forward branch so some blocks see both outcomes.
    main.alui(AluOp::And, Gpr::T8, Gpr::T9, 1);
    main.beqz(Gpr::T8, skip);
    match rng.gen_range(0u32..3) {
        0 => {
            main.call("leaf");
        }
        1 => {
            main.call("helper");
        }
        _ => {
            // Indirect call through a register, target taken from the
            // symbol table at build time (leaf sits at pc 0).
            main.load_imm(Gpr::T7, 0);
            main.call_reg(Gpr::T7);
        }
    }
    main.bind(skip);
    let n = rng.gen_range(2usize..6);
    random_body(&mut main, rng, 128, n);
    main.addi(Gpr::T9, Gpr::T9, -1);
    main.bnez(Gpr::T9, top);

    if faulty {
        match rng.gen_range(0u32..5) {
            0 => {
                // Misaligned word access inside the global region.
                main.load(Gpr::T0, Gpr::GP, 2, MemWidth::Word, StreamHint::Unknown);
            }
            1 => {
                // Unmapped address far below every region.
                main.load(Gpr::T0, Gpr::ZERO, 16, MemWidth::Word, StreamHint::Unknown);
            }
            2 => {
                // Return with no outstanding call.
                main.ret();
            }
            3 => {
                // Indirect call to a pc outside the image.
                main.load_imm(Gpr::T0, 1_000_000);
                main.call_reg(Gpr::T0);
            }
            _ => {
                // No halt: execution falls off the end of the image (main
                // is the last function), faulting PcOutOfRange on the
                // sequential-escape path.
            }
        }
    } else {
        main.halt();
    }
    b.add_function(main);
    b.entry("main");
    b.build().expect("generated program assembles")
}

// ---------------------------------------------------------------------------
// (a) Randomized differential replay vs. step
// ---------------------------------------------------------------------------

#[test]
fn randomized_programs_replay_identically() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xB10C << 8 | seed);
        let program = random_program(&mut rng, false);
        let stream = assert_equivalent(&format!("clean seed {seed}"), program);
        assert!(!stream.is_empty(), "seed {seed}: program committed nothing");
    }
}

#[test]
fn randomized_faulting_programs_trap_identically() {
    let mut faulted = 0u32;
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xFA17 << 8 | seed);
        let program = Arc::new(random_program(&mut rng, true));
        let (si, ei, vi) = interp_run(&program, STEP_CAP);
        let (sb, eb, vb) = replay_run(&program, STEP_CAP);
        assert_eq!(si, sb, "faulty seed {seed}: streams differ");
        assert_eq!(ei, eb, "faulty seed {seed}: VmError differs");
        assert_same_state(&format!("faulty seed {seed}"), &vi, &vb, &si);
        assert!(ei.is_some(), "faulty seed {seed}: program did not trap");
        faulted += 1;
    }
    assert_eq!(faulted, 24, "every faulty program must trap");
}

#[test]
fn preset_benchmarks_replay_identical_prefixes() {
    // Preset workloads run far past any test budget; compare a 60k-inst
    // prefix of both streams (the block front-end overshoots its last
    // block, so truncate to the interpreter's exact window).
    const WINDOW: u64 = 60_000;
    for bench in Benchmark::ALL {
        let program = Arc::new(bench.program(u32::MAX / 2));
        let (si, ei, _) = interp_run(&program, WINDOW);
        let (mut sb, eb, _) = replay_run(&program, WINDOW);
        sb.truncate(si.len());
        assert_eq!(si.len(), sb.len(), "{bench}: prefix lengths differ");
        for (i, (x, y)) in si.iter().zip(&sb).enumerate() {
            assert_eq!(x, y, "{bench}: DynInst #{i} differs");
        }
        assert_eq!(ei, None, "{bench}: interpreter faulted inside the window");
        assert_eq!(eb, None, "{bench}: block replay faulted inside the window");
    }
}

#[test]
fn mid_block_fault_leaves_pc_at_faulting_instruction() {
    // A block whose third op misaligns: the two leading ops must commit,
    // the machine must halt with pc parked at the faulting pc, exactly as
    // the interpreter leaves it.
    let mut main = FunctionBuilder::with_frame("main", 32);
    main.addi(Gpr::SP, Gpr::SP, -32);
    main.load_imm(Gpr::T0, 7);
    main.store_local(Gpr::T0, 0);
    main.load(Gpr::T1, Gpr::GP, 1, MemWidth::Word, StreamHint::Unknown); // misaligned
    main.halt();
    let mut b = ProgramBuilder::new();
    b.add_function(main);
    b.entry("main");
    let program = Arc::new(b.build().unwrap());

    let (si, ei, vi) = interp_run(&program, STEP_CAP);
    let (sb, eb, vb) = replay_run(&program, STEP_CAP);
    assert_eq!(si, sb);
    assert_eq!(si.len(), 3, "only the three leading ops commit");
    let global_base = program.layout().global_base();
    assert_eq!(
        ei,
        Some(VmError::Misaligned {
            pc: 3,
            addr: global_base + 1,
            bytes: 4
        })
    );
    assert_eq!(ei, eb);
    assert_eq!(
        vi.pc(),
        3,
        "interpreter parks pc at the faulting instruction"
    );
    assert_same_state("mid-block fault", &vi, &vb, &si);
    assert!(vb.is_halted());
}

// ---------------------------------------------------------------------------
// (b) sp_version stack-slot tags across call/return block boundaries
// ---------------------------------------------------------------------------

#[test]
fn stack_slot_tags_version_across_call_boundaries() {
    // main stores a local, calls f (which stores at the same static
    // offset), then stores again after the return. The three stores land
    // in different frames, so their (sp_version, offset) tags must all
    // differ even though the offset is identical — and block replay must
    // reproduce the interpreter's tags exactly.
    let mut f = FunctionBuilder::with_frame("f", 16);
    f.addi(Gpr::SP, Gpr::SP, -16);
    f.load_imm(Gpr::T1, 2);
    f.store_local(Gpr::T1, 0);
    f.addi(Gpr::SP, Gpr::SP, 16);
    f.ret();

    let mut main = FunctionBuilder::with_frame("main", 16);
    main.addi(Gpr::SP, Gpr::SP, -16);
    main.load_imm(Gpr::T0, 1);
    main.store_local(Gpr::T0, 0);
    main.call("f");
    main.load_imm(Gpr::T2, 3);
    main.store_local(Gpr::T2, 0);
    main.halt();

    let mut b = ProgramBuilder::new();
    b.add_function(f);
    b.add_function(main);
    b.entry("main");
    let stream = assert_equivalent("sp_version", b.build().unwrap());

    let slots: Vec<(u64, i32)> = stream
        .iter()
        .filter_map(|d| {
            d.mem
                .as_ref()
                .filter(|m| m.is_store)
                .and_then(|m| m.stack_slot)
        })
        .collect();
    assert_eq!(slots.len(), 3, "three frame stores commit");
    let offsets: Vec<i32> = slots.iter().map(|s| s.1).collect();
    assert_eq!(offsets, [0, 0, 0], "all three use the same static offset");
    // Prologue of main bumps sp once (v1); f's prologue bumps again (v2);
    // f's epilogue + return bumps back out (v3): three distinct tags.
    let versions: Vec<u64> = slots.iter().map(|s| s.0).collect();
    assert_eq!(versions, [1, 2, 3], "frames get distinct sp versions");
    assert_ne!(slots[0], slots[1], "caller/callee frames must not alias");
    assert_ne!(
        slots[1], slots[2],
        "callee/post-return frames must not alias"
    );
    assert_ne!(slots[0], slots[2], "pre/post-call frames must not alias");
}

// ---------------------------------------------------------------------------
// (c) fault-plan RNG draw order through the pipeline
// ---------------------------------------------------------------------------

#[test]
fn fault_plan_rng_draw_order_is_unchanged_by_block_replay() {
    // The fault injector draws from its own RNG per dispatched
    // instruction; if batching the front-end reordered or double-drew,
    // the injected-fault trace — and thus SimResult (incl. FaultStats) —
    // would diverge between the fast and reference kernels.
    let plan = FaultPlan {
        seed: 0xD1CE,
        flip_lvc_line: 0.02,
        flip_l1_line: 0.02,
        drop_port_grant: 0.02,
        delay_port_grant: 0.02,
        delay_cycles: 4,
        corrupt_forward: 0.05,
        ..FaultPlan::none()
    };
    for bench in [Benchmark::Compress, Benchmark::Li] {
        let program = bench.program(u32::MAX / 2);
        let cfg = MachineConfig::n_plus_m(4, 2)
            .with_optimizations()
            .with_fault_plan(plan);
        let mut ref_cfg = cfg.clone();
        ref_cfg.reference_kernel = true;
        let fast = Simulator::new(cfg).unwrap().run(&program, 30_000).unwrap();
        let reference = Simulator::new(ref_cfg)
            .unwrap()
            .run(&program, 30_000)
            .unwrap();
        assert_eq!(
            fast, reference,
            "{bench}: fault-plan RNG draw order changed under block replay"
        );
        assert_ne!(
            fast.faults,
            Default::default(),
            "{bench}: plan must actually inject"
        );
    }
}

// ---------------------------------------------------------------------------
// Profiler over the block stream
// ---------------------------------------------------------------------------

#[test]
fn profiler_sees_identical_stream_through_block_replay() {
    for bench in [Benchmark::Vortex, Benchmark::Li] {
        let program = bench.program(u32::MAX / 2);
        const WINDOW: usize = 40_000;

        let mut vi = Vm::new(program.clone());
        let mut pi = StreamProfiler::new(&program);
        for _ in 0..WINDOW {
            match vi.step().unwrap() {
                Some(d) => pi.observe(&d),
                None => break,
            }
        }

        let mut vb = Vm::new(program.clone());
        let mut pb = StreamProfiler::new(&program);
        let mut ring = Vec::new();
        let mut seen = 0usize;
        'outer: loop {
            ring.clear();
            if let Some(e) = vb.step_block(&mut ring) {
                panic!("{bench}: unexpected fault {e}");
            }
            if ring.is_empty() {
                break;
            }
            for d in &ring {
                pb.observe(d);
                seen += 1;
                if seen == WINDOW {
                    break 'outer;
                }
            }
        }
        assert_eq!(
            pi.stats(),
            pb.stats(),
            "{bench}: profile diverged under block replay"
        );
    }
}

// ---------------------------------------------------------------------------
// verify.sh --quick smoke entry points
// ---------------------------------------------------------------------------

#[test]
fn quick_smoke_loop_heavy() {
    // A tight counted loop with frame traffic: the block cache should
    // decode each block once and replay from cache nearly always.
    let mut main = FunctionBuilder::with_frame("main", 64);
    main.addi(Gpr::SP, Gpr::SP, -64);
    main.load_imm(Gpr::T9, 5_000);
    main.load_imm(Gpr::S0, 0);
    let top = main.new_label();
    main.bind(top);
    main.store_local(Gpr::S0, 0);
    main.load_local(Gpr::T0, 0);
    main.alu(AluOp::Add, Gpr::S0, Gpr::S0, Gpr::T0);
    main.alui(AluOp::And, Gpr::S0, Gpr::S0, 0xFFFF);
    main.addi(Gpr::T9, Gpr::T9, -1);
    main.bnez(Gpr::T9, top);
    main.halt();
    let mut b = ProgramBuilder::new();
    b.add_function(main);
    b.entry("main");
    let program = Arc::new(b.build().unwrap());

    let (si, ei, vi) = interp_run(&program, STEP_CAP);
    let (sb, eb, vb) = replay_run(&program, STEP_CAP);
    assert_eq!(si, sb, "loop-heavy: streams differ");
    assert_eq!(ei, None);
    assert_eq!(eb, None);
    assert_same_state("loop-heavy", &vi, &vb, &si);
    let stats = vb.tcache_stats();
    assert!(
        stats.blocks_decoded >= 2,
        "at least prologue + loop body blocks"
    );
    assert!(
        stats.hit_rate() > 0.99,
        "loop-heavy replay must run from cache (hit rate {})",
        stats.hit_rate()
    );
}

#[test]
fn quick_smoke_call_heavy() {
    // Call/return in a loop: exercises the dynamic successor cache (ret
    // targets) and sp_version churn across block boundaries.
    let mut leaf = FunctionBuilder::with_frame("leaf", 32);
    leaf.addi(Gpr::SP, Gpr::SP, -32);
    leaf.store_local(Gpr::A0, 0);
    leaf.load_local(Gpr::V0, 0);
    leaf.addi(Gpr::V0, Gpr::V0, 1);
    leaf.addi(Gpr::SP, Gpr::SP, 32);
    leaf.ret();

    let mut main = FunctionBuilder::with_frame("main", 32);
    main.addi(Gpr::SP, Gpr::SP, -32);
    main.load_imm(Gpr::T9, 3_000);
    main.load_imm(Gpr::A0, 0);
    let top = main.new_label();
    main.bind(top);
    main.call("leaf");
    main.mov(Gpr::A0, Gpr::V0);
    main.addi(Gpr::T9, Gpr::T9, -1);
    main.bnez(Gpr::T9, top);
    main.halt();
    let mut b = ProgramBuilder::new();
    b.add_function(leaf);
    b.add_function(main);
    b.entry("main");
    let program = Arc::new(b.build().unwrap());

    let (si, ei, vi) = interp_run(&program, STEP_CAP);
    let (sb, eb, vb) = replay_run(&program, STEP_CAP);
    assert_eq!(si, sb, "call-heavy: streams differ");
    assert_eq!(ei, None);
    assert_eq!(eb, None);
    assert_same_state("call-heavy", &vi, &vb, &si);
    assert_eq!(
        vi.gpr(Gpr::A0),
        3_000,
        "leaf increments its argument each call"
    );
    let stats = vb.tcache_stats();
    assert!(
        stats.hit_rate() > 0.99,
        "call-heavy replay must run from cache (hit rate {})",
        stats.hit_rate()
    );
}
