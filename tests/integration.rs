//! End-to-end integration tests spanning the whole stack: workload
//! generation → functional execution → cycle-level simulation.

use dda::core::{MachineConfig, Simulator, SteerPolicy};
use dda::vm::{StreamProfiler, Vm};
use dda::workloads::Benchmark;

const BUDGET: u64 = 40_000;

fn run(bench: Benchmark, cfg: MachineConfig) -> dda::core::SimResult {
    let program = bench.program(u32::MAX / 2);
    Simulator::new(cfg)
        .unwrap()
        .run(&program, BUDGET)
        .expect("benchmark executes cleanly")
}

#[test]
fn every_benchmark_commits_the_same_stream_on_every_machine() {
    for bench in Benchmark::ALL {
        let unified = run(bench, MachineConfig::n_plus_m(2, 0));
        let decoupled = run(bench, MachineConfig::n_plus_m(2, 2));
        let optimized = run(bench, MachineConfig::n_plus_m(3, 2).with_optimizations());
        assert_eq!(unified.committed, BUDGET, "{bench}");
        assert_eq!(decoupled.committed, BUDGET, "{bench}");
        assert_eq!(optimized.committed, BUDGET, "{bench}");
        // Total memory traffic is identical; only the queue split differs.
        let total =
            |r: &dda::core::SimResult| r.lsq.loads + r.lsq.stores + r.lvaq.loads + r.lvaq.stores;
        assert_eq!(total(&unified), total(&decoupled), "{bench}");
        assert_eq!(total(&decoupled), total(&optimized), "{bench}");
    }
}

#[test]
fn decoupled_split_matches_ground_truth_classification() {
    for bench in [Benchmark::Vortex, Benchmark::Compress, Benchmark::Swim] {
        let program = bench.program(u32::MAX / 2);
        // Profile the same instruction window the pipeline will commit.
        let mut vm = Vm::new(program.clone());
        let mut prof = StreamProfiler::new(&program);
        for _ in 0..BUDGET {
            match vm.step().unwrap() {
                Some(d) => prof.observe(&d),
                None => break,
            }
        }
        let s = prof.into_stats();
        let r = run(bench, MachineConfig::n_plus_m(2, 2));
        assert_eq!(r.lvaq.loads, s.local_loads, "{bench} local loads");
        assert_eq!(r.lvaq.stores, s.local_stores, "{bench} local stores");
        assert_eq!(
            r.lsq.loads,
            s.loads - s.local_loads,
            "{bench} non-local loads"
        );
        assert_eq!(
            r.lsq.stores,
            s.stores - s.local_stores,
            "{bench} non-local stores"
        );
    }
}

#[test]
fn ipc_is_monotone_in_l1_ports() {
    for bench in [Benchmark::Li, Benchmark::Vortex, Benchmark::Tomcatv] {
        let mut last = 0.0;
        for n in [1, 2, 4, 8] {
            let r = run(bench, MachineConfig::n_plus_m(n, 0));
            assert!(
                r.ipc() >= last * 0.999,
                "{bench}: IPC dropped from {last} at {n} ports ({})",
                r.ipc()
            );
            last = r.ipc();
        }
    }
}

#[test]
fn optimizations_never_change_architectural_work() {
    for bench in [Benchmark::Li, Benchmark::Gcc] {
        let plain = run(bench, MachineConfig::n_plus_m(3, 1));
        let opt = run(bench, MachineConfig::n_plus_m(3, 1).with_optimizations());
        assert_eq!(plain.committed, opt.committed);
        // Optimizations may only help.
        assert!(
            opt.cycles <= plain.cycles + plain.cycles / 50,
            "{bench}: optimized run slower ({} vs {})",
            opt.cycles,
            plain.cycles
        );
    }
}

#[test]
fn two_kb_lvc_achieves_high_hit_rates() {
    // Paper §4.2.1: over 99 % for all programs except 126.gcc.
    for bench in [Benchmark::Vortex, Benchmark::Li, Benchmark::Compress] {
        let r = run(bench, MachineConfig::n_plus_m(2, 2));
        let lvc = r.lvc.expect("decoupled machine has an LVC");
        if lvc.accesses() > 100 {
            assert!(
                lvc.miss_rate() < 0.03,
                "{bench}: LVC miss rate {:.2}%",
                100.0 * lvc.miss_rate()
            );
        }
    }
}

#[test]
fn steering_policies_agree_on_the_committed_stream() {
    let bench = Benchmark::Perl;
    let mk = |p: SteerPolicy| {
        let mut c = MachineConfig::n_plus_m(2, 2);
        c.decoupling.steer = p;
        c
    };
    let oracle = run(bench, mk(SteerPolicy::Oracle));
    let hint = run(bench, mk(SteerPolicy::Hint));
    let sp = run(bench, mk(SteerPolicy::SpBase));
    assert_eq!(oracle.committed, hint.committed);
    assert_eq!(oracle.committed, sp.committed);
    assert_eq!(oracle.misclassifications, 0);
    // The hybrid scheme mispredicts only while the 1-bit predictor warms
    // up on the ambiguous (Figure 4-style) accesses — the paper's 99.9 %
    // accuracy claim.
    assert!(
        hint.misclassifications * 1000 <= hint.lvaq.loads + hint.lvaq.stores,
        "hybrid scheme mispredicted {} times",
        hint.misclassifications
    );
    // Hardware-only $sp-base steering mispredicts every ambiguous access.
    assert!(sp.misclassifications >= hint.misclassifications);
    // Accesses always end up in the ground-truth queue regardless of
    // prediction, so the split is identical.
    assert_eq!(oracle.lvaq.loads, sp.lvaq.loads);
    assert_eq!(oracle.lvaq.stores, sp.lvaq.stores);
}

#[test]
fn l2_sees_less_traffic_with_an_lvc_on_conflict_heavy_programs() {
    // Paper §4.2.1: 130.li shows a considerable reduction.
    let without = run(Benchmark::Li, MachineConfig::n_plus_m(2, 0));
    let with = run(Benchmark::Li, MachineConfig::n_plus_m(2, 2));
    assert!(
        with.l2.requests() <= without.l2.requests(),
        "li: L2 traffic grew ({} -> {})",
        without.l2.requests(),
        with.l2.requests()
    );
}

#[test]
fn fp_benchmarks_barely_use_the_lvaq() {
    // Paper §4.3: local and non-local accesses are not interleaved in FP
    // programs; the LVAQ sees little traffic.
    for bench in [Benchmark::Swim, Benchmark::Mgrid] {
        let r = run(bench, MachineConfig::n_plus_m(2, 2));
        let local = r.lvaq.loads + r.lvaq.stores;
        let total = local + r.lsq.loads + r.lsq.stores;
        assert!(
            (local as f64) < 0.05 * total as f64,
            "{bench}: {local}/{total} local"
        );
    }
}

#[test]
fn deterministic_simulation() {
    let bench = Benchmark::Go;
    let a = run(bench, MachineConfig::n_plus_m(3, 2).with_optimizations());
    let b = run(bench, MachineConfig::n_plus_m(3, 2).with_optimizations());
    assert_eq!(a, b);
}

#[test]
fn functional_and_timing_instruction_counts_agree() {
    for bench in [Benchmark::Ijpeg, Benchmark::Su2cor] {
        let program = bench.program(u32::MAX / 2);
        let mut vm = Vm::new(program.clone());
        vm.run(BUDGET).unwrap();
        let r = Simulator::new(MachineConfig::iscapaper_base())
            .unwrap()
            .run(&program, BUDGET)
            .unwrap();
        assert_eq!(vm.instructions_executed(), r.committed, "{bench}");
    }
}
