//! Round-trip tests of the optional `serde` feature: machine
//! configurations and simulation results serialize to JSON and come back
//! identical, so experiment configs/results can be stored and diffed.

#![cfg(feature = "serde")]

use dda::core::{MachineConfig, Simulator, SteerPolicy};
use dda::workloads::Benchmark;

#[test]
fn machine_config_round_trips_through_json() {
    let mut cfg = MachineConfig::n_plus_m(3, 2).with_optimizations();
    cfg.decoupling.steer = SteerPolicy::SpBase;
    cfg.rob_size = 96;
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    assert!(json.contains("\"rob_size\": 96"));
    let back: MachineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn sim_result_round_trips_through_json() {
    let program = Benchmark::Compress.program(u32::MAX / 2);
    let result = Simulator::new(MachineConfig::n_plus_m(2, 2).with_optimizations())
        .run(&program, 20_000)
        .unwrap();
    let json = serde_json::to_string(&result).unwrap();
    let back: dda::core::SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result, back);
    assert_eq!(result.ipc(), back.ipc());
}

#[test]
fn edited_config_json_is_usable() {
    // The practical workflow: dump a config, tweak a field, feed it back.
    let cfg = MachineConfig::n_plus_m(2, 2);
    let mut v: serde_json::Value = serde_json::to_value(&cfg).unwrap();
    v["issue_width"] = 8.into();
    v["decoupling"]["combining_degree"] = 4.into();
    let back: MachineConfig = serde_json::from_value(v).unwrap();
    assert_eq!(back.issue_width, 8);
    assert_eq!(back.decoupling.combining_degree, 4);
    assert_eq!(back.validate(), Ok(()));
}
