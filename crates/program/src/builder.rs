//! Assembling programs: function-local labels, symbolic calls, linking.

use core::fmt;
use std::collections::BTreeMap;

use dda_isa::{AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, Instr, MemWidth, StreamHint};

use crate::layout::MemoryLayout;
use crate::program::{FunctionInfo, Program};

/// A function-local branch target handed out by
/// [`FunctionBuilder::new_label`] and later bound with
/// [`FunctionBuilder::bind`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(u32);

/// An error detected while assembling or linking a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A call referenced a function that was never added.
    UndefinedFunction {
        /// The calling function.
        caller: String,
        /// The missing callee.
        callee: String,
    },
    /// A label was used in a branch/jump but never bound.
    UnboundLabel {
        /// The function containing the unbound label.
        function: String,
    },
    /// A label was bound twice.
    LabelBoundTwice {
        /// The function containing the label.
        function: String,
    },
    /// The program has no functions.
    Empty,
    /// The requested entry function does not exist.
    MissingEntry(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateFunction(n) => write!(f, "duplicate function `{n}`"),
            BuildError::UndefinedFunction { caller, callee } => {
                write!(f, "function `{caller}` calls undefined function `{callee}`")
            }
            BuildError::UnboundLabel { function } => {
                write!(f, "function `{function}` has an unbound label")
            }
            BuildError::LabelBoundTwice { function } => {
                write!(f, "function `{function}` binds a label twice")
            }
            BuildError::Empty => write!(f, "program has no functions"),
            BuildError::MissingEntry(n) => write!(f, "entry function `{n}` not found"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds the body of one function, with local labels and symbolic calls.
///
/// All emitter methods append exactly one instruction and return the
/// builder for chaining-free sequential use. Control-flow targets inside
/// the function use [`Label`]s; calls name their callee and are resolved at
/// link time by [`ProgramBuilder::build`].
#[derive(Clone, Debug)]
pub struct FunctionBuilder {
    name: String,
    frame_bytes: u32,
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    // (instruction index, label) pairs whose branch/jump target is the label.
    label_fixups: Vec<(usize, Label)>,
    // (instruction index, callee name) pairs for direct calls.
    call_fixups: Vec<(usize, String)>,
}

impl FunctionBuilder {
    /// Starts a function with a zero-byte frame.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder::with_frame(name, 0)
    }

    /// Starts a function declaring a static frame of `frame_bytes` bytes.
    ///
    /// The frame size is metadata (it feeds the static frame statistics of
    /// the paper's §2.2.1); the builder does not emit the `$sp` adjustment
    /// itself — prologue/epilogue code is the caller's responsibility, as
    /// it is for a real compiler.
    pub fn with_frame(name: impl Into<String>, frame_bytes: u32) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            frame_bytes,
            instrs: Vec::new(),
            labels: Vec::new(),
            label_fixups: Vec::new(),
            call_fixups: Vec::new(),
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Declared static frame size in bytes.
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// The instructions emitted so far (branch/call targets still
    /// unresolved — they are fixed up at link time).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Creates a label and binds it to the next instruction in one step —
    /// the common "target is right here" case in generated code.
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Appends an arbitrary instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// `rd = op(rs, rt)`.
    pub fn alu(&mut self, op: AluOp, rd: Gpr, rs: Gpr, rt: Gpr) -> &mut Self {
        self.push(Instr::Alu { op, rd, rs, rt })
    }

    /// `rd = op(rs, imm)`.
    pub fn alui(&mut self, op: AluOp, rd: Gpr, rs: Gpr, imm: i32) -> &mut Self {
        self.push(Instr::AluImm { op, rd, rs, imm })
    }

    /// `rd = rs + imm` — the ubiquitous `addi`.
    pub fn addi(&mut self, rd: Gpr, rs: Gpr, imm: i32) -> &mut Self {
        self.alui(AluOp::Add, rd, rs, imm)
    }

    /// `rd = imm`.
    pub fn load_imm(&mut self, rd: Gpr, imm: i32) -> &mut Self {
        self.push(Instr::LoadImm { rd, imm })
    }

    /// `rd = rs` (encoded as `or rd, rs, $zero`).
    pub fn mov(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.alu(AluOp::Or, rd, rs, Gpr::ZERO)
    }

    /// `fd = op(fs, ft)`.
    pub fn fpu(&mut self, op: FpuOp, fd: Fpr, fs: Fpr, ft: Fpr) -> &mut Self {
        self.push(Instr::Fpu { op, fd, fs, ft })
    }

    /// `rd = cond(fs, ft) as i32`.
    pub fn fp_cmp(&mut self, cond: FpCond, rd: Gpr, fs: Fpr, ft: Fpr) -> &mut Self {
        self.push(Instr::FpCmp { cond, rd, fs, ft })
    }

    /// `fd = rs as f64`.
    pub fn int_to_fp(&mut self, fd: Fpr, rs: Gpr) -> &mut Self {
        self.push(Instr::IntToFp { fd, rs })
    }

    /// `rd = fs as i32`.
    pub fn fp_to_int(&mut self, rd: Gpr, fs: Fpr) -> &mut Self {
        self.push(Instr::FpToInt { rd, fs })
    }

    /// Integer load with an explicit stream hint.
    pub fn load(
        &mut self,
        rd: Gpr,
        base: Gpr,
        offset: i32,
        width: MemWidth,
        hint: StreamHint,
    ) -> &mut Self {
        self.push(Instr::Load {
            rd,
            base,
            offset,
            width,
            hint,
        })
    }

    /// Integer store with an explicit stream hint.
    pub fn store(
        &mut self,
        rs: Gpr,
        base: Gpr,
        offset: i32,
        width: MemWidth,
        hint: StreamHint,
    ) -> &mut Self {
        self.push(Instr::Store {
            rs,
            base,
            offset,
            width,
            hint,
        })
    }

    /// Word load from the stack frame, hinted local.
    pub fn load_local(&mut self, rd: Gpr, offset: i32) -> &mut Self {
        self.load(rd, Gpr::SP, offset, MemWidth::Word, StreamHint::Local)
    }

    /// Word store to the stack frame, hinted local.
    pub fn store_local(&mut self, rs: Gpr, offset: i32) -> &mut Self {
        self.store(rs, Gpr::SP, offset, MemWidth::Word, StreamHint::Local)
    }

    /// FP (8-byte) load with an explicit stream hint.
    pub fn fload(&mut self, fd: Fpr, base: Gpr, offset: i32, hint: StreamHint) -> &mut Self {
        self.push(Instr::FLoad {
            fd,
            base,
            offset,
            hint,
        })
    }

    /// FP (8-byte) store with an explicit stream hint.
    pub fn fstore(&mut self, fs: Fpr, base: Gpr, offset: i32, hint: StreamHint) -> &mut Self {
        self.push(Instr::FStore {
            fs,
            base,
            offset,
            hint,
        })
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if `label` was created by a different builder (index out of
    /// range). Binding the same label twice is reported by
    /// [`ProgramBuilder::build`] as [`BuildError::LabelBoundTwice`].
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            // Mark the double bind with a sentinel; surfaced at build time.
            *slot = Some(u32::MAX);
        } else {
            *slot = Some(self.instrs.len() as u32);
        }
        self
    }

    /// Conditional branch to a local label.
    pub fn branch(&mut self, cond: BranchCond, rs: Gpr, rt: Gpr, label: Label) -> &mut Self {
        self.label_fixups.push((self.instrs.len(), label));
        self.push(Instr::Branch {
            cond,
            rs,
            rt,
            target: u32::MAX,
        })
    }

    /// Branch if `rs != 0` (compared against `$zero`).
    pub fn bnez(&mut self, rs: Gpr, label: Label) -> &mut Self {
        self.branch(BranchCond::Ne, rs, Gpr::ZERO, label)
    }

    /// Branch if `rs == 0`.
    pub fn beqz(&mut self, rs: Gpr, label: Label) -> &mut Self {
        self.branch(BranchCond::Eq, rs, Gpr::ZERO, label)
    }

    /// Unconditional jump to a local label.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.label_fixups.push((self.instrs.len(), label));
        self.push(Instr::Jump { target: u32::MAX })
    }

    /// Direct call to a named function (resolved at link time).
    pub fn call(&mut self, callee: impl Into<String>) -> &mut Self {
        self.call_fixups.push((self.instrs.len(), callee.into()));
        self.push(Instr::Call { target: u32::MAX })
    }

    /// Indirect call through `rs`.
    pub fn call_reg(&mut self, rs: Gpr) -> &mut Self {
        self.push(Instr::CallReg { rs })
    }

    /// Return to `$ra`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instr::Ret)
    }

    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }
}

/// Links [`FunctionBuilder`]s into a [`Program`].
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<FunctionBuilder>,
    layout: Option<MemoryLayout>,
    entry: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder with the [`MemoryLayout::standard`] layout.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Overrides the data-memory layout.
    pub fn layout(&mut self, layout: MemoryLayout) -> &mut Self {
        self.layout = Some(layout);
        self
    }

    /// Selects the entry function by name (default: `main` if present,
    /// otherwise the first function added).
    pub fn entry(&mut self, name: impl Into<String>) -> &mut Self {
        self.entry = Some(name.into());
        self
    }

    /// Adds a finished function. Functions are laid out in insertion order.
    pub fn add_function(&mut self, f: FunctionBuilder) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Links all functions into a program image.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for duplicate function names, calls to
    /// undefined functions, unbound or doubly bound labels, an empty
    /// program, or a missing entry function.
    pub fn build(&self) -> Result<Program, BuildError> {
        if self.functions.is_empty() {
            return Err(BuildError::Empty);
        }

        // Assign bases and build the symbol table.
        let mut symbols = BTreeMap::new();
        let mut base = 0u32;
        let mut infos = Vec::with_capacity(self.functions.len());
        for f in &self.functions {
            if symbols.insert(f.name.clone(), base).is_some() {
                return Err(BuildError::DuplicateFunction(f.name.clone()));
            }
            let end = base + f.instrs.len() as u32;
            infos.push(FunctionInfo {
                name: f.name.clone(),
                start: base,
                end,
                frame_bytes: f.frame_bytes,
            });
            base = end;
        }

        // Emit and fix up.
        let mut instrs = Vec::with_capacity(base as usize);
        for (f, info) in self.functions.iter().zip(&infos) {
            let func_base = info.start;
            let mut body: Vec<Instr> = f.instrs.clone();
            for &(idx, label) in &f.label_fixups {
                let off = f.labels[label.0 as usize].ok_or_else(|| BuildError::UnboundLabel {
                    function: f.name.clone(),
                })?;
                if off == u32::MAX {
                    return Err(BuildError::LabelBoundTwice {
                        function: f.name.clone(),
                    });
                }
                let target = func_base + off;
                match &mut body[idx] {
                    Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                    other => unreachable!("label fixup on non-branch {other:?}"),
                }
            }
            // Detect double binds even if the label is never referenced.
            if f.labels.contains(&Some(u32::MAX)) {
                return Err(BuildError::LabelBoundTwice {
                    function: f.name.clone(),
                });
            }
            for (idx, callee) in &f.call_fixups {
                let target = *symbols
                    .get(callee)
                    .ok_or_else(|| BuildError::UndefinedFunction {
                        caller: f.name.clone(),
                        callee: callee.clone(),
                    })?;
                match &mut body[*idx] {
                    Instr::Call { target: t } => *t = target,
                    other => unreachable!("call fixup on non-call {other:?}"),
                }
            }
            instrs.extend(body);
        }

        // Resolve the entry point.
        let entry = match &self.entry {
            Some(name) => *symbols
                .get(name)
                .ok_or_else(|| BuildError::MissingEntry(name.clone()))?,
            None => symbols.get("main").copied().unwrap_or(infos[0].start),
        };

        Ok(Program {
            instrs,
            entry,
            layout: self.layout.unwrap_or_default(),
            functions: infos,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_within_function() {
        let mut f = FunctionBuilder::new("loop");
        let top = f.new_label();
        let done = f.new_label();
        f.load_imm(Gpr::T0, 3);
        f.bind(top);
        f.beqz(Gpr::T0, done);
        f.addi(Gpr::T0, Gpr::T0, -1);
        f.jump(top);
        f.bind(done);
        f.halt();
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(1),
            Instr::Branch {
                cond: BranchCond::Eq,
                rs: Gpr::T0,
                rt: Gpr::ZERO,
                target: 4,
            }
        );
        assert_eq!(p.fetch(3), Instr::Jump { target: 1 });
    }

    #[test]
    fn calls_resolve_across_functions() {
        let mut main = FunctionBuilder::new("main");
        main.call("callee");
        main.halt();
        let mut callee = FunctionBuilder::new("callee");
        callee.ret();
        let mut b = ProgramBuilder::new();
        b.add_function(main);
        b.add_function(callee);
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0), Instr::Call { target: 2 });
    }

    #[test]
    fn second_function_labels_offset_by_base() {
        let mut first = FunctionBuilder::new("first");
        first.halt();
        let mut second = FunctionBuilder::new("second");
        let l = second.new_label();
        second.nop();
        second.bind(l);
        second.jump(l);
        let mut b = ProgramBuilder::new();
        b.add_function(first);
        b.add_function(second);
        let p = b.build().unwrap();
        assert_eq!(p.fetch(2), Instr::Jump { target: 2 });
    }

    #[test]
    fn undefined_call_is_an_error() {
        let mut main = FunctionBuilder::new("main");
        main.call("ghost");
        let mut b = ProgramBuilder::new();
        b.add_function(main);
        assert_eq!(
            b.build(),
            Err(BuildError::UndefinedFunction {
                caller: "main".into(),
                callee: "ghost".into()
            })
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        let l = f.new_label();
        f.jump(l);
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        assert_eq!(
            b.build(),
            Err(BuildError::UnboundLabel {
                function: "main".into()
            })
        );
    }

    #[test]
    fn double_bind_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        let l = f.new_label();
        f.bind(l);
        f.nop();
        f.bind(l);
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        assert_eq!(
            b.build(),
            Err(BuildError::LabelBoundTwice {
                function: "main".into()
            })
        );
    }

    #[test]
    fn duplicate_function_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.add_function(FunctionBuilder::new("f"));
        b.add_function(FunctionBuilder::new("f"));
        assert_eq!(b.build(), Err(BuildError::DuplicateFunction("f".into())));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(ProgramBuilder::new().build(), Err(BuildError::Empty));
    }

    #[test]
    fn entry_defaults_to_main_then_first() {
        let mut b = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("start_here");
        f.halt();
        b.add_function(f);
        assert_eq!(b.build().unwrap().entry(), 0);

        let mut b = ProgramBuilder::new();
        let mut pre = FunctionBuilder::new("pre");
        pre.ret();
        let mut main = FunctionBuilder::new("main");
        main.halt();
        b.add_function(pre);
        b.add_function(main);
        assert_eq!(b.build().unwrap().entry(), 1);
    }

    #[test]
    fn explicit_entry_is_honoured_and_validated() {
        let mut b = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("f");
        f.halt();
        b.add_function(f);
        b.entry("f");
        assert_eq!(b.build().unwrap().entry(), 0);
        b.entry("nope");
        assert_eq!(b.build(), Err(BuildError::MissingEntry("nope".into())));
    }

    #[test]
    fn convenience_emitters_encode_expected_instructions() {
        let mut f = FunctionBuilder::new("f");
        f.mov(Gpr::T0, Gpr::T1);
        f.store_local(Gpr::T0, 8);
        f.load_local(Gpr::T2, 8);
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.instrs[0],
            Instr::Alu {
                op: AluOp::Or,
                rd: Gpr::T0,
                rs: Gpr::T1,
                rt: Gpr::ZERO
            }
        );
        assert!(matches!(
            f.instrs[1],
            Instr::Store {
                hint: StreamHint::Local,
                ..
            }
        ));
        assert!(matches!(
            f.instrs[2],
            Instr::Load {
                hint: StreamHint::Local,
                ..
            }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuildError::UndefinedFunction {
            caller: "a".into(),
            callee: "b".into(),
        };
        assert_eq!(e.to_string(), "function `a` calls undefined function `b`");
        assert_eq!(BuildError::Empty.to_string(), "program has no functions");
    }
}
