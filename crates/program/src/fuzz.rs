//! Seeded generative program fuzzing.
//!
//! Three layers, all deterministic under a seed:
//!
//! 1. **Generation** — [`fuzz_program`] emits a random but *well-formed*
//!    program from a [`FuzzWeights`] table: bounded loops, calls down a
//!    DAG with varied frame sizes (plus an optional counter-bounded
//!    recursive function), `$sp`-relative and *computed* stack addresses
//!    (the ambiguous stack-pointing accesses decoupled designs are most
//!    fragile on), deliberately wrong stream hints, FP mixes, and — when
//!    the weight table asks for them — deliberate trap sites.
//! 2. **Mutation** — [`mutate`] perturbs an existing program (op
//!    substitution, hint rotation, immediate/offset jitter, matched
//!    frame-size jitter, block splicing) while preserving structural
//!    well-formedness: the image length never changes and every static
//!    control target stays inside the image. Mutants may *trap* — that is
//!    fine, both simulation kernels must trap identically.
//! 3. **Reduction support** — [`nop_range`], [`compact`] and
//!    [`active_len`] are the primitives a delta-debugging minimizer needs:
//!    nop-ing keeps the pc layout (so every control target stays valid),
//!    and compaction strips the accumulated nops with a monotone pc remap
//!    once the reducer has converged.
//!
//! "Well-formed" here means: the program links, every statically visible
//! control target is inside the image, every loop is counter-bounded, and
//! recursion depth is bounded. It does *not* mean trap-free — a program
//! that traps is a valid differential-fuzzing input as long as both
//! kernels report the identical trap.

use dda_isa::{AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, Instr, MemWidth, StreamHint};
use dda_stats::Rng;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::program::Program;

/// Weight table steering [`fuzz_program`] toward regions of the ISA.
///
/// Each field is a relative weight for one *segment kind* (a segment is
/// one to a handful of instructions). Weights are relative to each other;
/// a zero weight disables the kind. Campaigns rotate through
/// [`FuzzWeights::presets`] so every region gets attention.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuzzWeights {
    /// Three-register ALU operations.
    pub alu: u32,
    /// Immediate ALU operations.
    pub alu_imm: u32,
    /// Immediate loads (constants, occasionally extreme values).
    pub load_imm: u32,
    /// FP arithmetic, compares and int<->fp conversions.
    pub fp: u32,
    /// `$sp`-relative loads/stores hinted local (word and FP double).
    pub local_mem: u32,
    /// Stack accesses through a *computed* base register (`$k0 = $sp +
    /// off` then access through `$k0`, hint `Unknown`) — ambiguous
    /// stack-pointing accesses the steering logic cannot see statically.
    pub computed_mem: u32,
    /// Memory accesses carrying a deliberately wrong stream hint (stack
    /// access hinted non-local, global access hinted local) to stress the
    /// misclassification-recovery path.
    pub wrong_hint_mem: u32,
    /// `$gp`-relative and heap accesses hinted non-local.
    pub global_mem: u32,
    /// Sub-word (byte/halfword) accesses to the global region.
    pub narrow_mem: u32,
    /// Short forward conditional branches.
    pub branch: u32,
    /// Counter-bounded loops (nesting up to two deep).
    pub loops: u32,
    /// Calls down the function DAG (including the bounded-recursion
    /// helper when present).
    pub call: u32,
    /// Deliberate trap sites: misaligned access, unmapped access, stack
    /// overflow through `$sp`, illegal indirect-call target. Zero in
    /// every preset except [`FuzzWeights::trapping`].
    pub trap_site: u32,
}

impl FuzzWeights {
    /// A bit of everything — the default campaign mix.
    pub fn balanced() -> FuzzWeights {
        FuzzWeights {
            alu: 20,
            alu_imm: 14,
            load_imm: 10,
            fp: 8,
            local_mem: 16,
            computed_mem: 8,
            wrong_hint_mem: 4,
            global_mem: 10,
            narrow_mem: 4,
            branch: 6,
            loops: 6,
            call: 8,
            trap_site: 0,
        }
    }

    /// Heavy on `$sp`-relative, computed and wrongly hinted stack traffic —
    /// the LVAQ/steering stress mix.
    pub fn stack_heavy() -> FuzzWeights {
        FuzzWeights {
            local_mem: 30,
            computed_mem: 18,
            wrong_hint_mem: 10,
            call: 12,
            global_mem: 4,
            ..FuzzWeights::balanced()
        }
    }

    /// FP-dominated bodies (double loads/stores ride on `local_mem` /
    /// `global_mem` with FP variants).
    pub fn fp_heavy() -> FuzzWeights {
        FuzzWeights {
            fp: 32,
            local_mem: 14,
            alu: 10,
            ..FuzzWeights::balanced()
        }
    }

    /// Branch/loop/call dominated — deep call/return chains and dense
    /// control flow.
    pub fn control_heavy() -> FuzzWeights {
        FuzzWeights {
            branch: 18,
            loops: 14,
            call: 16,
            alu: 10,
            ..FuzzWeights::balanced()
        }
    }

    /// Includes deliberate trap sites; both kernels must report the
    /// identical structured trap.
    pub fn trapping() -> FuzzWeights {
        FuzzWeights {
            trap_site: 8,
            ..FuzzWeights::balanced()
        }
    }

    /// All named presets, for campaign rotation.
    pub fn presets() -> [(&'static str, FuzzWeights); 5] {
        [
            ("balanced", FuzzWeights::balanced()),
            ("stack_heavy", FuzzWeights::stack_heavy()),
            ("fp_heavy", FuzzWeights::fp_heavy()),
            ("control_heavy", FuzzWeights::control_heavy()),
            ("trapping", FuzzWeights::trapping()),
        ]
    }
}

impl Default for FuzzWeights {
    fn default() -> Self {
        FuzzWeights::balanced()
    }
}

/// Derives the per-input seed for input `index` of a campaign, so results
/// are independent of worker count and input batching (splitmix64 over
/// the pair).
pub fn derive_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Registers random segments may write. `$sp`/`$gp`/`$ra` are managed by
// the generated prologue/epilogue/call code, `$s0..$s3` are loop
// counters, and `$k0`/`$k1` are reserved as address scratch, so none of
// them appear here.
const SCRATCH: [Gpr; 14] = [
    Gpr::T0,
    Gpr::T1,
    Gpr::T2,
    Gpr::T3,
    Gpr::T4,
    Gpr::T5,
    Gpr::T6,
    Gpr::T7,
    Gpr::V0,
    Gpr::V1,
    Gpr::A1,
    Gpr::A2,
    Gpr::A3,
    Gpr::T8,
];

// Loop counters by nesting depth.
const COUNTERS: [Gpr; 2] = [Gpr::S0, Gpr::S1];

struct Gen<'w> {
    rng: Rng,
    w: &'w FuzzWeights,
}

/// What a function body is allowed to emit.
struct BodyCtx<'n> {
    frame: i32,
    /// Functions this one may call (strictly later in the DAG).
    callees: &'n [String],
    /// The bounded-recursion helper, callable from anywhere but itself.
    rec: Option<&'n str>,
    loop_depth: u32,
    calls_left: u32,
}

impl Gen<'_> {
    fn reg(&mut self) -> Gpr {
        SCRATCH[self.rng.gen_range(0..SCRATCH.len())]
    }

    fn fpr(&mut self) -> Fpr {
        Fpr::new(self.rng.gen_range(0u8..8))
    }

    fn alu_op(&mut self) -> AluOp {
        AluOp::ALL[self.rng.gen_range(0..AluOp::ALL.len())]
    }

    fn cond(&mut self) -> BranchCond {
        BranchCond::ALL[self.rng.gen_range(0..BranchCond::ALL.len())]
    }

    /// A word-aligned in-frame offset at or above the 8-byte save area.
    fn frame_off(&mut self, frame: i32, align: i32) -> i32 {
        let lo = 8 / align;
        let hi = frame / align;
        if hi <= lo {
            8
        } else {
            self.rng.gen_range(lo..hi) * align
        }
    }

    /// Draws one segment kind index from the weight table.
    fn pick(&mut self, weights: &[(u32, SegKind)]) -> SegKind {
        let total: u32 = weights.iter().map(|(w, _)| *w).sum();
        if total == 0 {
            return SegKind::Alu;
        }
        let mut roll = self.rng.gen_range(0..total);
        for (w, kind) in weights {
            if roll < *w {
                return *kind;
            }
            roll -= *w;
        }
        SegKind::Alu
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SegKind {
    Alu,
    AluImm,
    LoadImm,
    Fp,
    LocalMem,
    ComputedMem,
    WrongHintMem,
    GlobalMem,
    NarrowMem,
    Branch,
    Loop,
    Call,
    TrapSite,
}

fn weight_table(w: &FuzzWeights, ctx: &BodyCtx<'_>) -> Vec<(u32, SegKind)> {
    let can_call = ctx.calls_left > 0 && (!ctx.callees.is_empty() || ctx.rec.is_some());
    vec![
        (w.alu, SegKind::Alu),
        (w.alu_imm, SegKind::AluImm),
        (w.load_imm, SegKind::LoadImm),
        (w.fp, SegKind::Fp),
        (w.local_mem, SegKind::LocalMem),
        (w.computed_mem, SegKind::ComputedMem),
        (w.wrong_hint_mem, SegKind::WrongHintMem),
        (w.global_mem, SegKind::GlobalMem),
        (w.narrow_mem, SegKind::NarrowMem),
        (w.branch, SegKind::Branch),
        (if ctx.loop_depth < 2 { w.loops } else { 0 }, SegKind::Loop),
        (if can_call { w.call } else { 0 }, SegKind::Call),
        (w.trap_site, SegKind::TrapSite),
    ]
}

fn emit_segment(g: &mut Gen<'_>, f: &mut FunctionBuilder, ctx: &mut BodyCtx<'_>) {
    let kind = {
        let table = weight_table(g.w, ctx);
        g.pick(&table)
    };
    match kind {
        SegKind::Alu => {
            let (op, rd, rs, rt) = (g.alu_op(), g.reg(), g.reg(), g.reg());
            f.alu(op, rd, rs, rt);
        }
        SegKind::AluImm => {
            let (op, rd, rs) = (g.alu_op(), g.reg(), g.reg());
            let imm = g.rng.gen_range(-64i32..=64);
            f.alui(op, rd, rs, imm);
        }
        SegKind::LoadImm => {
            let rd = g.reg();
            let imm = match g.rng.gen_range(0..6u32) {
                0 => 0,
                1 => 1,
                2 => -1,
                3 => i32::MAX,
                4 => i32::MIN,
                _ => g.rng.gen_range(-4096i32..=4096),
            };
            f.load_imm(rd, imm);
        }
        SegKind::Fp => match g.rng.gen_range(0..5u32) {
            0 => {
                let (fd, rs) = (g.fpr(), g.reg());
                f.int_to_fp(fd, rs);
            }
            1 => {
                let ops = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div];
                let op = ops[g.rng.gen_range(0..ops.len())];
                let (fd, fs, ft) = (g.fpr(), g.fpr(), g.fpr());
                f.fpu(op, fd, fs, ft);
            }
            2 => {
                // Unary op: `ft` mirrors `fs` so the image round-trips
                // through the assembler (unary syntax carries no `ft`).
                let ops = [FpuOp::Neg, FpuOp::Abs, FpuOp::Mov, FpuOp::Sqrt];
                let op = ops[g.rng.gen_range(0..ops.len())];
                let (fd, fs) = (g.fpr(), g.fpr());
                f.fpu(op, fd, fs, fs);
            }
            3 => {
                let cond = FpCond::ALL[g.rng.gen_range(0..FpCond::ALL.len())];
                let (rd, fs, ft) = (g.reg(), g.fpr(), g.fpr());
                f.fp_cmp(cond, rd, fs, ft);
            }
            _ => {
                let (rd, fs) = (g.reg(), g.fpr());
                f.fp_to_int(rd, fs);
            }
        },
        SegKind::LocalMem => match g.rng.gen_range(0..4u32) {
            0 => {
                let (rs, off) = (g.reg(), g.frame_off(ctx.frame, 4));
                f.store_local(rs, off);
            }
            1 => {
                let (rd, off) = (g.reg(), g.frame_off(ctx.frame, 4));
                f.load_local(rd, off);
            }
            2 => {
                let (fs, off) = (g.fpr(), g.frame_off(ctx.frame, 8));
                f.fstore(fs, Gpr::SP, off, StreamHint::Local);
            }
            _ => {
                let (fd, off) = (g.fpr(), g.frame_off(ctx.frame, 8));
                f.fload(fd, Gpr::SP, off, StreamHint::Local);
            }
        },
        SegKind::ComputedMem => {
            // The base register points into the frame, but the access is
            // not $sp-relative — the steering logic only sees the hint.
            let off = g.frame_off(ctx.frame, 4);
            if g.rng.gen_bool(0.5) {
                f.addi(Gpr::K0, Gpr::SP, off);
                let r = g.reg();
                if g.rng.gen_bool(0.5) {
                    f.store(r, Gpr::K0, 0, MemWidth::Word, StreamHint::Unknown);
                } else {
                    f.load(r, Gpr::K0, 0, MemWidth::Word, StreamHint::Unknown);
                }
            } else {
                f.mov(Gpr::K0, Gpr::SP);
                let r = g.reg();
                if g.rng.gen_bool(0.5) {
                    f.store(r, Gpr::K0, off, MemWidth::Word, StreamHint::Unknown);
                } else {
                    f.load(r, Gpr::K0, off, MemWidth::Word, StreamHint::Unknown);
                }
            }
        }
        SegKind::WrongHintMem => {
            if g.rng.gen_bool(0.5) {
                // Stack access claiming to be non-local.
                let (r, off) = (g.reg(), g.frame_off(ctx.frame, 4));
                if g.rng.gen_bool(0.5) {
                    f.store(r, Gpr::SP, off, MemWidth::Word, StreamHint::NonLocal);
                } else {
                    f.load(r, Gpr::SP, off, MemWidth::Word, StreamHint::NonLocal);
                }
            } else {
                // Global access claiming to be local.
                let r = g.reg();
                let off = g.rng.gen_range(0..64i32) * 4;
                if g.rng.gen_bool(0.5) {
                    f.store(r, Gpr::GP, off, MemWidth::Word, StreamHint::Local);
                } else {
                    f.load(r, Gpr::GP, off, MemWidth::Word, StreamHint::Local);
                }
            }
        }
        SegKind::GlobalMem => {
            let r = g.reg();
            if g.rng.gen_bool(0.8) {
                let off = g.rng.gen_range(0..128i32) * 4;
                if g.rng.gen_bool(0.5) {
                    f.store(r, Gpr::GP, off, MemWidth::Word, StreamHint::NonLocal);
                } else {
                    f.load(r, Gpr::GP, off, MemWidth::Word, StreamHint::NonLocal);
                }
            } else {
                // Heap access through a constant base.
                let off = g.rng.gen_range(0..64i32) * 4;
                f.load_imm(Gpr::K1, 0x2000_0000);
                if g.rng.gen_bool(0.5) {
                    f.store(r, Gpr::K1, off, MemWidth::Word, StreamHint::NonLocal);
                } else {
                    f.load(r, Gpr::K1, off, MemWidth::Word, StreamHint::NonLocal);
                }
            }
        }
        SegKind::NarrowMem => {
            let r = g.reg();
            let width = if g.rng.gen_bool(0.5) {
                MemWidth::Byte
            } else {
                MemWidth::Half
            };
            let align = width.bytes() as i32;
            let off = g.rng.gen_range(0..128i32) * align;
            let hint = if g.rng.gen_bool(0.5) {
                StreamHint::NonLocal
            } else {
                StreamHint::Unknown
            };
            if g.rng.gen_bool(0.5) {
                f.store(r, Gpr::GP, off, width, hint);
            } else {
                f.load(r, Gpr::GP, off, width, hint);
            }
        }
        SegKind::Branch => {
            // Short forward skip; both paths are well-formed.
            let skip = f.new_label();
            let (cond, rs, rt) = (g.cond(), g.reg(), g.reg());
            f.branch(cond, rs, rt, skip);
            for _ in 0..g.rng.gen_range(1..=3u32) {
                let (op, rd, rs2, rt2) = (g.alu_op(), g.reg(), g.reg(), g.reg());
                f.alu(op, rd, rs2, rt2);
            }
            f.bind(skip);
        }
        SegKind::Loop => {
            let counter = COUNTERS[ctx.loop_depth as usize];
            let trip = g.rng.gen_range(1..=8i32);
            f.load_imm(counter, trip);
            let top = f.new_label();
            f.bind(top);
            ctx.loop_depth += 1;
            for _ in 0..g.rng.gen_range(1..=4u32) {
                emit_segment(g, f, ctx);
            }
            ctx.loop_depth -= 1;
            f.addi(counter, counter, -1);
            f.branch(BranchCond::Gt, counter, Gpr::ZERO, top);
        }
        SegKind::Call => {
            ctx.calls_left = ctx.calls_left.saturating_sub(1);
            let pick_rec = ctx.rec.is_some() && (ctx.callees.is_empty() || g.rng.gen_bool(0.3));
            if pick_rec {
                if let Some(rec) = ctx.rec {
                    let depth = g.rng.gen_range(2..=24i32);
                    f.load_imm(Gpr::A0, depth);
                    f.call(rec.to_string());
                }
            } else if !ctx.callees.is_empty() {
                let callee = &ctx.callees[g.rng.gen_range(0..ctx.callees.len())];
                f.call(callee.clone());
            }
        }
        SegKind::TrapSite => match g.rng.gen_range(0..4u32) {
            0 => {
                // Misaligned word access.
                let r = g.reg();
                f.load(r, Gpr::GP, 2, MemWidth::Word, StreamHint::NonLocal);
            }
            1 => {
                // Unmapped low address.
                let r = g.reg();
                f.load(r, Gpr::ZERO, 64, MemWidth::Word, StreamHint::Unknown);
            }
            2 => {
                // Far below the stack through $sp: stack overflow.
                let r = g.reg();
                f.load(r, Gpr::SP, -8_388_608, MemWidth::Word, StreamHint::Local);
            }
            _ => {
                // Indirect call to an illegal target.
                f.load_imm(Gpr::K1, 0x00AB_CDEF);
                f.call_reg(Gpr::K1);
            }
        },
    }
}

/// Emits one function: prologue, weighted body segments, epilogue.
fn emit_function(
    g: &mut Gen<'_>,
    name: &str,
    frame: i32,
    callees: &[String],
    rec: Option<&str>,
    is_main: bool,
) -> FunctionBuilder {
    let mut f = FunctionBuilder::with_frame(name, frame as u32);
    f.addi(Gpr::SP, Gpr::SP, -frame);
    f.store_local(Gpr::RA, 0);
    let mut ctx = BodyCtx {
        frame,
        callees,
        rec,
        loop_depth: 0,
        calls_left: 3,
    };
    for _ in 0..g.rng.gen_range(4..=10u32) {
        emit_segment(g, &mut f, &mut ctx);
    }
    f.load_local(Gpr::RA, 0);
    f.addi(Gpr::SP, Gpr::SP, frame);
    if is_main {
        f.halt();
    } else {
        f.ret();
    }
    f
}

/// The counter-bounded recursion helper: call with the depth in `$a0`.
fn emit_rec(name: &str) -> FunctionBuilder {
    let mut f = FunctionBuilder::with_frame(name, 16);
    f.addi(Gpr::SP, Gpr::SP, -16);
    f.store_local(Gpr::RA, 0);
    f.store_local(Gpr::A0, 4);
    f.addi(Gpr::A0, Gpr::A0, -1);
    let done = f.new_label();
    f.branch(BranchCond::Le, Gpr::A0, Gpr::ZERO, done);
    f.call(name.to_string());
    f.bind(done);
    f.load_local(Gpr::A0, 4);
    f.load_local(Gpr::RA, 0);
    f.addi(Gpr::SP, Gpr::SP, 16);
    f.ret();
    f
}

/// Generates a random well-formed program from `seed` and a weight table.
///
/// The result always links (`main` first, standard memory layout), every
/// loop is counter-bounded, recursion is depth-bounded, and every
/// statically visible control target is inside the image. With
/// `trap_site == 0` the program runs to `halt` on the functional
/// simulator; with trap sites it may end in a deterministic trap instead.
pub fn fuzz_program(seed: u64, w: &FuzzWeights) -> Program {
    let mut g = Gen {
        rng: Rng::seed_from_u64(seed),
        w,
    };

    let helpers = g.rng.gen_range(0..=3usize);
    let with_rec = g.rng.gen_bool(0.35);
    let names: Vec<String> = (1..=helpers).map(|i| format!("f{i}")).collect();
    let rec_name = with_rec.then(|| "rec".to_string());

    let mut b = ProgramBuilder::new();
    let main_frame = 8 * g.rng.gen_range(4..=12i32);
    b.add_function(emit_function(
        &mut g,
        "main",
        main_frame,
        &names,
        rec_name.as_deref(),
        true,
    ));
    for (i, name) in names.iter().enumerate() {
        let frame = 8 * g.rng.gen_range(2..=12i32);
        let callees = &names[i + 1..];
        let f = emit_function(&mut g, name, frame, callees, rec_name.as_deref(), false);
        b.add_function(f);
    }
    if let Some(rec) = &rec_name {
        b.add_function(emit_rec(rec));
    }

    match b.build() {
        Ok(p) => p,
        // Unreachable by construction (unique names, all calls resolve,
        // all labels bound); a degenerate fallback keeps the API total.
        Err(_) => trivial_program(),
    }
}

/// The smallest valid program: `main: halt`.
fn trivial_program() -> Program {
    let mut main = FunctionBuilder::new("main");
    main.halt();
    let mut b = ProgramBuilder::new();
    b.add_function(main);
    match b.build() {
        Ok(p) => p,
        Err(_) => unreachable!("single-halt program always links"),
    }
}

// --------------------------------------------------------------- mutate --

/// Whether an instruction writes `$sp` (frame-balance relevant).
fn defines_sp(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Alu { rd, .. } | Instr::AluImm { rd, .. } | Instr::LoadImm { rd, .. }
            if *rd == Gpr::SP
    )
}

fn rotate_hint(h: StreamHint) -> StreamHint {
    match h {
        StreamHint::Unknown => StreamHint::Local,
        StreamHint::Local => StreamHint::NonLocal,
        StreamHint::NonLocal => StreamHint::Unknown,
    }
}

/// Perturbs `p` while preserving structural well-formedness: the image
/// length never changes and no control target is touched, so every
/// branch/jump/call still lands inside the image. Mutants may trap or
/// wander — the differential oracle only requires both kernels to agree.
///
/// Applied mutations (a seeded mix of): ALU/branch/FP op substitution,
/// stream-hint rotation, immediate and aligned-offset jitter, matched
/// prologue/epilogue frame-size jitter (metadata updated to match), and
/// splicing one straight-line run over another of the same length.
pub fn mutate(p: &Program, seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = p.clone();
    if out.instrs.is_empty() {
        return out;
    }
    let n_mutations = rng.gen_range(2..=8u32);
    for _ in 0..n_mutations {
        match rng.gen_range(0..5u32) {
            0 => substitute_op(&mut out, &mut rng),
            1 => rotate_one_hint(&mut out, &mut rng),
            2 => jitter_immediate(&mut out, &mut rng),
            3 => jitter_frame(&mut out, &mut rng),
            _ => splice_blocks(&mut out, &mut rng),
        }
    }
    out
}

fn pick_site(len: usize, rng: &mut Rng, mut accept: impl FnMut(usize) -> bool) -> Option<usize> {
    for _ in 0..16 {
        let i = rng.gen_range(0..len);
        if accept(i) {
            return Some(i);
        }
    }
    None
}

fn substitute_op(p: &mut Program, rng: &mut Rng) {
    let site = pick_site(p.instrs.len(), rng, |i| {
        matches!(
            p.instrs[i],
            Instr::Alu { .. }
                | Instr::AluImm { .. }
                | Instr::Branch { .. }
                | Instr::Fpu { .. }
                | Instr::FpCmp { .. }
        )
    });
    let Some(i) = site else { return };
    match &mut p.instrs[i] {
        Instr::Alu { op, .. } | Instr::AluImm { op, .. } => {
            *op = AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())];
        }
        Instr::Branch { cond, .. } => {
            *cond = BranchCond::ALL[rng.gen_range(0..BranchCond::ALL.len())];
        }
        Instr::Fpu { op, fs, ft, .. } => {
            if op.is_binary() {
                let ops = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div];
                *op = ops[rng.gen_range(0..ops.len())];
            } else {
                let ops = [FpuOp::Neg, FpuOp::Abs, FpuOp::Mov, FpuOp::Sqrt];
                *op = ops[rng.gen_range(0..ops.len())];
                *ft = *fs; // keep the unary normal form
            }
        }
        Instr::FpCmp { cond, .. } => {
            *cond = FpCond::ALL[rng.gen_range(0..FpCond::ALL.len())];
        }
        _ => {}
    }
}

fn rotate_one_hint(p: &mut Program, rng: &mut Rng) {
    let site = pick_site(p.instrs.len(), rng, |i| p.instrs[i].mem_operand().is_some());
    let Some(i) = site else { return };
    match &mut p.instrs[i] {
        Instr::Load { hint, .. }
        | Instr::Store { hint, .. }
        | Instr::FLoad { hint, .. }
        | Instr::FStore { hint, .. } => *hint = rotate_hint(*hint),
        _ => {}
    }
}

fn jitter_immediate(p: &mut Program, rng: &mut Rng) {
    let site = pick_site(p.instrs.len(), rng, |i| match &p.instrs[i] {
        // Leave $sp arithmetic to the matched frame jitter.
        Instr::AluImm { rd, .. } | Instr::LoadImm { rd, .. } => *rd != Gpr::SP,
        Instr::Load { .. } | Instr::Store { .. } | Instr::FLoad { .. } | Instr::FStore { .. } => {
            true
        }
        _ => false,
    });
    let Some(i) = site else { return };
    match &mut p.instrs[i] {
        Instr::AluImm { imm, .. } | Instr::LoadImm { imm, .. } => {
            *imm = imm.wrapping_add(rng.gen_range(-16i32..=16));
        }
        Instr::Load { offset, width, .. } | Instr::Store { offset, width, .. } => {
            let step = width.bytes() as i32;
            *offset = offset.wrapping_add(step * rng.gen_range(-4i32..=4));
        }
        Instr::FLoad { offset, .. } | Instr::FStore { offset, .. } => {
            *offset = offset.wrapping_add(8 * rng.gen_range(-2i32..=2));
        }
        _ => {}
    }
}

/// Bumps one function's frame size, keeping the `addi $sp, $sp, -k` /
/// `addi $sp, $sp, +k` pair matched and the metadata in sync.
fn jitter_frame(p: &mut Program, rng: &mut Rng) {
    if p.functions.is_empty() {
        return;
    }
    let fi = rng.gen_range(0..p.functions.len());
    let (start, end) = (p.functions[fi].start as usize, p.functions[fi].end as usize);
    let is_sp_adjust = |i: &Instr| -> Option<i32> {
        match i {
            Instr::AluImm {
                op: AluOp::Add,
                rd: Gpr::SP,
                rs: Gpr::SP,
                imm,
            } => Some(*imm),
            _ => None,
        }
    };
    let mut alloc = None;
    for idx in start..end.min(p.instrs.len()) {
        if let Some(imm) = is_sp_adjust(&p.instrs[idx]) {
            if imm < 0 {
                alloc = Some((idx, -imm));
                break;
            }
        }
    }
    let Some((alloc_idx, k)) = alloc else { return };
    let mut release = None;
    for idx in (alloc_idx + 1)..end.min(p.instrs.len()) {
        if is_sp_adjust(&p.instrs[idx]) == Some(k) {
            release = Some(idx);
        }
    }
    let Some(release_idx) = release else { return };
    let new_k = (k + 8 * rng.gen_range(-2i32..=4)).clamp(16, 4096);
    p.instrs[alloc_idx] = Instr::AluImm {
        op: AluOp::Add,
        rd: Gpr::SP,
        rs: Gpr::SP,
        imm: -new_k,
    };
    p.instrs[release_idx] = Instr::AluImm {
        op: AluOp::Add,
        rd: Gpr::SP,
        rs: Gpr::SP,
        imm: new_k,
    };
    p.functions[fi].frame_bytes = new_k as u32;
}

/// Copies one straight-line run (no control flow, no `$sp` definition)
/// over another of the same length. Targets are untouched, so the result
/// stays structurally well-formed.
fn splice_blocks(p: &mut Program, rng: &mut Rng) {
    let len = p.instrs.len();
    let span = rng.gen_range(2..=6usize).min(len);
    if span < 2 || len < 2 * span {
        return;
    }
    let ok_run = |s: usize| {
        p.instrs[s..s + span]
            .iter()
            .all(|i| !i.is_control() && !defines_sp(i))
    };
    let src = pick_site(len - span, rng, ok_run);
    let Some(src) = src else { return };
    let dst = pick_site(len - span, rng, |d| {
        ok_run(d) && (d + span <= src || d >= src + span)
    });
    let Some(dst) = dst else { return };
    let run: Vec<Instr> = p.instrs[src..src + span].to_vec();
    p.instrs[dst..dst + span].copy_from_slice(&run);
}

// ------------------------------------------------------------- reduce --

/// Returns a copy of `p` with `[start, end)` replaced by `nop`s.
///
/// The pc layout is untouched, so every control target in the rest of
/// the image stays valid — this is the reduction step a delta-debugging
/// minimizer applies repeatedly. Out-of-range bounds are clamped.
pub fn nop_range(p: &Program, start: usize, end: usize) -> Program {
    let mut out = p.clone();
    let end = end.min(out.instrs.len());
    for i in out.instrs.iter_mut().take(end).skip(start) {
        *i = Instr::Nop;
    }
    out
}

/// Number of non-`nop` instructions — the size a minimized reproducer is
/// measured by while it is still nop-padded.
pub fn active_len(p: &Program) -> usize {
    p.instrs.iter().filter(|i| !matches!(i, Instr::Nop)).count()
}

/// Strips every `nop` from the image, remapping all control targets, the
/// entry pc and the function table through the (monotone) old-to-new pc
/// map. A target that pointed at a removed instruction moves to the next
/// surviving one. Functions that become empty are dropped.
///
/// Returns `None` if nothing would remain. The caller must re-validate
/// that whatever property the reduction preserves still holds on the
/// compacted program (compaction changes pcs, so timing-sensitive
/// reproducers can shift).
pub fn compact(p: &Program) -> Option<Program> {
    let keep: Vec<bool> = p.instrs.iter().map(|i| !matches!(i, Instr::Nop)).collect();
    let kept = keep.iter().filter(|k| **k).count();
    if kept == 0 {
        return None;
    }
    // map[pc] = number of kept instructions strictly before pc; for a
    // removed pc this is exactly the new index of the next survivor.
    let mut map = Vec::with_capacity(keep.len() + 1);
    let mut running = 0u32;
    for k in &keep {
        map.push(running);
        if *k {
            running += 1;
        }
    }
    map.push(running);
    let remap = |t: u32| -> u32 { map.get(t as usize).copied().unwrap_or(running) };

    let mut instrs = Vec::with_capacity(kept);
    for (i, keep_it) in keep.iter().enumerate() {
        if !*keep_it {
            continue;
        }
        let mut instr = p.instrs[i];
        match &mut instr {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                *target = remap(*target)
            }
            _ => {}
        }
        instrs.push(instr);
    }

    let mut functions = Vec::new();
    for f in &p.functions {
        let (start, end) = (remap(f.start), remap(f.end));
        if start < end {
            let mut nf = f.clone();
            nf.start = start;
            nf.end = end;
            functions.push(nf);
        }
    }
    if functions.is_empty() {
        return None;
    }
    let symbols = functions
        .iter()
        .map(|f| (f.name.clone(), f.start))
        .collect();
    let entry = remap(p.entry).min(instrs.len() as u32 - 1);
    Some(Program {
        instrs,
        entry,
        layout: p.layout,
        functions,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_in_image(p: &Program) -> bool {
        let len = p.len() as u32;
        p.instrs().iter().all(|i| match i {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                *target < len
            }
            _ => true,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let w = FuzzWeights::balanced();
        for seed in 0..8 {
            assert_eq!(fuzz_program(seed, &w), fuzz_program(seed, &w));
        }
    }

    #[test]
    fn generated_programs_are_structurally_well_formed() {
        for (name, w) in FuzzWeights::presets() {
            for seed in 0..24 {
                let p = fuzz_program(derive_seed(7, seed), &w);
                assert!(!p.is_empty(), "{name}/{seed} empty");
                assert!(targets_in_image(&p), "{name}/{seed} has a target off-image");
                assert_eq!(p.symbol("main"), Some(0), "{name}/{seed} main not first");
                assert_eq!(p.entry(), 0, "{name}/{seed} entry not main");
                // Functions partition the image.
                let mut pc = 0;
                for f in p.functions() {
                    assert_eq!(f.start, pc, "{name}/{seed} function gap");
                    pc = f.end;
                }
                assert_eq!(pc, p.len() as u32, "{name}/{seed} trailing gap");
            }
        }
    }

    #[test]
    fn weight_zeroes_suppress_segment_kinds() {
        let only_alu = FuzzWeights {
            alu: 1,
            alu_imm: 0,
            load_imm: 0,
            fp: 0,
            local_mem: 0,
            computed_mem: 0,
            wrong_hint_mem: 0,
            global_mem: 0,
            narrow_mem: 0,
            branch: 0,
            loops: 0,
            call: 0,
            trap_site: 0,
        };
        for seed in 0..8 {
            let p = fuzz_program(seed, &only_alu);
            // Prologue/epilogue aside, no memory op other than the $ra
            // save/restore pair and no FP op may appear.
            for i in p.instrs() {
                assert!(
                    !matches!(
                        i,
                        Instr::Fpu { .. } | Instr::FLoad { .. } | Instr::FStore { .. }
                    ),
                    "unexpected FP op {i} with zero fp weight"
                );
            }
        }
    }

    #[test]
    fn mutants_preserve_length_and_targets() {
        let w = FuzzWeights::balanced();
        for seed in 0..24 {
            let p = fuzz_program(derive_seed(11, seed), &w);
            let m = mutate(&p, derive_seed(13, seed));
            assert_eq!(p.len(), m.len(), "mutation changed the image length");
            assert!(targets_in_image(&m), "mutation broke a control target");
            // Control-flow instruction *positions* are preserved (ops may
            // change cond, never kind-to-or-from control).
            for (a, b) in p.instrs().iter().zip(m.instrs()) {
                assert_eq!(a.is_control(), b.is_control());
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_and_usually_changes_something() {
        let w = FuzzWeights::balanced();
        let mut changed = 0;
        for seed in 0..16 {
            let p = fuzz_program(derive_seed(3, seed), &w);
            let a = mutate(&p, 99 + seed);
            let b = mutate(&p, 99 + seed);
            assert_eq!(a, b);
            if a != p {
                changed += 1;
            }
        }
        assert!(
            changed >= 12,
            "only {changed}/16 mutants differed from their parent"
        );
    }

    #[test]
    fn frame_jitter_keeps_prologue_and_metadata_in_sync() {
        let w = FuzzWeights::balanced();
        for seed in 0..32 {
            let m = mutate(&fuzz_program(derive_seed(5, seed), &w), seed);
            for f in m.functions() {
                let body = &m.instrs()[f.start as usize..f.end as usize];
                let allocs: Vec<i32> = body
                    .iter()
                    .filter_map(|i| match i {
                        Instr::AluImm {
                            op: AluOp::Add,
                            rd: Gpr::SP,
                            rs: Gpr::SP,
                            imm,
                        } if *imm < 0 => Some(-imm),
                        _ => None,
                    })
                    .collect();
                if let Some(first) = allocs.first() {
                    assert_eq!(
                        *first as u32, f.frame_bytes,
                        "{}: frame metadata out of sync with prologue",
                        f.name
                    );
                }
            }
        }
    }

    #[test]
    fn nop_range_and_active_len() {
        let p = fuzz_program(1, &FuzzWeights::balanced());
        let n = nop_range(&p, 2, 5);
        assert_eq!(n.len(), p.len());
        assert!(active_len(&n) <= active_len(&p));
        assert!(matches!(n.fetch(2), Instr::Nop));
        // Clamped out-of-range reduction is a no-op beyond the image.
        let full = nop_range(&p, 0, usize::MAX);
        assert_eq!(active_len(&full), 0);
    }

    #[test]
    fn compact_remaps_targets_monotonically() {
        // main: 0 li, 1 nop(after reduce), 2 beq->4, 3 nop, 4 halt
        let mut f = FunctionBuilder::new("main");
        let done = f.new_label();
        f.load_imm(Gpr::T0, 1);
        f.nop();
        f.beqz(Gpr::ZERO, done);
        f.nop();
        f.bind(done);
        f.halt();
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        let p = b.build().expect("links");
        let c = compact(&p).expect("something remains");
        assert_eq!(c.len(), 3);
        assert_eq!(
            c.fetch(0),
            Instr::LoadImm {
                rd: Gpr::T0,
                imm: 1
            }
        );
        assert!(matches!(c.fetch(1), Instr::Branch { target: 2, .. }));
        assert_eq!(c.fetch(2), Instr::Halt);
        assert_eq!(c.entry(), 0);
        assert_eq!(c.functions()[0].end, 3);
    }

    #[test]
    fn compact_of_all_nops_is_none() {
        let p = fuzz_program(2, &FuzzWeights::balanced());
        assert!(compact(&nop_range(&p, 0, p.len())).is_none());
    }

    #[test]
    fn derive_seed_spreads() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
