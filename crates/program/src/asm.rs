//! A text assembler for the DDA instruction set.
//!
//! The accepted syntax is the simulator's own disassembly (see
//! [`dda_isa::Instr`]'s `Display` impl) extended with symbolic labels:
//!
//! ```text
//! main:                       # unindented `name:` opens a function
//!     li    $t0, 5
//!     jal   double            # call targets are function names
//!     halt
//!
//! double: frame 16            # optional static frame declaration
//!     addi  $sp, $sp, -16
//!     sw    $t0, 0($sp) !local
//!     lw    $t1, 0($sp) !local
//! .done:                      # `.name:` binds a local label
//!     add   $v0, $t1, $t1
//!     addi  $sp, $sp, 16
//!     jr    $ra
//! ```
//!
//! * branch/jump targets may be `.labels`, function names, or absolute
//!   numeric pcs (the disassembler's output);
//! * `!local` / `!nonlocal` suffixes set the [`StreamHint`];
//! * `#` and `;` start comments.
//!
//! ```
//! use dda_program::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r"
//! main:
//!     li    $t0, 21
//!     add   $v0, $t0, $t0
//!     halt
//! ")?;
//! assert_eq!(program.len(), 3);
//! # Ok(())
//! # }
//! ```

use core::fmt;
use std::collections::HashMap;

use dda_isa::{AluOp, BranchCond, FpCond, Fpr, FpuOp, Gpr, Instr, MemWidth, StreamHint};

use crate::builder::{BuildError, FunctionBuilder, Label, ProgramBuilder};
use crate::program::Program;

/// An assembly-syntax error, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

fn parse_gpr(line: usize, tok: &str) -> Result<Gpr, AsmError> {
    let name = tok.strip_prefix('$').unwrap_or(tok);
    if let Some(n) = name.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
        if n < 32 {
            return Ok(Gpr::new(n));
        }
    }
    Gpr::all()
        .find(|g| g.name() == name)
        .ok_or_else(|| AsmError {
            line,
            message: format!("unknown register `{tok}`"),
        })
}

fn parse_fpr(line: usize, tok: &str) -> Result<Fpr, AsmError> {
    let name = tok.strip_prefix('$').unwrap_or(tok);
    name.strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .map(Fpr::new)
        .ok_or_else(|| AsmError {
            line,
            message: format!("unknown FP register `{tok}`"),
        })
}

fn parse_imm(line: usize, tok: &str) -> Result<i32, AsmError> {
    let t = tok.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map(|v| v as i32)
    } else if let Some(hex) = t.strip_prefix("-0x") {
        u32::from_str_radix(hex, 16).map(|v| -(v as i32))
    } else {
        t.parse::<i32>()
    };
    parsed.map_err(|_| AsmError {
        line,
        message: format!("bad immediate `{tok}`"),
    })
}

/// `off($base)` → (offset, base).
fn parse_mem_operand(line: usize, tok: &str) -> Result<(i32, Gpr), AsmError> {
    let open = tok.find('(');
    let close = tok.ends_with(')');
    match (open, close) {
        (Some(i), true) => {
            let off = if tok[..i].trim().is_empty() {
                0
            } else {
                parse_imm(line, &tok[..i])?
            };
            let base = parse_gpr(line, tok[i + 1..tok.len() - 1].trim())?;
            Ok((off, base))
        }
        _ => err(line, format!("expected `offset($base)`, got `{tok}`")),
    }
}

/// A control-flow target: absolute pc, or a symbol resolved later.
enum Target {
    Abs(u32),
    Symbol(String),
}

fn parse_target(tok: &str) -> Target {
    match tok.parse::<u32>() {
        Ok(pc) => Target::Abs(pc),
        Err(_) => Target::Symbol(tok.to_string()),
    }
}

fn alu_op(mnemonic: &str) -> Option<(AluOp, bool)> {
    let (base, imm) = match mnemonic.strip_suffix('i') {
        // `sltui` ends in i twice; check the exact immediate forms first.
        Some(b) if !matches!(mnemonic, "li") => (b, true),
        _ => (mnemonic, false),
    };
    AluOp::ALL
        .iter()
        .find(|op| op.mnemonic() == base)
        .map(|&op| (op, imm))
}

fn fpu_op(mnemonic: &str) -> Option<FpuOp> {
    FpuOp::ALL
        .iter()
        .find(|op| op.mnemonic() == mnemonic)
        .copied()
}

fn branch_cond(mnemonic: &str) -> Option<BranchCond> {
    BranchCond::ALL
        .iter()
        .find(|c| c.mnemonic() == mnemonic)
        .copied()
}

fn fp_cond(mnemonic: &str) -> Option<FpCond> {
    FpCond::ALL
        .iter()
        .find(|c| c.mnemonic() == mnemonic)
        .copied()
}

/// One parsed statement.
enum Stmt {
    /// A plain instruction.
    Plain(Instr),
    /// A branch/jump whose target needs symbol resolution.
    ControlTo {
        /// Instruction with a placeholder target.
        instr: Instr,
        target: Target,
    },
    /// A call whose callee needs symbol resolution.
    CallTo(Target),
}

/// Splits `lw $t0, 8($sp) !local` into (mnemonic, operands, hint).
fn split_line(line_no: usize, text: &str) -> Result<(String, Vec<String>, StreamHint), AsmError> {
    let mut hint = StreamHint::Unknown;
    let mut body = text;
    if let Some(i) = text.find('!') {
        hint = match text[i..].trim() {
            "!local" => StreamHint::Local,
            "!nonlocal" => StreamHint::NonLocal,
            other => return err(line_no, format!("unknown annotation `{other}`")),
        };
        body = &text[..i];
    }
    let mut parts = body.trim().splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("").to_string();
    let operands: Vec<String> = parts
        .next()
        .map(|rest| rest.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default();
    Ok((mnemonic, operands, hint))
}

fn expect_operands(line: usize, mnemonic: &str, ops: &[String], n: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        err(
            line,
            format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
        )
    }
}

fn parse_statement(line: usize, text: &str) -> Result<Stmt, AsmError> {
    let (mnemonic, ops, hint) = split_line(line, text)?;
    let m = mnemonic.as_str();

    // Zero-operand and special forms first.
    match m {
        "nop" => return Ok(Stmt::Plain(Instr::Nop)),
        "halt" => return Ok(Stmt::Plain(Instr::Halt)),
        "jr" => {
            expect_operands(line, m, &ops, 1)?;
            if parse_gpr(line, &ops[0])? == Gpr::RA {
                return Ok(Stmt::Plain(Instr::Ret));
            }
            return err(
                line,
                "only `jr $ra` is supported (use jalr for indirect calls)",
            );
        }
        "jalr" => {
            expect_operands(line, m, &ops, 1)?;
            return Ok(Stmt::Plain(Instr::CallReg {
                rs: parse_gpr(line, &ops[0])?,
            }));
        }
        "j" => {
            expect_operands(line, m, &ops, 1)?;
            return Ok(Stmt::ControlTo {
                instr: Instr::Jump { target: u32::MAX },
                target: parse_target(&ops[0]),
            });
        }
        "jal" => {
            expect_operands(line, m, &ops, 1)?;
            return match parse_target(&ops[0]) {
                Target::Abs(pc) => Ok(Stmt::Plain(Instr::Call { target: pc })),
                sym => Ok(Stmt::CallTo(sym)),
            };
        }
        "li" => {
            expect_operands(line, m, &ops, 2)?;
            return Ok(Stmt::Plain(Instr::LoadImm {
                rd: parse_gpr(line, &ops[0])?,
                imm: parse_imm(line, &ops[1])?,
            }));
        }
        "mtc1d" => {
            expect_operands(line, m, &ops, 2)?;
            return Ok(Stmt::Plain(Instr::IntToFp {
                fd: parse_fpr(line, &ops[0])?,
                rs: parse_gpr(line, &ops[1])?,
            }));
        }
        "mfc1d" => {
            expect_operands(line, m, &ops, 2)?;
            return Ok(Stmt::Plain(Instr::FpToInt {
                rd: parse_gpr(line, &ops[0])?,
                fs: parse_fpr(line, &ops[1])?,
            }));
        }
        _ => {}
    }

    // Loads and stores.
    let width = |m: &str| match m {
        "lb" | "sb" => Some(MemWidth::Byte),
        "lh" | "sh" => Some(MemWidth::Half),
        "lw" | "sw" => Some(MemWidth::Word),
        _ => None,
    };
    if let Some(w) = width(m) {
        expect_operands(line, m, &ops, 2)?;
        let (offset, base) = parse_mem_operand(line, &ops[1])?;
        let reg = parse_gpr(line, &ops[0])?;
        return Ok(Stmt::Plain(if m.starts_with('l') {
            Instr::Load {
                rd: reg,
                base,
                offset,
                width: w,
                hint,
            }
        } else {
            Instr::Store {
                rs: reg,
                base,
                offset,
                width: w,
                hint,
            }
        }));
    }
    if m == "l.d" || m == "s.d" {
        expect_operands(line, m, &ops, 2)?;
        let (offset, base) = parse_mem_operand(line, &ops[1])?;
        let reg = parse_fpr(line, &ops[0])?;
        return Ok(Stmt::Plain(if m == "l.d" {
            Instr::FLoad {
                fd: reg,
                base,
                offset,
                hint,
            }
        } else {
            Instr::FStore {
                fs: reg,
                base,
                offset,
                hint,
            }
        }));
    }

    // Branches.
    if let Some(cond) = branch_cond(m) {
        expect_operands(line, m, &ops, 3)?;
        return Ok(Stmt::ControlTo {
            instr: Instr::Branch {
                cond,
                rs: parse_gpr(line, &ops[0])?,
                rt: parse_gpr(line, &ops[1])?,
                target: u32::MAX,
            },
            target: parse_target(&ops[2]),
        });
    }

    // FP compares and arithmetic.
    if let Some(cond) = fp_cond(m) {
        expect_operands(line, m, &ops, 3)?;
        return Ok(Stmt::Plain(Instr::FpCmp {
            cond,
            rd: parse_gpr(line, &ops[0])?,
            fs: parse_fpr(line, &ops[1])?,
            ft: parse_fpr(line, &ops[2])?,
        }));
    }
    if let Some(op) = fpu_op(m) {
        let n = if op.is_binary() { 3 } else { 2 };
        expect_operands(line, m, &ops, n)?;
        let fd = parse_fpr(line, &ops[0])?;
        let fs = parse_fpr(line, &ops[1])?;
        let ft = if op.is_binary() {
            parse_fpr(line, &ops[2])?
        } else {
            fs
        };
        return Ok(Stmt::Plain(Instr::Fpu { op, fd, fs, ft }));
    }

    // Integer ALU, register and immediate forms.
    if let Some((op, imm_form)) = alu_op(m) {
        expect_operands(line, m, &ops, 3)?;
        let rd = parse_gpr(line, &ops[0])?;
        let rs = parse_gpr(line, &ops[1])?;
        return Ok(Stmt::Plain(if imm_form {
            Instr::AluImm {
                op,
                rd,
                rs,
                imm: parse_imm(line, &ops[2])?,
            }
        } else {
            Instr::Alu {
                op,
                rd,
                rs,
                rt: parse_gpr(line, &ops[2])?,
            }
        }));
    }

    err(line, format!("unknown mnemonic `{m}`"))
}

/// Assembles a complete program from text; see the accepted syntax in
/// the example below and in the crate-level documentation.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line for syntax
/// problems. Link-stage failures ([`BuildError`]: unresolved calls,
/// unbound labels, duplicate functions) carry the header line of the
/// offending function.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    struct PendingFn {
        name: String,
        header_line: usize,
        builder: FunctionBuilder,
        labels: HashMap<String, Label>,
    }

    /// Upper bound on a declared static frame (bytes) — generous for any
    /// real workload, small enough to reject a typo'd frame before the
    /// layout maps it over the whole stack region.
    const MAX_FRAME_BYTES: i32 = 1 << 20;

    let mut funcs: Vec<PendingFn> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let text = raw.split(['#', ';']).next().unwrap_or("").trim_end();
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }

        // Local label (`.name:`), at any indentation.
        if let Some(label_name) = trimmed.strip_prefix('.').and_then(|t| t.strip_suffix(':')) {
            let Some(f) = funcs.last_mut() else {
                return err(line_no, "label before any function header (`name:`)");
            };
            let label = *f
                .labels
                .entry(format!(".{label_name}"))
                .or_insert_with(|| f.builder.new_label());
            f.builder.bind(label);
            continue;
        }

        // Function header: unindented `name:` (optionally `frame N`).
        if !raw.starts_with(char::is_whitespace) && !trimmed.starts_with('.') {
            if let Some((name, rest)) = trimmed.split_once(':') {
                let name = name.trim();
                if name.is_empty() {
                    return err(line_no, "function names must be non-empty");
                }
                let rest = rest.trim();
                let frame = if let Some(n) = rest.strip_prefix("frame") {
                    let v = parse_imm(line_no, n.trim())?;
                    if v < 0 {
                        return err(line_no, format!("frame size must be non-negative, got {v}"));
                    }
                    if v > MAX_FRAME_BYTES {
                        return err(
                            line_no,
                            format!("frame size {v} exceeds the {MAX_FRAME_BYTES}-byte maximum"),
                        );
                    }
                    v as u32
                } else if rest.is_empty() {
                    0
                } else {
                    return err(
                        line_no,
                        format!("unexpected text after function header: `{rest}`"),
                    );
                };
                funcs.push(PendingFn {
                    name: name.to_string(),
                    header_line: line_no,
                    builder: FunctionBuilder::with_frame(name, frame),
                    labels: HashMap::new(),
                });
                continue;
            }
        }

        let Some(f) = funcs.last_mut() else {
            return err(line_no, "instruction before any function header (`name:`)");
        };

        match parse_statement(line_no, trimmed)? {
            Stmt::Plain(i) => {
                f.builder.push(i);
            }
            Stmt::CallTo(Target::Abs(pc)) => {
                f.builder.push(Instr::Call { target: pc });
            }
            Stmt::CallTo(Target::Symbol(sym)) => {
                f.builder.call(sym);
            }
            Stmt::ControlTo { instr, target } => match target {
                Target::Abs(pc) => {
                    let fixed = match instr {
                        Instr::Jump { .. } => Instr::Jump { target: pc },
                        Instr::Branch { cond, rs, rt, .. } => Instr::Branch {
                            cond,
                            rs,
                            rt,
                            target: pc,
                        },
                        other => other,
                    };
                    f.builder.push(fixed);
                }
                Target::Symbol(sym) => {
                    if !sym.starts_with('.') {
                        return err(
                            line_no,
                            format!("branch target `{sym}` must be a local `.label`"),
                        );
                    }
                    // Branches to labels go through the builder so they
                    // resolve at link time.
                    let label = *f.labels.entry(sym).or_insert_with(|| f.builder.new_label());
                    match instr {
                        Instr::Jump { .. } => {
                            f.builder.jump(label);
                        }
                        Instr::Branch { cond, rs, rt, .. } => {
                            f.builder.branch(cond, rs, rt, label);
                        }
                        other => unreachable!("non-control fixup {other:?}"),
                    }
                }
            },
        }
    }

    if funcs.is_empty() {
        return err(0, "no functions in source");
    }
    // Header lines by function name, so link-stage errors (unresolved
    // calls, unbound labels, duplicates) point at the offending function
    // instead of the useless "line 0".
    let header_lines: HashMap<String, usize> = funcs
        .iter()
        .map(|f| (f.name.clone(), f.header_line))
        .collect();
    let mut b = ProgramBuilder::new();
    for f in funcs {
        b.add_function(f.builder);
    }
    b.build().map_err(|e| {
        let line = match &e {
            BuildError::DuplicateFunction(n) | BuildError::MissingEntry(n) => {
                header_lines.get(n.as_str())
            }
            BuildError::UndefinedFunction { caller, .. } => header_lines.get(caller.as_str()),
            BuildError::UnboundLabel { function } | BuildError::LabelBoundTwice { function } => {
                header_lines.get(function.as_str())
            }
            BuildError::Empty => None,
        };
        AsmError {
            line: line.copied().unwrap_or(0),
            message: e.to_string(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_the_module_example() {
        let p = assemble(
            r"
main:
    li    $t0, 5
    jal   double
    halt

double: frame 16
    addi  $sp, $sp, -16
    sw    $t0, 0($sp) !local
    lw    $t1, 0($sp) !local
.done:
    add   $v0, $t1, $t1
    addi  $sp, $sp, 16
    jr    $ra
",
        )
        .unwrap();
        assert_eq!(p.functions().len(), 2);
        assert_eq!(p.functions()[1].frame_bytes, 16);
        assert_eq!(p.fetch(1), Instr::Call { target: 3 });
        assert!(matches!(
            p.fetch(4),
            Instr::Store {
                hint: StreamHint::Local,
                ..
            }
        ));
        assert_eq!(p.fetch(8), Instr::Ret);
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r"
main:
    li    $t0, 3
.loop:
    addi  $t0, $t0, -1
    bne   $t0, $zero, .loop
    j     .end
    nop
.end:
    halt
",
        )
        .unwrap();
        assert_eq!(
            p.fetch(2),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs: Gpr::T0,
                rt: Gpr::ZERO,
                target: 1,
            }
        );
        assert_eq!(p.fetch(3), Instr::Jump { target: 5 });
    }

    #[test]
    fn numeric_targets_accepted() {
        let p = assemble("main:\n    j 0\n").unwrap();
        assert_eq!(p.fetch(0), Instr::Jump { target: 0 });
    }

    #[test]
    fn disassembly_of_every_instruction_reparses() {
        use dda_isa::{AluOp, FpuOp};
        let mut exemplars: Vec<Instr> = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::Jump { target: 7 },
            Instr::Call { target: 3 },
            Instr::CallReg { rs: Gpr::T9 },
            Instr::LoadImm {
                rd: Gpr::GP,
                imm: -42,
            },
            Instr::IntToFp {
                fd: Fpr::new(3),
                rs: Gpr::A0,
            },
            Instr::FpToInt {
                rd: Gpr::V0,
                fs: Fpr::new(17),
            },
        ];
        for op in AluOp::ALL {
            exemplars.push(Instr::Alu {
                op,
                rd: Gpr::T0,
                rs: Gpr::S1,
                rt: Gpr::A2,
            });
            exemplars.push(Instr::AluImm {
                op,
                rd: Gpr::SP,
                rs: Gpr::SP,
                imm: -64,
            });
        }
        for op in FpuOp::ALL {
            exemplars.push(Instr::Fpu {
                op,
                fd: Fpr::new(2),
                fs: Fpr::new(4),
                ft: Fpr::new(6),
            });
        }
        for cond in BranchCond::ALL {
            exemplars.push(Instr::Branch {
                cond,
                rs: Gpr::T0,
                rt: Gpr::ZERO,
                target: 1,
            });
        }
        for cond in FpCond::ALL {
            exemplars.push(Instr::FpCmp {
                cond,
                rd: Gpr::T1,
                fs: Fpr::new(8),
                ft: Fpr::new(9),
            });
        }
        for hint in [StreamHint::Unknown, StreamHint::Local, StreamHint::NonLocal] {
            exemplars.push(Instr::Load {
                rd: Gpr::T3,
                base: Gpr::SP,
                offset: -8,
                width: MemWidth::Word,
                hint,
            });
            exemplars.push(Instr::Store {
                rs: Gpr::T3,
                base: Gpr::GP,
                offset: 4,
                width: MemWidth::Byte,
                hint,
            });
            exemplars.push(Instr::FLoad {
                fd: Fpr::new(12),
                base: Gpr::FP,
                offset: 16,
                hint,
            });
            exemplars.push(Instr::FStore {
                fs: Fpr::new(12),
                base: Gpr::SP,
                offset: -16,
                hint,
            });
        }
        for i in exemplars {
            // The unary FPU Display omits ft; normalise the expectation.
            let expected = match i {
                Instr::Fpu { op, fd, fs, .. } if !op.is_binary() => {
                    Instr::Fpu { op, fd, fs, ft: fs }
                }
                other => other,
            };
            let src = format!("main:\n    {i}\n");
            let p = assemble(&src).unwrap_or_else(|e| panic!("`{i}` failed: {e}"));
            assert_eq!(p.fetch(0), expected, "round trip of `{i}`");
        }
    }

    #[test]
    fn register_aliases() {
        let p = assemble("main:\n    add $r8, $r9, $r10\n").unwrap();
        assert_eq!(
            p.fetch(0),
            Instr::Alu {
                op: AluOp::Add,
                rd: Gpr::T0,
                rs: Gpr::T1,
                rt: Gpr::T2
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("main:\n    frobnicate $t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = assemble("main:\n    lw $t0, 8\n").unwrap_err();
        assert!(e.message.contains("offset($base)"));

        let e = assemble("    add $t0, $t1, $t2\n").unwrap_err();
        assert!(e.message.contains("before any function"));

        let e = assemble("main:\n    beq $t0, $t1, nowhere\n").unwrap_err();
        assert!(e.message.contains("local `.label`"));

        let e = assemble("main:\n    jal ghost\nmain2:\n    halt\n").unwrap_err();
        assert!(e.message.contains("undefined function"));
    }

    #[test]
    fn link_errors_point_at_the_offending_function() {
        // The unresolved call is in `broken` (header on line 4), not main.
        let e = assemble("main:\n    halt\n\nbroken:\n    jal ghost\n    halt\n").unwrap_err();
        assert!(e.message.contains("undefined function"), "{e}");
        assert_eq!(e.line, 4, "{e}");

        // A duplicate function header points at (one of) the duplicates.
        let e = assemble("main:\n    halt\nmain:\n    halt\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        assert_eq!(e.line, 3, "{e}");

        // A branch to a never-bound label points at its function.
        let e = assemble("main:\n    halt\nf:\n    j .nowhere\n    halt\n").unwrap_err();
        assert!(e.message.contains("label"), "{e}");
        assert_eq!(e.line, 3, "{e}");
    }

    #[test]
    fn hostile_frame_declarations_are_rejected_with_line_context() {
        let e = assemble("main: frame -16\n    halt\n").unwrap_err();
        assert_eq!(e.line, 1, "{e}");
        assert!(e.message.contains("non-negative"), "{e}");

        let e = assemble("main:\n    halt\nbig: frame 99999999\n    halt\n").unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("maximum"), "{e}");

        let e = assemble("main: frame zebra\n    halt\n").unwrap_err();
        assert_eq!(e.line, 1, "{e}");
        assert!(e.message.contains("bad immediate"), "{e}");

        // A sane declaration still assembles.
        let p = assemble("main: frame 64\n    halt\n").unwrap();
        assert_eq!(p.functions()[0].frame_bytes, 64);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p =
            assemble("# header comment\nmain:  # trailing\n\n    nop ; also a comment\n    halt\n")
                .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn jr_non_ra_rejected() {
        let e = assemble("main:\n    jr $t0\n").unwrap_err();
        assert!(e.message.contains("jr $ra"));
    }
}
