//! The linked program image.

use std::collections::BTreeMap;

use dda_isa::Instr;

use crate::layout::MemoryLayout;

/// Metadata about one function in a linked [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionInfo {
    /// The function's symbolic name.
    pub name: String,
    /// First instruction (the entry point).
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
    /// Static frame size in bytes, as declared by the builder. This is the
    /// quantity averaged in the paper's §2.2.1 ("the average frame size of
    /// 4746 functions ... was only 7 words").
    pub frame_bytes: u32,
}

impl FunctionInfo {
    /// Static frame size in 4-byte words (rounded up).
    pub fn frame_words(&self) -> u32 {
        self.frame_bytes.div_ceil(4)
    }
}

/// A fully linked program: a flat instruction image, the entry pc, the data
/// [`MemoryLayout`], and per-function metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) entry: u32,
    pub(crate) layout: MemoryLayout,
    pub(crate) functions: Vec<FunctionInfo>,
    pub(crate) symbols: BTreeMap<String, u32>,
}

impl Program {
    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the image (the functional simulator treats
    /// running off the image as a program bug).
    #[inline]
    pub fn fetch(&self, pc: u32) -> Instr {
        self.instrs[pc as usize]
    }

    /// The instruction at `pc`, or `None` if out of range.
    #[inline]
    pub fn get(&self, pc: u32) -> Option<Instr> {
        self.instrs.get(pc as usize).copied()
    }

    /// Number of (static) instructions in the image.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the image contains no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The entry pc (start of `main`, or of the first function).
    #[inline]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The data-memory layout.
    #[inline]
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// All instructions, in pc order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Per-function metadata, in layout order.
    pub fn functions(&self) -> &[FunctionInfo] {
        &self.functions
    }

    /// Looks up the entry pc of a function by name.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The function containing `pc`, if any.
    pub fn function_at(&self, pc: u32) -> Option<&FunctionInfo> {
        // Functions are laid out contiguously in `start` order.
        let idx = self.functions.partition_point(|f| f.end <= pc);
        self.functions
            .get(idx)
            .filter(|f| f.start <= pc && pc < f.end)
    }

    /// Average static frame size in words across all functions — the
    /// paper's §2.2.1 static statistic.
    pub fn mean_static_frame_words(&self) -> f64 {
        if self.functions.is_empty() {
            return 0.0;
        }
        let total: u64 = self.functions.iter().map(|f| f.frame_words() as u64).sum();
        total as f64 / self.functions.len() as f64
    }

    /// A textual listing of the whole image (disassembly with function
    /// headers), mainly for debugging and documentation examples.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.functions {
            let _ = writeln!(out, "{}:  # frame {} bytes", f.name, f.frame_bytes);
            for pc in f.start..f.end {
                let _ = writeln!(out, "  {pc:6}: {}", self.instrs[pc as usize]);
            }
        }
        out
    }

    /// Emits the program as assembler source that re-[`assemble`]s to the
    /// same image — the round-trippable sibling of [`Program::listing`]
    /// (which is formatted for humans, not the parser).
    ///
    /// Functions are emitted in layout order with their `frame`
    /// declarations; all control targets are numeric absolute pcs, which
    /// the assembler accepts directly. The round trip is exact when the
    /// program follows the assembler's conventions: functions partition
    /// the image, the layout is [`MemoryLayout::standard`], the entry is
    /// `main` (or the first function), and unary FPU ops carry `ft == fs`
    /// (the normal form the parser produces). Programs from the builder,
    /// the assembler and the fuzz generator all satisfy these.
    ///
    /// [`assemble`]: crate::assemble
    /// [`MemoryLayout::standard`]: crate::MemoryLayout::standard
    pub fn to_asm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.functions {
            if f.frame_bytes == 0 {
                let _ = writeln!(out, "{}:", f.name);
            } else {
                let _ = writeln!(out, "{}: frame {}", f.name, f.frame_bytes);
            }
            for pc in f.start..f.end {
                let _ = writeln!(out, "    {}", self.instrs[pc as usize]);
            }
        }
        out
    }

    /// Static basic-block leader pre-scan.
    ///
    /// Returns one flag per instruction: `true` when the pc can begin a
    /// basic block under any *statically visible* control flow — the
    /// entry pc, every function start, every branch/jump/call target,
    /// the fall-through pc of every conditional branch, and the return
    /// site (`call pc + 1`) of every call (which is exactly the dynamic
    /// target set of the matching `ret`). Indirect-call and return
    /// targets that never appear statically are discovered at run time
    /// by the translation cache; splitting on static leaders here keeps
    /// dynamically discovered blocks from overlapping already-decoded
    /// ones, so each static region is decoded at most once.
    pub fn leaders(&self) -> Vec<bool> {
        let mut leaders = vec![false; self.instrs.len()];
        let mut mark = |pc: u32| {
            if let Some(l) = leaders.get_mut(pc as usize) {
                *l = true;
            }
        };
        mark(self.entry);
        for f in &self.functions {
            mark(f.start);
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            let pc = pc as u32;
            match *i {
                Instr::Branch { target, .. } => {
                    mark(target);
                    mark(pc + 1);
                }
                Instr::Jump { target } => mark(target),
                Instr::Call { target } => {
                    mark(target);
                    mark(pc + 1);
                }
                Instr::CallReg { .. } => mark(pc + 1),
                // `Ret` targets are return sites, marked at their call;
                // the pc after a `ret`/`jump`/`halt` starts a new block
                // only if something statically reaches it.
                _ => {}
            }
        }
        leaders
    }

    /// Counts of static loads and stores, split by stream hint — used to
    /// sanity-check generated workloads.
    pub fn static_mem_mix(&self) -> StaticMemMix {
        let mut mix = StaticMemMix::default();
        for i in &self.instrs {
            use dda_isa::StreamHint;
            if let Some((_, _, _, hint)) = i.mem_operand() {
                let (total, local) = if i.is_load() {
                    (&mut mix.loads, &mut mix.local_loads)
                } else {
                    (&mut mix.stores, &mut mix.local_stores)
                };
                *total += 1;
                if hint == StreamHint::Local {
                    *local += 1;
                }
            }
        }
        mix
    }
}

/// Static instruction-mix summary (see [`Program::static_mem_mix`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StaticMemMix {
    /// Static load instructions.
    pub loads: usize,
    /// Static loads hinted local.
    pub local_loads: usize,
    /// Static store instructions.
    pub stores: usize,
    /// Static stores hinted local.
    pub local_stores: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use dda_isa::{Gpr, MemWidth, StreamHint};

    fn two_function_program() -> Program {
        let mut main = FunctionBuilder::new("main");
        main.load_imm(Gpr::T0, 1);
        main.call("f");
        main.halt();
        let mut f = FunctionBuilder::with_frame("f", 16);
        f.store(Gpr::T0, Gpr::SP, 0, MemWidth::Word, StreamHint::Local);
        f.ret();
        let mut b = ProgramBuilder::new();
        b.add_function(main);
        b.add_function(f);
        b.build().unwrap()
    }

    #[test]
    fn function_lookup_by_pc() {
        let p = two_function_program();
        assert_eq!(p.function_at(0).unwrap().name, "main");
        assert_eq!(p.function_at(2).unwrap().name, "main");
        assert_eq!(p.function_at(3).unwrap().name, "f");
        assert_eq!(p.function_at(4).unwrap().name, "f");
        assert!(p.function_at(99).is_none());
    }

    #[test]
    fn symbols_and_entry() {
        let p = two_function_program();
        assert_eq!(p.symbol("main"), Some(0));
        assert_eq!(p.symbol("f"), Some(3));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn static_frame_statistics() {
        let p = two_function_program();
        // main has frame 0, f has frame 16 bytes = 4 words.
        assert_eq!(p.functions()[1].frame_words(), 4);
        assert!((p.mean_static_frame_words() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn static_mem_mix_counts_hints() {
        let p = two_function_program();
        let mix = p.static_mem_mix();
        assert_eq!(mix.stores, 1);
        assert_eq!(mix.local_stores, 1);
        assert_eq!(mix.loads, 0);
    }

    #[test]
    fn leader_scan_marks_static_control_flow() {
        // main:  0 li, 1 jal f, 2 halt      f: 3 sw, 4 ret
        let p = two_function_program();
        let l = p.leaders();
        assert_eq!(l.len(), 5);
        assert!(l[0], "entry/function start");
        assert!(!l[1], "middle of main");
        assert!(l[2], "return site of the call");
        assert!(l[3], "call target / function start");
        assert!(!l[4], "middle of f");
    }

    #[test]
    fn leader_scan_marks_branch_targets_and_fall_through() {
        use crate::builder::FunctionBuilder;
        use dda_isa::BranchCond;
        let mut f = FunctionBuilder::new("main");
        let top = f.new_label();
        f.load_imm(Gpr::T0, 3); // 0
        f.bind(top); // 1
        f.addi(Gpr::T0, Gpr::T0, -1); // 1
        f.branch(BranchCond::Gt, Gpr::T0, Gpr::ZERO, top); // 2
        f.halt(); // 3
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        let p = b.build().unwrap();
        let l = p.leaders();
        assert!(l[0], "entry");
        assert!(l[1], "branch target");
        assert!(!l[2], "branch itself is not a leader");
        assert!(l[3], "branch fall-through");
    }

    #[test]
    fn listing_contains_function_names() {
        let p = two_function_program();
        let l = p.listing();
        assert!(l.contains("main:"));
        assert!(l.contains("f:"));
        assert!(l.contains("jal"));
    }
}
