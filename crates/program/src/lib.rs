#![warn(missing_docs)]

//! # dda-program — program representation and assembly
//!
//! A [`Program`] is a flat instruction image plus a [`MemoryLayout`]
//! describing where the global, heap and stack regions live in the 32-bit
//! address space, and per-function metadata ([`FunctionInfo`]) used by the
//! workload-characterisation experiments (the paper's Figures 2 and 3).
//!
//! Programs are assembled with [`ProgramBuilder`] / [`FunctionBuilder`]:
//! functions are built independently with local labels and symbolic calls,
//! then linked into one image with all control-flow targets resolved.
//!
//! ```
//! use dda_program::{ProgramBuilder, FunctionBuilder};
//! use dda_isa::{Gpr, AluOp};
//!
//! # fn main() -> Result<(), dda_program::BuildError> {
//! let mut main = FunctionBuilder::new("main");
//! main.load_imm(Gpr::T0, 5);
//! main.call("double");
//! main.halt();
//!
//! let mut double = FunctionBuilder::new("double");
//! double.alu(AluOp::Add, Gpr::V0, Gpr::T0, Gpr::T0);
//! double.ret();
//!
//! let mut b = ProgramBuilder::new();
//! b.add_function(main);
//! b.add_function(double);
//! let program = b.build()?;
//! assert_eq!(program.len(), 5);
//! # Ok(())
//! # }
//! ```

mod asm;
mod builder;
pub mod fuzz;
mod layout;
mod program;

pub use asm::{assemble, AsmError};
pub use builder::{BuildError, FunctionBuilder, Label, ProgramBuilder};
pub use fuzz::FuzzWeights;
pub use layout::{MemRegion, MemoryLayout};
pub use program::{FunctionInfo, Program};
