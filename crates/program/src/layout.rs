//! The data-memory layout of a program.

use core::fmt;

/// The region of the data address space an address falls into.
///
/// The region is the ground truth for local/non-local classification: an
/// access is a *local variable access* in the paper's sense exactly when
/// its address lies in [`MemRegion::Stack`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemRegion {
    /// Statically allocated (global/static) data, indexed off `$gp`.
    Global,
    /// Dynamically allocated (heap) data.
    Heap,
    /// The run-time stack: local variables, spill slots, saved registers,
    /// outgoing arguments.
    Stack,
    /// Outside every mapped region.
    Unmapped,
}

impl fmt::Display for MemRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemRegion::Global => "global",
            MemRegion::Heap => "heap",
            MemRegion::Stack => "stack",
            MemRegion::Unmapped => "unmapped",
        };
        f.write_str(s)
    }
}

/// Placement and size of the global, heap and stack regions.
///
/// The stack grows *down* from `stack_base`; the lowest legal stack byte is
/// `stack_base - stack_size`. Regions never overlap — [`MemoryLayout::new`]
/// validates this — which is what makes the LSQ/LVAQ partition of the
/// data-decoupled architecture alias-free (paper §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoryLayout {
    global_base: u32,
    global_size: u32,
    heap_base: u32,
    heap_size: u32,
    stack_base: u32,
    stack_size: u32,
}

impl MemoryLayout {
    /// The default layout: 16 MB of globals at `0x1000_0000`, 64 MB of heap
    /// at `0x2000_0000`, and a 4 MB stack topping out at `0x7fff_fff0`.
    pub fn standard() -> MemoryLayout {
        match MemoryLayout::new(
            0x1000_0000,
            16 << 20,
            0x2000_0000,
            64 << 20,
            0x7fff_fff0,
            4 << 20,
        ) {
            Ok(l) => l,
            Err(e) => unreachable!("standard layout is valid: {e}"),
        }
    }

    /// Creates a layout after validating region alignment and disjointness.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if any base is not
    /// 16-byte aligned, any size is zero, or the regions overlap.
    pub fn new(
        global_base: u32,
        global_size: u32,
        heap_base: u32,
        heap_size: u32,
        stack_base: u32,
        stack_size: u32,
    ) -> Result<MemoryLayout, String> {
        for (name, base) in [
            ("global", global_base),
            ("heap", heap_base),
            ("stack", stack_base),
        ] {
            if base % 16 != 0 {
                return Err(format!("{name} base {base:#x} is not 16-byte aligned"));
            }
        }
        for (name, size) in [
            ("global", global_size),
            ("heap", heap_size),
            ("stack", stack_size),
        ] {
            if size == 0 {
                return Err(format!("{name} region has zero size"));
            }
        }
        if stack_base < stack_size {
            return Err("stack would extend below address zero".to_string());
        }
        let l = MemoryLayout {
            global_base,
            global_size,
            heap_base,
            heap_size,
            stack_base,
            stack_size,
        };
        let mut spans = [l.global_span(), l.heap_span(), l.stack_span()];
        spans.sort_by_key(|s| s.0);
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!(
                    "regions overlap: [{:#x},{:#x}) and [{:#x},{:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        Ok(l)
    }

    fn global_span(&self) -> (u64, u64) {
        (
            self.global_base as u64,
            self.global_base as u64 + self.global_size as u64,
        )
    }

    fn heap_span(&self) -> (u64, u64) {
        (
            self.heap_base as u64,
            self.heap_base as u64 + self.heap_size as u64,
        )
    }

    fn stack_span(&self) -> (u64, u64) {
        (
            self.stack_base as u64 - self.stack_size as u64,
            self.stack_base as u64,
        )
    }

    /// Base address of the global region (the initial `$gp`).
    #[inline]
    pub fn global_base(&self) -> u32 {
        self.global_base
    }

    /// Size of the global region in bytes.
    #[inline]
    pub fn global_size(&self) -> u32 {
        self.global_size
    }

    /// Base address of the heap region.
    #[inline]
    pub fn heap_base(&self) -> u32 {
        self.heap_base
    }

    /// Size of the heap region in bytes.
    #[inline]
    pub fn heap_size(&self) -> u32 {
        self.heap_size
    }

    /// Top of the stack (the initial `$sp`); the stack grows down from here.
    #[inline]
    pub fn stack_base(&self) -> u32 {
        self.stack_base
    }

    /// Maximum stack depth in bytes.
    #[inline]
    pub fn stack_size(&self) -> u32 {
        self.stack_size
    }

    /// Lowest legal stack address.
    #[inline]
    pub fn stack_limit(&self) -> u32 {
        self.stack_base - self.stack_size
    }

    /// Classifies a byte address into its region.
    ///
    /// An access whose address lands in [`MemRegion::Stack`] is, by
    /// definition, a local-variable access.
    #[inline]
    pub fn region_of(&self, addr: u32) -> MemRegion {
        let a = addr as u64;
        let (gs, ge) = self.global_span();
        if a >= gs && a < ge {
            return MemRegion::Global;
        }
        let (hs, he) = self.heap_span();
        if a >= hs && a < he {
            return MemRegion::Heap;
        }
        let (ss, se) = self.stack_span();
        if a >= ss && a < se {
            return MemRegion::Stack;
        }
        MemRegion::Unmapped
    }

    /// Whether `addr` is a stack (local-variable) address.
    #[inline]
    pub fn is_stack(&self, addr: u32) -> bool {
        self.region_of(addr) == MemRegion::Stack
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_classification() {
        let l = MemoryLayout::standard();
        assert_eq!(l.region_of(l.global_base()), MemRegion::Global);
        assert_eq!(l.region_of(l.heap_base() + 100), MemRegion::Heap);
        assert_eq!(l.region_of(l.stack_base() - 4), MemRegion::Stack);
        assert_eq!(l.region_of(l.stack_base()), MemRegion::Unmapped);
        assert_eq!(l.region_of(0), MemRegion::Unmapped);
        assert_eq!(l.region_of(l.stack_limit()), MemRegion::Stack);
        assert_eq!(l.region_of(l.stack_limit() - 1), MemRegion::Unmapped);
    }

    #[test]
    fn stack_boundaries() {
        let l = MemoryLayout::standard();
        assert_eq!(l.stack_limit(), l.stack_base() - l.stack_size());
        assert!(l.is_stack(l.stack_base() - 1));
        assert!(!l.is_stack(l.heap_base()));
    }

    #[test]
    fn overlapping_regions_rejected() {
        let err = MemoryLayout::new(0x1000, 0x1000, 0x1800, 0x1000, 0x8000, 0x100);
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("overlap"));
    }

    #[test]
    fn misaligned_base_rejected() {
        let err = MemoryLayout::new(0x1004, 0x100, 0x2000, 0x100, 0x8000, 0x100);
        assert!(err.unwrap_err().contains("aligned"));
    }

    #[test]
    fn zero_size_rejected() {
        let err = MemoryLayout::new(0x1000, 0, 0x2000, 0x100, 0x8000, 0x100);
        assert!(err.unwrap_err().contains("zero size"));
    }

    #[test]
    fn stack_below_zero_rejected() {
        let err = MemoryLayout::new(0x1000, 0x10, 0x2000, 0x10, 0x100, 0x200);
        assert!(err.unwrap_err().contains("below address zero"));
    }
}
