//! # dda-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§4), each
//! returning the printable [`dda_stats::Table`]s that regenerate it, plus the
//! `experiments` binary that runs them from the command line, the
//! `throughput` binary that records simulator MIPS, and the figure
//! benches under `benches/` (running on the in-tree [`microbench`]
//! harness so `cargo bench` needs no network access).
//!
//! The harness runs every benchmark for a fixed instruction budget
//! (configurable via `DDA_BUDGET`, default 300 000 committed instructions
//! for pipeline experiments), so IPC comparisons across configurations
//! always cover the same dynamic instruction stream.

pub mod campaign;
pub mod checkpoint;
pub mod dse;
mod experiments;
mod harness;
pub mod microbench;
pub mod pool;
pub mod sampling;

pub use checkpoint::{config_fingerprint, program_fingerprint, CheckpointStore};
pub use dse::{
    compute_cell, result_key, CellOutcome, CellReport, CellStatus, DseCell, DseRequest, DseService,
    DseSummary, ResultStore, RunPlan, SampledCell, KERNEL_VERSION,
};
pub use microbench::{Bencher, BenchmarkGroup, Criterion, Throughput};
pub use sampling::{
    sample_program, sample_program_adaptive, sample_program_stored, tags_from_checkpoint,
    Confidence, Estimate, SampledRun, SamplingConfig, WindowSample,
};

pub use experiments::{
    ablation_issue_width, ablation_lvaq_size, ablation_mshrs, ablation_steering, ablation_window,
    fig10_latency_sensitivity, fig11_per_program, fig2_instruction_mix, fig3_frame_sizes,
    fig5_bandwidth, fig6_lvc_size, fig7_lvc_ports, fig8_combining, fig9_optimized, l2_traffic,
    lvc_latency, lvc_line_size, small_l1, table1_machine_model, table2_benchmarks,
    table3_fast_forwarding,
};
pub use harness::{
    drain_stream, pipeline_budget, profile, profile_budget, run_config, run_config_checked,
    run_config_checked_with_budget, run_configs_checked, run_configs_checked_with_budget,
    run_configs_for, run_matrix_checked, set_default_budgets, workload_stats, ProfiledWorkload,
};
