//! Minimal in-tree replacement for the Criterion micro-benchmark harness.
//!
//! The `benches/` targets originally ran on Criterion; that crate (and its
//! dependency tree) cannot be fetched in the offline build environment, so
//! this module provides the small API surface those benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. `cargo bench` therefore
//! still runs every figure bench with no network access.
//!
//! Measurement model: each `bench_function` closure is warmed up once,
//! then timed over `sample_size` samples (one iteration batch per sample);
//! the report prints the median, minimum and maximum per-iteration time.
//! This is deliberately simpler than Criterion — no outlier analysis, no
//! saved baselines — but it is dependency-free and good enough to spot
//! order-of-magnitude regressions in the simulation kernel.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to each bench function (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Work per iteration, for rate reporting (mirrors `criterion::Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. instructions) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of measurements (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration; subsequent benchmarks in the
    /// group also report a rate (Melem/s or MB/s).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b); // warm-up (also catches panics before timing)
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(f64::total_cmp);
        if samples.is_empty() {
            println!("  {:40} no iterations", id.as_ref());
        } else {
            let median = samples[samples.len() / 2];
            let rate = match self.throughput {
                Some(Throughput::Elements(n)) if median > 0.0 => {
                    format!(", {:.2} Melem/s", n as f64 / median / 1e6)
                }
                Some(Throughput::Bytes(n)) if median > 0.0 => {
                    format!(", {:.2} MB/s", n as f64 / median / 1e6)
                }
                _ => String::new(),
            };
            println!(
                "  {:40} median {:>12} (min {}, max {}{rate})",
                id.as_ref(),
                fmt_time(median),
                fmt_time(samples[0]),
                fmt_time(samples[samples.len() - 1]),
            );
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to the benchmark closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine`, keeping its result alive so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a bench group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness = false bench targets with
            // `--test`; a full measurement pass there would be wasted
            // time, so only smoke-run the wiring.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_counts_iters() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
