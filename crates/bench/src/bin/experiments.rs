//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! experiments <name>...     run the named experiments
//! experiments all           run everything (EXPERIMENTS.md order)
//! experiments --list        list available experiments
//! ```
//!
//! Budgets are controlled by `DDA_BUDGET` (pipeline runs, default 300000
//! committed instructions) and `DDA_PROFILE_BUDGET` (profiling runs,
//! default 2000000).

use std::time::Instant;

use dda_stats::Table;

type Exp = (&'static str, &'static str, fn() -> Vec<Table>);

fn one(f: fn() -> Table) -> Vec<Table> {
    vec![f()]
}

fn registry() -> Vec<Exp> {
    vec![
        ("table1", "base machine model", || {
            one(dda_bench::table1_machine_model)
        }),
        ("table2", "benchmark roster", || {
            one(dda_bench::table2_benchmarks)
        }),
        ("fig2", "instruction mix / local fractions", || {
            one(dda_bench::fig2_instruction_mix)
        }),
        ("fig3", "frame-size distributions", || {
            one(dda_bench::fig3_frame_sizes)
        }),
        ("fig5", "(N+0) bandwidth requirements", || {
            one(dda_bench::fig5_bandwidth)
        }),
        ("fig6", "LVC miss rate vs size", || {
            one(dda_bench::fig6_lvc_size)
        }),
        ("fig7", "(N+M) performance, no optimizations", || {
            one(dda_bench::fig7_lvc_ports)
        }),
        ("table3", "fast data forwarding", || {
            one(dda_bench::table3_fast_forwarding)
        }),
        ("fig8", "access combining", || {
            one(dda_bench::fig8_combining)
        }),
        ("fig9", "(N+M) performance, optimized", || {
            one(dda_bench::fig9_optimized)
        }),
        ("fig10", "cache-latency sensitivity", || {
            one(dda_bench::fig10_latency_sensitivity)
        }),
        (
            "fig11",
            "per-program (N+M) surfaces",
            dda_bench::fig11_per_program,
        ),
        ("l2traffic", "L2 traffic with/without LVC", || {
            one(dda_bench::l2_traffic)
        }),
        ("lvclat", "(3+3) and LVC latency", || {
            one(dda_bench::lvc_latency)
        }),
        ("smalll1", "§4.4: small fast L1 alternative", || {
            one(dda_bench::small_l1)
        }),
        ("linesize", "§4.2.1: LVC line-size sensitivity", || {
            one(dda_bench::lvc_line_size)
        }),
        ("lvaqsize", "ablation: LVAQ size", || {
            one(dda_bench::ablation_lvaq_size)
        }),
        ("steering", "ablation: classification policy", || {
            one(dda_bench::ablation_steering)
        }),
        ("width", "ablation: issue width", || {
            one(dda_bench::ablation_issue_width)
        }),
        ("window", "ablation: ROB size", || {
            one(dda_bench::ablation_window)
        }),
        ("mshrs", "ablation: MSHR count", || {
            one(dda_bench::ablation_mshrs)
        }),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <name>... | all");
        eprintln!(
            "experiments: {}",
            reg.iter().map(|e| e.0).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for (name, desc, _) in &reg {
            println!("{name:10} {desc}");
        }
        return;
    }
    let selected: Vec<&Exp> = if args.iter().any(|a| a == "all") {
        reg.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                reg.iter().find(|e| e.0 == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment `{a}` (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    for (name, desc, f) in selected {
        let start = Instant::now();
        eprintln!("== {name}: {desc} ==");
        for table in f() {
            println!("{table}");
        }
        eprintln!(
            "   [{name} done in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
    }
}
