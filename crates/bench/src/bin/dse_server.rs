//! `dse_server` — the persistent design-space-exploration service.
//!
//! Binds a TCP listener, prints `LISTENING <addr>` (so scripts binding
//! port 0 learn the ephemeral port), and serves line-delimited DSE
//! requests against a persistent content-addressed [`ResultStore`] —
//! cache hits stream back without simulating an instruction, misses are
//! simulated on the work-stealing pool and saved for every later
//! request.
//!
//!     dse_server [--addr HOST:PORT] [--store DIR] [--ckpt DIR] [--once N]
//!
//! `--addr` defaults to `127.0.0.1:0` (ephemeral). `--store` is the
//! result-cache directory (default `target/dse_store`). `--ckpt` adds a
//! shared checkpoint store so sampled cells fast-forward once per
//! position, ever. `--once N` exits after N connections (the smoke-test
//! shape); the default serves until killed.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

use dda_bench::dse::{serve, DseService, ResultStore};
use dda_bench::CheckpointStore;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut store_dir = "target/dse_store".to_string();
    let mut ckpt_dir: Option<String> = None;
    let mut once: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--store" => store_dir = take("--store"),
            "--ckpt" => ckpt_dir = Some(take("--ckpt")),
            "--once" => once = Some(take("--once").parse().expect("--once takes a count")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: dse_server [--addr HOST:PORT] [--store DIR] [--ckpt DIR] [--once N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let results = ResultStore::open(&store_dir).expect("result store opens");
    let checkpoints = ckpt_dir.map(|d| CheckpointStore::open(d).expect("checkpoint store opens"));
    let shared_ckpts = checkpoints.is_some();
    let svc = DseService::new(results, checkpoints);

    let listener = TcpListener::bind(&addr).expect("listener binds");
    let local = listener.local_addr().expect("listener has an address");
    println!("LISTENING {local}");
    std::io::stdout().flush().expect("stdout flushes");
    eprintln!(
        "[dse_server] kernel={} store={store_dir} ckpt={} conns={}",
        svc.kernel_version(),
        if shared_ckpts { "shared" } else { "none" },
        once.map_or("unbounded".to_string(), |n| n.to_string()),
    );

    match serve(&listener, &svc, once) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[dse_server] accept failed: {e}");
            ExitCode::FAILURE
        }
    }
}
