//! Host-throughput benchmark for the simulation kernel.
//!
//! Runs every preset workload under the paper's base (2+0) machine and
//! the optimized decoupled (4+2) machine, once with the incremental
//! scheduler kernel and once with the straightforward rescan-per-cycle
//! reference kernel (`MachineConfig::reference_kernel`), and reports host
//! MIPS (millions of committed instructions per wall-clock second) and
//! simulated cycles per second for each. The two kernels must produce
//! bit-identical [`SimResult`]s — the run aborts if they diverge.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dda-bench --bin throughput [-- --quick]
//!     [--budget N] [--out PATH]
//! ```
//!
//! `--quick` restricts the sweep to three representative workloads with a
//! reduced budget (the CI smoke mode); `--workloads a,b,...` restricts it
//! to named workloads (case-insensitive); `--budget` overrides the
//! committed instruction budget per run; `--reps` sets the repetitions
//! per timing (best-of-N, default 3, to damp scheduler noise); `--out`
//! changes the JSON report path (default `BENCH_throughput.json`).
//!
//! After the per-workload kernel timings the binary reruns the full
//! (workload × config) matrix once through the work-stealing sweep pool
//! and records sweep throughput in configurations per second — the number
//! figure regeneration is bounded by — cross-checking that the pooled
//! results stay bit-identical to the serially-timed fast-kernel runs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dda_bench::{pipeline_budget, run_matrix_checked};
use dda_core::{MachineConfig, SimResult, Simulator};
use dda_vm::TCacheStats;
use dda_workloads::Benchmark;

/// One timed simulation.
struct Timed {
    res: SimResult,
    /// Translation-cache counters of the run's front-end (all zero for
    /// reference-kernel runs, which interpret one instruction at a time).
    tcache: TCacheStats,
    secs: f64,
}

impl Timed {
    fn mips(&self) -> f64 {
        self.res.committed as f64 / 1e6 / self.secs
    }

    fn cycles_per_sec(&self) -> f64 {
        self.res.cycles as f64 / self.secs
    }
}

fn run_timed(
    cfg: &MachineConfig,
    program: &Arc<dda_program::Program>,
    budget: u64,
    reps: u32,
) -> Timed {
    let mut best: Option<Timed> = None;
    for _ in 0..reps.max(1) {
        let sim = Simulator::new(cfg.clone()).expect("valid machine configuration");
        let start = Instant::now();
        let (res, tcache) = sim
            .run_shared_detailed(Arc::clone(program), budget)
            .expect("workload executes cleanly");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        match &mut best {
            None => best = Some(Timed { res, tcache, secs }),
            Some(b) => {
                assert_eq!(b.res, res, "nondeterministic result across repetitions");
                assert_eq!(
                    b.tcache, tcache,
                    "nondeterministic front-end across repetitions"
                );
                b.secs = b.secs.min(secs);
            }
        }
    }
    best.expect("at least one repetition")
}

fn json_pair(out: &mut String, label: &str, t: &Timed) {
    let _ = write!(
        out,
        "\"{label}\": {{\"mips\": {:.3}, \"cycles_per_sec\": {:.0}, \
         \"host_secs\": {:.4}, \"cycles\": {}, \"committed\": {}, \"ipc\": {:.4}}}",
        t.mips(),
        t.cycles_per_sec(),
        t.secs,
        t.res.cycles,
        t.res.committed,
        t.res.ipc(),
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: throughput [--quick] [--workloads a,b,...] [--reps N] [--budget N] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_throughput.json");
    let mut budget: Option<u64> = None;
    let mut reps: u32 = 3;
    let mut workload_filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--workloads" => {
                workload_filter = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--workloads needs a CSV list")),
                )
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs an integer"))
            }
            "--budget" => {
                budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--budget needs an integer")),
                )
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let budget = budget.unwrap_or_else(|| if quick { 50_000 } else { pipeline_budget() });
    let workloads: Vec<Benchmark> = if let Some(filter) = &workload_filter {
        filter
            .split(',')
            .filter(|n| !n.is_empty())
            .map(|n| {
                // Accept "129.compress" or just "compress".
                let n = n.trim();
                Benchmark::ALL
                    .iter()
                    .copied()
                    .find(|b| {
                        let full = b.name();
                        full.eq_ignore_ascii_case(n)
                            || full
                                .split_once('.')
                                .is_some_and(|(_, short)| short.eq_ignore_ascii_case(n))
                    })
                    .unwrap_or_else(|| usage(&format!("unknown workload: {n}")))
            })
            .collect()
    } else if quick {
        vec![Benchmark::Compress, Benchmark::Li, Benchmark::Vortex]
    } else {
        Benchmark::ALL.to_vec()
    };
    if workloads.is_empty() {
        usage("no workloads selected");
    }
    let workloads: &[Benchmark] = &workloads;

    // Fail on an unwritable report path now, not after minutes of timing.
    if let Err(e) = std::fs::write(&out_path, "") {
        usage(&format!("cannot write {out_path}: {e}"));
    }

    // The two machines: the paper's (2+0) base and the recommended (4+2)
    // decoupled design point with both §2.2.2 optimizations.
    let base = MachineConfig::iscapaper_base();
    let dec = MachineConfig::n_plus_m(4, 2).with_optimizations();
    let mut base_ref = base.clone();
    base_ref.reference_kernel = true;
    let mut dec_ref = dec.clone();
    dec_ref.reference_kernel = true;

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"budget\": {budget},\n  \"quick\": {quick},\n  \"reps\": {reps},\n  \"workloads\": [\n"
    );

    let mut speedups: Vec<f64> = Vec::new();
    let mut serial_fast: Vec<SimResult> = Vec::new();
    let mut serial_fast_secs = 0.0f64;
    let mut tc_total = TCacheStats::default();
    for (wi, &bench) in workloads.iter().enumerate() {
        let program = Arc::new(bench.program(u32::MAX / 2));
        eprintln!("[throughput] {} (budget {budget})", bench.name());

        let mut row = format!("    {{\"name\": \"{}\", ", bench.name());
        for (key, cfg, cfg_ref) in [
            ("base_2p0", &base, &base_ref),
            ("decoupled_4p2", &dec, &dec_ref),
        ] {
            let fast = run_timed(cfg, &program, budget, reps);
            let refr = run_timed(cfg_ref, &program, budget, reps);
            assert_eq!(
                fast.res,
                refr.res,
                "{} {key}: incremental kernel diverged from the reference kernel",
                bench.name()
            );
            let speedup = fast.mips() / refr.mips();
            speedups.push(speedup);
            eprintln!(
                "[throughput]   {key}: {:.2} MIPS fast vs {:.2} MIPS reference ({speedup:.2}x)",
                fast.mips(),
                refr.mips()
            );
            let _ = write!(row, "\"{key}\": {{");
            json_pair(&mut row, "fast", &fast);
            row.push_str(", ");
            json_pair(&mut row, "reference", &refr);
            let _ = write!(row, ", \"kernel_speedup\": {speedup:.3}}}, ");
            serial_fast_secs += fast.secs;
            tc_total.merge(&fast.tcache);
            serial_fast.push(fast.res);
        }
        row.truncate(row.len() - 2);
        row.push('}');
        if wi + 1 < workloads.len() {
            row.push(',');
        }
        json.push_str(&row);
        json.push('\n');
    }

    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    json.push_str("  ],\n");

    // Sweep throughput: the full (workload × config) matrix once through
    // the work-stealing pool, cross-checked against the serially-timed
    // fast-kernel results above.
    let sweep_cfgs = [base.clone(), dec.clone()];
    let n_tasks = workloads.len() * sweep_cfgs.len();
    let workers = dda_bench::pool::default_workers(n_tasks);
    let host_cpus = dda_bench::pool::host_parallelism();
    eprintln!("[throughput] sweep: {n_tasks} configs on {workers} workers ({host_cpus} host CPUs)");
    let sweep_start = Instant::now();
    let matrix = run_matrix_checked(workloads, &sweep_cfgs, budget);
    let sweep_secs = sweep_start.elapsed().as_secs_f64().max(1e-9);
    for (wi, bench) in workloads.iter().enumerate() {
        for (ci, _) in sweep_cfgs.iter().enumerate() {
            let pooled = matrix[wi][ci].as_ref().expect("sweep run executes cleanly");
            assert_eq!(
                pooled,
                &serial_fast[wi * sweep_cfgs.len() + ci],
                "{}: pooled sweep diverged from the serial fast kernel",
                bench.name()
            );
        }
    }
    let configs_per_sec = n_tasks as f64 / sweep_secs;
    let parallel_speedup = serial_fast_secs / sweep_secs;
    // Honest accounting: on one worker the pooled sweep *is* the serial
    // sweep plus pool overhead, so a speedup near (or slightly below) 1.0
    // is the host's limitation, not a pool regression. `serial_equivalent`
    // and `parallel_efficiency` (speedup per worker) make that legible to
    // anyone diffing BENCH_throughput.json across hosts.
    let serial_equivalent = workers == 1;
    let parallel_efficiency = parallel_speedup / workers as f64;
    eprintln!(
        "[throughput] sweep: {configs_per_sec:.2} configs/sec \
         ({sweep_secs:.2}s pooled vs {serial_fast_secs:.2}s serial, {parallel_speedup:.2}x, \
         {:.0}% efficiency)",
        parallel_efficiency * 100.0
    );
    if serial_equivalent {
        eprintln!(
            "[throughput] sweep ran on 1 worker (host CPUs: {host_cpus}): \
             serial-equivalent, parallel_speedup ≈ 1.0 expected"
        );
    }
    let _ = write!(
        json,
        "  \"sweep\": {{\"tasks\": {n_tasks}, \"workers\": {workers}, \
         \"host_cpus\": {host_cpus}, \"serial_equivalent\": {serial_equivalent}, \
         \"host_secs\": {sweep_secs:.4}, \"configs_per_sec\": {configs_per_sec:.3}, \
         \"serial_fast_secs\": {serial_fast_secs:.4}, \
         \"parallel_speedup\": {parallel_speedup:.3}, \
         \"parallel_efficiency\": {parallel_efficiency:.3}, \"bit_identical\": true}},\n"
    );
    // Block-cache behaviour of the fast-kernel front-end, aggregated over
    // the serially-timed runs above: the hit rate is the fraction of block
    // executions that never touched the decoder, `blocks_decoded` the
    // decode-once count.
    let blocks_per_sec = tc_total.blocks_replayed as f64 / serial_fast_secs.max(1e-9);
    eprintln!(
        "[throughput] block cache: {:.4} hit rate, {:.2} mean block len, \
         {} blocks decoded once, {:.0} blocks/sec",
        tc_total.hit_rate(),
        tc_total.mean_block_len(),
        tc_total.blocks_decoded,
        blocks_per_sec,
    );
    let _ = write!(
        json,
        "  \"block_cache\": {{\"hit_rate\": {:.6}, \"mean_block_len\": {:.3}, \
         \"blocks_decoded\": {}, \"blocks_replayed\": {}, \"ops_replayed\": {}, \
         \"inline_hit_rate\": {:.6}, \"blocks_per_sec\": {blocks_per_sec:.0}}},\n",
        tc_total.hit_rate(),
        tc_total.mean_block_len(),
        tc_total.blocks_decoded,
        tc_total.blocks_replayed,
        tc_total.ops_replayed,
        tc_total.inline_hit_rate(),
    );
    let _ = write!(json, "  \"geomean_kernel_speedup\": {geomean:.3}\n}}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        print!("{json}");
        std::process::exit(1);
    }
    eprintln!("[throughput] geomean kernel speedup {geomean:.2}x -> {out_path}");
}
