//! Interval-sampling validation and speed report.
//!
//! For every preset workload under the recommended decoupled (4+2)
//! machine this binary
//!
//! 1. **validates** the sampling estimator: a full detailed run at
//!    `--budget` instructions is compared against
//!    [`dda_bench::sample_program`] with the same budget, and the full
//!    run's CPI must fall inside the sampled confidence interval;
//! 2. **times** the payoff: at `--speed-budget` (default 3 M
//!    instructions, ten times the pipeline budget) the sampled run must
//!    be at least 5× faster in wall-clock time than full detail,
//!    aggregated across all workloads.
//!
//! The report is written to `BENCH_sampling.json` and the process exits
//! nonzero when either gate fails, so CI can run it directly.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dda-bench --bin sampling [-- --quick]
//!     [--budget N] [--speed-budget N] [--windows K] [--window N]
//!     [--warmup N] [--confidence 90|95|99] [--no-warm]
//!     [--store DIR] [--out PATH] [--adaptive FRAC] [--max-windows N]
//! ```
//!
//! `--quick` restricts the run to one workload with tiny budgets and
//! skips the 5× speed gate (the CI smoke mode); `--store DIR` routes
//! window positioning through a content-addressed
//! [`dda_bench::CheckpointStore`], so a second invocation restores
//! instead of replaying. `--adaptive FRAC` grows the window count
//! geometrically (doubling, capped by `--max-windows`) until the CPI
//! confidence half-width is at most `FRAC` of the mean — the adaptive
//! mode of [`dda_bench::sample_program_adaptive`].

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dda_bench::{sample_program_adaptive, CheckpointStore, Confidence, SampledRun, SamplingConfig};
use dda_core::{MachineConfig, Simulator};
use dda_workloads::Benchmark;

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: sampling [--quick] [--budget N] [--speed-budget N] [--windows K] \
         [--window N] [--warmup N] [--confidence 90|95|99] [--no-warm] [--store DIR] [--out PATH] \
         [--adaptive FRAC] [--max-windows N]"
    );
    std::process::exit(2);
}

/// A timed full-detail reference run.
struct FullRun {
    cpi: f64,
    committed: u64,
    secs: f64,
}

fn run_full(cfg: &MachineConfig, program: &Arc<dda_program::Program>, budget: u64) -> FullRun {
    let sim = Simulator::new(cfg.clone()).expect("valid machine configuration");
    let start = Instant::now();
    let res = sim
        .run_shared(Arc::clone(program), budget)
        .expect("workload executes cleanly");
    FullRun {
        cpi: res.cycles as f64 / res.committed.max(1) as f64,
        committed: res.committed,
        secs: start.elapsed().as_secs_f64().max(1e-9),
    }
}

fn run_sampled(
    cfg: &MachineConfig,
    program: &Arc<dda_program::Program>,
    scfg: &SamplingConfig,
    store: Option<&CheckpointStore>,
) -> (SampledRun, u32) {
    sample_program_adaptive(cfg, Arc::clone(program), scfg, store)
        .expect("workload samples cleanly")
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_sampling.json");
    let mut budget: u64 = 300_000;
    let mut speed_budget: u64 = 3_000_000;
    let mut shape = SamplingConfig::for_budget(0);
    let mut store_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut int = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{what} needs an integer")))
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--no-warm" => shape.functional_warmup = false,
            "--budget" => budget = int("--budget"),
            "--speed-budget" => speed_budget = int("--speed-budget"),
            "--windows" => shape.windows = int("--windows") as usize,
            "--window" => shape.window_insts = int("--window"),
            "--warmup" => shape.warmup_insts = int("--warmup"),
            "--confidence" => {
                shape.confidence = Confidence::from_percent(int("--confidence") as u32)
                    .unwrap_or_else(|| usage("--confidence must be 90, 95 or 99"))
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--store" => {
                store_dir = Some(args.next().unwrap_or_else(|| usage("--store needs a dir")))
            }
            "--adaptive" => {
                let frac: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| *f > 0.0)
                    .unwrap_or_else(|| usage("--adaptive needs a positive fraction"));
                shape.adaptive_target = Some(frac);
            }
            "--max-windows" => shape.max_windows = int("--max-windows") as usize,
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let workloads: &[Benchmark] = if quick {
        budget = budget.min(40_000);
        speed_budget = speed_budget.min(200_000);
        shape.windows = shape.windows.min(4);
        shape.window_insts = shape.window_insts.min(1_000);
        shape.warmup_insts = shape.warmup_insts.min(500);
        &[Benchmark::Compress]
    } else {
        &Benchmark::ALL
    };
    if shape.windows < 2 {
        usage("--windows must be >= 2 for a finite confidence interval");
    }
    // The sampling budgets become the process-wide defaults, so any
    // harness code reached from here sees a consistent stream length.
    dda_bench::set_default_budgets(budget, speed_budget);
    let store = store_dir.as_ref().map(|d| {
        CheckpointStore::open(d).unwrap_or_else(|e| usage(&format!("cannot open store {d}: {e}")))
    });

    // Fail on an unwritable report path now, not after minutes of timing.
    if let Err(e) = std::fs::write(&out_path, "") {
        usage(&format!("cannot write {out_path}: {e}"));
    }

    let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"budget\": {budget},\n  \"speed_budget\": {speed_budget},\n  \"quick\": {quick},\n  \
         \"machine\": \"decoupled_4p2_opt\",\n  \
         \"sampling\": {{\"windows\": {}, \"window_insts\": {}, \"warmup_insts\": {}, \
         \"confidence_pct\": {}, \"functional_warmup\": {}}},\n",
        shape.windows,
        shape.window_insts,
        shape.warmup_insts,
        shape.confidence.percent(),
        shape.functional_warmup,
    );
    let _ = write!(
        json,
        "  \"adaptive\": {{\"target_rel_half_width\": {}, \"max_windows\": {}}},\n",
        shape
            .adaptive_target
            .map_or("null".to_string(), |t| format!("{t}")),
        shape.max_windows,
    );

    // Phase 1 — validation: sampled CPI interval must cover the full run.
    let mut all_within = true;
    json.push_str("  \"validation\": [\n");
    for (wi, &bench) in workloads.iter().enumerate() {
        let program = Arc::new(bench.program(u32::MAX / 2));
        let full = run_full(&cfg, &program, budget);
        let scfg = SamplingConfig {
            budget,
            ..shape.clone()
        };
        let (s, rounds) = run_sampled(&cfg, &program, &scfg, store.as_ref());
        let within = s.cpi.contains(full.cpi);
        all_within &= within;
        let err_pct = (s.cpi.mean - full.cpi).abs() / full.cpi * 100.0;
        eprintln!(
            "[sampling] {}: full CPI {:.4}, sampled {:.4} ± {:.4} ({} windows) — {}",
            bench.name(),
            full.cpi,
            s.cpi.mean,
            s.cpi.half_width,
            s.windows.len(),
            if within { "within CI" } else { "OUTSIDE CI" },
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"full_cpi\": {:.6}, \"full_committed\": {}, \
             \"full_secs\": {:.4}, \"sampled_cpi\": {:.6}, \"ci_half_width\": {:.6}, \
             \"within_ci\": {within}, \"abs_err_pct\": {err_pct:.3}, \"windows\": {}, \
             \"adaptive_rounds\": {rounds}, \
             \"detailed_insts\": {}, \"fast_forwarded\": {}, \"halted_early\": {}, \
             \"sampled_secs\": {:.4}}}{}\n",
            bench.name(),
            full.cpi,
            full.committed,
            full.secs,
            s.cpi.mean,
            s.cpi.half_width,
            s.windows.len(),
            s.detailed_insts,
            s.fast_forwarded,
            s.halted_early,
            s.host_secs,
            if wi + 1 < workloads.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ],\n  \"all_within_ci\": {all_within},\n");

    // Phase 2 — speed: sampled wall-time vs full detail at paper scale.
    let mut full_secs = 0.0f64;
    let mut sampled_secs = 0.0f64;
    json.push_str("  \"speed\": [\n");
    for (wi, &bench) in workloads.iter().enumerate() {
        let program = Arc::new(bench.program(u32::MAX / 2));
        let full = run_full(&cfg, &program, speed_budget);
        let scfg = SamplingConfig {
            budget: speed_budget,
            ..shape.clone()
        };
        let (s, _) = run_sampled(&cfg, &program, &scfg, store.as_ref());
        let speedup = full.secs / s.host_secs.max(1e-9);
        full_secs += full.secs;
        sampled_secs += s.host_secs;
        eprintln!(
            "[sampling] {} @ {speed_budget}: full {:.2}s vs sampled {:.2}s ({speedup:.1}x)",
            bench.name(),
            full.secs,
            s.host_secs,
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"full_secs\": {:.4}, \"sampled_secs\": {:.4}, \
             \"speedup\": {speedup:.2}, \"sampled_cpi\": {:.6}, \"detailed_insts\": {}}}{}\n",
            bench.name(),
            full.secs,
            s.host_secs,
            s.cpi.mean,
            s.detailed_insts,
            if wi + 1 < workloads.len() { "," } else { "" },
        );
    }
    let aggregate = full_secs / sampled_secs.max(1e-9);
    let speed_ok = quick || aggregate >= 5.0;
    let _ = write!(
        json,
        "  ],\n  \"total_full_secs\": {full_secs:.4},\n  \
         \"total_sampled_secs\": {sampled_secs:.4},\n  \
         \"aggregate_speedup\": {aggregate:.2},\n  \"speedup_ok\": {speed_ok}\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("report path was verified writable");
    eprintln!(
        "[sampling] aggregate speedup {aggregate:.1}x, all_within_ci = {all_within}; \
         report in {out_path}"
    );
    if !all_within || !speed_ok {
        eprintln!("[sampling] FAILED: validation or speed gate missed");
        std::process::exit(1);
    }
}
