//! Fault-injection campaign over the hardened simulation runtime.
//!
//! Exercises every fault class the runtime models — LVC line flips, L1
//! line flips, dropped port grants, delayed port grants, and corrupted
//! fast-forwarded store values — against three representative workloads
//! on the recommended (4+2) decoupled machine with the invariant auditor
//! armed, plus one deliberately wedged run (every port grant revoked)
//! that must fail with a *structured* [`SimError::Deadlock`] carrying a
//! populated diagnostic dump.
//!
//! Two gates guard the campaign:
//!
//! 1. **Containment** — no run may abort the host. Every simulation is
//!    wrapped in `catch_unwind`; any panic fails the campaign.
//! 2. **Non-interference** — under [`FaultPlan::none`] the incremental
//!    kernel must stay bit-identical to the rescan reference kernel,
//!    and turning the auditor on must not change any counter. Fault
//!    hooks and audits are pure observation until armed.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dda-bench --bin faults [-- --quick]
//!     [--budget N] [--out PATH]
//! ```
//!
//! `--quick` restricts the sweep to one seed (the CI smoke mode);
//! `--out` changes the JSON report path (default `BENCH_faults.json`).

use std::fmt::Write as _;
use std::sync::Arc;

use dda_bench::campaign::{contained_run, json_escape};
use dda_core::{FaultPlan, MachineConfig, SimError};
use dda_workloads::Benchmark;

/// One named fault class: a plan template whose `seed` is filled per run.
struct FaultClass {
    name: &'static str,
    plan: FaultPlan,
    /// A wedge class is *expected* to end in a structured error.
    expect_error: bool,
}

fn fault_classes() -> Vec<FaultClass> {
    let none = FaultPlan::none();
    vec![
        FaultClass {
            name: "lvc_flip",
            plan: FaultPlan {
                flip_lvc_line: 0.02,
                ..none
            },
            expect_error: false,
        },
        FaultClass {
            name: "l1_flip",
            plan: FaultPlan {
                flip_l1_line: 0.02,
                ..none
            },
            expect_error: false,
        },
        FaultClass {
            name: "drop_grant",
            plan: FaultPlan {
                drop_port_grant: 0.05,
                ..none
            },
            expect_error: false,
        },
        FaultClass {
            name: "delay_grant",
            plan: FaultPlan {
                delay_port_grant: 0.05,
                delay_cycles: 8,
                ..none
            },
            expect_error: false,
        },
        FaultClass {
            name: "corrupt_forward",
            plan: FaultPlan {
                corrupt_forward: 0.1,
                ..none
            },
            expect_error: false,
        },
        // Every port grant revoked: nothing with a memory access can ever
        // launch, so the pipeline wedges and the watchdog must convert
        // that into a structured Deadlock with a diagnostic dump.
        FaultClass {
            name: "drop_grant_total",
            plan: FaultPlan {
                drop_port_grant: 1.0,
                ..none
            },
            expect_error: true,
        },
    ]
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: faults [--quick] [--budget N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_faults.json");
    let mut budget: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--budget" => {
                budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--budget needs an integer")),
                )
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let budget = budget.unwrap_or(if quick { 30_000 } else { 100_000 });
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2] };
    let workloads = [Benchmark::Compress, Benchmark::Li, Benchmark::Vortex];

    // Fail on an unwritable report path now, not after the campaign.
    if let Err(e) = std::fs::write(&out_path, "") {
        usage(&format!("cannot write {out_path}: {e}"));
    }

    let classes = fault_classes();
    let mut panics = 0u64;
    let mut unexpected = 0u64;
    let mut total_runs = 0u64;
    let mut total_injected = 0u64;
    let mut total_detected = 0u64;

    let mut json = String::from("{\n");
    let _ = write!(json, "  \"budget\": {budget},\n  \"quick\": {quick},\n");

    // Gate 2 first: with FaultPlan::none the fast kernel must match the
    // reference kernel bit-for-bit, and the auditor must be free.
    json.push_str("  \"baseline\": [\n");
    for (wi, &bench) in workloads.iter().enumerate() {
        let program = Arc::new(bench.program(u32::MAX / 2));
        let plain = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let audited = plain.clone().with_audit(true);
        let mut reference = plain.clone();
        reference.reference_kernel = true;

        let run = |cfg: &MachineConfig| match contained_run(cfg, &program, budget) {
            Ok(res) => *res,
            Err(SimError::WorkerPanic(msg)) => {
                eprintln!("[faults] BASELINE PANICKED: {}: {msg}", bench.name());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("[faults] BASELINE FAILED: {} errored: {e}", bench.name());
                std::process::exit(1);
            }
        };
        let a = run(&plain);
        let b = run(&audited);
        let c = run(&reference);
        total_runs += 3;
        assert_eq!(
            a,
            b,
            "{}: enabling the auditor changed the result",
            bench.name()
        );
        assert_eq!(
            a,
            c,
            "{}: fast kernel diverged from reference kernel",
            bench.name()
        );
        assert_eq!(
            a.faults,
            Default::default(),
            "fault counters nonzero without a plan"
        );
        eprintln!(
            "[faults] baseline {}: fast == audited == reference ({} cycles)",
            bench.name(),
            a.cycles
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"committed\": {}, \
             \"audit_identical\": true, \"reference_identical\": true}}{}\n",
            bench.name(),
            a.cycles,
            a.committed,
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"campaign\": [\n");

    // Gate 1: the campaign proper. Every class on every workload and
    // seed; every outcome must be Ok-with-stats or a structured error.
    let mut rows: Vec<String> = Vec::new();
    for class in &classes {
        for &bench in &workloads {
            let program = Arc::new(bench.program(u32::MAX / 2));
            for &seed in seeds {
                let plan = FaultPlan { seed, ..class.plan };
                let mut cfg = MachineConfig::n_plus_m(4, 2)
                    .with_optimizations()
                    .with_audit(true)
                    .with_fault_plan(plan);
                if class.expect_error {
                    // Keep the wedged run short: the watchdog only needs
                    // one window with no commit to fire.
                    cfg.deadlock_cycles = 10_000;
                }
                total_runs += 1;
                let mut row = format!(
                    "    {{\"class\": \"{}\", \"workload\": \"{}\", \"seed\": {seed}, ",
                    class.name,
                    bench.name()
                );
                match contained_run(&cfg, &program, budget) {
                    Ok(res) => {
                        let f = res.faults;
                        total_injected += f.injected();
                        total_detected += f.detected();
                        if class.expect_error {
                            eprintln!(
                                "[faults] UNEXPECTED OK: {}/{} seed {seed} should have wedged",
                                class.name,
                                bench.name()
                            );
                            unexpected += 1;
                        }
                        eprintln!(
                            "[faults] {}/{} seed {seed}: survived, {} injected \
                             ({} detected, {} evicted, {} latent)",
                            class.name,
                            bench.name(),
                            f.injected(),
                            f.detected(),
                            f.flips_evicted,
                            f.flips_latent,
                        );
                        let _ = write!(
                            row,
                            "\"outcome\": \"survived\", \"cycles\": {}, \"committed\": {}, \
                             \"injected\": {}, \"detected\": {}, \"evicted\": {}, \
                             \"latent\": {}, \"grants_dropped\": {}, \"grants_delayed\": {}, \
                             \"forwards_corrupted\": {}}}",
                            res.cycles,
                            res.committed,
                            f.injected(),
                            f.detected(),
                            f.flips_evicted,
                            f.flips_latent,
                            f.grants_dropped,
                            f.grants_delayed,
                            f.forwards_corrupted,
                        );
                    }
                    Err(SimError::WorkerPanic(msg)) => {
                        panics += 1;
                        eprintln!(
                            "[faults] HOST PANIC: {}/{} seed {seed}: {msg}",
                            class.name,
                            bench.name()
                        );
                        let _ = write!(
                            row,
                            "\"outcome\": \"host_panic\", \"panic\": \"{}\"}}",
                            json_escape(&msg)
                        );
                    }
                    Err(e) => {
                        if !class.expect_error {
                            eprintln!(
                                "[faults] UNEXPECTED ERROR: {}/{} seed {seed}: {e}",
                                class.name,
                                bench.name()
                            );
                            unexpected += 1;
                        }
                        let (kind, dump_ok) = match &e {
                            SimError::Deadlock(d) => ("deadlock", !d.recent_pcs.is_empty()),
                            SimError::InvariantViolation(_) => ("invariant_violation", true),
                            SimError::Trap(_) => ("trap", true),
                            SimError::Config(_) => ("config", true),
                            SimError::WarmStateMismatch => ("warm_state_mismatch", true),
                            // Handled by the arm above; kept for match
                            // exhaustiveness.
                            SimError::WorkerPanic(_) => ("worker_panic", true),
                        };
                        if class.expect_error {
                            eprintln!(
                                "[faults] {}/{} seed {seed}: structured {kind} as expected",
                                class.name,
                                bench.name()
                            );
                        }
                        let _ = write!(
                            row,
                            "\"outcome\": \"structured_error\", \"error_kind\": \"{kind}\", \
                             \"dump_populated\": {dump_ok}, \"error\": \"{}\"}}",
                            json_escape(&e.to_string())
                        );
                    }
                }
                rows.push(row);
            }
        }
    }
    json.push_str(&rows.join(",\n"));
    json.push('\n');
    let _ = write!(
        json,
        "  ],\n  \"total_runs\": {total_runs},\n  \"total_injected\": {total_injected},\n  \
         \"total_detected\": {total_detected},\n  \"host_panics\": {panics},\n  \
         \"unexpected_outcomes\": {unexpected}\n}}\n"
    );

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        print!("{json}");
        std::process::exit(1);
    }
    eprintln!(
        "[faults] {total_runs} runs, {total_injected} faults injected, \
         {total_detected} detected, {panics} host panics -> {out_path}"
    );
    if panics > 0 || unexpected > 0 {
        eprintln!("[faults] campaign FAILED ({panics} panics, {unexpected} unexpected outcomes)");
        std::process::exit(1);
    }
}
