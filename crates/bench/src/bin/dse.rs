//! `dse` — client for the design-space-exploration service.
//!
//! Three modes:
//!
//! * **client** (default): connect to a running `dse_server`, send one
//!   config-matrix request, and render the figure table incrementally
//!   as `CELL` lines stream back.
//!
//!       dse --addr HOST:PORT --benches compress,li --grid 2+0,4+2 \
//!           [--comb 1,2] [--ff 0,1] [--lvc BYTES] [--seed N] \
//!           [--budget N] [--windows K --window N --warmup N \
//!            --conf 90|95|99 --fwarm 0|1 --adaptive F --maxwin N] \
//!           [--expect-all-hits] [--expect-stream] [--json PATH]
//!
//!   `--expect-all-hits` exits nonzero unless every cell was served
//!   from the cache (the warm-rerun acceptance gate); `--expect-stream`
//!   exits nonzero unless at least one incremental `CELL` line arrived
//!   before `DONE`.
//!
//! * **benchmark** (`--bench [--out PATH] [--budget N]`): spins up an
//!   in-process server on an ephemeral port with fresh stores, runs the
//!   full 12-benchmark port grid cold then warm over real TCP, writes
//!   `BENCH_dse.json`, and gates: the warm pass must be all hits with 0
//!   simulated instructions and at least 20× faster wall-clock than the
//!   cold pass, with incremental streaming observed.
//!
//! * **staleness check** (`--check-stale PATH`): exits nonzero when the
//!   `"kernel"` recorded in a committed `BENCH_dse.json` differs from
//!   this build's `KERNEL_VERSION` — the committed numbers describe a
//!   cache no current build would hit.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::time::Instant;

use dda_bench::dse::{
    serve, DseRequest, DseService, ResultStore, RunPlan, DEFAULT_BUDGET, DEFAULT_SEED,
    KERNEL_VERSION,
};
use dda_bench::CheckpointStore;
use dda_workloads::Benchmark;

/// One `CELL` line, parsed into its key=value fields.
struct CellRow {
    fields: HashMap<String, String>,
}

impl CellRow {
    fn get(&self, k: &str) -> &str {
        self.fields.get(k).map_or("", |v| v.as_str())
    }
}

/// The `DONE` summary line, parsed.
#[derive(Default)]
struct DoneLine {
    cells: u64,
    hits: u64,
    misses: u64,
    errors: u64,
    sim_insts: u64,
}

/// One full request/response exchange with a server.
struct Session {
    rows: Vec<CellRow>,
    done: DoneLine,
    secs: f64,
    /// Seconds between the first `CELL` line and `DONE` — positive when
    /// results streamed incrementally instead of arriving in one burst.
    first_cell_to_done_secs: f64,
}

fn parse_kv(line: &str) -> HashMap<String, String> {
    // `msg=` is always last and may contain spaces; split it off first.
    let (head, msg) = match line.split_once(" msg=") {
        Some((h, m)) => (h, Some(m)),
        None => (line, None),
    };
    let mut kv: HashMap<String, String> = head
        .split_whitespace()
        .filter_map(|t| t.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    if let Some(m) = msg {
        kv.insert("msg".to_string(), m.to_string());
    }
    kv
}

/// Sends `req` to the server at `addr` and consumes the streamed reply,
/// rendering each row as it arrives when `render` is set.
fn run_session(addr: &str, req: &DseRequest, render: bool) -> Result<Session, String> {
    let t0 = Instant::now();
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut out = stream;

    let mut hello = String::new();
    reader.read_line(&mut hello).map_err(|e| e.to_string())?;
    if !hello.starts_with("HELLO dse v1") {
        return Err(format!("unexpected greeting: {}", hello.trim()));
    }
    if render {
        println!("[dse] {}", hello.trim());
    }
    writeln!(out, "{}", req.to_line()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;

    let mut rows = Vec::new();
    let mut first_cell_at: Option<Instant> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("server closed the connection before DONE".into());
        }
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("CELL ") {
            first_cell_at.get_or_insert_with(Instant::now);
            let row = CellRow {
                fields: parse_kv(rest),
            };
            if render {
                match row.get("status") {
                    "error" => println!("  {:<34} error    {}", row.get("label"), row.get("msg")),
                    s => println!(
                        "  {:<34} {:<8} cpi {} ±{}  sim={}",
                        row.get("label"),
                        s,
                        row.get("cpi"),
                        row.get("ci"),
                        row.get("sim")
                    ),
                }
            }
            rows.push(row);
        } else if let Some(rest) = line.strip_prefix("DONE ") {
            let kv = parse_kv(rest);
            let n = |k: &str| kv.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            let done = DoneLine {
                cells: n("cells"),
                hits: n("hits"),
                misses: n("misses"),
                errors: n("errors"),
                sim_insts: n("sim_insts"),
            };
            if render {
                println!("[dse] {line}");
            }
            let gap = first_cell_at.map_or(0.0, |t| t.elapsed().as_secs_f64());
            return Ok(Session {
                rows,
                done,
                secs: t0.elapsed().as_secs_f64(),
                first_cell_to_done_secs: gap,
            });
        } else if let Some(rest) = line.strip_prefix("ERR ") {
            return Err(format!("server rejected the request: {rest}"));
        }
    }
}

fn rows_json(s: &Session) -> String {
    let mut json = String::from("[\n");
    for (i, row) in s.rows.iter().enumerate() {
        let sep = if i + 1 == s.rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"i\": {}, \"label\": \"{}\", \"status\": \"{}\", \"key\": \"{}\", \
             \"cpi\": {}, \"ci\": {}, \"insts\": {}, \"sim\": {}}}{sep}",
            row.get("i"),
            row.get("label"),
            row.get("status"),
            row.get("key"),
            if row.get("cpi").is_empty() {
                "null"
            } else {
                row.get("cpi")
            },
            if row.get("ci").is_empty() {
                "null"
            } else {
                row.get("ci")
            },
            if row.get("insts").is_empty() {
                "0"
            } else {
                row.get("insts")
            },
            if row.get("sim").is_empty() {
                "0"
            } else {
                row.get("sim")
            },
        );
    }
    json.push_str("  ]");
    json
}

fn check_stale(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[dse] cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recorded: Option<u32> = text.split("\"kernel\":").nth(1).and_then(|rest| {
        rest.trim_start()
            .split(|c: char| !c.is_ascii_digit())
            .next()?
            .parse()
            .ok()
    });
    match recorded {
        Some(v) if v == KERNEL_VERSION => {
            println!("[dse] {path} is current (kernel={v})");
            ExitCode::SUCCESS
        }
        Some(v) => {
            eprintln!(
                "[dse] {path} is STALE: recorded kernel={v}, build has KERNEL_VERSION={KERNEL_VERSION} \
                 — regenerate with `dse --bench --out {path}`"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!("[dse] {path} has no \"kernel\" field — regenerate with `dse --bench`");
            ExitCode::FAILURE
        }
    }
}

/// The benchmark grid: all twelve programs across the paper's port
/// sweep, combining 2 + fast forwarding (the recommended design point).
fn bench_request(budget: u64) -> DseRequest {
    DseRequest {
        benches: Benchmark::ALL.to_vec(),
        grid: vec![(2, 0), (1, 1), (2, 2), (4, 2), (8, 4), (16, 0)],
        combining: vec![2],
        fast_forward: vec![true],
        lvc_bytes: None,
        seed: DEFAULT_SEED,
        plan: RunPlan::Full { budget },
    }
}

fn run_bench(out_path: &str, budget: u64) -> ExitCode {
    let root = std::path::Path::new("target").join("dse_bench");
    let _ = std::fs::remove_dir_all(&root);
    let results = ResultStore::open(root.join("results")).expect("result store opens");
    let ckpts = CheckpointStore::open(root.join("ckpt")).expect("checkpoint store opens");
    let svc = DseService::new(results, Some(ckpts));
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener
        .local_addr()
        .expect("listener has an address")
        .to_string();
    let server = std::thread::spawn(move || serve(&listener, &svc, Some(2)));

    let req = bench_request(budget);
    let cells = req.expand().len();
    eprintln!("[dse] bench: {cells} cells over {addr}, budget {budget}");

    eprintln!("[dse] cold pass (simulates every cell)...");
    let cold = run_session(&addr, &req, false).expect("cold pass completes");
    eprintln!(
        "[dse] cold: {:.3}s, {} misses, {} sim insts",
        cold.secs, cold.done.misses, cold.done.sim_insts
    );
    eprintln!("[dse] warm pass (full-grid rerun)...");
    let warm = run_session(&addr, &req, false).expect("warm pass completes");
    eprintln!(
        "[dse] warm: {:.3}s, {} hits, {} sim insts",
        warm.secs, warm.done.hits, warm.done.sim_insts
    );
    server
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");

    let speedup = if warm.secs > 0.0 {
        cold.secs / warm.secs
    } else {
        f64::INFINITY
    };
    let gate_all_hits = warm.done.hits == warm.done.cells && warm.done.cells as usize == cells;
    let gate_zero_insts = warm.done.sim_insts == 0;
    let gate_speedup = speedup >= 20.0;
    let gate_streamed = !cold.rows.is_empty() && cold.first_cell_to_done_secs > 0.0;
    let gate_clean = cold.done.errors == 0 && warm.done.errors == 0;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"dse\",");
    let _ = writeln!(json, "  \"kernel\": {KERNEL_VERSION},");
    let _ = writeln!(
        json,
        "  \"grid\": \"2+0,1+1,2+2,4+2,8+4,16+0\", \"benches\": {}, \"cells\": {cells},",
        Benchmark::ALL.len()
    );
    let _ = writeln!(json, "  \"budget\": {budget}, \"seed\": {DEFAULT_SEED},");
    let _ = writeln!(
        json,
        "  \"cold\": {{\"secs\": {:.4}, \"hits\": {}, \"misses\": {}, \"errors\": {}, \
         \"sim_insts\": {}, \"first_cell_to_done_secs\": {:.4}}},",
        cold.secs,
        cold.done.hits,
        cold.done.misses,
        cold.done.errors,
        cold.done.sim_insts,
        cold.first_cell_to_done_secs
    );
    let _ = writeln!(
        json,
        "  \"warm\": {{\"secs\": {:.4}, \"hits\": {}, \"misses\": {}, \"errors\": {}, \
         \"sim_insts\": {}}},",
        warm.secs, warm.done.hits, warm.done.misses, warm.done.errors, warm.done.sim_insts
    );
    let _ = writeln!(json, "  \"warm_speedup\": {speedup:.1},");
    let _ = writeln!(
        json,
        "  \"gates\": {{\"warm_all_hits\": {gate_all_hits}, \"warm_sim_insts_zero\": {gate_zero_insts}, \
         \"speedup_ge_20x\": {gate_speedup}, \"streamed\": {gate_streamed}, \
         \"no_errors\": {gate_clean}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).expect("report writes");
    eprintln!("[dse] wrote {out_path} (warm speedup {speedup:.1}x)");

    if gate_all_hits && gate_zero_insts && gate_speedup && gate_streamed && gate_clean {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "[dse] GATE FAILURE: all_hits={gate_all_hits} zero_insts={gate_zero_insts} \
             speedup_20x={gate_speedup} streamed={gate_streamed} no_errors={gate_clean}"
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut benches = String::new();
    let mut grid = String::new();
    let mut comb: Option<String> = None;
    let mut ff: Option<String> = None;
    let mut lvc: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut budget = DEFAULT_BUDGET;
    let mut windows = 0usize;
    let mut window = 4_000u64;
    let mut warmup = 2_000u64;
    let mut conf = 95u32;
    let mut fwarm = true;
    let mut adaptive: Option<f64> = None;
    let mut maxwin = 64usize;
    let mut expect_all_hits = false;
    let mut expect_stream = false;
    let mut json_path: Option<String> = None;
    let mut bench_mode = false;
    let mut bench_budget: Option<u64> = None;
    let mut out_path = "BENCH_dse.json".to_string();
    let mut stale_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(take("--addr")),
            "--benches" => benches = take("--benches"),
            "--grid" => grid = take("--grid"),
            "--comb" => comb = Some(take("--comb")),
            "--ff" => ff = Some(take("--ff")),
            "--lvc" => lvc = Some(take("--lvc")),
            "--seed" => seed = take("--seed").parse().expect("--seed takes a number"),
            "--budget" => {
                budget = take("--budget").parse().expect("--budget takes a number");
                bench_budget = Some(budget);
            }
            "--windows" => windows = take("--windows").parse().expect("--windows takes a count"),
            "--window" => window = take("--window").parse().expect("--window takes a count"),
            "--warmup" => warmup = take("--warmup").parse().expect("--warmup takes a count"),
            "--conf" => conf = take("--conf").parse().expect("--conf takes 90/95/99"),
            "--fwarm" => fwarm = take("--fwarm") != "0",
            "--adaptive" => {
                adaptive = Some(
                    take("--adaptive")
                        .parse()
                        .expect("--adaptive takes a fraction"),
                )
            }
            "--maxwin" => maxwin = take("--maxwin").parse().expect("--maxwin takes a count"),
            "--expect-all-hits" => expect_all_hits = true,
            "--expect-stream" => expect_stream = true,
            "--json" => json_path = Some(take("--json")),
            "--bench" => bench_mode = true,
            "--out" => out_path = take("--out"),
            "--check-stale" => stale_path = Some(take("--check-stale")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: dse --addr HOST:PORT --benches A,B --grid N+M,... [options]\n\
                     \x20      dse --bench [--out PATH] [--budget N]\n\
                     \x20      dse --check-stale PATH"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = stale_path {
        return check_stale(&path);
    }
    if bench_mode {
        return run_bench(&out_path, bench_budget.unwrap_or(100_000));
    }

    let Some(addr) = addr else {
        eprintln!("--addr is required outside --bench/--check-stale modes (try --help)");
        return ExitCode::FAILURE;
    };
    // Build the request through the wire-format parser so the client
    // accepts exactly what the server accepts.
    let mut line = format!("DSE v1 benches={benches} grid={grid} seed={seed} budget={budget}");
    if let Some(c) = comb {
        let _ = write!(line, " comb={c}");
    }
    if let Some(f) = ff {
        let _ = write!(line, " ff={f}");
    }
    if let Some(l) = lvc {
        let _ = write!(line, " lvc={l}");
    }
    if windows > 0 {
        let _ = write!(
            line,
            " plan=sampled windows={windows} window={window} warmup={warmup} conf={conf} fwarm={}",
            if fwarm { 1 } else { 0 }
        );
        if let Some(a) = adaptive {
            let _ = write!(line, " adaptive={a} maxwin={maxwin}");
        }
    }
    let req = match DseRequest::parse(&line) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[dse] bad request: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match run_session(&addr, &req, true) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[dse] {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"kernel\": {KERNEL_VERSION},\n  \"cells\": {}\n}}\n",
            rows_json(&session)
        );
        std::fs::write(&path, json).expect("json writes");
        eprintln!("[dse] wrote {path}");
    }
    if expect_all_hits && (session.done.hits != session.done.cells || session.done.sim_insts != 0) {
        eprintln!(
            "[dse] expected all hits: hits={}/{} sim_insts={}",
            session.done.hits, session.done.cells, session.done.sim_insts
        );
        return ExitCode::FAILURE;
    }
    if expect_stream && session.rows.is_empty() {
        eprintln!("[dse] expected at least one streamed CELL line before DONE");
        return ExitCode::FAILURE;
    }
    if session.done.errors > 0 {
        eprintln!("[dse] {} cells errored", session.done.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
