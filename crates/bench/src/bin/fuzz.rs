//! Generative differential fuzzing campaign.
//!
//! Feeds seeded generator/mutator programs (`dda_program::fuzz`) through
//! the fast and reference simulation kernels with the invariant auditor
//! armed and compares outcomes bit-for-bit: any disagreement is a kernel
//! bug. Each input runs under panic isolation and a per-run budget
//! (committed instructions + a tightened deadlock-watchdog window), so a
//! pathological input degrades to one structured record instead of
//! taking the campaign down. Every divergence is delta-debugged to a
//! minimal reproducer and written into the regression corpus.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dda-bench --bin fuzz [-- --quick]
//!     [--programs N] [--seed S] [--budget N] [--mutate-every K]
//!     [--workers N] [--faults] [--plant-defect]
//!     [--out PATH] [--corpus DIR]
//! ```
//!
//! `--quick` is the CI smoke mode (200 programs, smaller budget).
//! `--faults` arms a mild fault plan on *both* kernels (fault-RNG draw
//! order is part of the bit-identity contract, so faulted runs remain a
//! valid oracle). `--plant-defect` arms the test-only planted kernel bug
//! and *expects* the campaign to catch and minimize it — the end-to-end
//! self-test of the oracle, the isolation, and the minimizer.
//!
//! Exit status: 0 for a clean campaign (and, under `--plant-defect`, a
//! caught + fully minimized defect); 1 otherwise.

use std::fmt::Write as _;

use dda_bench::campaign::{
    corpus_entry_source, json_escape, run_campaign, CampaignConfig, CampaignReport,
};
use dda_core::FaultPlan;
use dda_vm::{EDGE_BUCKETS, OP_CLASS_COUNT};

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: fuzz [--quick] [--programs N] [--seed S] [--budget N] \
         [--mutate-every K] [--workers N] [--faults] [--plant-defect] \
         [--out PATH] [--corpus DIR]"
    );
    std::process::exit(2);
}

struct Args {
    quick: bool,
    programs: Option<u32>,
    seed: u64,
    budget: Option<u64>,
    mutate_every: u32,
    workers: usize,
    faults: bool,
    plant_defect: bool,
    out: String,
    corpus: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        programs: None,
        seed: 0xD1FF,
        budget: None,
        mutate_every: 4,
        workers: 0,
        faults: false,
        plant_defect: false,
        out: String::from("BENCH_fuzz.json"),
        corpus: String::from("tests/corpus"),
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, what: &str| -> u64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage(&format!("{what} needs an integer")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => a.quick = true,
            "--programs" => a.programs = Some(num(&mut args, "--programs") as u32),
            "--seed" => a.seed = num(&mut args, "--seed"),
            "--budget" => a.budget = Some(num(&mut args, "--budget")),
            "--mutate-every" => a.mutate_every = num(&mut args, "--mutate-every") as u32,
            "--workers" => a.workers = num(&mut args, "--workers") as usize,
            "--faults" => a.faults = true,
            "--plant-defect" => a.plant_defect = true,
            "--out" => a.out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--corpus" => a.corpus = args.next().unwrap_or_else(|| usage("--corpus needs a dir")),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    a
}

fn report_json(
    a: &Args,
    cc: &CampaignConfig,
    r: &CampaignReport,
    corpus_files: &[String],
) -> String {
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"seed\": {},\n  \"programs\": {},\n  \"budget\": {},\n  \"quick\": {},\n  \
         \"deadlock_window\": {},\n  \"mutate_every\": {},\n  \"faults_armed\": {},\n  \
         \"plant_defect\": {},\n",
        cc.seed,
        r.inputs,
        cc.budget,
        a.quick,
        cc.deadlock_window,
        cc.mutate_every,
        a.faults,
        cc.plant_defect
    );
    let _ =
        write!(
        json,
        "  \"generated\": {},\n  \"mutated\": {},\n  \"completed\": {},\n  \"trapped\": {},\n  \
         \"deadlocked\": {},\n  \"invariant_violations\": {},\n  \"host_panics\": {},\n",
        r.generated, r.mutated, r.completed, r.trapped, r.deadlocked, r.invariant_violations,
        r.host_panics
    );
    let _ = write!(
        json,
        "  \"coverage\": {{\"op_classes_seen\": {}, \"op_classes_total\": {}, \
         \"edge_buckets_seen\": {}, \"edge_buckets_total\": {}, \"instructions_observed\": {}}},\n",
        r.coverage.op_classes_seen(),
        OP_CLASS_COUNT,
        r.coverage.edge_buckets_seen(),
        EDGE_BUCKETS,
        r.coverage.observed()
    );
    json.push_str("  \"divergences\": [\n");
    let rows: Vec<String> = r
        .divergences
        .iter()
        .enumerate()
        .map(|(k, d)| {
            let mut row = format!(
                "    {{\"index\": {}, \"seed\": {}, \"preset\": \"{}\", \
                 \"original_instructions\": {}, ",
                d.index, d.seed, d.preset, d.original_instructions
            );
            match &d.minimized {
                Some(m) => {
                    let _ = write!(
                        row,
                        "\"minimized_instructions\": {}, \"probes\": {}, \"compacted\": {}, ",
                        m.instructions, m.probes, m.compacted
                    );
                }
                None => row.push_str("\"minimized_instructions\": null, "),
            }
            let _ = write!(
                row,
                "\"corpus_file\": {}, \"fast\": \"{}\", \"reference\": \"{}\"}}",
                corpus_files
                    .get(k)
                    .map(|f| format!("\"{}\"", json_escape(f)))
                    .unwrap_or_else(|| "null".to_string()),
                json_escape(&d.fast),
                json_escape(&d.reference)
            );
            row
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        json.push('\n');
    }
    let _ = write!(
        json,
        "  ],\n  \"unminimized_divergences\": {},\n  \"committed_total\": {},\n  \
         \"slowest_input_ms\": {},\n  \"elapsed_ms\": {},\n  \"clean\": {}\n}}\n",
        r.unminimized(),
        r.committed_total,
        r.slowest_input_ms,
        r.elapsed_ms,
        r.clean()
    );
    json
}

fn main() {
    let a = parse_args();
    let programs = a.programs.unwrap_or(if a.quick { 200 } else { 500 });
    let mut cc = CampaignConfig::new(a.seed, programs);
    cc.budget = a.budget.unwrap_or(if a.quick { 8_000 } else { 20_000 });
    cc.mutate_every = a.mutate_every;
    cc.workers = a.workers;
    cc.plant_defect = a.plant_defect;
    if a.faults {
        // Mild, recoverable fault mix; the wedge-everything classes live
        // in the dedicated faults campaign.
        cc.fault_plan = Some(FaultPlan {
            flip_lvc_line: 0.01,
            drop_port_grant: 0.02,
            ..FaultPlan::none()
        });
    }

    // Fail on an unwritable report path now, not after the campaign.
    if let Err(e) = std::fs::write(&a.out, "") {
        usage(&format!("cannot write {}: {e}", a.out));
    }

    eprintln!(
        "[fuzz] campaign: {programs} programs, seed {:#x}, budget {} instrs, \
         window {} cycles{}{}",
        cc.seed,
        cc.budget,
        cc.deadlock_window,
        if a.faults { ", faults armed" } else { "" },
        if a.plant_defect {
            ", planted defect armed"
        } else {
            ""
        },
    );
    let r = run_campaign(&cc);
    eprintln!(
        "[fuzz] {} inputs ({} generated, {} mutated): {} completed, {} trapped, \
         {} deadlocked, {} invariant violations, {} host panics",
        r.inputs,
        r.generated,
        r.mutated,
        r.completed,
        r.trapped,
        r.deadlocked,
        r.invariant_violations,
        r.host_panics
    );
    eprintln!(
        "[fuzz] coverage: {}/{} op classes, {} edge buckets, {} instructions observed",
        r.coverage.op_classes_seen(),
        OP_CLASS_COUNT,
        r.coverage.edge_buckets_seen(),
        r.coverage.observed()
    );

    // Write every minimized reproducer into the regression corpus.
    let mut corpus_files: Vec<String> = Vec::new();
    if !r.divergences.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&a.corpus) {
            eprintln!("[fuzz] cannot create corpus dir {}: {e}", a.corpus);
            std::process::exit(1);
        }
    }
    for d in &r.divergences {
        match corpus_entry_source(cc.seed, d) {
            Some(src) => {
                let name = format!("fuzz-{:08x}-{:04}.s", cc.seed, d.index);
                let path = format!("{}/{}", a.corpus, name);
                if let Err(e) = std::fs::write(&path, src) {
                    eprintln!("[fuzz] cannot write corpus entry {path}: {e}");
                    std::process::exit(1);
                }
                let m = d.minimized.as_ref().map(|m| m.instructions).unwrap_or(0);
                eprintln!(
                    "[fuzz] divergence at input {} (preset {}): minimized {} -> {} instrs, {path}",
                    d.index, d.preset, d.original_instructions, m
                );
                corpus_files.push(path);
            }
            None => {
                eprintln!(
                    "[fuzz] divergence at input {} (preset {}): NOT minimized \
                     (fast: {} | reference: {})",
                    d.index, d.preset, d.fast, d.reference
                );
                corpus_files.push(String::new());
            }
        }
    }

    let json = report_json(&a, &cc, &r, &corpus_files);
    if let Err(e) = std::fs::write(&a.out, &json) {
        eprintln!("cannot write {}: {e}", a.out);
        print!("{json}");
        std::process::exit(1);
    }
    eprintln!(
        "[fuzz] {} divergences ({} unminimized) in {} ms -> {}",
        r.divergences.len(),
        r.unminimized(),
        r.elapsed_ms,
        a.out
    );

    let failed = if a.plant_defect {
        // Self-test mode: the planted bug must be caught and every
        // divergence fully minimized; panics still fail.
        r.host_panics > 0 || r.divergences.is_empty() || r.unminimized() > 0
    } else {
        !r.clean() || r.unminimized() > 0
    };
    if failed {
        eprintln!("[fuzz] campaign FAILED");
        std::process::exit(1);
    }
}
