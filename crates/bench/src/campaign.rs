//! Differential fuzz campaigns: crash-isolated execution, the
//! fast-vs-reference oracle, and divergence minimization.
//!
//! A campaign feeds seeded generator/mutator inputs (from
//! [`dda_program::fuzz`]) through **both** simulation kernels — the
//! optimized fast path and the rescan-per-cycle reference — with the
//! invariant auditor armed and, optionally, a [`FaultPlan`]. The repo's
//! bit-identity discipline makes every input a free oracle: any
//! difference between the two [`SimResult`]s (or their structured
//! errors) is a kernel bug.
//!
//! Three containment layers keep one pathological input from taking the
//! campaign down:
//!
//! 1. every kernel run goes through [`contained_run`], which converts a
//!    panic into [`SimError::WorkerPanic`] — the same flattening the
//!    sweep pool's harness applies;
//! 2. inputs execute as tasks on [`crate::pool`], whose workers already
//!    isolate panics per task;
//! 3. every run is budgeted: a committed-instruction budget bounds
//!    useful work and a tightened deadlock-watchdog window
//!    ([`MachineConfig::with_deadlock_window`]) bounds wedged cycles, so
//!    wall-clock per input is capped at roughly `budget × window`.
//!
//! A divergence is delta-debugged by [`minimize_divergence`]: nop out
//! leader-delimited blocks, then single instructions (the pc layout
//! stays fixed so every control target remains valid), then try a
//! compaction that strips the nops under a monotone pc remap — each step
//! re-validated against the divergence predicate.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use dda_core::{FaultPlan, MachineConfig, SimError, SimResult, Simulator};
use dda_program::fuzz::{
    active_len, compact, derive_seed, fuzz_program, mutate, nop_range, FuzzWeights,
};
use dda_program::{assemble, Program};
use dda_vm::{CoverageMap, Vm};

use crate::harness::drain_stream;
use crate::pool;

// ---------------------------------------------------------- containment --

/// Extracts a printable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one configuration over `program` with a panic backstop: a panic
/// that escapes the typed error model comes back as
/// [`SimError::WorkerPanic`] instead of unwinding the caller — the exact
/// flattening the sweep pool applies to its tasks, so campaign binaries
/// and pool-based sweeps report crashes identically.
pub fn contained_run(
    cfg: &MachineConfig,
    program: &Arc<Program>,
    budget: u64,
) -> Result<Box<SimResult>, SimError> {
    let cfg = cfg.clone();
    let program = Arc::clone(program);
    let caught = panic::catch_unwind(AssertUnwindSafe(move || {
        Simulator::new(cfg).and_then(|sim| sim.run_shared(program, budget))
    }));
    match caught {
        Ok(Ok(res)) => Ok(Box::new(res)),
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(SimError::WorkerPanic(panic_message(payload.as_ref()))),
    }
}

// --------------------------------------------------------------- oracle --

/// Both kernels' outcomes for one input.
#[derive(Clone, PartialEq, Debug)]
pub struct Differential {
    /// The optimized (incrementally cached) kernel's outcome.
    pub fast: Result<Box<SimResult>, SimError>,
    /// The rescan-per-cycle reference kernel's outcome.
    pub reference: Result<Box<SimResult>, SimError>,
}

impl Differential {
    /// Whether the two outcomes agree under [`outcomes_equal`].
    pub fn agrees(&self) -> bool {
        outcomes_equal(&self.fast, &self.reference)
    }

    /// Whether either side escaped the typed error model.
    pub fn panicked(&self) -> bool {
        matches!(self.fast, Err(SimError::WorkerPanic(_)))
            || matches!(self.reference, Err(SimError::WorkerPanic(_)))
    }
}

/// Runs `program` through the fast and reference kernels under the same
/// machine configuration (only `reference_kernel` differs) and returns
/// both contained outcomes.
pub fn differential(cfg: &MachineConfig, program: &Arc<Program>, budget: u64) -> Differential {
    let fast_cfg = {
        let mut c = cfg.clone();
        c.reference_kernel = false;
        c
    };
    let ref_cfg = {
        let mut c = cfg.clone();
        c.reference_kernel = true;
        c
    };
    Differential {
        fast: contained_run(&fast_cfg, program, budget),
        reference: contained_run(&ref_cfg, program, budget),
    }
}

/// Architectural-contract equality of two contained outcomes.
///
/// `Ok` results compare by full [`SimResult`] structural equality — every
/// counter is part of the contract. Errors compare by a normalized key:
/// traps by kind/cycle/committed, deadlocks and invariant violations by
/// their capture point (the embedded [`dda_core::DiagnosticDump`]s also
/// describe kernel-*internal* bookkeeping such as the fast kernel's
/// dispatch ring, which is not part of the contract). Two worker panics
/// count as *agreeing* here — panics are tracked separately and fail a
/// campaign on their own.
pub fn outcomes_equal(
    a: &Result<Box<SimResult>, SimError>,
    b: &Result<Box<SimResult>, SimError>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x == y,
        (Err(x), Err(y)) => error_key(x) == error_key(y),
        _ => false,
    }
}

fn error_key(e: &SimError) -> String {
    match e {
        SimError::Trap(t) => format!("trap:{:?}:{}:{}", t.kind, t.cycle, t.committed),
        SimError::Deadlock(d) => format!("deadlock:{}:{}", d.cycle, d.committed),
        SimError::InvariantViolation(v) => {
            format!("invariant:{}:{}:{}", v.what, v.dump.cycle, v.dump.committed)
        }
        SimError::Config(c) => format!("config:{c}"),
        SimError::WorkerPanic(_) => "panic".to_string(),
        SimError::WarmStateMismatch => "warm-state-mismatch".to_string(),
    }
}

/// One-line outcome description for logs and reports.
pub fn describe_outcome(r: &Result<Box<SimResult>, SimError>) -> String {
    match r {
        Ok(res) => format!(
            "ok: {} committed / {} cycles, lsq {}+{} lvaq {}+{}, \
             port stalls l1 {} lvc {}, misclass {}",
            res.committed,
            res.cycles,
            res.lsq.loads,
            res.lsq.stores,
            res.lvaq.loads,
            res.lvaq.stores,
            res.lsq.port_stall_cycles,
            res.lvaq.port_stall_cycles,
            res.misclassifications,
        ),
        Err(e) => format!("error: {e}"),
    }
}

/// Whether `program` makes the two kernels disagree under `cfg`.
pub fn diverges(cfg: &MachineConfig, program: &Arc<Program>, budget: u64) -> bool {
    !differential(cfg, program, budget).agrees()
}

// ------------------------------------------------------------ minimizer --

/// A minimized divergence reproducer.
#[derive(Clone, PartialEq, Debug)]
pub struct Minimized {
    /// The reduced program (compacted when the compaction still
    /// reproduces, otherwise nop-padded).
    pub program: Program,
    /// Non-`nop` instruction count of `program`.
    pub instructions: usize,
    /// Differential probes spent minimizing (two kernel runs each).
    pub probes: u32,
    /// Whether the nop-stripping compaction preserved the divergence.
    pub compacted: bool,
}

/// Delta-debugs `program` down to a (locally) minimal reproducer of its
/// fast-vs-reference divergence under `cfg`.
///
/// Blocks (leader-delimited ranges) are nopped first, then single
/// instructions, until a fixpoint; nop-ing keeps the pc layout, so every
/// control target stays valid throughout. A final compaction pass strips
/// the nops with a monotone pc remap and is kept only if the compacted
/// program (a) still diverges and (b) round-trips through the assembler —
/// the form a regression-corpus entry needs.
///
/// Returns `None` if `program` does not diverge in the first place.
pub fn minimize_divergence(
    cfg: &MachineConfig,
    program: &Program,
    budget: u64,
) -> Option<Minimized> {
    let mut probes = 0u32;
    let mut check = |p: &Program| -> bool {
        probes += 1;
        diverges(cfg, &Arc::new(p.clone()), budget)
    };
    if !check(program) {
        return None;
    }
    let mut cur = program.clone();

    // Pass 1: blocks, to fixpoint. Leaders are recomputed per round —
    // nop-ing a branch dissolves its targets, merging blocks.
    loop {
        let mut accepted = false;
        let leaders = cur.leaders();
        let mut starts: Vec<usize> = leaders
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(i, _)| i)
            .collect();
        starts.push(cur.len());
        for w in starts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if cur.instrs()[lo..hi]
                .iter()
                .all(|i| matches!(i, dda_isa::Instr::Nop))
            {
                continue;
            }
            let candidate = nop_range(&cur, lo, hi);
            if check(&candidate) {
                cur = candidate;
                accepted = true;
            }
        }
        if !accepted {
            break;
        }
    }

    // Pass 2: single instructions, to fixpoint.
    loop {
        let mut accepted = false;
        for i in 0..cur.len() {
            if matches!(cur.fetch(i as u32), dda_isa::Instr::Nop) {
                continue;
            }
            let candidate = nop_range(&cur, i, i + 1);
            if check(&candidate) {
                cur = candidate;
                accepted = true;
            }
        }
        if !accepted {
            break;
        }
    }

    // Pass 3: strip the nops if the compacted image still reproduces and
    // survives an assembler round trip (pcs shift, so re-validate).
    if let Some(c) = compact(&cur) {
        let round_trips = assemble(&c.to_asm()).map(|p| p == c).unwrap_or(false);
        if round_trips && check(&c) {
            let n = active_len(&c);
            return Some(Minimized {
                program: c,
                instructions: n,
                probes,
                compacted: true,
            });
        }
    }
    let n = active_len(&cur);
    Some(Minimized {
        program: cur,
        instructions: n,
        probes,
        compacted: false,
    })
}

// ------------------------------------------------------------- campaign --

/// Knobs of one fuzz campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every per-input seed derives from it.
    pub seed: u64,
    /// Number of inputs to run.
    pub inputs: u32,
    /// Committed-instruction budget per kernel run.
    pub budget: u64,
    /// Deadlock-watchdog window applied to every run (tighter than the
    /// interactive default so wedges are bounded).
    pub deadlock_window: u64,
    /// Base machine; the campaign forces the auditor on and flips
    /// `reference_kernel` per side.
    pub machine: MachineConfig,
    /// When set, the plan (with a per-input derived seed) is armed on
    /// *both* kernels — the bit-identity discipline covers fault-RNG draw
    /// order, so faulted runs remain a valid oracle.
    pub fault_plan: Option<FaultPlan>,
    /// Arms the test-only planted kernel defect
    /// ([`MachineConfig::planted_defect`]) — the campaign self-test.
    pub plant_defect: bool,
    /// Every `mutate_every`-th input is a mutant of an earlier input
    /// instead of a fresh generation (0 disables mutation).
    pub mutate_every: u32,
    /// Worker threads (0 = one per available core, capped by input
    /// count).
    pub workers: usize,
}

impl CampaignConfig {
    /// A campaign on the recommended (4+2) optimized machine.
    pub fn new(seed: u64, inputs: u32) -> CampaignConfig {
        CampaignConfig {
            seed,
            inputs,
            budget: 20_000,
            deadlock_window: 25_000,
            machine: MachineConfig::n_plus_m(4, 2).with_optimizations(),
            fault_plan: None,
            plant_defect: false,
            mutate_every: 4,
            workers: 0,
        }
    }
}

/// One confirmed divergence, with its minimization result.
#[derive(Clone, PartialEq, Debug)]
pub struct DivergenceRecord {
    /// Input index within the campaign.
    pub index: usize,
    /// The input's derived seed.
    pub seed: u64,
    /// Weight-table preset (or `"mutant"`) that produced the input.
    pub preset: &'static str,
    /// Non-`nop` size of the original input.
    pub original_instructions: usize,
    /// Fast-kernel outcome description.
    pub fast: String,
    /// Reference-kernel outcome description.
    pub reference: String,
    /// The minimized reproducer; `None` only if re-running the input no
    /// longer diverged (a flaky divergence would itself be a finding —
    /// the simulator is supposed to be deterministic).
    pub minimized: Option<Minimized>,
}

/// Aggregate result of [`run_campaign`].
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Inputs executed.
    pub inputs: usize,
    /// Inputs produced by the generator.
    pub generated: usize,
    /// Inputs produced by the mutator.
    pub mutated: usize,
    /// Fast-kernel runs that completed (halt or budget).
    pub completed: usize,
    /// Runs ending in a structured guest trap.
    pub trapped: usize,
    /// Runs ending in a watchdog deadlock.
    pub deadlocked: usize,
    /// Runs ending in an invariant violation.
    pub invariant_violations: usize,
    /// Inputs where a kernel run escaped as a worker panic.
    pub host_panics: usize,
    /// Confirmed fast-vs-reference divergences.
    pub divergences: Vec<DivergenceRecord>,
    /// Merged op/edge coverage over every input's functional stream.
    pub coverage: CoverageMap,
    /// Instructions committed by the fast kernel across all inputs.
    pub committed_total: u64,
    /// Wall-clock of the slowest single input (both kernel runs).
    pub slowest_input_ms: u128,
    /// Wall-clock of the whole campaign.
    pub elapsed_ms: u128,
}

impl CampaignReport {
    /// No host panics and no divergences.
    pub fn clean(&self) -> bool {
        self.host_panics == 0 && self.divergences.is_empty()
    }

    /// Divergences whose minimization failed to reproduce.
    pub fn unminimized(&self) -> usize {
        self.divergences
            .iter()
            .filter(|d| d.minimized.is_none())
            .count()
    }
}

struct InputRun {
    coverage: CoverageMap,
    diff: Differential,
    elapsed_ms: u128,
}

/// Runs a full campaign: generate/mutate inputs, execute each through
/// both kernels on the panic-isolating pool, fold coverage, and
/// delta-debug every divergence.
///
/// Deterministic given `cfg` (up to the wall-clock fields): input
/// construction is seed-derived per index, and pool scheduling never
/// reorders results.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let t0 = Instant::now();
    let presets = FuzzWeights::presets();

    // Inputs are constructed serially (cheap) so mutants can reference
    // earlier inputs deterministically.
    let mut programs: Vec<Arc<Program>> = Vec::with_capacity(cfg.inputs as usize);
    let mut origins: Vec<(&'static str, u64)> = Vec::with_capacity(cfg.inputs as usize);
    let mut mutated = 0usize;
    for i in 0..cfg.inputs as usize {
        let seed_i = derive_seed(cfg.seed, i as u64);
        let is_mutant =
            cfg.mutate_every > 0 && i > 0 && (i as u32 + 1).is_multiple_of(cfg.mutate_every);
        if is_mutant {
            let mut rng = dda_stats::Rng::seed_from_u64(seed_i);
            let base = rng.gen_range(0..i);
            programs.push(Arc::new(mutate(&programs[base], seed_i)));
            origins.push(("mutant", seed_i));
            mutated += 1;
        } else {
            let (name, w) = presets[i % presets.len()];
            programs.push(Arc::new(fuzz_program(seed_i, &w)));
            origins.push((name, seed_i));
        }
    }

    let machine = {
        let mut m = cfg.machine.clone().with_audit(true);
        m.deadlock_cycles = cfg.deadlock_window;
        m.planted_defect = cfg.plant_defect;
        m
    };

    let budget = cfg.budget;
    let tasks: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, program)| {
            let program = Arc::clone(program);
            let mut m = machine.clone();
            if let Some(plan) = &cfg.fault_plan {
                m.fault_plan = FaultPlan {
                    seed: derive_seed(cfg.seed ^ 0xFA17, i as u64),
                    ..*plan
                };
            }
            move || {
                let t = Instant::now();
                let mut cov = CoverageMap::new();
                let mut vm = Vm::new(Arc::clone(&program));
                // Functional coverage pass; a trap here simply ends the
                // observed stream (the kernels see the same trap).
                let _ = drain_stream(&mut vm, budget, |d| cov.observe(d));
                let diff = differential(&m, &program, budget);
                InputRun {
                    coverage: cov,
                    diff,
                    elapsed_ms: t.elapsed().as_millis(),
                }
            }
        })
        .collect();

    let workers = if cfg.workers == 0 {
        pool::default_workers(tasks.len())
    } else {
        cfg.workers.max(1)
    };
    let runs: Vec<InputRun> = pool::run_tasks(tasks, workers)
        .into_iter()
        .map(|r| match r {
            Ok(run) => run,
            Err(payload) => {
                // The whole task escaped (outside contained_run): count
                // it as a panic on both sides.
                let msg = panic_message(payload.as_ref());
                InputRun {
                    coverage: CoverageMap::new(),
                    diff: Differential {
                        fast: Err(SimError::WorkerPanic(msg.clone())),
                        reference: Err(SimError::WorkerPanic(msg)),
                    },
                    elapsed_ms: 0,
                }
            }
        })
        .collect();

    let mut report = CampaignReport {
        inputs: runs.len(),
        generated: runs.len() - mutated,
        mutated,
        completed: 0,
        trapped: 0,
        deadlocked: 0,
        invariant_violations: 0,
        host_panics: 0,
        divergences: Vec::new(),
        coverage: CoverageMap::new(),
        committed_total: 0,
        slowest_input_ms: 0,
        elapsed_ms: 0,
    };

    for (i, run) in runs.iter().enumerate() {
        report.coverage.merge(&run.coverage);
        report.slowest_input_ms = report.slowest_input_ms.max(run.elapsed_ms);
        if run.diff.panicked() {
            report.host_panics += 1;
        }
        match &run.diff.fast {
            Ok(res) => {
                report.completed += 1;
                report.committed_total += res.committed;
            }
            Err(SimError::Trap(_)) => report.trapped += 1,
            Err(SimError::Deadlock(_)) => report.deadlocked += 1,
            Err(SimError::InvariantViolation(_)) => report.invariant_violations += 1,
            Err(_) => {}
        }
        if !run.diff.agrees() {
            let program = &programs[i];
            let mut m = machine.clone();
            if let Some(plan) = &cfg.fault_plan {
                m.fault_plan = FaultPlan {
                    seed: derive_seed(cfg.seed ^ 0xFA17, i as u64),
                    ..*plan
                };
            }
            let minimized = minimize_divergence(&m, program, budget);
            report.divergences.push(DivergenceRecord {
                index: i,
                seed: origins[i].1,
                preset: origins[i].0,
                original_instructions: active_len(program),
                fast: describe_outcome(&run.diff.fast),
                reference: describe_outcome(&run.diff.reference),
                minimized,
            });
        }
    }
    report.elapsed_ms = t0.elapsed().as_millis();
    report
}

// --------------------------------------------------------------- corpus --

/// Renders a divergence's minimized reproducer as a regression-corpus
/// `.s` file: a provenance header plus round-trippable assembly.
///
/// Returns `None` when there is no minimized program or its source does
/// not re-assemble to the identical image (a corpus entry must replay
/// exactly).
pub fn corpus_entry_source(campaign_seed: u64, rec: &DivergenceRecord) -> Option<String> {
    use std::fmt::Write as _;
    let min = rec.minimized.as_ref()?;
    let body = min.program.to_asm();
    match assemble(&body) {
        Ok(p) if p == min.program => {}
        _ => return None,
    }
    let mut out = String::new();
    let _ = writeln!(out, "# Minimized differential-fuzzing reproducer.");
    let _ = writeln!(
        out,
        "# campaign seed {campaign_seed}, input {} (preset {}, input seed {})",
        rec.index, rec.preset, rec.seed
    );
    let _ = writeln!(
        out,
        "# reduced {} -> {} instructions ({} probes{})",
        rec.original_instructions,
        min.instructions,
        min.probes,
        if min.compacted {
            ", compacted"
        } else {
            ", nop-padded"
        }
    );
    let _ = writeln!(out, "# fast:      {}", rec.fast);
    let _ = writeln!(out, "# reference: {}", rec.reference);
    let _ = writeln!(out, "#");
    let _ = writeln!(
        out,
        "# Replay: tests/corpus_replay.rs asserts fast == reference on every"
    );
    let _ = writeln!(
        out,
        "# file in tests/corpus/ under the (4+2) optimized machine."
    );
    out.push_str(&body);
    Some(out)
}

/// Escapes a string for embedding in a JSON report.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::{Trap, TrapKind};
    use dda_isa::{Gpr, Instr};
    use dda_program::{FunctionBuilder, ProgramBuilder};

    fn machine() -> MachineConfig {
        MachineConfig::n_plus_m(4, 2)
            .with_optimizations()
            .with_audit(true)
            .with_deadlock_window(25_000)
    }

    /// The smallest program that tickles the planted defect: one
    /// local-hinted store whose retired address has word index 6 mod 16
    /// (sp starts at `0x7fff_fff0`; after `addi $sp,$sp,-24` the slot at
    /// offset 0 sits at `0x7fff_ffd8`, word index `0x1fff_fff6`).
    fn defect_trigger() -> Program {
        let mut main = FunctionBuilder::with_frame("main", 24);
        main.addi(Gpr::SP, Gpr::SP, -24);
        main.store_local(Gpr::T0, 0);
        main.addi(Gpr::SP, Gpr::SP, 24);
        main.halt();
        let mut b = ProgramBuilder::new();
        b.add_function(main);
        b.build().expect("links")
    }

    #[test]
    fn identical_outcomes_agree() {
        let p = Arc::new(defect_trigger());
        let d = differential(&machine(), &p, 1_000);
        assert!(d.agrees(), "fast vs reference disagreed on a clean machine");
        assert!(!d.panicked());
    }

    #[test]
    fn planted_defect_diverges_and_is_caught() {
        let mut m = machine();
        m.planted_defect = true;
        let p = Arc::new(defect_trigger());
        let d = differential(&m, &p, 1_000);
        assert!(!d.agrees(), "planted defect was not observed");
        // The divergence is exactly one phantom LVAQ port-stall cycle.
        let (f, r) = (d.fast.expect("fast ok"), d.reference.expect("reference ok"));
        assert_eq!(f.lvaq.port_stall_cycles, r.lvaq.port_stall_cycles + 1);
    }

    #[test]
    fn error_keys_normalize_structurally() {
        let kind = TrapKind::Misaligned {
            pc: 4,
            addr: 0x1000_0002,
            bytes: 4,
        };
        let t1 = SimError::Trap(Trap {
            kind,
            cycle: 3,
            committed: 2,
        });
        let t2 = SimError::Trap(Trap {
            kind,
            cycle: 3,
            committed: 2,
        });
        let t3 = SimError::Trap(Trap {
            kind,
            cycle: 4,
            committed: 2,
        });
        assert!(outcomes_equal(&Err(t1), &Err(t2)));
        let t1 = SimError::Trap(Trap {
            kind,
            cycle: 3,
            committed: 2,
        });
        assert!(!outcomes_equal(&Err(t1), &Err(t3)));
        // Two panics agree (tracked separately as panics).
        assert!(outcomes_equal(
            &Err(SimError::WorkerPanic("a".into())),
            &Err(SimError::WorkerPanic("b".into())),
        ));
    }

    #[test]
    fn minimizer_shrinks_the_planted_defect_to_a_few_instructions() {
        let mut m = machine();
        m.planted_defect = true;
        // Bury the trigger in a larger generated-style program: the
        // defect needs an LVAQ store to word index 6 mod 16, which the
        // handcrafted trigger provides deterministically.
        let mut main = FunctionBuilder::with_frame("main", 32);
        main.addi(Gpr::SP, Gpr::SP, -32);
        main.store_local(Gpr::RA, 0);
        for k in 0..6 {
            main.load_imm(Gpr::T1, k);
            main.alui(dda_isa::AluOp::Add, Gpr::T2, Gpr::T1, 7);
        }
        main.store_local(Gpr::T0, 8); // sp-32+8 = ...ffd8 -> word idx 6 mod 16
        for k in 0..6 {
            main.load(
                Gpr::T3,
                Gpr::GP,
                4 * k,
                dda_isa::MemWidth::Word,
                dda_isa::StreamHint::NonLocal,
            );
        }
        main.load_local(Gpr::RA, 0);
        main.addi(Gpr::SP, Gpr::SP, 32);
        main.halt();
        let mut b = ProgramBuilder::new();
        b.add_function(main);
        let p = b.build().expect("links");

        let min = minimize_divergence(&m, &p, 2_000).expect("divergence reproduces");
        assert!(
            min.instructions <= 20,
            "minimizer left {} instructions (wanted <= 20)",
            min.instructions
        );
        // The reproducer still needs the store; the filler is gone.
        assert!(min
            .program
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Store { .. })));
        assert!(diverges(&m, &Arc::new(min.program.clone()), 2_000));
    }

    #[test]
    fn minimize_returns_none_without_a_divergence() {
        let p = defect_trigger();
        assert!(minimize_divergence(&machine(), &p, 1_000).is_none());
    }

    #[test]
    fn small_campaign_is_clean_and_covers() {
        let mut cc = CampaignConfig::new(0xC0FFEE, 10);
        cc.budget = 1_500;
        cc.deadlock_window = 10_000;
        let r = run_campaign(&cc);
        assert_eq!(r.inputs, 10);
        assert!(
            r.clean(),
            "campaign found {} divergences / {} panics",
            r.divergences.len(),
            r.host_panics
        );
        assert_eq!(r.unminimized(), 0);
        assert!(
            r.mutated >= 2,
            "mutation rotation produced {} mutants",
            r.mutated
        );
        assert!(r.completed + r.trapped + r.deadlocked > 0);
        assert!(
            r.coverage.op_classes_seen() >= 20,
            "only {} op classes",
            r.coverage.op_classes_seen()
        );
        assert!(r.coverage.edge_buckets_seen() > 50);
    }

    #[test]
    fn campaign_with_planted_defect_reports_a_minimized_divergence() {
        let mut cc = CampaignConfig::new(0xDEFEC7, 24);
        cc.budget = 2_500;
        cc.deadlock_window = 10_000;
        cc.plant_defect = true;
        // Generated inputs retire plenty of LVAQ stores; across 24
        // inputs at least one hits word index 6 mod 16.
        let r = run_campaign(&cc);
        assert!(
            !r.divergences.is_empty(),
            "planted defect escaped a 24-input campaign"
        );
        assert_eq!(r.unminimized(), 0, "a divergence failed to minimize");
        for d in &r.divergences {
            let min = d.minimized.as_ref().expect("minimized");
            assert!(
                min.instructions <= 20,
                "{} instructions after reduction",
                min.instructions
            );
            let src = corpus_entry_source(cc.seed, d).expect("corpus entry round-trips");
            let replay = assemble(src.as_str()).expect("corpus entry assembles");
            let mut m = cc.machine.clone().with_audit(true);
            m.planted_defect = true;
            m.deadlock_cycles = cc.deadlock_window;
            assert!(diverges(&m, &Arc::new(replay), cc.budget));
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
