//! An in-tree work-stealing thread pool for configuration sweeps.
//!
//! The container is offline, so this is a dependency-free pool sized for
//! the harness's needs: a batch of independent `FnOnce` tasks (one per
//! benchmark × configuration point), executed once, results returned in
//! submission order. Each worker owns a deque of task indices seeded
//! round-robin; it pops its own deque LIFO (cache-warm) and steals FIFO
//! from its neighbours (oldest first, the classic Chase–Lev discipline —
//! here guarded by a mutex per deque, which is plenty below a few
//! thousand tasks since each task is milliseconds to seconds of
//! simulation).
//!
//! Panic isolation: a panicking task never takes the pool down. The
//! worker catches the unwind at the task boundary, records it as that
//! task's `Err` result, and moves on to the next task — the behaviour
//! figure sweeps need when one configuration point is poisoned.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What one task left behind: its value, or the payload of its panic.
pub type TaskResult<T> = std::thread::Result<T>;

/// The number of workers a sweep of `tasks` tasks should use: the
/// `DDA_WORKERS` override when set (read once; useful both to throttle a
/// shared host and to force serial execution for timing comparisons),
/// otherwise one per available CPU — never more than the task count,
/// always at least one.
pub fn default_workers(tasks: usize) -> usize {
    use std::sync::OnceLock;
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    let over = *OVERRIDE.get_or_init(|| parse_workers_override(std::env::var("DDA_WORKERS").ok()));
    let cpus = over.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    cpus.min(tasks).max(1)
}

/// Parses the `DDA_WORKERS` value: a positive integer is an override,
/// anything else (absent, garbage, zero) falls back to the CPU count.
fn parse_workers_override(var: Option<String>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The host parallelism the pool would use for an unbounded task count —
/// `default_workers` before the task-count clamp. Reported by sweep
/// binaries so a `parallel_speedup` near 1.0 on a 1-core container reads
/// as the host limitation it is, not a pool regression.
pub fn host_parallelism() -> usize {
    default_workers(usize::MAX)
}

/// Runs every task on `workers` work-stealing worker threads and returns
/// their results in submission order.
///
/// Tasks are independent `FnOnce` closures. A panicking task yields
/// `Err(payload)` at its own index; every other task still runs.
pub fn run_tasks<T, F>(tasks: Vec<F>, workers: usize) -> Vec<TaskResult<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n.max(1));

    // Task cells: taken exactly once, by whichever worker claims the
    // index from a deque.
    let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Result cells, indexed like the tasks — submission order falls out
    // for free.
    let results: Vec<Mutex<Option<TaskResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Per-worker deques of task indices, seeded round-robin so a cheap
    // static partition exists even before any stealing happens.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    // Tasks claimed so far; when it reaches `n`, idle workers exit.
    let claimed = AtomicUsize::new(0);

    let run_one = |idx: usize| {
        let task = match cells[idx].lock() {
            Ok(mut c) => c.take(),
            Err(_) => None, // poisoned by a panic mid-take: impossible, cell ops don't panic
        };
        let Some(task) = task else { return };
        let out = catch_unwind(AssertUnwindSafe(task));
        if let Ok(mut r) = results[idx].lock() {
            *r = Some(out);
        }
    };

    std::thread::scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let claimed = &claimed;
            let run_one = &run_one;
            s.spawn(move || loop {
                // Own deque first, newest first (LIFO).
                let own = deques[w].lock().ok().and_then(|mut d| d.pop_back());
                if let Some(idx) = own {
                    claimed.fetch_add(1, Ordering::Relaxed);
                    run_one(idx);
                    continue;
                }
                // Steal from neighbours, oldest first (FIFO), scanning
                // from the next worker over.
                let mut stolen = None;
                for off in 1..workers {
                    let v = (w + off) % workers;
                    if let Some(idx) = deques[v].lock().ok().and_then(|mut d| d.pop_front()) {
                        stolen = Some(idx);
                        break;
                    }
                }
                match stolen {
                    Some(idx) => {
                        claimed.fetch_add(1, Ordering::Relaxed);
                        run_one(idx);
                    }
                    None => {
                        if claimed.load(Ordering::Relaxed) >= n {
                            break;
                        }
                        // Every deque looked empty but claims are still
                        // outstanding: a steal raced us. Yield and rescan.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| match r.into_inner() {
            Ok(Some(out)) => out,
            // A cell can only be empty if its task was never run, which
            // the claim counter rules out; a poisoned mutex means the
            // *pool* panicked, not the task. Surface both as a panic
            // payload rather than unwinding the caller.
            _ => Err(Box::new("task result missing".to_string()) as Box<dyn std::any::Any + Send>),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_submission_order() {
        let tasks: Vec<_> = (0..100u64).map(|i| move || i * 3).collect();
        let out = run_tasks(tasks, 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as u64 * 3);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let tasks: Vec<_> = (0..257)
            .map(|_| || COUNTER.fetch_add(1, Ordering::SeqCst))
            .collect();
        let out = run_tasks(tasks, 8);
        assert_eq!(out.len(), 257);
        assert_eq!(COUNTER.load(Ordering::SeqCst), 257);
        // All increments distinct: each task observed a unique value.
        let mut seen: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 257);
    }

    #[test]
    fn a_panicking_task_is_isolated() {
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16)
            .map(|i| {
                let f: Box<dyn FnOnce() -> u64 + Send> = if i == 7 {
                    Box::new(|| panic!("task 7 poisoned"))
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let out = run_tasks(tasks, 3);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let msg = r
                    .as_ref()
                    .err()
                    .and_then(|e| e.downcast_ref::<&str>().copied());
                assert_eq!(msg, Some("task 7 poisoned"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64);
            }
        }
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let tasks: Vec<_> = (0..3u64).map(|i| move || i).collect();
        let out = run_tasks(tasks, 64);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_task_list_returns_empty() {
        let out = run_tasks(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_degrades_to_serial() {
        let tasks: Vec<_> = (0..20u64).map(|i| move || i + 1).collect();
        let out = run_tasks(tasks, 1);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as u64 + 1);
        }
    }

    #[test]
    fn default_workers_is_bounded_by_tasks() {
        assert_eq!(default_workers(0), 1);
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1_000_000) >= 1);
        // The unclamped host view is what the clamp starts from.
        assert!(host_parallelism() >= 1);
        assert_eq!(
            default_workers(1_000_000),
            host_parallelism().min(1_000_000)
        );
    }

    #[test]
    fn workers_override_parses_positive_integers_only() {
        // The env read is cached in a OnceLock (so one process observes
        // one value); the parse itself is tested through its seam.
        assert_eq!(parse_workers_override(None), None);
        assert_eq!(parse_workers_override(Some("".into())), None);
        assert_eq!(parse_workers_override(Some("0".into())), None);
        assert_eq!(parse_workers_override(Some("banana".into())), None);
        assert_eq!(parse_workers_override(Some("3".into())), Some(3));
        assert_eq!(parse_workers_override(Some(" 16 ".into())), Some(16));
    }
}
