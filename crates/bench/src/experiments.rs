//! One function per table/figure of the paper's evaluation section.

use dda_core::{MachineConfig, SimResult, SteerPolicy};
use dda_mem::{CacheConfig, CacheCore};
use dda_stats::Table;
use dda_vm::Vm;
use dda_workloads::Benchmark;

use crate::harness::{pipeline_budget, profile_budget, run_configs_for, workload_stats};

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn rel(r: &SimResult, base: &SimResult) -> f64 {
    r.speedup_over(base)
}

fn fmt_rel(x: f64) -> String {
    format!("{x:.3}")
}

/// Table 1: the base machine model (printed from the live configuration so
/// it cannot drift from the implementation).
pub fn table1_machine_model() -> Table {
    let c = MachineConfig::iscapaper_base();
    let mut t = Table::new(["parameter", "value"]);
    t.title("Table 1: base machine model");
    t.row(["Issue width", &c.issue_width.to_string()]);
    t.row(["ROB/LSQ size", &format!("{}/{}", c.rob_size, c.lsq_size)]);
    t.row([
        "Func. units".to_string(),
        format!(
            "{} int + {} FP ALUs, {} int + {} FP MULT/DIV",
            c.fu_counts.int_alu,
            c.fu_counts.fp_alu,
            c.fu_counts.int_mul_div,
            c.fu_counts.fp_mul_div
        ),
    ]);
    t.row([
        "L1 D-cache".to_string(),
        format!(
            "{}-way set-assoc. {} KB. {}-cycle hit time.",
            c.hierarchy.l1.assoc,
            c.hierarchy.l1.size_bytes >> 10,
            c.hierarchy.l1.hit_latency
        ),
    ]);
    t.row([
        "L2 D-cache".to_string(),
        format!(
            "{}-way. {} KB. {}-cycle access time.",
            c.hierarchy.l2.assoc,
            c.hierarchy.l2.size_bytes >> 10,
            c.hierarchy.l2.latency
        ),
    ]);
    t.row([
        "Memory".to_string(),
        format!(
            "{}-cycle access time. Fully interleaved.",
            c.hierarchy.l2.memory_latency
        ),
    ]);
    t.row(["I-cache", "Perfect I-cache with 1 cycle latency."]);
    t.row(["Br. prediction", "Perfect."]);
    t.row(["Inst. latencies", "Same as those of MIPS R10000."]);
    t.row([
        "LVC (when decoupled)".to_string(),
        "direct-mapped 2 KB, 1-cycle hit, 64-entry LVAQ".to_string(),
    ]);
    t
}

/// Table 2: the benchmark roster (paper inputs and counts, plus the
/// synthetic stand-in budgets actually simulated here).
pub fn table2_benchmarks() -> Table {
    let mut t = Table::new([
        "benchmark",
        "paper input",
        "paper Minst",
        "simulated inst (budget)",
    ]);
    t.title("Table 2: benchmark programs (synthetic stand-ins keep the SPEC names)");
    t.numeric();
    for b in Benchmark::ALL {
        t.row([
            b.name().to_string(),
            b.paper_input().to_string(),
            format!("{}M", b.paper_minsts()),
            pipeline_budget().to_string(),
        ]);
    }
    t
}

/// Figure 2: frequency of memory-access instructions and the local
/// fraction of each (paper: 30 % of loads and 48 % of stores are local on
/// average; 147.vortex over 60 %/80 %).
pub fn fig2_instruction_mix() -> Table {
    let mut t = Table::new([
        "benchmark",
        "loads/inst",
        "stores/inst",
        "local/loads",
        "local/stores",
        "local/refs",
    ]);
    t.title("Figure 2: instruction mix and local-access fractions");
    t.numeric();
    let mut ll = Vec::new();
    let mut ls = Vec::new();
    let mut lr = Vec::new();
    for b in Benchmark::ALL {
        let w = workload_stats(b);
        let s = &w.stats;
        if !b.is_float() {
            ll.push(s.local_load_fraction());
            ls.push(s.local_store_fraction());
        }
        lr.push(s.local_mem_fraction());
        t.row([
            b.name().to_string(),
            format!("{:.1}%", 100.0 * s.load_fraction()),
            format!("{:.1}%", 100.0 * s.store_fraction()),
            format!("{:.1}%", 100.0 * s.local_load_fraction()),
            format!("{:.1}%", 100.0 * s.local_store_fraction()),
            format!("{:.1}%", 100.0 * s.local_mem_fraction()),
        ]);
    }
    t.row([
        "int average (paper: 30%/48%)".to_string(),
        "".to_string(),
        "".to_string(),
        format!("{:.1}%", 100.0 * ll.iter().sum::<f64>() / ll.len() as f64),
        format!("{:.1}%", 100.0 * ls.iter().sum::<f64>() / ls.len() as f64),
        format!("{:.1}%", 100.0 * lr.iter().sum::<f64>() / lr.len() as f64),
    ]);
    t
}

/// Figure 3: dynamic frame-size distribution (paper: average ≈ 3 words;
/// static frames ≈ 7 words over 4746 functions).
pub fn fig3_frame_sizes() -> Table {
    let mut t = Table::new([
        "benchmark",
        "dyn mean (words)",
        "p50",
        "p90",
        "p99",
        "static mean",
        "funcs",
        "max depth",
    ]);
    t.title("Figure 3: frame-size distributions (integer programs)");
    t.numeric();
    let mut dyn_means = Vec::new();
    let mut static_means = Vec::new();
    for b in Benchmark::INTEGER {
        let w = workload_stats(b);
        let h = &w.stats.frame_words;
        dyn_means.push(h.mean().unwrap_or(0.0));
        static_means.push(w.static_frame_words);
        t.row([
            b.name().to_string(),
            format!("{:.1}", h.mean().unwrap_or(0.0)),
            h.quantile(0.5).unwrap_or(0).to_string(),
            h.quantile(0.9).unwrap_or(0).to_string(),
            h.quantile(0.99).unwrap_or(0).to_string(),
            format!("{:.1}", w.static_frame_words),
            w.static_functions.to_string(),
            w.stats.call_depth.max().unwrap_or(0).to_string(),
        ]);
    }
    t.row([
        "average (paper: ~3 dyn / ~7 static)".to_string(),
        format!(
            "{:.1}",
            dyn_means.iter().sum::<f64>() / dyn_means.len() as f64
        ),
        String::new(),
        String::new(),
        String::new(),
        format!(
            "{:.1}",
            static_means.iter().sum::<f64>() / static_means.len() as f64
        ),
        String::new(),
        String::new(),
    ]);
    t
}

/// Figure 5: performance of (N+0), N = 1..5, relative to the (16+0)
/// maximum-bandwidth machine (paper: two ports reach ~90 % of the
/// maximum; three or four are enough).
pub fn fig5_bandwidth() -> Table {
    let ns = [1u32, 2, 3, 4, 5];
    let mut cfgs: Vec<MachineConfig> = ns.iter().map(|&n| MachineConfig::n_plus_m(n, 0)).collect();
    cfgs.push(MachineConfig::n_plus_m(16, 0));
    let mut t = Table::new(["benchmark", "(1+0)", "(2+0)", "(3+0)", "(4+0)", "(5+0)"]);
    t.title("Figure 5: (N+0) performance relative to (16+0)");
    t.numeric();
    let mut per_n: Vec<Vec<f64>> = vec![Vec::new(); ns.len()];
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let max = rs.last().expect("(16+0) run");
        let rels: Vec<f64> = rs[..ns.len()].iter().map(|r| rel(r, max)).collect();
        for (i, v) in rels.iter().enumerate() {
            per_n[i].push(*v);
        }
        let mut row = vec![b.name().to_string()];
        row.extend(rels.iter().map(|v| fmt_rel(*v)));
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    row.extend(per_n.iter().map(|v| fmt_rel(geomean(v))));
    t.row(row);
    t
}

/// Figure 6: LVC miss rate as its size sweeps 0.5–4 KB (paper: a 2 KB LVC
/// exceeds 99 % hit rate for everything except 126.gcc).
///
/// Content-model experiment: the local-access stream is filtered from the
/// dynamic stream and replayed against the LVC tag array.
pub fn fig6_lvc_size() -> Table {
    let sizes = [512u32, 1024, 2048, 4096];
    let mut t = Table::new(["benchmark", "0.5 KB", "1 KB", "2 KB", "4 KB", "local refs"]);
    t.title("Figure 6: LVC miss rate vs capacity (direct-mapped, 32 B lines)");
    t.numeric();
    for b in Benchmark::ALL {
        let program = b.program(u32::MAX / 2);
        let mut vm = Vm::new(program);
        let mut caches: Vec<CacheCore> = sizes
            .iter()
            .map(|&s| CacheCore::new(&CacheConfig::lvc_2k().with_size(s)))
            .collect();
        let mut locals = 0u64;
        crate::drain_stream(&mut vm, profile_budget(), |d| {
            if let Some(m) = d.mem {
                if m.is_local() {
                    locals += 1;
                    for c in &mut caches {
                        if !c.access(m.addr, m.is_store) {
                            c.fill(m.addr, m.is_store);
                        }
                    }
                }
            }
        })
        .expect("benchmark executes cleanly");
        let mut row = vec![b.name().to_string()];
        row.extend(
            caches
                .iter()
                .map(|c| format!("{:.2}%", 100.0 * c.stats().miss_rate())),
        );
        row.push(locals.to_string());
        t.row(row);
    }
    t
}

fn nm_grid(optimized: bool) -> (Vec<(u32, u32)>, Vec<MachineConfig>) {
    let mut pairs = Vec::new();
    for n in [2u32, 3, 4] {
        for m in [0u32, 1, 2, 3, 16] {
            pairs.push((n, m));
        }
    }
    let cfgs = pairs
        .iter()
        .map(|&(n, m)| {
            let c = MachineConfig::n_plus_m(n, m);
            if optimized && m > 0 {
                c.with_optimizations()
            } else {
                c
            }
        })
        .collect();
    (pairs, cfgs)
}

fn nm_table(title: &str, optimized: bool) -> Table {
    let (pairs, cfgs) = nm_grid(optimized);
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(pairs.iter().map(|(n, m)| format!("({n}+{m})")));
    let mut t = Table::new(headers);
    t.title(title);
    t.numeric();
    let base_idx = pairs
        .iter()
        .position(|&p| p == (2, 0))
        .expect("(2+0) in grid");
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); pairs.len()];
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let base = &rs[base_idx];
        let mut row = vec![b.name().to_string()];
        for (i, r) in rs.iter().enumerate() {
            let v = rel(r, base);
            acc[i].push(v);
            row.push(fmt_rel(v));
        }
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    row.extend(acc.iter().map(|v| fmt_rel(geomean(v))));
    t.row(row);
    t
}

/// Figure 7: (N+M) performance without the LVAQ optimizations, relative
/// to (2+0) (paper: (N+1) degrades, (N+2) restores and gains 1–10 %,
/// three LVC ports are effectively unlimited).
pub fn fig7_lvc_ports() -> Table {
    nm_table("Figure 7: (N+M) relative to (2+0), no optimizations", false)
}

/// Figure 9: (N+M) performance with fast data forwarding and 2-way access
/// combining (paper: the (N+1) configurations recover noticeably).
pub fn fig9_optimized() -> Table {
    nm_table(
        "Figure 9: (N+M) relative to (2+0), with fast forwarding + 2-way combining",
        true,
    )
}

/// Table 3: speedup from fast data forwarding under (3+2) (paper: up to
/// 3.9 %, zero for 124.m88ksim).
pub fn table3_fast_forwarding() -> Table {
    let base = MachineConfig::n_plus_m(3, 2);
    let ff = MachineConfig::n_plus_m(3, 2).with_fast_forwarding(true);
    let mut t = Table::new(["benchmark", "speedup", "fast fwds", "% of local loads"]);
    t.title("Table 3: fast data forwarding under (3+2)");
    t.numeric();
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &[base.clone(), ff.clone()]);
        let s = rel(&rs[1], &rs[0]);
        let loads = rs[1].lvaq.loads.max(1);
        t.row([
            b.name().to_string(),
            format!("{:+.1}%", 100.0 * (s - 1.0)),
            rs[1].lvaq.fast_forwards.to_string(),
            format!(
                "{:.1}%",
                100.0 * rs[1].lvaq.fast_forwards as f64 / loads as f64
            ),
        ]);
    }
    t
}

/// Figure 8: access combining under (3+1) and (3+2) (paper: 2-way
/// combining gains ≈ 8 % and ≈ 2 % respectively; 130.li and 147.vortex
/// gain 16 %/26 % under (3+1)).
pub fn fig8_combining() -> Table {
    let degrees = [1u32, 2, 4];
    let mut headers = vec!["benchmark".to_string()];
    for m in [1u32, 2] {
        for d in degrees {
            headers.push(if d == 1 {
                format!("(3+{m}) none")
            } else {
                format!("(3+{m}) {d}-way")
            });
        }
    }
    let mut t = Table::new(headers);
    t.title("Figure 8: access combining (relative to the same config without combining)");
    t.numeric();
    let cfgs: Vec<MachineConfig> = [1u32, 2]
        .iter()
        .flat_map(|&m| {
            degrees
                .iter()
                .map(move |&d| MachineConfig::n_plus_m(3, m).with_combining(d))
        })
        .collect();
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let mut row = vec![b.name().to_string()];
        for (i, r) in rs.iter().enumerate() {
            let base = &rs[(i / degrees.len()) * degrees.len()];
            let v = rel(r, base);
            acc[i].push(v);
            row.push(fmt_rel(v));
        }
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    row.extend(acc.iter().map(|v| fmt_rel(geomean(v))));
    t.row(row);
    t
}

/// Figure 10: sensitivity to L1 hit latency (paper: a 3-cycle (4+0) loses
/// up to 13.4 % and can fall below (2+0); (2+2) beats the 3-cycle (4+0)
/// on the integer programs but not the FP ones).
pub fn fig10_latency_sensitivity() -> Table {
    let cfgs = [
        MachineConfig::n_plus_m(2, 0),
        MachineConfig::n_plus_m(2, 2).with_optimizations(),
        MachineConfig::n_plus_m(4, 0),
        MachineConfig::n_plus_m(4, 0).with_l1_hit_latency(3),
    ];
    let mut t = Table::new([
        "benchmark",
        "(2+0) 2cy",
        "(2+2) 2cy",
        "(4+0) 2cy",
        "(4+0) 3cy",
    ]);
    t.title("Figure 10: relative to (2+0) with 2-cycle L1 hits");
    t.numeric();
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let mut row = vec![b.name().to_string()];
        for (i, r) in rs.iter().enumerate() {
            let v = rel(r, &rs[0]);
            acc[i].push(v);
            row.push(fmt_rel(v));
        }
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    row.extend(acc.iter().map(|v| fmt_rel(geomean(v))));
    t.row(row);
    t
}

/// Figure 11: per-program (N+M) surfaces for the four programs the paper
/// plots (126.gcc, 130.li, 147.vortex, 102.swim).
pub fn fig11_per_program() -> Vec<Table> {
    let benches = [
        Benchmark::Gcc,
        Benchmark::Li,
        Benchmark::Vortex,
        Benchmark::Swim,
    ];
    let ms = [0u32, 1, 2, 3];
    let ns = [2u32, 3, 4];
    benches
        .iter()
        .map(|&b| {
            let mut headers = vec!["config".to_string()];
            headers.extend(ms.iter().map(|m| format!("M={m}")));
            let mut t = Table::new(headers);
            t.title(format!(
                "Figure 11: {} — (N+M) relative to (2+0), optimized",
                b.name()
            ));
            t.numeric();
            let cfgs: Vec<MachineConfig> = ns
                .iter()
                .flat_map(|&n| {
                    ms.iter().map(move |&m| {
                        let c = MachineConfig::n_plus_m(n, m);
                        if m > 0 {
                            c.with_optimizations()
                        } else {
                            c
                        }
                    })
                })
                .collect();
            let rs = run_configs_for(b, &cfgs);
            let base = &rs[0]; // (2+0)
            for (ni, &n) in ns.iter().enumerate() {
                let mut row = vec![format!("N={n}")];
                for mi in 0..ms.len() {
                    row.push(fmt_rel(rel(&rs[ni * ms.len() + mi], base)));
                }
                t.row(row);
            }
            t
        })
        .collect()
}

/// §4.2.1: change in L2 traffic when a 2 KB LVC is added (paper: 130.li
/// −24 %, 147.vortex −7 %, 126.gcc a slight increase).
pub fn l2_traffic() -> Table {
    let cfgs = [MachineConfig::n_plus_m(2, 0), MachineConfig::n_plus_m(2, 2)];
    let mut t = Table::new([
        "benchmark",
        "L2 reqs (2+0)",
        "L2 reqs (2+2)",
        "change",
        "bus txns change",
    ]);
    t.title("§4.2.1: L2 traffic with and without the 2 KB LVC");
    t.numeric();
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let (a, c) = (&rs[0].l2, &rs[1].l2);
        let delta = |x: u64, y: u64| {
            if x == 0 {
                "—".to_string()
            } else {
                format!("{:+.1}%", 100.0 * (y as f64 - x as f64) / x as f64)
            }
        };
        t.row([
            b.name().to_string(),
            a.requests().to_string(),
            c.requests().to_string(),
            delta(a.requests(), c.requests()),
            delta(a.bus_transactions(), c.bus_transactions()),
        ]);
    }
    t
}

/// §4.3: LVC latency sensitivity and the (3+3) configuration (paper: a
/// 2-cycle LVC is almost free; (3+3) ≈ +5 % over (4+0) for the integer
/// programs).
pub fn lvc_latency() -> Table {
    let cfgs = [
        MachineConfig::n_plus_m(4, 0),
        MachineConfig::n_plus_m(3, 3).with_optimizations(),
        MachineConfig::n_plus_m(3, 3)
            .with_optimizations()
            .with_lvc_hit_latency(2),
    ];
    let mut t = Table::new([
        "benchmark",
        "(4+0)",
        "(3+3) 1cy LVC",
        "(3+3) 2cy LVC",
        "in-queue fwd %",
    ]);
    t.title("§4.3: (3+3) vs (4+0) and LVC hit-latency sensitivity (relative to (4+0))");
    t.numeric();
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let mut row = vec![b.name().to_string()];
        for (i, r) in rs.iter().enumerate() {
            let v = rel(r, &rs[0]);
            acc[i].push(v);
            row.push(fmt_rel(v));
        }
        row.push(format!("{:.0}%", 100.0 * rs[1].lvaq.forward_fraction()));
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    row.extend(acc.iter().map(|v| fmt_rel(geomean(v))));
    row.push(String::new());
    t.row(row);
    t
}

/// Ablation: LVAQ capacity sweep (the paper fixes 64 entries).
pub fn ablation_lvaq_size() -> Table {
    let sizes = [8usize, 16, 32, 64];
    let cfgs: Vec<MachineConfig> = sizes
        .iter()
        .map(|&s| {
            let mut c = MachineConfig::n_plus_m(3, 2).with_optimizations();
            c.decoupling.lvaq_size = s;
            c
        })
        .collect();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(sizes.iter().map(|s| format!("LVAQ {s}")));
    let mut t = Table::new(headers);
    t.title("Ablation: LVAQ size under (3+2) optimized, relative to 64 entries");
    t.numeric();
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let base = rs.last().expect("64-entry run");
        let mut row = vec![b.name().to_string()];
        row.extend(rs.iter().map(|r| fmt_rel(rel(r, base))));
        t.row(row);
    }
    t
}

/// Ablation: steering policy (§2.1's speculation machinery) — compiler
/// hints + 1-bit predictor vs `$sp`-base-only vs oracle.
pub fn ablation_steering() -> Table {
    let mk = |p: SteerPolicy| {
        let mut c = MachineConfig::n_plus_m(3, 2).with_optimizations();
        c.decoupling.steer = p;
        c
    };
    let cfgs = [
        mk(SteerPolicy::Oracle),
        mk(SteerPolicy::Hint),
        mk(SteerPolicy::SpBase),
        mk(SteerPolicy::Replicate),
    ];
    let mut t = Table::new([
        "benchmark",
        "hint vs oracle",
        "sp-base vs oracle",
        "replicate vs oracle",
        "mispredicts (hint)",
        "mispredicts (sp-base)",
    ]);
    t.title("Ablation: stream-classification policy under (3+2) optimized");
    t.numeric();
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        t.row([
            b.name().to_string(),
            fmt_rel(rel(&rs[1], &rs[0])),
            fmt_rel(rel(&rs[2], &rs[0])),
            fmt_rel(rel(&rs[3], &rs[0])),
            rs[1].misclassifications.to_string(),
            rs[2].misclassifications.to_string(),
        ]);
    }
    t
}

/// §4.4 discussion: is a small, fast L1 (with no LVC) a better answer?
/// The paper's "preliminary simulation results (not shown)" say the
/// higher miss rates negate the latency gain unless the L2 is faster
/// than four cycles. This experiment regenerates that claim: a 2 KB,
/// direct-mapped, 1-cycle L1 against the paper's 32 KB L1 and against
/// the (2+2) decoupled design, sweeping the L2 latency.
pub fn small_l1() -> Table {
    let l2_lats = [2u32, 4, 8, 12];
    let mut cfgs: Vec<MachineConfig> = vec![
        MachineConfig::n_plus_m(2, 0),
        MachineConfig::n_plus_m(2, 2).with_optimizations(),
    ];
    for &lat in &l2_lats {
        let mut c = MachineConfig::n_plus_m(2, 0).with_l1_hit_latency(1);
        c.hierarchy.l1.size_bytes = 2 << 10;
        c.hierarchy.l1.assoc = 1;
        c.hierarchy.l2.latency = lat;
        cfgs.push(c);
    }
    let mut headers = vec![
        "benchmark".to_string(),
        "(2+0) 32K".into(),
        "(2+2) opt".into(),
    ];
    headers.extend(l2_lats.iter().map(|l| format!("2K L1, L2={l}cy")));
    let mut t = Table::new(headers);
    t.title("§4.4: small fast L1 vs decoupling (relative to the 32 KB (2+0))");
    t.numeric();
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let mut row = vec![b.name().to_string()];
        for (i, r) in rs.iter().enumerate() {
            let v = rel(r, &rs[0]);
            acc[i].push(v);
            row.push(fmt_rel(v));
        }
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    row.extend(acc.iter().map(|v| fmt_rel(geomean(v))));
    t.row(row);
    t
}

/// §4.2.1 aside: "The line size of the LVC, being it 32 or 64 Bytes, has
/// a negligible effect on the hit rate when the LVC size is larger than
/// or equal to 2 KB."
pub fn lvc_line_size() -> Table {
    let sizes = [1024u32, 2048, 4096];
    let lines = [32u32, 64];
    let mut headers = vec!["benchmark".to_string()];
    for &s in &sizes {
        for &l in &lines {
            headers.push(format!("{}KB/{l}B", s >> 10));
        }
    }
    let mut t = Table::new(headers);
    t.title("§4.2.1: LVC miss rate vs line size (direct-mapped)");
    t.numeric();
    for b in Benchmark::INTEGER {
        let program = b.program(u32::MAX / 2);
        let mut vm = Vm::new(program);
        let mut caches: Vec<CacheCore> = sizes
            .iter()
            .flat_map(|&s| {
                lines.iter().map(move |&l| {
                    let mut c = CacheConfig::lvc_2k().with_size(s);
                    c.line_bytes = l;
                    c
                })
            })
            .map(|c| CacheCore::new(&c))
            .collect();
        crate::drain_stream(&mut vm, profile_budget(), |d| {
            if let Some(m) = d.mem {
                if m.is_local() {
                    for c in &mut caches {
                        if !c.access(m.addr, m.is_store) {
                            c.fill(m.addr, m.is_store);
                        }
                    }
                }
            }
        })
        .expect("benchmark executes cleanly");
        let mut row = vec![b.name().to_string()];
        row.extend(
            caches
                .iter()
                .map(|c| format!("{:.2}%", 100.0 * c.stats().miss_rate())),
        );
        t.row(row);
    }
    t
}

/// Ablation: issue width. The paper's premise is a *wide-issue* machine
/// ("the ability to provide the execution core with adequate memory
/// bandwidth becomes extremely critical for the next generations of
/// wide-issue processors") — at narrow widths the port pressure, and so
/// the decoupling benefit, should shrink.
pub fn ablation_issue_width() -> Table {
    let widths = [4u32, 8, 16];
    let mut headers = vec!["benchmark".to_string()];
    for w in widths {
        headers.push(format!("(2+0) w{w}"));
        headers.push(format!("(2+2) gain w{w}"));
    }
    let mut t = Table::new(headers);
    t.title("Ablation: decoupling benefit vs issue width ((2+2) opt over (2+0))");
    t.numeric();
    let mut gains: Vec<Vec<f64>> = vec![Vec::new(); widths.len()];
    for b in Benchmark::ALL {
        let mut row = vec![b.name().to_string()];
        for (i, &w) in widths.iter().enumerate() {
            let mk = |m: u32| {
                let mut c = MachineConfig::n_plus_m(2, m);
                if m > 0 {
                    c = c.with_optimizations();
                }
                c.dispatch_width = w;
                c.issue_width = w;
                c.commit_width = w;
                c
            };
            let rs = run_configs_for(b, &[mk(0), mk(2)]);
            let gain = rel(&rs[1], &rs[0]);
            gains[i].push(gain);
            row.push(format!("{:.2}", rs[0].ipc()));
            row.push(format!("{:+.1}%", 100.0 * (gain - 1.0)));
        }
        t.row(row);
    }
    let mut row = vec!["geometric mean".to_string()];
    for g in &gains {
        row.push(String::new());
        row.push(format!("{:+.1}%", 100.0 * (geomean(g) - 1.0)));
    }
    t.row(row);
    t
}

/// Ablation: instruction-window (ROB) size under the base machine — the
/// "large number of reservation stations" whose complexity motivates the
/// whole decoupling approach (§2.1).
pub fn ablation_window() -> Table {
    let sizes = [32usize, 64, 128, 256];
    let cfgs: Vec<MachineConfig> = sizes
        .iter()
        .map(|&s| {
            let mut c = MachineConfig::n_plus_m(3, 2).with_optimizations();
            c.rob_size = s;
            c
        })
        .collect();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(sizes.iter().map(|s| format!("ROB {s}")));
    let mut t = Table::new(headers);
    t.title("Ablation: ROB size under (3+2) optimized, relative to 128 entries");
    t.numeric();
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let base = &rs[2]; // 128
        let mut row = vec![b.name().to_string()];
        row.extend(rs.iter().map(|r| fmt_rel(rel(r, base))));
        t.row(row);
    }
    t
}

/// Ablation: MSHR count — how lockup-free the caches need to be.
pub fn ablation_mshrs() -> Table {
    let counts = [1u32, 2, 4, 8];
    let cfgs: Vec<MachineConfig> = counts
        .iter()
        .map(|&n| {
            let mut c = MachineConfig::n_plus_m(2, 2).with_optimizations();
            c.hierarchy.l1.mshrs = n;
            if let Some(lvc) = &mut c.hierarchy.lvc {
                lvc.mshrs = n.min(4);
            }
            c
        })
        .collect();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(counts.iter().map(|n| format!("{n} MSHRs")));
    let mut t = Table::new(headers);
    t.title("Ablation: L1 MSHR count under (2+2) optimized, relative to 8 MSHRs");
    t.numeric();
    for b in Benchmark::ALL {
        let rs = run_configs_for(b, &cfgs);
        let base = rs.last().expect("8-MSHR run");
        let mut row = vec![b.name().to_string()];
        row.extend(rs.iter().map(|r| fmt_rel(rel(r, base))));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table1_and_table2_render() {
        let t1 = table1_machine_model().to_string();
        assert!(t1.contains("MIPS R10000"));
        let t2 = table2_benchmarks().to_string();
        assert!(t2.contains("147.vortex"));
        assert!(t2.contains("ctak"));
    }

    #[test]
    fn nm_grid_contains_baseline() {
        let (pairs, cfgs) = nm_grid(true);
        assert!(pairs.contains(&(2, 0)));
        assert_eq!(pairs.len(), cfgs.len());
        // Optimized grid leaves (N+0) without decoupling.
        let i = pairs.iter().position(|&p| p == (3, 0)).unwrap();
        assert!(!cfgs[i].decoupled());
        let j = pairs.iter().position(|&p| p == (3, 2)).unwrap();
        assert!(cfgs[j].decoupling.fast_forwarding);
    }
}
