//! Content-addressed on-disk checkpoint store.
//!
//! A [`dda_vm::Checkpoint`] is addressed by its
//! [`CheckpointKey`] — `(program fingerprint, instruction index, config
//! fingerprint)` — so sweep workers and the sampling driver can resume a
//! workload mid-run without re-fast-forwarding: the first run of a sweep
//! populates the store, every later run (same program, same position,
//! same warm-state-relevant configuration) restores in one file read.
//!
//! Fingerprints use [`fnv1a64`] over *stable* renderings (the assembly
//! text of the program, the `Debug` form of the configuration), never a
//! `Hasher` whose output may change across releases — file names are a
//! format commitment.

use std::io;
use std::path::{Path, PathBuf};

use dda_core::MachineConfig;
use dda_program::Program;
use dda_stats::fnv1a64;
use dda_vm::{Checkpoint, CheckpointKey};

/// Stable content fingerprint of a program (its assembly rendering).
pub fn program_fingerprint(p: &Program) -> u64 {
    fnv1a64(p.to_asm().as_bytes())
}

/// Stable fingerprint of the configuration state a checkpoint's warm
/// cache tags depend on — the hierarchy geometry alone, since the
/// architectural part of a checkpoint is configuration-independent.
pub fn config_fingerprint(cfg: &MachineConfig) -> u64 {
    fnv1a64(format!("{:?}", cfg.hierarchy).as_bytes())
}

/// A directory of serialized checkpoints, one file per key.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key maps to (exists or not).
    pub fn path_for(&self, key: &CheckpointKey) -> PathBuf {
        self.dir.join(format!(
            "ckpt_{:016x}_{:012}_{:016x}.bin",
            key.program_hash, key.inst_index, key.config_hash
        ))
    }

    /// Serializes `ck` under its key. Overwrites silently — content
    /// addressing makes a collision a re-save of identical state.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the file cannot be written.
    pub fn save(&self, ck: &Checkpoint) -> io::Result<PathBuf> {
        let path = self.path_for(&ck.key);
        std::fs::write(&path, ck.to_bytes())?;
        Ok(path)
    }

    /// Loads the checkpoint for `key`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] on a read failure, or one of kind
    /// [`io::ErrorKind::InvalidData`] when the file exists but fails to
    /// decode (truncated or corrupt).
    pub fn load(&self, key: &CheckpointKey) -> io::Result<Option<Checkpoint>> {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let ck = Checkpoint::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if ck.key != *key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint at {} carries a different key", path.display()),
            ));
        }
        Ok(Some(ck))
    }

    /// Number of checkpoint files currently in the store.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the directory cannot be read.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt_") && name.ends_with(".bin") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the store holds no checkpoints.
    ///
    /// # Errors
    ///
    /// As for [`CheckpointStore::len`].
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_vm::Vm;
    use dda_workloads::Benchmark;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dda-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_restores_bit_identically() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let program = Arc::new(Benchmark::Compress.program(u32::MAX / 2));
        let phash = program_fingerprint(&program);

        let mut vm = Vm::new(Arc::clone(&program));
        vm.fast_forward(10_000).unwrap();
        let ck = vm.checkpoint(phash, 0);
        let path = store.save(&ck).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("000000010000"));

        let loaded = store.load(&ck.key).unwrap().expect("present");
        let restored = Vm::restore(Arc::clone(&program), &loaded).unwrap();
        assert_eq!(restored.instructions_executed(), 10_000);
        assert_eq!(restored.pc(), vm.pc());

        // Both continue identically.
        let mut a = vm.clone();
        let mut b = restored;
        a.fast_forward(5_000).unwrap();
        b.fast_forward(5_000).unwrap();
        assert_eq!(a.pc(), b.pc());
        assert_eq!(a.sp_version(), b.sp_version());

        // Missing key is None, not an error.
        let missing = CheckpointKey {
            inst_index: 999,
            ..ck.key
        };
        assert!(store.load(&missing).unwrap().is_none());
        assert_eq!(store.len().unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_invalid_data_not_garbage() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        let key = CheckpointKey {
            program_hash: 1,
            inst_index: 2,
            config_hash: 3,
        };
        std::fs::write(store.path_for(&key), b"not a checkpoint").unwrap();
        let err = store.load(&key).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_content() {
        let a = Benchmark::Compress.program(u32::MAX / 2);
        let b = Benchmark::Li.program(u32::MAX / 2);
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        let base = MachineConfig::iscapaper_base();
        let dec = MachineConfig::n_plus_m(4, 2);
        assert_ne!(config_fingerprint(&base), config_fingerprint(&dec));
        // Non-hierarchy knobs don't invalidate warm-state checkpoints.
        let mut audited = base.clone();
        audited.audit = true;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&audited));
    }
}
