//! Shared machinery: budgets, profiling, parallel configuration sweeps.

use std::sync::{Arc, OnceLock};

use dda_core::{MachineConfig, SimError, SimResult, Simulator};
use dda_vm::{DynInst, StreamProfiler, StreamStats, Vm, VmError};
use dda_workloads::Benchmark;

use crate::pool;

/// Drains up to `budget` instructions of `vm`'s dynamic stream through
/// `observe` — the one shared warm-up/profiling loop (the experiment
/// tables, the figure benches and [`profile`] all route through here
/// instead of hand-rolling a `vm.step()` drain each).
///
/// Replays pre-decoded basic blocks via [`Vm::step_block`], so profiling
/// sweeps run at translation-cache speed; the observed prefix is
/// bit-identical to stepping one instruction at a time. Returns the
/// number of instructions observed (less than `budget` when the program
/// halts first).
///
/// # Errors
///
/// Returns the [`VmError`] if the program faults within the observed
/// window. A fault past the budget is not reported — a per-step loop
/// stopping at `budget` would never have executed it.
pub fn drain_stream(
    vm: &mut Vm,
    budget: u64,
    mut observe: impl FnMut(&DynInst),
) -> Result<u64, VmError> {
    let mut seen = 0u64;
    let mut ring: Vec<DynInst> = Vec::with_capacity(72);
    while seen < budget {
        ring.clear();
        let fault = vm.step_block(&mut ring);
        for d in &ring {
            observe(d);
            seen += 1;
            if seen == budget {
                return Ok(seen);
            }
        }
        if let Some(e) = fault {
            return Err(e);
        }
        if ring.is_empty() {
            break; // machine halted
        }
    }
    Ok(seen)
}

/// Programmatic budget overrides (see [`set_default_budgets`]). Consulted
/// before the environment so a driver that carries its budget in a config
/// struct (the sampling driver) can pin the process-wide value once: the
/// fast-forward and detailed phases of one run then can never read
/// different budgets, even if the environment changes between them.
static PIPELINE_OVERRIDE: OnceLock<u64> = OnceLock::new();
static PROFILE_OVERRIDE: OnceLock<u64> = OnceLock::new();

/// Pins the process-wide pipeline and profiling budgets (overriding
/// `DDA_BUDGET` / `DDA_PROFILE_BUDGET`). First caller wins — returns
/// `false` when either budget was already pinned, in which case the
/// earlier values remain in force.
pub fn set_default_budgets(pipeline: u64, profile: u64) -> bool {
    let a = PIPELINE_OVERRIDE.set(pipeline).is_ok();
    let b = PROFILE_OVERRIDE.set(profile).is_ok();
    a && b
}

/// Committed-instruction budget for pipeline experiments.
///
/// Pinned by [`set_default_budgets`] when a driver carries an explicit
/// budget; otherwise the `DDA_BUDGET` environment variable (read once).
/// The default keeps a full figure sweep (hundreds of runs) in the
/// minutes range; the paper's shapes are stable well below this budget.
pub fn pipeline_budget() -> u64 {
    if let Some(b) = PIPELINE_OVERRIDE.get() {
        return *b;
    }
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("DDA_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300_000)
    })
}

/// Instruction budget for functional-profiling experiments (Figures 2, 3
/// and 6), which run only the VM and are much cheaper per instruction.
///
/// Pinned by [`set_default_budgets`]; otherwise `DDA_PROFILE_BUDGET`.
pub fn profile_budget() -> u64 {
    if let Some(b) = PROFILE_OVERRIDE.get() {
        return *b;
    }
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("DDA_PROFILE_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000_000)
    })
}

/// A benchmark plus its measured stream statistics.
#[derive(Clone, Debug)]
pub struct ProfiledWorkload {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Statistics over the profiled prefix of the dynamic stream.
    pub stats: StreamStats,
    /// Mean static frame size in words (over the generated functions).
    pub static_frame_words: f64,
    /// Number of static functions in the stand-in.
    pub static_functions: usize,
}

/// Profiles `bench` for `budget` dynamic instructions.
///
/// # Panics
///
/// Panics if the generated program raises a functional-execution error —
/// generator output is expected to be well-formed.
pub fn profile(bench: Benchmark, budget: u64) -> ProfiledWorkload {
    let program = bench.program(u32::MAX / 2);
    let mut vm = Vm::new(program.clone());
    let mut prof = StreamProfiler::new(&program);
    drain_stream(&mut vm, budget, |d| prof.observe(d)).expect("benchmark executes cleanly");
    ProfiledWorkload {
        bench,
        stats: prof.into_stats(),
        static_frame_words: program.mean_static_frame_words(),
        static_functions: program.functions().len(),
    }
}

/// Profiles `bench` with the default profiling budget.
pub fn workload_stats(bench: Benchmark) -> ProfiledWorkload {
    profile(bench, profile_budget())
}

/// Runs `bench` on `cfg` for the default pipeline budget.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails — generated
/// benchmarks are expected to execute cleanly. Use
/// [`run_config_checked`] to get the [`SimError`] instead.
pub fn run_config(bench: Benchmark, cfg: MachineConfig) -> SimResult {
    run_config_checked(bench, cfg).expect("benchmark executes cleanly")
}

/// Like [`run_config`] but surfacing failures as values: an invalid
/// configuration, a guest trap, a watchdog deadlock, or an invariant
/// violation all come back as a structured [`SimError`] instead of a
/// panic — the form fault campaigns and robustness sweeps consume.
pub fn run_config_checked(bench: Benchmark, cfg: MachineConfig) -> Result<SimResult, SimError> {
    run_config_checked_with_budget(bench, cfg, pipeline_budget())
}

/// [`run_config_checked`] with an explicit committed-instruction budget
/// instead of the process-wide `DDA_BUDGET` default — the form tests use,
/// so they never mutate (or race on) process environment state.
pub fn run_config_checked_with_budget(
    bench: Benchmark,
    cfg: MachineConfig,
    budget: u64,
) -> Result<SimResult, SimError> {
    let program = Arc::new(bench.program(u32::MAX / 2));
    Simulator::new(cfg)?.run_shared(program, budget)
}

/// Runs one benchmark under several configurations on the work-stealing
/// pool.
///
/// The program is generated once and shared (`Arc`) across the sweep
/// rather than regenerated or cloned per configuration.
///
/// Returns results in the same order as `cfgs`.
pub fn run_configs_for(bench: Benchmark, cfgs: &[MachineConfig]) -> Vec<SimResult> {
    run_configs_checked(bench, cfgs)
        .into_iter()
        .map(|r| r.expect("benchmark executes cleanly"))
        .collect()
}

/// Like [`run_configs_for`] but each run's failure stays its own
/// [`SimError`]: one wedged or faulting configuration degrades to one
/// structured per-run failure without tearing down the rest of the sweep.
/// A panicking worker likewise degrades to [`SimError::WorkerPanic`] for
/// that run alone.
pub fn run_configs_checked(
    bench: Benchmark,
    cfgs: &[MachineConfig],
) -> Vec<Result<SimResult, SimError>> {
    run_configs_checked_with_budget(bench, cfgs, pipeline_budget())
}

/// [`run_configs_checked`] with an explicit budget (see
/// [`run_config_checked_with_budget`]).
pub fn run_configs_checked_with_budget(
    bench: Benchmark,
    cfgs: &[MachineConfig],
    budget: u64,
) -> Vec<Result<SimResult, SimError>> {
    let program = Arc::new(bench.program(u32::MAX / 2));
    let tasks: Vec<_> = cfgs
        .iter()
        .map(|cfg| {
            let cfg = cfg.clone();
            let program = Arc::clone(&program);
            move || Simulator::new(cfg)?.run_shared(program, budget)
        })
        .collect();
    let workers = pool::default_workers(tasks.len());
    pool::run_tasks(tasks, workers)
        .into_iter()
        .map(flatten_task)
        .collect()
}

/// Runs the full `benches` × `cfgs` matrix as independent tasks on the
/// work-stealing pool — the figure-regeneration shape, where per-config
/// parallelism alone underuses wide machines. Each program is generated
/// once and shared across its row. Results come back as
/// `result[bench_index][cfg_index]`, deterministically, regardless of how
/// the pool interleaved the tasks.
pub fn run_matrix_checked(
    benches: &[Benchmark],
    cfgs: &[MachineConfig],
    budget: u64,
) -> Vec<Vec<Result<SimResult, SimError>>> {
    let programs: Vec<_> = benches
        .iter()
        .map(|b| Arc::new(b.program(u32::MAX / 2)))
        .collect();
    let mut tasks = Vec::with_capacity(benches.len() * cfgs.len());
    for program in &programs {
        for cfg in cfgs {
            let cfg = cfg.clone();
            let program = Arc::clone(program);
            tasks.push(move || Simulator::new(cfg)?.run_shared(program, budget));
        }
    }
    let workers = pool::default_workers(tasks.len());
    let mut flat = pool::run_tasks(tasks, workers)
        .into_iter()
        .map(flatten_task);
    benches
        .iter()
        .map(|_| (0..cfgs.len()).map(|_| flatten_next(&mut flat)).collect())
        .collect()
}

fn flatten_next(
    it: &mut impl Iterator<Item = Result<SimResult, SimError>>,
) -> Result<SimResult, SimError> {
    match it.next() {
        Some(r) => r,
        None => Err(SimError::WorkerPanic(
            "pool returned too few results".to_string(),
        )),
    }
}

/// Collapses a pool task result: a caught worker panic becomes a
/// structured [`SimError::WorkerPanic`] carrying the panic message.
fn flatten_task(r: pool::TaskResult<Result<SimResult, SimError>>) -> Result<SimResult, SimError> {
    match r {
        Ok(res) => res,
        Err(payload) => Err(SimError::WorkerPanic(crate::campaign::panic_message(
            payload.as_ref(),
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_produces_traffic() {
        let w = profile(Benchmark::Compress, 50_000);
        assert!(w.stats.instructions >= 50_000);
        assert!(w.stats.loads > 0 && w.stats.stores > 0);
        assert!(w.static_functions >= 3);
    }

    /// Tests thread their budget explicitly instead of mutating the
    /// process-wide `DDA_BUDGET` (removing it mid-process raced with any
    /// concurrently running test that read it).
    const TEST_BUDGET: u64 = 60_000;

    #[test]
    fn budget_override_pins_first_value() {
        // Pin to the defaults so concurrently running tests that read the
        // process-wide budgets observe unchanged values.
        assert!(set_default_budgets(300_000, 2_000_000));
        assert_eq!(pipeline_budget(), 300_000);
        assert_eq!(profile_budget(), 2_000_000);
        // Later callers cannot repin.
        assert!(!set_default_budgets(123, 456));
        assert_eq!(pipeline_budget(), 300_000);
        assert_eq!(profile_budget(), 2_000_000);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let cfgs = [MachineConfig::n_plus_m(2, 0), MachineConfig::n_plus_m(4, 0)];
        let results = run_configs_checked_with_budget(Benchmark::Li, &cfgs, TEST_BUDGET);
        let serial =
            run_config_checked_with_budget(Benchmark::Li, cfgs[0].clone(), TEST_BUDGET).unwrap();
        assert_eq!(*results[0].as_ref().unwrap(), serial);
        let (r0, r1) = (results[0].as_ref().unwrap(), results[1].as_ref().unwrap());
        assert!(r1.ipc() >= r0.ipc() * 0.95);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        // Two full parallel sweeps must agree bit for bit: pool
        // scheduling may reorder the runs but never their results.
        let cfgs = [
            MachineConfig::n_plus_m(2, 2),
            MachineConfig::n_plus_m(4, 2).with_optimizations(),
        ];
        let first = run_configs_checked_with_budget(Benchmark::Compress, &cfgs, TEST_BUDGET);
        let second = run_configs_checked_with_budget(Benchmark::Compress, &cfgs, TEST_BUDGET);
        assert_eq!(first, second);
    }

    #[test]
    fn matrix_sweep_matches_per_config_runs() {
        let benches = [Benchmark::Compress, Benchmark::Li];
        let cfgs = [MachineConfig::n_plus_m(2, 0), MachineConfig::n_plus_m(2, 2)];
        let matrix = run_matrix_checked(&benches, &cfgs, TEST_BUDGET);
        assert_eq!(matrix.len(), benches.len());
        for (bi, bench) in benches.iter().enumerate() {
            assert_eq!(matrix[bi].len(), cfgs.len());
            for (ci, cfg) in cfgs.iter().enumerate() {
                let serial =
                    run_config_checked_with_budget(*bench, cfg.clone(), TEST_BUDGET).unwrap();
                assert_eq!(
                    *matrix[bi][ci].as_ref().unwrap(),
                    serial,
                    "({bi},{ci}) diverged"
                );
            }
        }
    }

    #[test]
    fn invalid_config_degrades_to_one_structured_failure() {
        let mut bad = MachineConfig::n_plus_m(2, 0);
        bad.rob_size = 0;
        let cfgs = [MachineConfig::n_plus_m(2, 0), bad];
        let results = run_configs_checked_with_budget(Benchmark::Li, &cfgs, TEST_BUDGET);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(SimError::Config(_))));
    }

    #[test]
    fn worker_panic_becomes_a_per_task_sim_error() {
        // Drive the pool through the same flattening the harness uses.
        let tasks: Vec<Box<dyn FnOnce() -> Result<SimResult, SimError> + Send>> = vec![
            Box::new(|| {
                run_config_checked_with_budget(
                    Benchmark::Compress,
                    MachineConfig::n_plus_m(2, 0),
                    5_000,
                )
            }),
            Box::new(|| panic!("poisoned task")),
        ];
        let out: Vec<_> = pool::run_tasks(tasks, 2)
            .into_iter()
            .map(super::flatten_task)
            .collect();
        assert!(out[0].is_ok());
        match &out[1] {
            Err(SimError::WorkerPanic(msg)) => assert!(msg.contains("poisoned task")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}
