//! Shared machinery: budgets, profiling, parallel configuration sweeps.

use std::sync::{Arc, OnceLock};

use dda_core::{MachineConfig, SimError, SimResult, Simulator};
use dda_vm::{StreamProfiler, StreamStats, Vm};
use dda_workloads::Benchmark;

/// Committed-instruction budget for pipeline experiments.
///
/// Override with the `DDA_BUDGET` environment variable. The default keeps
/// a full figure sweep (hundreds of runs) in the minutes range; the
/// paper's shapes are stable well below this budget.
pub fn pipeline_budget() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("DDA_BUDGET").ok().and_then(|v| v.parse().ok()).unwrap_or(300_000)
    })
}

/// Instruction budget for functional-profiling experiments (Figures 2, 3
/// and 6), which run only the VM and are much cheaper per instruction.
///
/// Override with `DDA_PROFILE_BUDGET`.
pub fn profile_budget() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("DDA_PROFILE_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000_000)
    })
}

/// A benchmark plus its measured stream statistics.
#[derive(Clone, Debug)]
pub struct ProfiledWorkload {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Statistics over the profiled prefix of the dynamic stream.
    pub stats: StreamStats,
    /// Mean static frame size in words (over the generated functions).
    pub static_frame_words: f64,
    /// Number of static functions in the stand-in.
    pub static_functions: usize,
}

/// Profiles `bench` for `budget` dynamic instructions.
///
/// # Panics
///
/// Panics if the generated program raises a functional-execution error —
/// generator output is expected to be well-formed.
pub fn profile(bench: Benchmark, budget: u64) -> ProfiledWorkload {
    let program = bench.program(u32::MAX / 2);
    let mut vm = Vm::new(program.clone());
    let mut prof = StreamProfiler::new(&program);
    for _ in 0..budget {
        match vm.step().expect("benchmark executes cleanly") {
            Some(d) => prof.observe(&d),
            None => break,
        }
    }
    ProfiledWorkload {
        bench,
        stats: prof.into_stats(),
        static_frame_words: program.mean_static_frame_words(),
        static_functions: program.functions().len(),
    }
}

/// Profiles `bench` with the default profiling budget.
pub fn workload_stats(bench: Benchmark) -> ProfiledWorkload {
    profile(bench, profile_budget())
}

/// Runs `bench` on `cfg` for the default pipeline budget.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails — generated
/// benchmarks are expected to execute cleanly. Use
/// [`run_config_checked`] to get the [`SimError`] instead.
pub fn run_config(bench: Benchmark, cfg: MachineConfig) -> SimResult {
    run_config_checked(bench, cfg).expect("benchmark executes cleanly")
}

/// Like [`run_config`] but surfacing failures as values: an invalid
/// configuration, a guest trap, a watchdog deadlock, or an invariant
/// violation all come back as a structured [`SimError`] instead of a
/// panic — the form fault campaigns and robustness sweeps consume.
pub fn run_config_checked(bench: Benchmark, cfg: MachineConfig) -> Result<SimResult, SimError> {
    let program = Arc::new(bench.program(u32::MAX / 2));
    Simulator::new(cfg)?.run_shared(program, pipeline_budget())
}

/// Runs one benchmark under several configurations, in parallel threads.
///
/// The program is generated once and shared (`Arc`) across the sweep
/// rather than regenerated or cloned per configuration.
///
/// Returns results in the same order as `cfgs`.
pub fn run_configs_for(bench: Benchmark, cfgs: &[MachineConfig]) -> Vec<SimResult> {
    run_configs_checked(bench, cfgs)
        .into_iter()
        .map(|r| r.expect("benchmark executes cleanly"))
        .collect()
}

/// Like [`run_configs_for`] but each run's failure stays its own
/// [`SimError`]: one wedged or faulting configuration degrades to one
/// structured per-run failure without tearing down the rest of the sweep.
pub fn run_configs_checked(
    bench: Benchmark,
    cfgs: &[MachineConfig],
) -> Vec<Result<SimResult, SimError>> {
    let program = Arc::new(bench.program(u32::MAX / 2));
    std::thread::scope(|s| {
        let handles: Vec<_> = cfgs
            .iter()
            .map(|cfg| {
                let cfg = cfg.clone();
                let program = Arc::clone(&program);
                s.spawn(move || Simulator::new(cfg)?.run_shared(program, pipeline_budget()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("simulation thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_produces_traffic() {
        let w = profile(Benchmark::Compress, 50_000);
        assert!(w.stats.instructions >= 50_000);
        assert!(w.stats.loads > 0 && w.stats.stores > 0);
        assert!(w.static_functions >= 3);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let cfgs = [MachineConfig::n_plus_m(2, 0), MachineConfig::n_plus_m(4, 0)];
        std::env::remove_var("DDA_BUDGET");
        let results = run_configs_for(Benchmark::Li, &cfgs);
        let serial = run_config(Benchmark::Li, cfgs[0].clone());
        assert_eq!(results[0], serial);
        assert!(results[1].ipc() >= results[0].ipc() * 0.95);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        // Two full parallel sweeps must agree bit for bit: thread
        // scheduling may reorder the runs but never their results.
        let cfgs =
            [MachineConfig::n_plus_m(2, 2), MachineConfig::n_plus_m(4, 2).with_optimizations()];
        std::env::remove_var("DDA_BUDGET");
        let first = run_configs_for(Benchmark::Compress, &cfgs);
        let second = run_configs_for(Benchmark::Compress, &cfgs);
        assert_eq!(first, second);
    }
}
