//! Memoized design-space exploration (DSE).
//!
//! A configuration sweep re-simulates points it has already simulated —
//! across reruns, across overlapping figure grids, across users of the
//! same store. This module removes that waste without touching a single
//! measured number:
//!
//! 1. a **content-addressed [`ResultStore`]**: every simulation outcome
//!    is persisted under a [`result_key`] — the FNV-1a of the
//!    result-affecting configuration rendering, the program fingerprint,
//!    the workload seed, the run plan, and [`KERNEL_VERSION`] — so a
//!    probe either misses (and the cell is simulated, then saved) or
//!    hits with bytes proven bit-identical to a fresh run (`tests/
//!    dse_cache.rs` enforces this over randomized matrices, fault-RNG
//!    draw order included);
//! 2. a **job engine** on [`pool::run_tasks`]: a [`DseRequest`] expands
//!    to a deduplicated cell list, cache hits stream back immediately,
//!    and only the misses are simulated (panic-isolated, sharing one
//!    [`CheckpointStore`] of fast-forward positions across workers);
//! 3. a **line-delimited TCP service** ([`serve`]): the `dse_server`
//!    binary keeps the stores warm across processes, and the `dse`
//!    client renders the figure table as `CELL` lines arrive.
//!
//! The cache key deliberately includes a kernel version: any change to
//! the simulator that may alter counters bumps [`KERNEL_VERSION`] and
//! every stored record silently becomes a miss. Corrupt records degrade
//! to misses too — the store is a cache, never a source of truth.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use dda_core::{MachineConfig, ResultCodecError, SimError, SimResult, Simulator};
use dda_program::Program;
use dda_stats::{fnv1a64, ByteReader, ByteWriter};
use dda_workloads::Benchmark;

use crate::checkpoint::{program_fingerprint, CheckpointStore};
use crate::pool;
use crate::sampling::{
    sample_program_adaptive, Confidence, Estimate, SamplingConfig, WindowSample,
};

/// Version of the simulation kernel as far as *cached results* are
/// concerned. Part of every [`result_key`]: bump it whenever a simulator
/// change may alter any counter, and every previously stored record
/// becomes an automatic miss. (Wall-clock-only changes — schedulers
/// proven bit-identical, pool sizing, logging — do not bump it.)
pub const KERNEL_VERSION: u32 = 1;

/// Default committed-instruction budget for service requests that name
/// none.
pub const DEFAULT_BUDGET: u64 = 30_000;

/// Default workload scale ("seed") — the same `u32::MAX / 2` every other
/// driver in the tree uses, so DSE results share checkpoints with them.
pub const DEFAULT_SEED: u32 = u32::MAX / 2;

// ------------------------------------------------------------ run plan --

/// How each cell of a request is measured.
#[derive(Clone, Debug)]
pub enum RunPlan {
    /// Full detailed simulation to a committed-instruction budget.
    Full {
        /// Committed-instruction budget of each run.
        budget: u64,
    },
    /// Interval sampling ([`sample_program_adaptive`]) under this shape.
    Sampled(SamplingConfig),
}

impl RunPlan {
    /// Stable textual rendering of the plan — part of the cache key, so
    /// any field that changes what is measured must appear here.
    pub fn plan_text(&self) -> String {
        match self {
            RunPlan::Full { budget } => format!("full@{budget}"),
            RunPlan::Sampled(s) => format!(
                "sampled k={} w={} warm={} budget={} conf={} fwarm={} adaptive={:?} cap={}",
                s.windows,
                s.window_insts,
                s.warmup_insts,
                s.budget,
                s.confidence.percent(),
                s.functional_warmup,
                s.adaptive_target,
                s.max_windows
            ),
        }
    }
}

/// The content address of one simulation outcome: FNV-1a 64 over a
/// stable text combining everything the result depends on — kernel
/// version, result-affecting configuration fields
/// ([`MachineConfig::result_fingerprint_text`]), program content, the
/// workload seed, and the run plan.
pub fn result_key(
    kernel_version: u32,
    cfg: &MachineConfig,
    program_hash: u64,
    seed: u32,
    plan: &RunPlan,
) -> u64 {
    let text = format!(
        "dse kernel={kernel_version}\nprogram={program_hash:016x}\nseed={seed}\nplan={}\ncfg={}",
        plan.plan_text(),
        cfg.result_fingerprint_text()
    );
    fnv1a64(text.as_bytes())
}

// ------------------------------------------------------- cell outcomes --

/// A sampled cell's persistable measurement — [`crate::SampledRun`]
/// minus the fields that describe the *host* rather than the machine
/// (`host_secs`, and `fast_forwarded`, which depends on checkpoint-store
/// temperature): a cached record must be indistinguishable from a fresh
/// measurement, so only measurement-identity fields are stored.
#[derive(Clone, PartialEq, Debug)]
pub struct SampledCell {
    /// The measured windows, in order.
    pub windows: Vec<WindowSample>,
    /// CPI estimate with confidence half-width.
    pub cpi: Estimate,
    /// LVC hit-rate estimate.
    pub lvc_hit_rate: Estimate,
    /// Port-stalls-per-kilo-instruction estimate.
    pub port_stalls_per_kinst: Estimate,
    /// Detailed instructions simulated (warm-ups included).
    pub detailed_insts: u64,
    /// Whether the program halted before the budget.
    pub halted_early: bool,
    /// Adaptive rounds taken (1 under a fixed window count).
    pub rounds: u32,
}

impl SampledCell {
    /// Extracts the persistable measurement from a sampled run.
    pub fn from_run(run: &crate::SampledRun, rounds: u32) -> SampledCell {
        SampledCell {
            windows: run.windows.clone(),
            cpi: run.cpi,
            lvc_hit_rate: run.lvc_hit_rate,
            port_stalls_per_kinst: run.port_stalls_per_kinst,
            detailed_insts: run.detailed_insts,
            halted_early: run.halted_early,
            rounds,
        }
    }
}

/// One cell's measurement: a full run's [`SimResult`] or a sampled
/// cell's estimates.
#[derive(Clone, PartialEq, Debug)]
pub enum CellOutcome {
    /// Full detailed run.
    Full(SimResult),
    /// Interval-sampled run.
    Sampled(SampledCell),
}

/// Magic word opening a serialized [`CellOutcome`] (`b"DDADSE01"`).
const DSE_MAGIC: u64 = u64::from_le_bytes(*b"DDADSE01");
/// Format version of the serialized [`CellOutcome`] layout.
const DSE_VERSION: u32 = 1;

fn put_estimate(w: &mut ByteWriter, e: &Estimate) {
    w.put_f64(e.mean);
    w.put_f64(e.half_width);
}

fn get_estimate(r: &mut ByteReader) -> Result<Estimate, ResultCodecError> {
    Ok(Estimate {
        mean: r.get_f64()?,
        half_width: r.get_f64()?,
    })
}

impl CellOutcome {
    /// Serializes this outcome with the format's magic and version words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(700);
        w.put_u64(DSE_MAGIC);
        w.put_u32(DSE_VERSION);
        match self {
            CellOutcome::Full(r) => {
                w.put_u8(0);
                w.put_raw(&r.to_bytes());
            }
            CellOutcome::Sampled(s) => {
                w.put_u8(1);
                w.put_u32(s.rounds);
                w.put_u8(s.halted_early as u8);
                w.put_u64(s.detailed_insts);
                put_estimate(&mut w, &s.cpi);
                put_estimate(&mut w, &s.lvc_hit_rate);
                put_estimate(&mut w, &s.port_stalls_per_kinst);
                w.put_u32(s.windows.len() as u32);
                for ws in &s.windows {
                    w.put_u64(ws.start_inst);
                    w.put_u64(ws.committed);
                    w.put_u64(ws.cycles);
                    w.put_f64(ws.cpi);
                    w.put_f64(ws.lvc_hit_rate);
                    w.put_f64(ws.port_stalls_per_kinst);
                }
            }
        }
        w.into_vec()
    }

    /// Decodes an outcome serialized by [`CellOutcome::to_bytes`]; the
    /// whole input must be consumed.
    ///
    /// # Errors
    ///
    /// A [`ResultCodecError`] describing the first malformation.
    pub fn from_bytes(bytes: &[u8]) -> Result<CellOutcome, ResultCodecError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u64()?;
        if magic != DSE_MAGIC {
            return Err(ResultCodecError::BadMagic(magic));
        }
        let version = r.get_u32()?;
        if version != DSE_VERSION {
            return Err(ResultCodecError::BadVersion(version));
        }
        let out = match r.get_u8()? {
            0 => CellOutcome::Full(SimResult::decode(&mut r)?),
            1 => {
                let rounds = r.get_u32()?;
                let halted_early = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(ResultCodecError::BadTag(t)),
                };
                let detailed_insts = r.get_u64()?;
                let cpi = get_estimate(&mut r)?;
                let lvc_hit_rate = get_estimate(&mut r)?;
                let port_stalls_per_kinst = get_estimate(&mut r)?;
                let n = r.get_u32()? as usize;
                let mut windows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    windows.push(WindowSample {
                        start_inst: r.get_u64()?,
                        committed: r.get_u64()?,
                        cycles: r.get_u64()?,
                        cpi: r.get_f64()?,
                        lvc_hit_rate: r.get_f64()?,
                        port_stalls_per_kinst: r.get_f64()?,
                    });
                }
                CellOutcome::Sampled(SampledCell {
                    windows,
                    cpi,
                    lvc_hit_rate,
                    port_stalls_per_kinst,
                    detailed_insts,
                    halted_early,
                    rounds,
                })
            }
            t => return Err(ResultCodecError::BadTag(t)),
        };
        if r.remaining() != 0 {
            return Err(ResultCodecError::TrailingBytes(r.remaining()));
        }
        Ok(out)
    }

    /// Headline CPI of the cell (mean CPI for sampled cells).
    pub fn cpi(&self) -> f64 {
        match self {
            CellOutcome::Full(r) => {
                if r.committed == 0 {
                    0.0
                } else {
                    r.cycles as f64 / r.committed as f64
                }
            }
            CellOutcome::Sampled(s) => s.cpi.mean,
        }
    }

    /// Confidence half-width on the CPI (0 for full runs — they are
    /// exact).
    pub fn cpi_half_width(&self) -> f64 {
        match self {
            CellOutcome::Full(_) => 0.0,
            CellOutcome::Sampled(s) => s.cpi.half_width,
        }
    }

    /// Instructions this measurement covers: committed for full runs,
    /// detailed (warm-ups included) for sampled ones.
    pub fn measured_insts(&self) -> u64 {
        match self {
            CellOutcome::Full(r) => r.committed,
            CellOutcome::Sampled(s) => s.detailed_insts,
        }
    }

    /// `"full"` or `"sampled"` — the wire-protocol kind token.
    pub fn kind(&self) -> &'static str {
        match self {
            CellOutcome::Full(_) => "full",
            CellOutcome::Sampled(_) => "sampled",
        }
    }
}

// ------------------------------------------------------- result store --

/// A directory of serialized [`CellOutcome`]s, one file per
/// [`result_key`] — the same shape as [`CheckpointStore`], with the same
/// commitments: stable file names, magic + version words in the bytes,
/// corrupt files surfacing as [`io::ErrorKind::InvalidData`] (which the
/// engine treats as a miss, never as an answer).
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key maps to (exists or not).
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("res_{key:016x}.bin"))
    }

    /// Persists `outcome` under `key`. Overwrites silently — content
    /// addressing makes a collision a re-save of identical bytes.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the file cannot be written.
    pub fn save(&self, key: u64, outcome: &CellOutcome) -> io::Result<PathBuf> {
        let path = self.path_for(key);
        std::fs::write(&path, outcome.to_bytes())?;
        Ok(path)
    }

    /// Loads the outcome for `key`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] on a read failure, or one of kind
    /// [`io::ErrorKind::InvalidData`] when the file exists but fails to
    /// decode.
    pub fn load(&self, key: u64) -> io::Result<Option<CellOutcome>> {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let out = CellOutcome::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Some(out))
    }

    /// Number of result records currently in the store.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the directory cannot be read.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("res_") && name.ends_with(".bin") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the store holds no records.
    ///
    /// # Errors
    ///
    /// As for [`ResultStore::len`].
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

// ------------------------------------------------- requests and cells --

/// One point of the design space: a benchmark under a configuration.
/// Requests expand to these; tests may also construct them directly
/// (e.g. with a fault plan in `cfg`) and hand them to
/// [`DseService::run_streaming`].
#[derive(Clone, Debug)]
pub struct DseCell {
    /// The workload.
    pub bench: Benchmark,
    /// The machine. Any configuration is legal here, including fault
    /// plans — the cache key covers every result-affecting field.
    pub cfg: MachineConfig,
    /// Display label (no whitespace; it travels in `CELL` lines).
    pub label: String,
}

/// A config-matrix request: benchmarks × (N+M) port grid × combining ×
/// fast-forwarding, under one [`RunPlan`].
#[derive(Clone, Debug)]
pub struct DseRequest {
    /// Benchmarks to sweep.
    pub benches: Vec<Benchmark>,
    /// (N, M) port-grid points; `M == 0` means no LVC.
    pub grid: Vec<(u32, u32)>,
    /// Access-combining degrees to cross with each LVC point (ignored
    /// for `M == 0` points, where combining does not exist).
    pub combining: Vec<u32>,
    /// Fast-data-forwarding settings to cross with each LVC point
    /// (likewise ignored for `M == 0`).
    pub fast_forward: Vec<bool>,
    /// Optional LVC size override in bytes (LVC points only).
    pub lvc_bytes: Option<u32>,
    /// Workload scale fed to [`Benchmark::program`].
    pub seed: u32,
    /// How each cell is measured.
    pub plan: RunPlan,
}

fn bench_from_name(s: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == s || b.name().split('.').nth(1) == Some(s))
}

fn parse_list<T, E>(v: &str, f: impl Fn(&str) -> Result<T, E>) -> Result<Vec<T>, E> {
    v.split(',').filter(|s| !s.is_empty()).map(f).collect()
}

impl DseRequest {
    /// Parses the one-line wire form produced by [`DseRequest::to_line`]:
    ///
    /// ```text
    /// DSE v1 benches=compress,li grid=2+0,4+2 comb=2 ff=1 seed=N \
    ///     plan=full budget=30000
    /// DSE v1 benches=vortex grid=4+2 plan=sampled budget=60000 \
    ///     windows=8 window=4000 warmup=2000 conf=95 fwarm=1 \
    ///     adaptive=0.05 maxwin=64
    /// ```
    ///
    /// `benches` and `grid` are required; everything else defaults
    /// (combining 2 and fast forwarding on — the paper's recommended
    /// design point — seed [`DEFAULT_SEED`], a full run at
    /// [`DEFAULT_BUDGET`]).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first malformed token.
    pub fn parse(line: &str) -> Result<DseRequest, String> {
        let mut toks = line.split_whitespace();
        if toks.next() != Some("DSE") || toks.next() != Some("v1") {
            return Err("request must open with 'DSE v1'".into());
        }
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for t in toks {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("malformed token '{t}' (expected key=value)"))?;
            kv.insert(k, v);
        }
        let benches = parse_list(kv.get("benches").ok_or("missing benches=")?, |s| {
            bench_from_name(s).ok_or_else(|| format!("unknown benchmark '{s}'"))
        })?;
        if benches.is_empty() {
            return Err("benches= names no benchmarks".into());
        }
        let grid = parse_list(kv.get("grid").ok_or("missing grid=")?, |s| {
            let (n, m) = s
                .split_once('+')
                .ok_or_else(|| format!("malformed grid point '{s}' (expected N+M)"))?;
            let n: u32 = n.parse().map_err(|_| format!("bad port count '{n}'"))?;
            let m: u32 = m.parse().map_err(|_| format!("bad port count '{m}'"))?;
            if n == 0 {
                return Err(format!("grid point '{s}' has zero L1 ports"));
            }
            Ok((n, m))
        })?;
        if grid.is_empty() {
            return Err("grid= names no points".into());
        }
        let num = |k: &str, default: u64| -> Result<u64, String> {
            match kv.get(k) {
                Some(v) => v.parse().map_err(|_| format!("bad {k}= value '{v}'")),
                None => Ok(default),
            }
        };
        let combining = match kv.get("comb") {
            Some(v) => parse_list(v, |s| {
                s.parse::<u32>()
                    .map_err(|_| format!("bad comb value '{s}'"))
            })?,
            None => vec![2],
        };
        let fast_forward = match kv.get("ff") {
            Some(v) => parse_list(v, |s| match s {
                "0" => Ok(false),
                "1" => Ok(true),
                _ => Err(format!("bad ff value '{s}' (expected 0 or 1)")),
            })?,
            None => vec![true],
        };
        let lvc_bytes = match kv.get("lvc") {
            Some(v) => Some(
                v.parse::<u32>()
                    .map_err(|_| format!("bad lvc= value '{v}'"))?,
            ),
            None => None,
        };
        let seed = num("seed", u64::from(DEFAULT_SEED))? as u32;
        let budget = num("budget", DEFAULT_BUDGET)?;
        let windows = num("windows", 0)? as usize;
        let plan = if kv.get("plan").copied() == Some("sampled") || windows > 0 {
            let conf = num("conf", 95)? as u32;
            let confidence = Confidence::from_percent(conf)
                .ok_or_else(|| format!("bad conf= value '{conf}' (expected 90/95/99)"))?;
            let adaptive = match kv.get("adaptive") {
                Some(v) => {
                    let f: f64 = v
                        .parse()
                        .map_err(|_| format!("bad adaptive= value '{v}'"))?;
                    (f > 0.0).then_some(f)
                }
                None => None,
            };
            RunPlan::Sampled(SamplingConfig {
                windows: windows.max(2),
                window_insts: num("window", 4_000)?,
                warmup_insts: num("warmup", 2_000)?,
                budget,
                confidence,
                functional_warmup: num("fwarm", 1)? != 0,
                adaptive_target: adaptive,
                max_windows: num("maxwin", 64)? as usize,
            })
        } else {
            RunPlan::Full { budget }
        };
        Ok(DseRequest {
            benches,
            grid,
            combining: if combining.is_empty() {
                vec![2]
            } else {
                combining
            },
            fast_forward: if fast_forward.is_empty() {
                vec![true]
            } else {
                fast_forward
            },
            lvc_bytes,
            seed,
            plan,
        })
    }

    /// Renders the one-line wire form [`DseRequest::parse`] reads back.
    pub fn to_line(&self) -> String {
        let benches: Vec<&str> = self.benches.iter().map(|b| b.name()).collect();
        let grid: Vec<String> = self.grid.iter().map(|(n, m)| format!("{n}+{m}")).collect();
        let comb: Vec<String> = self.combining.iter().map(|c| c.to_string()).collect();
        let ff: Vec<&str> = self
            .fast_forward
            .iter()
            .map(|f| if *f { "1" } else { "0" })
            .collect();
        let mut line = format!(
            "DSE v1 benches={} grid={} comb={} ff={} seed={}",
            benches.join(","),
            grid.join(","),
            comb.join(","),
            ff.join(","),
            self.seed
        );
        if let Some(b) = self.lvc_bytes {
            line.push_str(&format!(" lvc={b}"));
        }
        match &self.plan {
            RunPlan::Full { budget } => line.push_str(&format!(" plan=full budget={budget}")),
            RunPlan::Sampled(s) => {
                line.push_str(&format!(
                    " plan=sampled budget={} windows={} window={} warmup={} conf={} fwarm={}",
                    s.budget,
                    s.windows,
                    s.window_insts,
                    s.warmup_insts,
                    s.confidence.percent(),
                    if s.functional_warmup { 1 } else { 0 }
                ));
                if let Some(t) = s.adaptive_target {
                    line.push_str(&format!(" adaptive={t} maxwin={}", s.max_windows));
                }
            }
        }
        line
    }

    /// Expands the matrix into concrete cells, deduplicated by
    /// result-affecting content: an `M == 0` point appears once per
    /// benchmark no matter how many combining/forwarding settings are
    /// crossed (those knobs do not exist without an LVC), and identical
    /// configurations reached by different coordinates collapse.
    pub fn expand(&self) -> Vec<DseCell> {
        let mut cells = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut push = |bench: Benchmark, cfg: MachineConfig, label: String| {
            let id = format!("{} {}", bench.name(), cfg.result_fingerprint_text());
            if seen.insert(id) {
                cells.push(DseCell { bench, cfg, label });
            }
        };
        for &bench in &self.benches {
            for &(n, m) in &self.grid {
                if m == 0 {
                    push(
                        bench,
                        MachineConfig::n_plus_m(n, 0),
                        format!("{}/{n}+0", bench.name()),
                    );
                    continue;
                }
                for &comb in &self.combining {
                    for &ff in &self.fast_forward {
                        let mut cfg = MachineConfig::n_plus_m(n, m)
                            .with_combining(comb)
                            .with_fast_forwarding(ff);
                        if let Some(bytes) = self.lvc_bytes {
                            cfg = cfg.with_lvc_size(bytes);
                        }
                        push(
                            bench,
                            cfg,
                            format!(
                                "{}/{n}+{m}/c{comb}/f{}",
                                bench.name(),
                                if ff { 1 } else { 0 }
                            ),
                        );
                    }
                }
            }
        }
        cells
    }
}

// ----------------------------------------------------------- service --

/// How a cell was satisfied.
#[derive(Clone, PartialEq, Debug)]
pub enum CellStatus {
    /// Served from the result store — zero instructions simulated.
    Hit,
    /// Simulated now (and saved to the store).
    Miss,
    /// The simulation failed; the message is the [`SimError`] or panic
    /// payload.
    Error(String),
}

impl CellStatus {
    /// The wire-protocol status token.
    pub fn as_str(&self) -> &'static str {
        match self {
            CellStatus::Hit => "hit",
            CellStatus::Miss => "miss",
            CellStatus::Error(_) => "error",
        }
    }
}

/// One streamed per-cell result.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Index into the expanded cell list.
    pub index: usize,
    /// The cell's display label.
    pub label: String,
    /// The cell's [`result_key`].
    pub key: u64,
    /// Hit, miss, or error.
    pub status: CellStatus,
    /// The measurement (absent on error).
    pub outcome: Option<CellOutcome>,
    /// Instructions simulated *by this request* for this cell: 0 on a
    /// hit; committed (full) or detailed + fast-forwarded (sampled) on a
    /// miss.
    pub sim_insts: u64,
}

/// Aggregate of one request's execution.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DseSummary {
    /// Cells in the expanded request.
    pub cells: usize,
    /// Cells served from the store.
    pub hits: usize,
    /// Cells simulated now.
    pub misses: usize,
    /// Cells that failed.
    pub errors: usize,
    /// Total instructions simulated by this request (0 for an all-hit
    /// rerun — the warm-cache acceptance gate).
    pub sim_insts: u64,
    /// Wall-clock seconds inside the engine.
    pub host_secs: f64,
}

/// Simulates one cell from scratch — the exact computation a cache miss
/// performs, exposed so differential tests can compare a fresh run
/// against a cached record.
///
/// # Errors
///
/// [`SimError`] as for [`Simulator::run`] / [`sample_program_adaptive`].
pub fn compute_cell(
    cfg: &MachineConfig,
    program: Arc<Program>,
    plan: &RunPlan,
    checkpoints: Option<&CheckpointStore>,
) -> Result<(CellOutcome, u64), SimError> {
    match plan {
        RunPlan::Full { budget } => {
            let r = Simulator::new(cfg.clone())?.run_shared(program, *budget)?;
            let insts = r.committed;
            Ok((CellOutcome::Full(r), insts))
        }
        RunPlan::Sampled(scfg) => {
            let (run, rounds) = sample_program_adaptive(cfg, program, scfg, checkpoints)?;
            let insts = run.detailed_insts + run.fast_forwarded;
            Ok((
                CellOutcome::Sampled(SampledCell::from_run(&run, rounds)),
                insts,
            ))
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// The memoized DSE engine: a [`ResultStore`] of finished measurements,
/// an optional [`CheckpointStore`] of fast-forward positions shared by
/// every sampled-cell worker, and the kernel version stamped into cache
/// keys.
#[derive(Debug)]
pub struct DseService {
    results: ResultStore,
    checkpoints: Option<CheckpointStore>,
    kernel_version: u32,
}

impl DseService {
    /// A service over `results`, optionally sharing `checkpoints` across
    /// sampled-cell workers, keyed at [`KERNEL_VERSION`].
    pub fn new(results: ResultStore, checkpoints: Option<CheckpointStore>) -> DseService {
        DseService {
            results,
            checkpoints,
            kernel_version: KERNEL_VERSION,
        }
    }

    /// Overrides the kernel version in cache keys — the seam
    /// invalidation tests use to prove a version bump misses.
    pub fn with_kernel_version(mut self, v: u32) -> DseService {
        self.kernel_version = v;
        self
    }

    /// The kernel version stamped into this service's cache keys.
    pub fn kernel_version(&self) -> u32 {
        self.kernel_version
    }

    /// The underlying result store.
    pub fn results(&self) -> &ResultStore {
        &self.results
    }

    /// Runs `cells` under `plan`, invoking `emit` once per cell as its
    /// result becomes available: store hits first (in cell order, no
    /// simulation), then misses as the pool finishes them (completion
    /// order, each saved to the store). A failing or panicking cell
    /// emits [`CellStatus::Error`] and never takes down its siblings.
    ///
    /// Corrupt store records are treated as misses: the cell is
    /// recomputed fresh and the good bytes overwrite the bad ones.
    pub fn run_streaming(
        &self,
        cells: &[DseCell],
        seed: u32,
        plan: &RunPlan,
        emit: &mut dyn FnMut(CellReport),
    ) -> DseSummary {
        let t0 = Instant::now();
        // One shared program image (and fingerprint) per distinct
        // benchmark, regardless of how many cells use it.
        let mut programs: HashMap<Benchmark, (Arc<Program>, u64)> = HashMap::new();
        for c in cells {
            programs.entry(c.bench).or_insert_with(|| {
                let p = Arc::new(c.bench.program(seed.max(1)));
                let h = program_fingerprint(&p);
                (p, h)
            });
        }
        let mut summary = DseSummary {
            cells: cells.len(),
            ..DseSummary::default()
        };
        let mut misses: Vec<(usize, u64, &DseCell, Arc<Program>)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let (program, phash) = &programs[&cell.bench];
            let key = result_key(self.kernel_version, &cell.cfg, *phash, seed, plan);
            match self.results.load(key) {
                Ok(Some(outcome)) => {
                    summary.hits += 1;
                    emit(CellReport {
                        index: i,
                        label: cell.label.clone(),
                        key,
                        status: CellStatus::Hit,
                        outcome: Some(outcome),
                        sim_insts: 0,
                    });
                }
                // Absent, corrupt, or unreadable: recompute.
                Ok(None) | Err(_) => misses.push((i, key, cell, Arc::clone(program))),
            }
        }
        let (tx, rx) = mpsc::channel();
        let checkpoints = self.checkpoints.as_ref();
        std::thread::scope(|s| {
            s.spawn(move || {
                let tasks: Vec<_> = misses
                    .into_iter()
                    .map(|(i, key, cell, program)| {
                        let tx = tx.clone();
                        let plan = plan.clone();
                        move || {
                            // Catch the panic here (not just at the pool
                            // boundary) so every cell sends *something*
                            // and the receiver never waits on a lost
                            // index.
                            let out = catch_unwind(AssertUnwindSafe(|| {
                                compute_cell(&cell.cfg, program, &plan, checkpoints)
                            }));
                            let res = match out {
                                Ok(Ok(v)) => Ok(v),
                                Ok(Err(e)) => Err(e.to_string()),
                                Err(p) => Err(panic_text(p.as_ref())),
                            };
                            let _ = tx.send((i, key, cell.label.clone(), res));
                        }
                    })
                    .collect();
                drop(tx); // workers hold the remaining senders
                let workers = pool::default_workers(tasks.len());
                pool::run_tasks(tasks, workers);
            });
            for (i, key, label, res) in rx {
                match res {
                    Ok((outcome, insts)) => {
                        let _ = self.results.save(key, &outcome); // best effort
                        summary.misses += 1;
                        summary.sim_insts += insts;
                        emit(CellReport {
                            index: i,
                            label,
                            key,
                            status: CellStatus::Miss,
                            outcome: Some(outcome),
                            sim_insts: insts,
                        });
                    }
                    Err(msg) => {
                        summary.errors += 1;
                        emit(CellReport {
                            index: i,
                            label,
                            key,
                            status: CellStatus::Error(msg.clone()),
                            outcome: None,
                            sim_insts: 0,
                        });
                    }
                }
            }
        });
        summary.host_secs = t0.elapsed().as_secs_f64();
        summary
    }

    /// [`DseService::run_streaming`] over a parsed request's expansion,
    /// discarding per-cell reports — the convenience tests and warm-up
    /// passes use.
    pub fn run_request(&self, req: &DseRequest) -> (Vec<CellReport>, DseSummary) {
        let cells = req.expand();
        let mut reports = Vec::with_capacity(cells.len());
        let summary = self.run_streaming(&cells, req.seed, &req.plan, &mut |r| reports.push(r));
        (reports, summary)
    }
}

// ------------------------------------------------------ wire protocol --

/// Renders one `CELL` protocol line.
pub fn cell_line(rep: &CellReport) -> String {
    let mut line = format!(
        "CELL i={} status={} key={:016x} label={}",
        rep.index,
        rep.status.as_str(),
        rep.key,
        rep.label
    );
    match (&rep.status, &rep.outcome) {
        (CellStatus::Error(msg), _) => {
            line.push_str(&format!(" msg={msg}"));
        }
        (_, Some(out)) => {
            line.push_str(&format!(
                " kind={} cpi={:.6} ci={:.6} insts={} sim={}",
                out.kind(),
                out.cpi(),
                out.cpi_half_width(),
                out.measured_insts(),
                rep.sim_insts
            ));
        }
        (_, None) => {}
    }
    line
}

fn handle_conn(stream: TcpStream, svc: &DseService) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    writeln!(out, "HELLO dse v1 kernel={}", svc.kernel_version())?;
    out.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(()); // client hung up before sending a request
    }
    let req = match DseRequest::parse(line.trim()) {
        Ok(r) => r,
        Err(msg) => {
            writeln!(out, "ERR {msg}")?;
            return out.flush();
        }
    };
    let cells = req.expand();
    // Stream each CELL line as its result lands; an I/O failure
    // (client gone) stops writing but lets the engine finish, so the
    // store still absorbs every computed result.
    let mut io_err: Option<io::Error> = None;
    let summary = svc.run_streaming(&cells, req.seed, &req.plan, &mut |rep| {
        if io_err.is_some() {
            return;
        }
        let r = writeln!(out, "{}", cell_line(&rep)).and_then(|()| out.flush());
        if let Err(e) = r {
            io_err = Some(e);
        }
    });
    if let Some(e) = io_err {
        return Err(e);
    }
    writeln!(
        out,
        "DONE cells={} hits={} misses={} errors={} sim_insts={} secs={:.3}",
        summary.cells,
        summary.hits,
        summary.misses,
        summary.errors,
        summary.sim_insts,
        summary.host_secs
    )?;
    out.flush()
}

/// Serves line-delimited DSE requests on `listener`, one connection at a
/// time: `HELLO` greeting, one request line in, streamed `CELL` lines
/// and a final `DONE` (or `ERR`) out. Stops after `max_conns`
/// connections when given (the smoke-test shape); serves forever
/// otherwise. A connection-level I/O error is logged and the next
/// connection served.
///
/// # Errors
///
/// An [`io::Error`] from accepting on the listener itself.
pub fn serve(listener: &TcpListener, svc: &DseService, max_conns: Option<usize>) -> io::Result<()> {
    let mut served = 0usize;
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                if let Err(e) = handle_conn(s, svc) {
                    eprintln!("[dse_server] connection error: {e}");
                }
            }
            Err(e) => return Err(e),
        }
        served += 1;
        if max_conns.is_some_and(|m| served >= m) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dda-dse-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tiny_full_request() -> DseRequest {
        DseRequest {
            benches: vec![Benchmark::Compress],
            grid: vec![(2, 0), (4, 2)],
            combining: vec![2],
            fast_forward: vec![true],
            lvc_bytes: None,
            seed: DEFAULT_SEED,
            plan: RunPlan::Full { budget: 4_000 },
        }
    }

    #[test]
    fn request_line_round_trips() {
        let req = DseRequest {
            benches: vec![Benchmark::Compress, Benchmark::Li],
            grid: vec![(2, 0), (4, 2)],
            combining: vec![1, 2],
            fast_forward: vec![false, true],
            lvc_bytes: Some(4096),
            seed: 7,
            plan: RunPlan::Sampled(SamplingConfig {
                windows: 4,
                window_insts: 1_000,
                warmup_insts: 500,
                budget: 40_000,
                confidence: Confidence::C99,
                functional_warmup: true,
                adaptive_target: Some(0.05),
                max_windows: 16,
            }),
        };
        let line = req.to_line();
        let back = DseRequest::parse(&line).expect("round trip parses");
        assert_eq!(back.to_line(), line);
        assert_eq!(back.benches, req.benches);
        assert_eq!(back.grid, req.grid);
        assert_eq!(back.combining, req.combining);
        assert_eq!(back.fast_forward, req.fast_forward);
        assert_eq!(back.lvc_bytes, req.lvc_bytes);
        assert_eq!(back.seed, req.seed);
        match (&back.plan, &req.plan) {
            (RunPlan::Sampled(a), RunPlan::Sampled(b)) => {
                assert_eq!(a.windows, b.windows);
                assert_eq!(a.adaptive_target, b.adaptive_target);
                assert_eq!(a.max_windows, b.max_windows);
            }
            _ => panic!("plan kind changed in round trip"),
        }

        let full = tiny_full_request();
        let back = DseRequest::parse(&full.to_line()).expect("full plan parses");
        assert!(matches!(back.plan, RunPlan::Full { budget: 4_000 }));
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, needle) in [
            ("HELLO", "DSE v1"),
            ("DSE v1 grid=2+0", "benches"),
            ("DSE v1 benches=compress", "grid"),
            ("DSE v1 benches=nosuch grid=2+0", "nosuch"),
            ("DSE v1 benches=compress grid=2x0", "2x0"),
            ("DSE v1 benches=compress grid=0+1", "zero L1 ports"),
            ("DSE v1 benches=compress grid=2+0 conf=42 windows=2", "conf"),
            ("DSE v1 benches=compress grid=2+0 bad-token", "bad-token"),
        ] {
            let err = DseRequest::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn expansion_dedupes_and_skips_non_lvc_knobs() {
        let req = DseRequest {
            benches: vec![Benchmark::Compress],
            // The duplicate (2,0) and the combining/ff cross on M=0
            // must all collapse.
            grid: vec![(2, 0), (2, 0), (4, 2)],
            combining: vec![1, 2],
            fast_forward: vec![false, true],
            lvc_bytes: None,
            seed: DEFAULT_SEED,
            plan: RunPlan::Full { budget: 1_000 },
        };
        let cells = req.expand();
        // 1 baseline + 2×2 LVC variants.
        assert_eq!(cells.len(), 5);
        assert!(cells.iter().all(|c| !c.label.contains(' ')));
        let labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"129.compress/2+0"));
        assert!(labels.contains(&"129.compress/4+2/c2/f1"));
    }

    #[test]
    fn outcome_codec_round_trips_both_kinds() {
        let program = Arc::new(Benchmark::Compress.program(DEFAULT_SEED));
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let (full, _) = compute_cell(
            &cfg,
            Arc::clone(&program),
            &RunPlan::Full { budget: 3_000 },
            None,
        )
        .expect("full run");
        assert_eq!(CellOutcome::from_bytes(&full.to_bytes()).unwrap(), full);

        let plan = RunPlan::Sampled(SamplingConfig {
            windows: 3,
            window_insts: 600,
            warmup_insts: 300,
            budget: 12_000,
            ..SamplingConfig::for_budget(0)
        });
        let (sampled, _) = compute_cell(&cfg, program, &plan, None).expect("sampled run");
        assert_eq!(
            CellOutcome::from_bytes(&sampled.to_bytes()).unwrap(),
            sampled
        );

        // Malformations are typed, never garbage.
        let good = sampled.to_bytes();
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            CellOutcome::from_bytes(&bad),
            Err(ResultCodecError::BadMagic(_))
        ));
        let mut bad = good.clone();
        bad.push(9);
        assert!(matches!(
            CellOutcome::from_bytes(&bad),
            Err(ResultCodecError::TrailingBytes(1))
        ));
        assert!(CellOutcome::from_bytes(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn result_key_separates_every_input() {
        let cfg = MachineConfig::n_plus_m(4, 2);
        let base = result_key(1, &cfg, 0xABCD, 7, &RunPlan::Full { budget: 100 });
        // Kernel version, config, program, seed, and plan all key.
        assert_ne!(
            base,
            result_key(2, &cfg, 0xABCD, 7, &RunPlan::Full { budget: 100 })
        );
        assert_ne!(
            base,
            result_key(
                1,
                &MachineConfig::n_plus_m(4, 4),
                0xABCD,
                7,
                &RunPlan::Full { budget: 100 }
            )
        );
        assert_ne!(
            base,
            result_key(1, &cfg, 0xABCE, 7, &RunPlan::Full { budget: 100 })
        );
        assert_ne!(
            base,
            result_key(1, &cfg, 0xABCD, 8, &RunPlan::Full { budget: 100 })
        );
        assert_ne!(
            base,
            result_key(1, &cfg, 0xABCD, 7, &RunPlan::Full { budget: 101 })
        );
        // Result-neutral flags don't key.
        let audited = cfg.clone().with_audit(true);
        assert_eq!(
            base,
            result_key(1, &audited, 0xABCD, 7, &RunPlan::Full { budget: 100 })
        );
    }

    #[test]
    fn service_streams_misses_then_hits_identically() {
        let dir = temp_dir("service");
        let svc = DseService::new(ResultStore::open(&dir).expect("store opens"), None);
        let req = tiny_full_request();
        let (cold, cold_sum) = svc.run_request(&req);
        assert_eq!(cold_sum.misses, cold_sum.cells);
        assert_eq!(cold_sum.hits, 0);
        assert!(cold_sum.sim_insts > 0);
        let (warm, warm_sum) = svc.run_request(&req);
        assert_eq!(warm_sum.hits, warm_sum.cells);
        assert_eq!(warm_sum.misses, 0);
        assert_eq!(warm_sum.sim_insts, 0, "warm rerun must simulate nothing");
        // Bit-identical outcomes, hit or miss.
        let by_index = |mut v: Vec<CellReport>| {
            v.sort_by_key(|r| r.index);
            v
        };
        let (cold, warm) = (by_index(cold), by_index(warm));
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.key, w.key);
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(w.sim_insts, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_failing_cell_is_isolated_as_an_error() {
        let dir = temp_dir("error");
        let svc = DseService::new(ResultStore::open(&dir).expect("store opens"), None);
        let mut bad = MachineConfig::n_plus_m(2, 0);
        bad.rob_size = 0; // structurally invalid: Simulator::new errors
        let cells = vec![
            DseCell {
                bench: Benchmark::Compress,
                cfg: bad,
                label: "bad".into(),
            },
            DseCell {
                bench: Benchmark::Compress,
                cfg: MachineConfig::n_plus_m(2, 0),
                label: "good".into(),
            },
        ];
        let mut reports = Vec::new();
        let sum = svc.run_streaming(
            &cells,
            DEFAULT_SEED,
            &RunPlan::Full { budget: 2_000 },
            &mut |r| reports.push(r),
        );
        assert_eq!(sum.errors, 1);
        assert_eq!(sum.misses, 1);
        reports.sort_by_key(|r| r.index);
        assert!(matches!(reports[0].status, CellStatus::Error(_)));
        assert!(reports[0].outcome.is_none());
        assert!(matches!(reports[1].status, CellStatus::Miss));
        // The error was not cached: rerunning retries it.
        let mut statuses = Vec::new();
        svc.run_streaming(
            &cells,
            DEFAULT_SEED,
            &RunPlan::Full { budget: 2_000 },
            &mut |r| statuses.push((r.index, r.status.clone())),
        );
        statuses.sort_by_key(|(i, _)| *i);
        assert!(matches!(statuses[0].1, CellStatus::Error(_)));
        assert!(matches!(statuses[1].1, CellStatus::Hit));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_lines_carry_the_protocol_fields() {
        let rep = CellReport {
            index: 3,
            label: "129.compress/4+2/c2/f1".into(),
            key: 0xDEAD_BEEF,
            status: CellStatus::Hit,
            outcome: Some(CellOutcome::Full(SimResult {
                cycles: 200,
                committed: 100,
                halted: false,
                stall_rob_full: 0,
                stall_lsq_full: 0,
                stall_lvaq_full: 0,
                misclassifications: 0,
                lsq: Default::default(),
                lvaq: Default::default(),
                l1: Default::default(),
                lvc: None,
                l2: Default::default(),
                load_latency_sum: 0,
                load_latency_count: 0,
                faults: Default::default(),
            })),
            sim_insts: 0,
        };
        let line = cell_line(&rep);
        for needle in [
            "CELL i=3",
            "status=hit",
            "key=00000000deadbeef",
            "kind=full",
            "cpi=2.000000",
            "ci=0.000000",
            "insts=100",
            "sim=0",
        ] {
            assert!(line.contains(needle), "{line:?} missing {needle}");
        }
        let err = CellReport {
            status: CellStatus::Error("boom with spaces".into()),
            outcome: None,
            ..rep
        };
        assert!(cell_line(&err).contains("msg=boom with spaces"));
    }
}
