//! SMARTS/SimPoint-style interval sampling.
//!
//! Paper-scale inputs make full detailed simulation the bottleneck: the
//! cycle-level core runs orders of magnitude slower than the functional
//! front-end. This module approximates a long detailed run by combining
//!
//! 1. **functional fast-forward** — only the [`Vm`] (at translation-cache
//!    speed) advances between measurement points, optionally feeding a
//!    timing-free [`FunctionalWarmup`] so cache tags stay warm;
//! 2. **detailed windows** — `k` evenly spaced windows of `window_insts`
//!    committed instructions are simulated in full detail, each preceded
//!    by a discarded detailed warm-up prefix that refills the pipeline
//!    and queues;
//! 3. **extrapolation** — per-window CPI (and the paper's headline rates)
//!    are averaged and reported with a Student-t confidence interval.
//!
//! The windows run on *clones* of the master [`Vm`], so positioning is
//! purely functional and a window never perturbs the stream — the same
//! discipline lets a window start from a restored
//! [`dda_vm::Checkpoint`] bit-identically (see `tests/`).

use std::sync::Arc;
use std::time::Instant;

use dda_core::{MachineConfig, SimError, Simulator, WindowRun};
use dda_mem::{FunctionalWarmup, HierarchyTags};
use dda_program::Program;
use dda_vm::{CheckpointKey, Vm};

use crate::checkpoint::CheckpointStore;

/// Two-sided confidence level for the sampling interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Confidence {
    /// 90 % two-sided.
    C90,
    /// 95 % two-sided (the conventional default).
    #[default]
    C95,
    /// 99 % two-sided.
    C99,
}

impl Confidence {
    /// The level as a percentage (90, 95, 99).
    pub fn percent(self) -> u32 {
        match self {
            Confidence::C90 => 90,
            Confidence::C95 => 95,
            Confidence::C99 => 99,
        }
    }

    /// Parses "90"/"95"/"99".
    pub fn from_percent(p: u32) -> Option<Confidence> {
        match p {
            90 => Some(Confidence::C90),
            95 => Some(Confidence::C95),
            99 => Some(Confidence::C99),
            _ => None,
        }
    }
}

/// Two-sided Student-t critical values for `df` 1..=30; beyond that the
/// normal approximation. Hardcoded (no external stats dependency) — the
/// usual table, e.g. Wasserman, *All of Statistics*, Table 24.1.
const T_90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];
const T_99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// The two-sided Student-t critical value for `df` degrees of freedom at
/// `conf` — the multiplier on the standard error of the window mean.
pub fn student_t(conf: Confidence, df: usize) -> f64 {
    let (table, z) = match conf {
        Confidence::C90 => (&T_90, 1.645),
        Confidence::C95 => (&T_95, 1.960),
        Confidence::C99 => (&T_99, 2.576),
    };
    if df == 0 {
        f64::INFINITY
    } else if df <= table.len() {
        table[df - 1]
    } else {
        z
    }
}

/// How a sampled run positions, warms and measures.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Number of evenly spaced measurement windows (`>= 2` for a finite
    /// confidence interval).
    pub windows: usize,
    /// Committed instructions measured per window.
    pub window_insts: u64,
    /// Detailed warm-up prefix per window, simulated but discarded.
    pub warmup_insts: u64,
    /// The instruction budget of the full run being approximated; windows
    /// are spaced every `budget / windows` instructions.
    pub budget: u64,
    /// Confidence level of the reported interval.
    pub confidence: Confidence,
    /// Feed every fast-forwarded access into a [`FunctionalWarmup`] and
    /// start each window with the warmed cache tags.
    pub functional_warmup: bool,
    /// Adaptive window counts: when set, [`sample_program_adaptive`]
    /// grows the window count geometrically (doubling from `windows`)
    /// until the CPI confidence half-width falls to at most this fraction
    /// of the CPI mean, or `max_windows` is reached. `None` keeps the
    /// fixed `windows` count.
    pub adaptive_target: Option<f64>,
    /// Hard cap on the adaptively grown window count (ignored by the
    /// fixed-count drivers).
    pub max_windows: usize,
}

impl SamplingConfig {
    /// A sane default shape: 8 windows × 4000 instructions, 2000-deep
    /// detailed warm-up, functional cache warming, 95 % intervals, no
    /// adaptive growth (cap 64 when enabled).
    pub fn for_budget(budget: u64) -> SamplingConfig {
        SamplingConfig {
            windows: 8,
            window_insts: 4_000,
            warmup_insts: 2_000,
            budget,
            confidence: Confidence::C95,
            functional_warmup: true,
            adaptive_target: None,
            max_windows: 64,
        }
    }

    /// Detailed instructions simulated per window (warm-up + measured).
    pub fn detailed_per_window(&self) -> u64 {
        self.warmup_insts.saturating_add(self.window_insts)
    }
}

/// One measured window of a sampled run.
#[derive(Clone, PartialEq, Debug)]
pub struct WindowSample {
    /// Dynamic instruction index at which detailed simulation started
    /// (the warm-up prefix begins here).
    pub start_inst: u64,
    /// The measured slice (see [`dda_core::WindowRun::window`]).
    pub committed: u64,
    /// Cycles of the measured slice.
    pub cycles: u64,
    /// Cycles per instruction of the slice.
    pub cpi: f64,
    /// LVC hit rate within the slice (0 when the machine has no LVC or
    /// the slice had no LVC accesses).
    pub lvc_hit_rate: f64,
    /// Port-stall cycles (LSQ + LVAQ) per kilo-instruction.
    pub port_stalls_per_kinst: f64,
}

/// A mean with its two-sided confidence half-width.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Estimate {
    /// Sample mean over the windows.
    pub mean: f64,
    /// Half-width of the confidence interval (infinite when fewer than
    /// two windows were measured).
    pub half_width: f64,
}

impl Estimate {
    /// Whether `value` lies within `mean ± half_width`.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }

    /// Computes mean and t-interval over `xs` at `conf`.
    pub fn over(xs: &[f64], conf: Confidence) -> Estimate {
        let n = xs.len();
        if n == 0 {
            return Estimate {
                mean: f64::NAN,
                half_width: f64::INFINITY,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Estimate {
                mean,
                half_width: f64::INFINITY,
            };
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let se = (var / n as f64).sqrt();
        Estimate {
            mean,
            half_width: student_t(conf, n - 1) * se,
        }
    }
}

/// The outcome of one sampled run.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// The windows actually measured (fewer than requested when the
    /// program halts before the last window start).
    pub windows: Vec<WindowSample>,
    /// CPI estimate with confidence interval.
    pub cpi: Estimate,
    /// LVC hit-rate estimate.
    pub lvc_hit_rate: Estimate,
    /// Port-stall-per-kilo-instruction estimate.
    pub port_stalls_per_kinst: Estimate,
    /// Dynamic instructions functionally replayed by this call to
    /// position the master VM (0 when every position was restored from a
    /// checkpoint store; at most the budget otherwise).
    pub fast_forwarded: u64,
    /// Detailed instructions simulated across all windows, warm-ups
    /// included.
    pub detailed_insts: u64,
    /// Whether the program halted before the full budget.
    pub halted_early: bool,
    /// Wall-clock seconds spent inside the driver.
    pub host_secs: f64,
}

impl SampledRun {
    /// Extrapolated cycle count for a full `budget`-instruction run.
    pub fn extrapolated_cycles(&self, budget: u64) -> f64 {
        self.cpi.mean * budget as f64
    }
}

fn lvc_hit_rate(w: &WindowRun) -> f64 {
    match &w.window.lvc {
        Some(l) if l.accesses() > 0 => l.hits as f64 / l.accesses() as f64,
        _ => 0.0,
    }
}

/// Runs `program` under `cfg` with interval sampling.
///
/// Windows start at `i * budget / windows` for `i` in `0..windows`; the
/// master [`Vm`] is advanced purely functionally between starts (feeding
/// the functional cache-warmup model when enabled) and each window runs
/// on a clone via [`Simulator::run_window`]. Determinism: two calls with
/// identical inputs produce identical `SampledRun`s (modulo `host_secs`).
///
/// # Errors
///
/// [`SimError`] as for [`Simulator::run`]; a functional fault during
/// fast-forward surfaces as the [`SimError::Trap`] the detailed run
/// would have raised.
pub fn sample_program(
    cfg: &MachineConfig,
    program: Arc<Program>,
    scfg: &SamplingConfig,
) -> Result<SampledRun, SimError> {
    sample_program_stored(cfg, program, scfg, None)
}

/// [`sample_program`] with a best-effort [`CheckpointStore`]: each window
/// start that misses the store is fast-forwarded to and checkpointed
/// (warm cache tags included); each hit restores instead of replaying
/// the functional prefix. Results are bit-identical either way — that is
/// the checkpoint-transparency discipline — so a populated store only
/// changes wall-clock time. Store I/O failures degrade to the
/// fast-forward path silently (the store is a cache, not a dependency).
///
/// # Errors
///
/// As for [`sample_program`].
pub fn sample_program_stored(
    cfg: &MachineConfig,
    program: Arc<Program>,
    scfg: &SamplingConfig,
    store: Option<&CheckpointStore>,
) -> Result<SampledRun, SimError> {
    let sim = Simulator::new(cfg.clone())?;
    let start_t = Instant::now();
    let k = scfg.windows.max(1) as u64;
    let spacing = (scfg.budget / k).max(1);
    let phash = crate::checkpoint::program_fingerprint(&program);
    let chash = if scfg.functional_warmup {
        crate::checkpoint::config_fingerprint(cfg)
    } else {
        0
    };
    let key_at = |inst: u64| CheckpointKey {
        program_hash: phash,
        inst_index: inst,
        config_hash: chash,
    };
    let mut vm = Vm::new(Arc::clone(&program));
    let mut warm = scfg
        .functional_warmup
        .then(|| FunctionalWarmup::new(&cfg.hierarchy));
    let mut windows = Vec::with_capacity(scfg.windows);
    let mut detailed_insts = 0u64;
    let mut ff_insts = 0u64;
    for i in 0..k {
        let start = i * spacing;
        // A stored checkpoint replaces the functional replay to `start`;
        // restoration teleports the *master*, so later windows keep
        // fast-forwarding from here (and the warmup model follows via the
        // checkpoint's serialized tags).
        let restored = store.and_then(|s| load_state(s, &key_at(start), &program, warm.is_some()));
        let tags = match restored {
            Some((r, restored_tags)) => {
                vm = r;
                if let (Some(w), Some(t)) = (&mut warm, &restored_tags) {
                    // Later fast-forwards continue warming from the
                    // checkpointed tag state, exactly as if the skipped
                    // prefix had been replayed.
                    w.adopt(t);
                }
                restored_tags
            }
            None => {
                position(&mut vm, start, warm.as_mut(), &mut ff_insts)?;
                if vm.is_halted() {
                    break;
                }
                let tags = warm.as_ref().map(|w| w.tags());
                if let Some(s) = store {
                    let mut ck = vm.checkpoint(phash, chash);
                    ck.cache_tags = tags.as_ref().map(|t| t.to_bytes());
                    let _ = s.save(&ck); // best effort
                }
                tags
            }
        };
        if vm.is_halted() {
            break;
        }
        let vm_w = vm.clone();
        let run = sim.run_window(vm_w, tags.as_ref(), scfg.warmup_insts, scfg.window_insts)?;
        detailed_insts += run.total.committed;
        if run.window.committed == 0 {
            break; // halted inside the warm-up prefix
        }
        windows.push(WindowSample {
            start_inst: vm.instructions_executed(),
            committed: run.window.committed,
            cycles: run.window.cycles,
            cpi: run.window.cycles as f64 / run.window.committed as f64,
            lvc_hit_rate: lvc_hit_rate(&run),
            port_stalls_per_kinst: (run.window.lsq.port_stall_cycles
                + run.window.lvaq.port_stall_cycles) as f64
                / (run.window.committed as f64 / 1000.0),
        });
    }
    // Cover the tail so `halted_early` reflects the whole budget, not
    // just the last window start.
    if !vm.is_halted() && scfg.budget > vm.instructions_executed() {
        match store.and_then(|s| load_state(s, &key_at(scfg.budget), &program, warm.is_some())) {
            Some((restored, _)) => vm = restored,
            None => {
                position(&mut vm, scfg.budget, warm.as_mut(), &mut ff_insts)?;
                if let (Some(s), false) = (store, vm.is_halted()) {
                    let mut ck = vm.checkpoint(phash, chash);
                    ck.cache_tags = warm.as_ref().map(|w| w.tags().to_bytes());
                    let _ = s.save(&ck);
                }
            }
        }
    }
    let conf = scfg.confidence;
    let collect = |f: fn(&WindowSample) -> f64| -> Vec<f64> { windows.iter().map(f).collect() };
    Ok(SampledRun {
        cpi: Estimate::over(&collect(|w| w.cpi), conf),
        lvc_hit_rate: Estimate::over(&collect(|w| w.lvc_hit_rate), conf),
        port_stalls_per_kinst: Estimate::over(&collect(|w| w.port_stalls_per_kinst), conf),
        windows,
        fast_forwarded: ff_insts,
        detailed_insts,
        halted_early: vm.is_halted(),
        host_secs: start_t.elapsed().as_secs_f64(),
    })
}

/// [`sample_program_stored`] with adaptive window counts: when
/// [`SamplingConfig::adaptive_target`] is set, the window count grows
/// geometrically (doubling, starting from `windows`, capped at
/// `max_windows`) until the CPI confidence half-width is at most
/// `target × |mean|`. Returns the final run and the number of rounds
/// taken (1 when the first count sufficed or no target was set).
///
/// Growth stops early when the program halts before filling the
/// requested windows — more windows cannot tighten an interval the
/// program is too short to populate. Each round re-samples from scratch
/// at the new spacing, so a shared [`CheckpointStore`] pays off doubly
/// here: positions probed by earlier rounds restore instead of replaying.
///
/// # Errors
///
/// As for [`sample_program`].
pub fn sample_program_adaptive(
    cfg: &MachineConfig,
    program: Arc<Program>,
    scfg: &SamplingConfig,
    store: Option<&CheckpointStore>,
) -> Result<(SampledRun, u32), SimError> {
    let Some(target) = scfg.adaptive_target else {
        return Ok((sample_program_stored(cfg, program, scfg, store)?, 1));
    };
    let cap = scfg.max_windows.max(scfg.windows.max(2));
    let mut k = scfg.windows.max(2);
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let round_cfg = SamplingConfig {
            windows: k,
            adaptive_target: None,
            ..scfg.clone()
        };
        let run = sample_program_stored(cfg, Arc::clone(&program), &round_cfg, store)?;
        let tight = run.cpi.half_width.is_finite()
            && run.cpi.mean.abs() > 0.0
            && run.cpi.half_width <= target * run.cpi.mean.abs();
        let starved = run.windows.len() < k; // halted before the last start
        if tight || starved || k >= cap {
            return Ok((run, rounds));
        }
        k = (k * 2).min(cap);
    }
}

/// Fast-forwards `vm` by `n` instructions, feeding every memory access to
/// the warmup model when present.
fn fast_forward_warming(
    vm: &mut Vm,
    n: u64,
    warm: Option<&mut FunctionalWarmup>,
) -> Result<(), dda_vm::VmError> {
    match warm {
        Some(w) => vm
            .fast_forward_observed(n, |d| {
                if let Some(m) = &d.mem {
                    w.touch(m.addr, m.is_store, m.is_local());
                }
            })
            .map(|_| ()),
        None => vm.fast_forward(n).map(|_| ()),
    }
}

/// Fast-forwards the master to the absolute instruction index `target`
/// (no-op when already there or past), accumulating the replayed count.
fn position(
    vm: &mut Vm,
    target: u64,
    warm: Option<&mut FunctionalWarmup>,
    ff_insts: &mut u64,
) -> Result<(), SimError> {
    let here = vm.instructions_executed();
    if target <= here {
        return Ok(());
    }
    fast_forward_warming(vm, target - here, warm).map_err(|e| trap_at(vm, e))?;
    *ff_insts += vm.instructions_executed() - here;
    Ok(())
}

/// Loads and validates a stored position: the checkpoint must restore
/// against `program` and its tag payload must match whether warming is
/// expected. Any failure — missing file, I/O error, corrupt bytes, tag
/// mismatch — degrades to `None` (a store miss).
fn load_state(
    store: &CheckpointStore,
    key: &CheckpointKey,
    program: &Arc<Program>,
    expect_tags: bool,
) -> Option<(Vm, Option<HierarchyTags>)> {
    let ck = store.load(key).ok().flatten()?;
    let tags = tags_from_checkpoint(&ck).ok()?;
    if expect_tags != tags.is_some() {
        return None;
    }
    let vm = Vm::restore(Arc::clone(program), &ck).ok()?;
    Some((vm, tags))
}

/// Wraps a functional fast-forward fault into the [`SimError::Trap`] a
/// detailed run reaching the same instruction would raise (cycle count
/// unknowable without detail, reported as 0).
fn trap_at(vm: &Vm, e: dda_vm::VmError) -> SimError {
    SimError::Trap(dda_core::Trap {
        kind: dda_core::TrapKind::from(e),
        cycle: 0,
        committed: vm.instructions_executed(),
    })
}

/// Warm tag state for a window start, decoded from a checkpoint's
/// `cache_tags` payload.
///
/// # Errors
///
/// [`dda_mem::TagsError`] when the payload is corrupt.
pub fn tags_from_checkpoint(
    ck: &dda_vm::Checkpoint,
) -> Result<Option<HierarchyTags>, dda_mem::TagsError> {
    ck.cache_tags
        .as_deref()
        .map(HierarchyTags::from_bytes)
        .transpose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_workloads::Benchmark;

    #[test]
    fn t_table_shapes() {
        assert!(student_t(Confidence::C95, 1) > 12.0);
        assert!(student_t(Confidence::C95, 7) > student_t(Confidence::C95, 29));
        assert!((student_t(Confidence::C95, 1000) - 1.960).abs() < 1e-9);
        assert!(student_t(Confidence::C99, 10) > student_t(Confidence::C95, 10));
        assert_eq!(student_t(Confidence::C90, 0), f64::INFINITY);
        assert_eq!(Confidence::from_percent(99), Some(Confidence::C99));
        assert_eq!(Confidence::from_percent(42), None);
    }

    #[test]
    fn estimate_mean_and_interval() {
        let e = Estimate::over(&[2.0, 4.0, 6.0], Confidence::C95);
        assert!((e.mean - 4.0).abs() < 1e-12);
        // s = 2, se = 2/sqrt(3), t_2 = 4.303.
        let expect = 4.303 * 2.0 / 3f64.sqrt();
        assert!((e.half_width - expect).abs() < 1e-9);
        assert!(e.contains(4.0) && !e.contains(100.0));
        assert!(Estimate::over(&[1.0], Confidence::C95)
            .half_width
            .is_infinite());
    }

    #[test]
    fn sampling_is_deterministic_and_covers_the_budget() {
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let program = Arc::new(Benchmark::Compress.program(u32::MAX / 2));
        let scfg = SamplingConfig {
            windows: 4,
            window_insts: 1_000,
            warmup_insts: 500,
            budget: 40_000,
            confidence: Confidence::C95,
            functional_warmup: true,
            ..SamplingConfig::for_budget(0)
        };
        let a = sample_program(&cfg, Arc::clone(&program), &scfg).unwrap();
        let b = sample_program(&cfg, program, &scfg).unwrap();
        assert_eq!(a.windows.len(), 4);
        assert!(
            a.cpi.mean > 0.1 && a.cpi.mean < 10.0,
            "cpi = {}",
            a.cpi.mean
        );
        assert!(a.cpi.half_width.is_finite());
        assert!(a.fast_forwarded >= scfg.budget || a.halted_early);
        // Bit-for-bit deterministic (host_secs aside).
        assert_eq!(a.windows.len(), b.windows.len());
        for (x, y) in a.windows.iter().zip(&b.windows) {
            assert_eq!(
                (x.committed, x.cycles, x.start_inst),
                (y.committed, y.cycles, y.start_inst)
            );
        }
    }

    #[test]
    fn sampled_cpi_tracks_the_full_run() {
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let program = Arc::new(Benchmark::Compress.program(u32::MAX / 2));
        let budget = 60_000;
        let full = Simulator::new(cfg.clone())
            .unwrap()
            .run_shared(Arc::clone(&program), budget)
            .unwrap();
        let scfg = SamplingConfig {
            budget,
            ..SamplingConfig::for_budget(budget)
        };
        let s = sample_program(&cfg, program, &scfg).unwrap();
        let full_cpi = full.cycles as f64 / full.committed as f64;
        assert!(
            s.cpi.contains(full_cpi),
            "full CPI {full_cpi:.4} outside {:.4} ± {:.4}",
            s.cpi.mean,
            s.cpi.half_width
        );
        // The whole point: far less detailed work than the full run.
        assert!(s.detailed_insts < budget);
    }

    #[test]
    fn a_checkpoint_store_changes_nothing_but_the_replay_count() {
        let dir = std::env::temp_dir().join(format!("dda-sampling-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let program = Arc::new(Benchmark::Compress.program(u32::MAX / 2));
        let scfg = SamplingConfig {
            windows: 3,
            window_insts: 800,
            warmup_insts: 400,
            budget: 30_000,
            confidence: Confidence::C95,
            functional_warmup: true,
            ..SamplingConfig::for_budget(0)
        };
        let plain = sample_program(&cfg, Arc::clone(&program), &scfg).unwrap();
        let cold = sample_program_stored(&cfg, Arc::clone(&program), &scfg, Some(&store)).unwrap();
        let hot = sample_program_stored(&cfg, program, &scfg, Some(&store)).unwrap();
        // Transparency: the store must not perturb a single measurement.
        for s in [&cold, &hot] {
            assert_eq!(s.windows.len(), plain.windows.len());
            for (x, y) in s.windows.iter().zip(&plain.windows) {
                assert_eq!(
                    (x.start_inst, x.committed, x.cycles),
                    (y.start_inst, y.committed, y.cycles)
                );
            }
            assert_eq!(s.detailed_insts, plain.detailed_insts);
        }
        // The cold pass populated the store; the hot pass replays nothing.
        assert!(!store.is_empty().unwrap());
        assert_eq!(cold.fast_forwarded, plain.fast_forwarded);
        assert_eq!(
            hot.fast_forwarded, 0,
            "hot run replayed {} insts",
            hot.fast_forwarded
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_growth_tightens_or_caps() {
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let program = Arc::new(Benchmark::Compress.program(u32::MAX / 2));
        // No target: single round, identical to the fixed-count driver.
        let scfg = SamplingConfig {
            windows: 3,
            window_insts: 800,
            warmup_insts: 400,
            budget: 30_000,
            ..SamplingConfig::for_budget(30_000)
        };
        let (fixed, rounds) =
            sample_program_adaptive(&cfg, Arc::clone(&program), &scfg, None).unwrap();
        assert_eq!(rounds, 1);
        let plain = sample_program(&cfg, Arc::clone(&program), &scfg).unwrap();
        assert_eq!(fixed.windows, plain.windows);

        // An absurdly tight target: growth happens and respects the cap.
        let tight = SamplingConfig {
            adaptive_target: Some(1e-12),
            max_windows: 12,
            ..scfg.clone()
        };
        let (run, rounds) =
            sample_program_adaptive(&cfg, Arc::clone(&program), &tight, None).unwrap();
        assert!(rounds > 1, "tight target should force growth");
        assert_eq!(run.windows.len(), 12, "growth stops at the cap");

        // A loose target: the starting count already satisfies it.
        let loose = SamplingConfig {
            adaptive_target: Some(100.0),
            ..scfg.clone()
        };
        let (run, rounds) = sample_program_adaptive(&cfg, program, &loose, None).unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(run.windows.len(), 3);
        assert!(run.cpi.half_width <= 100.0 * run.cpi.mean);
    }

    #[test]
    fn adaptive_rounds_are_deterministic_with_a_store() {
        let dir = std::env::temp_dir().join(format!("dda-adaptive-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let program = Arc::new(Benchmark::Li.program(u32::MAX / 2));
        let scfg = SamplingConfig {
            windows: 2,
            window_insts: 600,
            warmup_insts: 300,
            budget: 24_000,
            adaptive_target: Some(0.02),
            max_windows: 8,
            ..SamplingConfig::for_budget(24_000)
        };
        let (a, ra) =
            sample_program_adaptive(&cfg, Arc::clone(&program), &scfg, Some(&store)).unwrap();
        let (b, rb) =
            sample_program_adaptive(&cfg, Arc::clone(&program), &scfg, Some(&store)).unwrap();
        // The store (cold vs hot) must not change a single measurement or
        // the growth trajectory.
        assert_eq!(ra, rb);
        assert_eq!(a.windows, b.windows);
        let (c, rc) = sample_program_adaptive(&cfg, program, &scfg, None).unwrap();
        assert_eq!(ra, rc);
        assert_eq!(a.windows, c.windows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_programs_yield_fewer_windows() {
        use dda_program::{FunctionBuilder, ProgramBuilder};
        let mut f = FunctionBuilder::new("main");
        for i in 0..200 {
            f.load_imm(dda_isa::Gpr::T0, i);
        }
        f.halt();
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        let program = Arc::new(b.build().unwrap());
        let cfg = MachineConfig::n_plus_m(2, 2);
        // A budget far beyond the program's length: the driver must stop
        // at halt, not spin or error.
        let scfg = SamplingConfig {
            windows: 6,
            window_insts: 500,
            warmup_insts: 100,
            budget: 1_000_000,
            confidence: Confidence::C95,
            functional_warmup: false,
            ..SamplingConfig::for_budget(0)
        };
        let s = sample_program(&cfg, program, &scfg).unwrap();
        assert!(s.halted_early);
        assert!(s.windows.len() <= 1, "windows = {}", s.windows.len());
    }
}
