//! Figure 3 — dynamic frame-size distribution: benchmarks the per-call
//! frame histogram collection.

use dda_bench::{criterion_group, criterion_main, drain_stream, Criterion};
use dda_vm::{StreamProfiler, Vm};
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_frame_sizes");
    g.sample_size(10);
    for b in [Benchmark::Gcc, Benchmark::Li] {
        let program = b.program(u32::MAX / 2);
        g.bench_function(b.label(), |bencher| {
            bencher.iter(|| {
                let mut vm = Vm::new(program.clone());
                let mut prof = StreamProfiler::new(&program);
                drain_stream(&mut vm, 50_000, |d| prof.observe(d)).unwrap();
                prof.into_stats().frame_words.mean()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
