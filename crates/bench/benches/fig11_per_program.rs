//! Figure 11 — per-program (N+M) surfaces (gcc, li, vortex, swim).

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    for b in [
        Benchmark::Gcc,
        Benchmark::Li,
        Benchmark::Vortex,
        Benchmark::Swim,
    ] {
        common::cell(
            c,
            "fig11_per_program",
            b,
            "(2+2)opt",
            &MachineConfig::n_plus_m(2, 2).with_optimizations(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
