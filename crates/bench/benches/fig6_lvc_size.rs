//! Figure 6 — LVC miss rate vs capacity: benchmarks the content-model
//! replay that produces the figure.

use dda_bench::{criterion_group, criterion_main, drain_stream, Criterion};
use dda_mem::{CacheConfig, CacheCore};
use dda_vm::Vm;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_lvc_size");
    g.sample_size(10);
    for size in [512u32, 2048] {
        let program = Benchmark::Gcc.program(u32::MAX / 2);
        g.bench_function(format!("gcc/{size}B"), |bencher| {
            bencher.iter(|| {
                let mut vm = Vm::new(program.clone());
                let mut cache = CacheCore::new(&CacheConfig::lvc_2k().with_size(size));
                drain_stream(&mut vm, 50_000, |d| {
                    if let Some(m) = d.mem {
                        if m.is_local() && !cache.access(m.addr, m.is_store) {
                            cache.fill(m.addr, m.is_store);
                        }
                    }
                })
                .unwrap();
                cache.stats().miss_rate()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
