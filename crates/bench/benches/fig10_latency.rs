//! Figure 10 — cache hit-latency sensitivity.

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    common::cell(
        c,
        "fig10_latency",
        Benchmark::M88ksim,
        "(4+0)2cy",
        &MachineConfig::n_plus_m(4, 0),
    );
    common::cell(
        c,
        "fig10_latency",
        Benchmark::M88ksim,
        "(4+0)3cy",
        &MachineConfig::n_plus_m(4, 0).with_l1_hit_latency(3),
    );
    common::cell(
        c,
        "fig10_latency",
        Benchmark::M88ksim,
        "(2+2)opt",
        &MachineConfig::n_plus_m(2, 2).with_optimizations(),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
