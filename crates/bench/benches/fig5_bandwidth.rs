//! Figure 5 — (N+0) bandwidth requirements: benchmarks the baseline port
//! sweep at its extremes.

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    for n in [1u32, 2, 16] {
        common::cell(
            c,
            "fig5_bandwidth",
            Benchmark::Vortex,
            &format!("({n}+0)"),
            &MachineConfig::n_plus_m(n, 0),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
