//! Figure 8 — access combining under (3+1)/(3+2).

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    for degree in [1u32, 2, 4] {
        common::cell(
            c,
            "fig8_combining",
            Benchmark::Vortex,
            &format!("(3+1)/{degree}-way"),
            &MachineConfig::n_plus_m(3, 1).with_combining(degree),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
