//! Shared helpers for the Criterion benches.
//!
//! Each bench target regenerates (a scaled-down slice of) one table or
//! figure from the paper. Criterion measures the wall-clock cost of the
//! simulation itself; the scientific output comes from the `experiments`
//! binary, which runs the same code at full budgets.

use dda_bench::Criterion;
use dda_core::{MachineConfig, SimResult, Simulator};
use dda_program::Program;
use dda_workloads::Benchmark;

/// Committed-instruction budget per bench iteration — small, so a full
/// `cargo bench` stays in the minutes range.
pub const BENCH_BUDGET: u64 = 20_000;

/// Builds the program once (generation is deterministic and cheap
/// relative to simulation, but there is no reason to repeat it).
pub fn program_of(bench: Benchmark) -> Program {
    bench.program(u32::MAX / 2)
}

/// Runs one configuration for [`BENCH_BUDGET`] instructions.
pub fn simulate(program: &Program, cfg: &MachineConfig) -> SimResult {
    Simulator::new(cfg.clone())
        .expect("valid machine configuration")
        .run(program, BENCH_BUDGET)
        .expect("benchmark program executes cleanly")
}

/// Registers one `(benchmark, config)` cell as a Criterion benchmark.
pub fn cell(c: &mut Criterion, group: &str, bench: Benchmark, label: &str, cfg: &MachineConfig) {
    let program = program_of(bench);
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function(format!("{}/{label}", bench.label()), |b| {
        b.iter(|| simulate(&program, cfg))
    });
    g.finish();
}
