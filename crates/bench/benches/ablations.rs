//! Ablation benches: design choices DESIGN.md calls out — LVAQ size,
//! steering policy (the §2.1 misclassification machinery), and a
//! plain-component microbench of the simulator's own speed.

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion, Throughput};
use dda_core::{MachineConfig, SteerPolicy};
use dda_vm::Vm;
use dda_workloads::Benchmark;

fn lvaq_size(c: &mut Criterion) {
    for size in [8usize, 64] {
        let mut cfg = MachineConfig::n_plus_m(3, 2).with_optimizations();
        cfg.decoupling.lvaq_size = size;
        common::cell(
            c,
            "ablation_lvaq_size",
            Benchmark::Vortex,
            &format!("lvaq{size}"),
            &cfg,
        );
    }
}

fn steering(c: &mut Criterion) {
    for (label, policy) in [
        ("oracle", SteerPolicy::Oracle),
        ("hint", SteerPolicy::Hint),
        ("sp-base", SteerPolicy::SpBase),
    ] {
        let mut cfg = MachineConfig::n_plus_m(3, 2).with_optimizations();
        cfg.decoupling.steer = policy;
        common::cell(c, "ablation_steering", Benchmark::Perl, label, &cfg);
    }
}

fn vm_speed(c: &mut Criterion) {
    let program = Benchmark::Compress.program(u32::MAX / 2);
    let mut g = c.benchmark_group("component_vm_speed");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("functional-100k", |b| {
        b.iter(|| {
            let mut vm = Vm::new(program.clone());
            vm.run(100_000).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, lvaq_size, steering, vm_speed);
criterion_main!(benches);
