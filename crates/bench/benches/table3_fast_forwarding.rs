//! Table 3 — fast data forwarding under (3+2).

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    for b in [Benchmark::Vortex, Benchmark::Compress] {
        common::cell(
            c,
            "table3_fast_forwarding",
            b,
            "(3+2)",
            &MachineConfig::n_plus_m(3, 2),
        );
        common::cell(
            c,
            "table3_fast_forwarding",
            b,
            "(3+2)+ff",
            &MachineConfig::n_plus_m(3, 2).with_fast_forwarding(true),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
