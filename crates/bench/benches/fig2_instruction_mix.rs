//! Figure 2 — instruction mix and local-access fractions: benchmarks the
//! functional-profiling path (VM + StreamProfiler) that produces the
//! figure.

use dda_bench::{criterion_group, criterion_main, drain_stream, Criterion};
use dda_vm::{StreamProfiler, Vm};
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_instruction_mix");
    g.sample_size(10);
    for b in [Benchmark::Vortex, Benchmark::Compress, Benchmark::Swim] {
        let program = b.program(u32::MAX / 2);
        g.bench_function(b.label(), |bencher| {
            bencher.iter(|| {
                let mut vm = Vm::new(program.clone());
                let mut prof = StreamProfiler::new(&program);
                drain_stream(&mut vm, 50_000, |d| prof.observe(d)).unwrap();
                prof.into_stats().local_mem_fraction()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
