//! Figure 9 — (N+M) with fast forwarding and 2-way combining.

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    for (n, m) in [(2u32, 1u32), (2, 2), (3, 2)] {
        common::cell(
            c,
            "fig9_optimized",
            Benchmark::Vortex,
            &format!("({n}+{m})opt"),
            &MachineConfig::n_plus_m(n, m).with_optimizations(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
