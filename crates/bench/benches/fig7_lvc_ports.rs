//! Figure 7 — (N+M) configurations without optimizations.

mod common;

use dda_bench::{criterion_group, criterion_main, Criterion};
use dda_core::MachineConfig;
use dda_workloads::Benchmark;

fn bench(c: &mut Criterion) {
    for (n, m) in [(2u32, 0u32), (2, 1), (2, 2), (3, 2)] {
        common::cell(
            c,
            "fig7_lvc_ports",
            Benchmark::Li,
            &format!("({n}+{m})"),
            &MachineConfig::n_plus_m(n, m),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
