//! Simulation results and statistics.

use dda_mem::{DataCacheStats, L2Stats};
use dda_stats::Histogram;

use crate::fault::FaultStats;

/// Per-queue (LSQ or LVAQ) statistics.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct QueueStats {
    /// Loads and stores that passed through the queue.
    pub loads: u64,
    /// Stores that passed through the queue.
    pub stores: u64,
    /// Loads satisfied by in-queue store→load forwarding (1-cycle).
    pub forwards: u64,
    /// Loads satisfied by *fast* data forwarding (offset-matched before
    /// address generation; LVAQ only).
    pub fast_forwards: u64,
    /// Cache accesses saved by access combining (each combined member
    /// after the first saves one port use; LVAQ only).
    pub combined: u64,
    /// Combining transactions (groups of ≥ 2 same-line accesses).
    pub combine_groups: u64,
    /// Cycles a ready load waited because no cache port was free.
    pub port_stall_cycles: u64,
    /// Occupancy sampled once per cycle.
    pub occupancy: Histogram,
}

impl QueueStats {
    /// Fraction of loads satisfied by any kind of in-queue forwarding.
    pub fn forward_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            (self.forwards + self.fast_forwards) as f64 / self.loads as f64
        }
    }

    fn delta(&self, earlier: &QueueStats) -> QueueStats {
        QueueStats {
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            forwards: self.forwards.saturating_sub(earlier.forwards),
            fast_forwards: self.fast_forwards.saturating_sub(earlier.fast_forwards),
            combined: self.combined.saturating_sub(earlier.combined),
            combine_groups: self.combine_groups.saturating_sub(earlier.combine_groups),
            port_stall_cycles: self
                .port_stall_cycles
                .saturating_sub(earlier.port_stall_cycles),
            occupancy: self.occupancy.diff(&earlier.occupancy),
        }
    }
}

fn cache_delta(later: &DataCacheStats, earlier: &DataCacheStats) -> DataCacheStats {
    DataCacheStats {
        reads: later.reads.saturating_sub(earlier.reads),
        writes: later.writes.saturating_sub(earlier.writes),
        hits: later.hits.saturating_sub(earlier.hits),
        misses: later.misses.saturating_sub(earlier.misses),
        miss_merges: later.miss_merges.saturating_sub(earlier.miss_merges),
        mshr_stalls: later.mshr_stalls.saturating_sub(earlier.mshr_stalls),
    }
}

fn l2_delta(later: &L2Stats, earlier: &L2Stats) -> L2Stats {
    L2Stats {
        requests_from_l1: later
            .requests_from_l1
            .saturating_sub(earlier.requests_from_l1),
        requests_from_lvc: later
            .requests_from_lvc
            .saturating_sub(earlier.requests_from_lvc),
        hits: later.hits.saturating_sub(earlier.hits),
        misses: later.misses.saturating_sub(earlier.misses),
        writebacks_in: later.writebacks_in.saturating_sub(earlier.writebacks_in),
        writebacks_to_memory: later
            .writebacks_to_memory
            .saturating_sub(earlier.writebacks_to_memory),
    }
}

fn fault_delta(later: &FaultStats, earlier: &FaultStats) -> FaultStats {
    FaultStats {
        l1_flips_injected: later
            .l1_flips_injected
            .saturating_sub(earlier.l1_flips_injected),
        lvc_flips_injected: later
            .lvc_flips_injected
            .saturating_sub(earlier.lvc_flips_injected),
        flips_detected: later.flips_detected.saturating_sub(earlier.flips_detected),
        flips_evicted: later.flips_evicted.saturating_sub(earlier.flips_evicted),
        // A point-in-time gauge, not a counter: the later value *is* the
        // window's state.
        flips_latent: later.flips_latent,
        grants_dropped: later.grants_dropped.saturating_sub(earlier.grants_dropped),
        grants_delayed: later.grants_delayed.saturating_sub(earlier.grants_delayed),
        forwards_corrupted: later
            .forwards_corrupted
            .saturating_sub(earlier.forwards_corrupted),
        forwards_detected: later
            .forwards_detected
            .saturating_sub(earlier.forwards_detected),
    }
}

/// The outcome of one simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// Cycles elapsed until the last committed instruction.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Whether the program ran to `Halt` (as opposed to the instruction
    /// budget ending the run).
    pub halted: bool,
    /// Dispatch stalls because the ROB was full.
    pub stall_rob_full: u64,
    /// Dispatch stalls because the LSQ was full.
    pub stall_lsq_full: u64,
    /// Dispatch stalls because the LVAQ was full.
    pub stall_lvaq_full: u64,
    /// Memory accesses steered into the wrong queue (recovered with a
    /// penalty).
    pub misclassifications: u64,
    /// LSQ statistics.
    pub lsq: QueueStats,
    /// LVAQ statistics (all-zero when decoupling is off).
    pub lvaq: QueueStats,
    /// L1 D-cache statistics.
    pub l1: DataCacheStats,
    /// LVC statistics (`None` when no LVC).
    pub lvc: Option<DataCacheStats>,
    /// L2/bus statistics.
    pub l2: L2Stats,
    /// Sum of load latencies (issue/forward decision to data ready), for
    /// average-latency reporting.
    pub load_latency_sum: u64,
    /// Number of loads contributing to `load_latency_sum`.
    pub load_latency_count: u64,
    /// Fault-injection accounting; all-zero under
    /// [`crate::FaultPlan::none`].
    pub faults: FaultStats,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average load latency in cycles (0 when no loads).
    pub fn avg_load_latency(&self) -> f64 {
        if self.load_latency_count == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.load_latency_count as f64
        }
    }

    /// Speedup of this run over a baseline (ratio of IPCs; both runs must
    /// have committed the same instruction stream for this to be
    /// meaningful).
    pub fn speedup_over(&self, base: &SimResult) -> f64 {
        if base.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / base.ipc()
        }
    }

    /// The slice of work between an `earlier` snapshot of the same run and
    /// this result: every monotone counter is subtracted (saturating, so a
    /// snapshot from a different run degrades to zeros rather than
    /// wrapping), occupancy histograms via [`Histogram::diff`], and
    /// point-in-time state (`halted`, latent fault gauge, the LVC's
    /// presence) is taken from `self`.
    ///
    /// This is how a detailed measurement window is carved out of a run
    /// that includes a warm-up prefix: simulate prefix + window in one
    /// go, snapshot at the prefix boundary, and `delta` the end against
    /// the snapshot.
    pub fn delta(&self, earlier: &SimResult) -> SimResult {
        SimResult {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            committed: self.committed.saturating_sub(earlier.committed),
            halted: self.halted,
            stall_rob_full: self.stall_rob_full.saturating_sub(earlier.stall_rob_full),
            stall_lsq_full: self.stall_lsq_full.saturating_sub(earlier.stall_lsq_full),
            stall_lvaq_full: self.stall_lvaq_full.saturating_sub(earlier.stall_lvaq_full),
            misclassifications: self
                .misclassifications
                .saturating_sub(earlier.misclassifications),
            lsq: self.lsq.delta(&earlier.lsq),
            lvaq: self.lvaq.delta(&earlier.lvaq),
            l1: cache_delta(&self.l1, &earlier.l1),
            lvc: self.lvc.as_ref().map(|later| match &earlier.lvc {
                Some(e) => cache_delta(later, e),
                None => *later,
            }),
            l2: l2_delta(&self.l2, &earlier.l2),
            load_latency_sum: self
                .load_latency_sum
                .saturating_sub(earlier.load_latency_sum),
            load_latency_count: self
                .load_latency_count
                .saturating_sub(earlier.load_latency_count),
            faults: fault_delta(&self.faults, &earlier.faults),
        }
    }
}

/// The outcome of [`crate::Simulator::run_window`]: the whole run from
/// the handed-off state (`total`, warm-up prefix included) and the
/// detailed measurement window carved out of it (`window`).
#[derive(Clone, PartialEq, Debug)]
pub struct WindowRun {
    /// The full run: warm-up prefix plus measurement window.
    pub total: SimResult,
    /// The window alone ([`SimResult::delta`] of the end against the
    /// warm-up boundary). When the program halts inside the warm-up
    /// prefix the window is empty (`window.committed == 0`).
    pub window: SimResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimResult {
        SimResult {
            cycles: 0,
            committed: 0,
            halted: false,
            stall_rob_full: 0,
            stall_lsq_full: 0,
            stall_lvaq_full: 0,
            misclassifications: 0,
            lsq: QueueStats::default(),
            lvaq: QueueStats::default(),
            l1: DataCacheStats::default(),
            lvc: None,
            l2: L2Stats::default(),
            load_latency_sum: 0,
            load_latency_count: 0,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn ipc_and_latency_handle_zero() {
        let r = blank();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.avg_load_latency(), 0.0);
    }

    #[test]
    fn ipc_and_speedup() {
        let mut a = blank();
        a.cycles = 100;
        a.committed = 400;
        let mut b = blank();
        b.cycles = 100;
        b.committed = 200;
        assert_eq!(a.ipc(), 4.0);
        assert_eq!(a.speedup_over(&b), 2.0);
        assert_eq!(a.speedup_over(&blank()), 0.0);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_state() {
        let mut earlier = blank();
        earlier.cycles = 100;
        earlier.committed = 40;
        earlier.lsq.loads = 10;
        earlier.lsq.occupancy.record_n(3, 7);
        earlier.l1.reads = 12;
        earlier.l1.misses = 2;
        earlier.l2.hits = 1;
        earlier.lvc = Some(DataCacheStats {
            reads: 5,
            ..Default::default()
        });
        earlier.faults.flips_latent = 3;

        let mut later = earlier.clone();
        later.cycles = 250;
        later.committed = 90;
        later.halted = true;
        later.lsq.loads = 25;
        later.lsq.occupancy.record_n(3, 4);
        later.lsq.occupancy.record_n(5, 2);
        later.l1.reads = 30;
        later.l1.misses = 2;
        later.l2.hits = 6;
        later.lvc = Some(DataCacheStats {
            reads: 11,
            ..Default::default()
        });
        later.faults.flips_latent = 1;

        let w = later.delta(&earlier);
        assert_eq!(w.cycles, 150);
        assert_eq!(w.committed, 50);
        assert!(w.halted);
        assert_eq!(w.lsq.loads, 15);
        assert_eq!(w.lsq.occupancy.count(3), 4);
        assert_eq!(w.lsq.occupancy.count(5), 2);
        assert_eq!(w.l1.reads, 18);
        assert_eq!(w.l1.misses, 0);
        assert_eq!(w.l2.hits, 5);
        assert_eq!(w.lvc.as_ref().map(|c| c.reads), Some(6));
        // The latent gauge is point-in-time, not a counter.
        assert_eq!(w.faults.flips_latent, 1);
        // Self-delta is an empty window.
        let z = later.delta(&later);
        assert_eq!(z.committed, 0);
        assert_eq!(z.cycles, 0);
        assert_eq!(z.lsq.occupancy.samples(), 0);
    }

    #[test]
    fn forward_fraction() {
        let mut q = QueueStats::default();
        assert_eq!(q.forward_fraction(), 0.0);
        q.loads = 10;
        q.forwards = 2;
        q.fast_forwards = 3;
        assert_eq!(q.forward_fraction(), 0.5);
    }
}
