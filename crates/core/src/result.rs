//! Simulation results and statistics.

use dda_mem::{DataCacheStats, L2Stats};
use dda_stats::{ByteReader, ByteWriter, CodecError, Histogram};

use crate::fault::FaultStats;

/// Per-queue (LSQ or LVAQ) statistics.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct QueueStats {
    /// Loads and stores that passed through the queue.
    pub loads: u64,
    /// Stores that passed through the queue.
    pub stores: u64,
    /// Loads satisfied by in-queue store→load forwarding (1-cycle).
    pub forwards: u64,
    /// Loads satisfied by *fast* data forwarding (offset-matched before
    /// address generation; LVAQ only).
    pub fast_forwards: u64,
    /// Cache accesses saved by access combining (each combined member
    /// after the first saves one port use; LVAQ only).
    pub combined: u64,
    /// Combining transactions (groups of ≥ 2 same-line accesses).
    pub combine_groups: u64,
    /// Cycles a ready load waited because no cache port was free.
    pub port_stall_cycles: u64,
    /// Occupancy sampled once per cycle.
    pub occupancy: Histogram,
}

impl QueueStats {
    /// Fraction of loads satisfied by any kind of in-queue forwarding.
    pub fn forward_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            (self.forwards + self.fast_forwards) as f64 / self.loads as f64
        }
    }

    fn delta(&self, earlier: &QueueStats) -> QueueStats {
        QueueStats {
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            forwards: self.forwards.saturating_sub(earlier.forwards),
            fast_forwards: self.fast_forwards.saturating_sub(earlier.fast_forwards),
            combined: self.combined.saturating_sub(earlier.combined),
            combine_groups: self.combine_groups.saturating_sub(earlier.combine_groups),
            port_stall_cycles: self
                .port_stall_cycles
                .saturating_sub(earlier.port_stall_cycles),
            occupancy: self.occupancy.diff(&earlier.occupancy),
        }
    }
}

fn cache_delta(later: &DataCacheStats, earlier: &DataCacheStats) -> DataCacheStats {
    DataCacheStats {
        reads: later.reads.saturating_sub(earlier.reads),
        writes: later.writes.saturating_sub(earlier.writes),
        hits: later.hits.saturating_sub(earlier.hits),
        misses: later.misses.saturating_sub(earlier.misses),
        miss_merges: later.miss_merges.saturating_sub(earlier.miss_merges),
        mshr_stalls: later.mshr_stalls.saturating_sub(earlier.mshr_stalls),
    }
}

fn l2_delta(later: &L2Stats, earlier: &L2Stats) -> L2Stats {
    L2Stats {
        requests_from_l1: later
            .requests_from_l1
            .saturating_sub(earlier.requests_from_l1),
        requests_from_lvc: later
            .requests_from_lvc
            .saturating_sub(earlier.requests_from_lvc),
        hits: later.hits.saturating_sub(earlier.hits),
        misses: later.misses.saturating_sub(earlier.misses),
        writebacks_in: later.writebacks_in.saturating_sub(earlier.writebacks_in),
        writebacks_to_memory: later
            .writebacks_to_memory
            .saturating_sub(earlier.writebacks_to_memory),
    }
}

fn fault_delta(later: &FaultStats, earlier: &FaultStats) -> FaultStats {
    FaultStats {
        l1_flips_injected: later
            .l1_flips_injected
            .saturating_sub(earlier.l1_flips_injected),
        lvc_flips_injected: later
            .lvc_flips_injected
            .saturating_sub(earlier.lvc_flips_injected),
        flips_detected: later.flips_detected.saturating_sub(earlier.flips_detected),
        flips_evicted: later.flips_evicted.saturating_sub(earlier.flips_evicted),
        // A point-in-time gauge, not a counter: the later value *is* the
        // window's state.
        flips_latent: later.flips_latent,
        grants_dropped: later.grants_dropped.saturating_sub(earlier.grants_dropped),
        grants_delayed: later.grants_delayed.saturating_sub(earlier.grants_delayed),
        forwards_corrupted: later
            .forwards_corrupted
            .saturating_sub(earlier.forwards_corrupted),
        forwards_detected: later
            .forwards_detected
            .saturating_sub(earlier.forwards_detected),
    }
}

/// The outcome of one simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// Cycles elapsed until the last committed instruction.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Whether the program ran to `Halt` (as opposed to the instruction
    /// budget ending the run).
    pub halted: bool,
    /// Dispatch stalls because the ROB was full.
    pub stall_rob_full: u64,
    /// Dispatch stalls because the LSQ was full.
    pub stall_lsq_full: u64,
    /// Dispatch stalls because the LVAQ was full.
    pub stall_lvaq_full: u64,
    /// Memory accesses steered into the wrong queue (recovered with a
    /// penalty).
    pub misclassifications: u64,
    /// LSQ statistics.
    pub lsq: QueueStats,
    /// LVAQ statistics (all-zero when decoupling is off).
    pub lvaq: QueueStats,
    /// L1 D-cache statistics.
    pub l1: DataCacheStats,
    /// LVC statistics (`None` when no LVC).
    pub lvc: Option<DataCacheStats>,
    /// L2/bus statistics.
    pub l2: L2Stats,
    /// Sum of load latencies (issue/forward decision to data ready), for
    /// average-latency reporting.
    pub load_latency_sum: u64,
    /// Number of loads contributing to `load_latency_sum`.
    pub load_latency_count: u64,
    /// Fault-injection accounting; all-zero under
    /// [`crate::FaultPlan::none`].
    pub faults: FaultStats,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average load latency in cycles (0 when no loads).
    pub fn avg_load_latency(&self) -> f64 {
        if self.load_latency_count == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.load_latency_count as f64
        }
    }

    /// Speedup of this run over a baseline (ratio of IPCs; both runs must
    /// have committed the same instruction stream for this to be
    /// meaningful).
    pub fn speedup_over(&self, base: &SimResult) -> f64 {
        if base.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / base.ipc()
        }
    }

    /// The slice of work between an `earlier` snapshot of the same run and
    /// this result: every monotone counter is subtracted (saturating, so a
    /// snapshot from a different run degrades to zeros rather than
    /// wrapping), occupancy histograms via [`Histogram::diff`], and
    /// point-in-time state (`halted`, latent fault gauge, the LVC's
    /// presence) is taken from `self`.
    ///
    /// This is how a detailed measurement window is carved out of a run
    /// that includes a warm-up prefix: simulate prefix + window in one
    /// go, snapshot at the prefix boundary, and `delta` the end against
    /// the snapshot.
    pub fn delta(&self, earlier: &SimResult) -> SimResult {
        SimResult {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            committed: self.committed.saturating_sub(earlier.committed),
            halted: self.halted,
            stall_rob_full: self.stall_rob_full.saturating_sub(earlier.stall_rob_full),
            stall_lsq_full: self.stall_lsq_full.saturating_sub(earlier.stall_lsq_full),
            stall_lvaq_full: self.stall_lvaq_full.saturating_sub(earlier.stall_lvaq_full),
            misclassifications: self
                .misclassifications
                .saturating_sub(earlier.misclassifications),
            lsq: self.lsq.delta(&earlier.lsq),
            lvaq: self.lvaq.delta(&earlier.lvaq),
            l1: cache_delta(&self.l1, &earlier.l1),
            lvc: self.lvc.as_ref().map(|later| match &earlier.lvc {
                Some(e) => cache_delta(later, e),
                None => *later,
            }),
            l2: l2_delta(&self.l2, &earlier.l2),
            load_latency_sum: self
                .load_latency_sum
                .saturating_sub(earlier.load_latency_sum),
            load_latency_count: self
                .load_latency_count
                .saturating_sub(earlier.load_latency_count),
            faults: fault_delta(&self.faults, &earlier.faults),
        }
    }
}

// ------------------------------------------------------- result codec --
//
// Serialized `SimResult`s are what the design-space-exploration result
// cache persists, so the format carries the same commitments as the
// checkpoint format: a magic word, a version word, and fixed-width
// little-endian fields via `dda_stats::codec`. Every counter — occupancy
// histograms and fault accounting included — round-trips bit-exactly;
// a cached record that decodes must be indistinguishable from a fresh
// simulation of the same inputs.

/// Magic word opening a serialized [`SimResult`] (`b"DDARSLT1"`).
const RESULT_MAGIC: u64 = u64::from_le_bytes(*b"DDARSLT1");
/// Format version of the serialized [`SimResult`] layout.
const RESULT_VERSION: u32 = 1;

/// Why a serialized [`SimResult`] failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResultCodecError {
    /// The input ended before the structure did.
    Truncated(CodecError),
    /// The magic word was wrong — not a serialized result at all.
    BadMagic(u64),
    /// The version word named a layout this build does not read.
    BadVersion(u32),
    /// A tag byte held a value outside its enumeration.
    BadTag(u8),
    /// Well-formed structure followed by trailing garbage.
    TrailingBytes(usize),
}

impl std::fmt::Display for ResultCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultCodecError::Truncated(e) => write!(f, "truncated result record: {e}"),
            ResultCodecError::BadMagic(m) => write!(f, "bad result-record magic {m:#018x}"),
            ResultCodecError::BadVersion(v) => write!(f, "unsupported result-record version {v}"),
            ResultCodecError::BadTag(t) => write!(f, "invalid result-record tag byte {t}"),
            ResultCodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after result record")
            }
        }
    }
}

impl std::error::Error for ResultCodecError {}

impl From<CodecError> for ResultCodecError {
    fn from(e: CodecError) -> ResultCodecError {
        ResultCodecError::Truncated(e)
    }
}

fn encode_queue(w: &mut ByteWriter, q: &QueueStats) {
    w.put_u64(q.loads);
    w.put_u64(q.stores);
    w.put_u64(q.forwards);
    w.put_u64(q.fast_forwards);
    w.put_u64(q.combined);
    w.put_u64(q.combine_groups);
    w.put_u64(q.port_stall_cycles);
    q.occupancy.encode(w);
}

fn decode_queue(r: &mut ByteReader) -> Result<QueueStats, ResultCodecError> {
    Ok(QueueStats {
        loads: r.get_u64()?,
        stores: r.get_u64()?,
        forwards: r.get_u64()?,
        fast_forwards: r.get_u64()?,
        combined: r.get_u64()?,
        combine_groups: r.get_u64()?,
        port_stall_cycles: r.get_u64()?,
        occupancy: Histogram::decode(r)?,
    })
}

fn encode_cache(w: &mut ByteWriter, c: &DataCacheStats) {
    w.put_u64(c.reads);
    w.put_u64(c.writes);
    w.put_u64(c.hits);
    w.put_u64(c.misses);
    w.put_u64(c.miss_merges);
    w.put_u64(c.mshr_stalls);
}

fn decode_cache(r: &mut ByteReader) -> Result<DataCacheStats, ResultCodecError> {
    Ok(DataCacheStats {
        reads: r.get_u64()?,
        writes: r.get_u64()?,
        hits: r.get_u64()?,
        misses: r.get_u64()?,
        miss_merges: r.get_u64()?,
        mshr_stalls: r.get_u64()?,
    })
}

impl SimResult {
    /// Serializes this result with the format's magic and version words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(512);
        w.put_u64(RESULT_MAGIC);
        w.put_u32(RESULT_VERSION);
        w.put_u64(self.cycles);
        w.put_u64(self.committed);
        w.put_u8(self.halted as u8);
        w.put_u64(self.stall_rob_full);
        w.put_u64(self.stall_lsq_full);
        w.put_u64(self.stall_lvaq_full);
        w.put_u64(self.misclassifications);
        encode_queue(&mut w, &self.lsq);
        encode_queue(&mut w, &self.lvaq);
        encode_cache(&mut w, &self.l1);
        match &self.lvc {
            Some(lvc) => {
                w.put_u8(1);
                encode_cache(&mut w, lvc);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.l2.requests_from_l1);
        w.put_u64(self.l2.requests_from_lvc);
        w.put_u64(self.l2.hits);
        w.put_u64(self.l2.misses);
        w.put_u64(self.l2.writebacks_in);
        w.put_u64(self.l2.writebacks_to_memory);
        w.put_u64(self.load_latency_sum);
        w.put_u64(self.load_latency_count);
        w.put_u64(self.faults.l1_flips_injected);
        w.put_u64(self.faults.lvc_flips_injected);
        w.put_u64(self.faults.flips_detected);
        w.put_u64(self.faults.flips_evicted);
        w.put_u64(self.faults.flips_latent);
        w.put_u64(self.faults.grants_dropped);
        w.put_u64(self.faults.grants_delayed);
        w.put_u64(self.faults.forwards_corrupted);
        w.put_u64(self.faults.forwards_detected);
        w.into_vec()
    }

    /// Decodes a result serialized by [`SimResult::to_bytes`]. The whole
    /// input must be consumed — trailing bytes are an error, not slack.
    ///
    /// # Errors
    ///
    /// A [`ResultCodecError`] describing the first malformation.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimResult, ResultCodecError> {
        let mut r = ByteReader::new(bytes);
        let res = SimResult::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(ResultCodecError::TrailingBytes(r.remaining()));
        }
        Ok(res)
    }

    /// Decodes one serialized result from `r`, leaving the reader at the
    /// first byte past it (for containers that embed several records).
    ///
    /// # Errors
    ///
    /// As for [`SimResult::from_bytes`], without the trailing-bytes check.
    pub fn decode(r: &mut ByteReader) -> Result<SimResult, ResultCodecError> {
        let magic = r.get_u64()?;
        if magic != RESULT_MAGIC {
            return Err(ResultCodecError::BadMagic(magic));
        }
        let version = r.get_u32()?;
        if version != RESULT_VERSION {
            return Err(ResultCodecError::BadVersion(version));
        }
        let cycles = r.get_u64()?;
        let committed = r.get_u64()?;
        let halted = match r.get_u8()? {
            0 => false,
            1 => true,
            t => return Err(ResultCodecError::BadTag(t)),
        };
        let stall_rob_full = r.get_u64()?;
        let stall_lsq_full = r.get_u64()?;
        let stall_lvaq_full = r.get_u64()?;
        let misclassifications = r.get_u64()?;
        let lsq = decode_queue(r)?;
        let lvaq = decode_queue(r)?;
        let l1 = decode_cache(r)?;
        let lvc = match r.get_u8()? {
            0 => None,
            1 => Some(decode_cache(r)?),
            t => return Err(ResultCodecError::BadTag(t)),
        };
        let l2 = L2Stats {
            requests_from_l1: r.get_u64()?,
            requests_from_lvc: r.get_u64()?,
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            writebacks_in: r.get_u64()?,
            writebacks_to_memory: r.get_u64()?,
        };
        let load_latency_sum = r.get_u64()?;
        let load_latency_count = r.get_u64()?;
        let faults = FaultStats {
            l1_flips_injected: r.get_u64()?,
            lvc_flips_injected: r.get_u64()?,
            flips_detected: r.get_u64()?,
            flips_evicted: r.get_u64()?,
            flips_latent: r.get_u64()?,
            grants_dropped: r.get_u64()?,
            grants_delayed: r.get_u64()?,
            forwards_corrupted: r.get_u64()?,
            forwards_detected: r.get_u64()?,
        };
        Ok(SimResult {
            cycles,
            committed,
            halted,
            stall_rob_full,
            stall_lsq_full,
            stall_lvaq_full,
            misclassifications,
            lsq,
            lvaq,
            l1,
            lvc,
            l2,
            load_latency_sum,
            load_latency_count,
            faults,
        })
    }
}

/// The outcome of [`crate::Simulator::run_window`]: the whole run from
/// the handed-off state (`total`, warm-up prefix included) and the
/// detailed measurement window carved out of it (`window`).
#[derive(Clone, PartialEq, Debug)]
pub struct WindowRun {
    /// The full run: warm-up prefix plus measurement window.
    pub total: SimResult,
    /// The window alone ([`SimResult::delta`] of the end against the
    /// warm-up boundary). When the program halts inside the warm-up
    /// prefix the window is empty (`window.committed == 0`).
    pub window: SimResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimResult {
        SimResult {
            cycles: 0,
            committed: 0,
            halted: false,
            stall_rob_full: 0,
            stall_lsq_full: 0,
            stall_lvaq_full: 0,
            misclassifications: 0,
            lsq: QueueStats::default(),
            lvaq: QueueStats::default(),
            l1: DataCacheStats::default(),
            lvc: None,
            l2: L2Stats::default(),
            load_latency_sum: 0,
            load_latency_count: 0,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn ipc_and_latency_handle_zero() {
        let r = blank();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.avg_load_latency(), 0.0);
    }

    #[test]
    fn ipc_and_speedup() {
        let mut a = blank();
        a.cycles = 100;
        a.committed = 400;
        let mut b = blank();
        b.cycles = 100;
        b.committed = 200;
        assert_eq!(a.ipc(), 4.0);
        assert_eq!(a.speedup_over(&b), 2.0);
        assert_eq!(a.speedup_over(&blank()), 0.0);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_state() {
        let mut earlier = blank();
        earlier.cycles = 100;
        earlier.committed = 40;
        earlier.lsq.loads = 10;
        earlier.lsq.occupancy.record_n(3, 7);
        earlier.l1.reads = 12;
        earlier.l1.misses = 2;
        earlier.l2.hits = 1;
        earlier.lvc = Some(DataCacheStats {
            reads: 5,
            ..Default::default()
        });
        earlier.faults.flips_latent = 3;

        let mut later = earlier.clone();
        later.cycles = 250;
        later.committed = 90;
        later.halted = true;
        later.lsq.loads = 25;
        later.lsq.occupancy.record_n(3, 4);
        later.lsq.occupancy.record_n(5, 2);
        later.l1.reads = 30;
        later.l1.misses = 2;
        later.l2.hits = 6;
        later.lvc = Some(DataCacheStats {
            reads: 11,
            ..Default::default()
        });
        later.faults.flips_latent = 1;

        let w = later.delta(&earlier);
        assert_eq!(w.cycles, 150);
        assert_eq!(w.committed, 50);
        assert!(w.halted);
        assert_eq!(w.lsq.loads, 15);
        assert_eq!(w.lsq.occupancy.count(3), 4);
        assert_eq!(w.lsq.occupancy.count(5), 2);
        assert_eq!(w.l1.reads, 18);
        assert_eq!(w.l1.misses, 0);
        assert_eq!(w.l2.hits, 5);
        assert_eq!(w.lvc.as_ref().map(|c| c.reads), Some(6));
        // The latent gauge is point-in-time, not a counter.
        assert_eq!(w.faults.flips_latent, 1);
        // Self-delta is an empty window.
        let z = later.delta(&later);
        assert_eq!(z.committed, 0);
        assert_eq!(z.cycles, 0);
        assert_eq!(z.lsq.occupancy.samples(), 0);
    }

    #[test]
    fn codec_round_trips_every_field() {
        let mut r = blank();
        r.cycles = 12_345;
        r.committed = 6_789;
        r.halted = true;
        r.stall_rob_full = 1;
        r.stall_lsq_full = 2;
        r.stall_lvaq_full = 3;
        r.misclassifications = 4;
        r.lsq.loads = 100;
        r.lsq.forwards = 7;
        r.lsq.occupancy.record_n(3, 40);
        r.lsq.occupancy.record_n(9, 2);
        r.lvaq.stores = 55;
        r.lvaq.fast_forwards = 11;
        r.lvaq.combined = 6;
        r.lvaq.combine_groups = 3;
        r.lvaq.port_stall_cycles = 17;
        r.lvaq.occupancy.record_n(0, 9);
        r.l1.reads = 80;
        r.l1.misses = 5;
        r.l1.mshr_stalls = 2;
        r.lvc = Some(DataCacheStats {
            reads: 31,
            writes: 13,
            hits: 30,
            misses: 1,
            miss_merges: 0,
            mshr_stalls: 0,
        });
        r.l2.requests_from_lvc = 9;
        r.l2.writebacks_to_memory = 4;
        r.load_latency_sum = 999;
        r.load_latency_count = 111;
        r.faults.lvc_flips_injected = 8;
        r.faults.flips_latent = 2;
        r.faults.forwards_detected = 1;

        let bytes = r.to_bytes();
        let back = SimResult::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);

        // The no-LVC arm round-trips too.
        let mut r2 = r.clone();
        r2.lvc = None;
        assert_eq!(SimResult::from_bytes(&r2.to_bytes()).unwrap(), r2);
    }

    #[test]
    fn codec_rejects_malformed_input() {
        let good = blank().to_bytes();
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            SimResult::from_bytes(&bad),
            Err(ResultCodecError::BadMagic(_))
        ));
        // Future version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            SimResult::from_bytes(&bad),
            Err(ResultCodecError::BadVersion(99))
        ));
        // Truncation anywhere in the structure.
        for cut in [0, 7, 11, good.len() / 2, good.len() - 1] {
            assert!(
                SimResult::from_bytes(&good[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            SimResult::from_bytes(&bad),
            Err(ResultCodecError::TrailingBytes(1))
        ));
        // A tag byte outside 0/1 (the halted flag sits right after the
        // magic and version words).
        let mut bad = good;
        bad[8 + 4 + 16] = 7;
        assert!(matches!(
            SimResult::from_bytes(&bad),
            Err(ResultCodecError::BadTag(7))
        ));
    }

    #[test]
    fn forward_fraction() {
        let mut q = QueueStats::default();
        assert_eq!(q.forward_fraction(), 0.0);
        q.loads = 10;
        q.forwards = 2;
        q.fast_forwards = 3;
        assert_eq!(q.forward_fraction(), 0.5);
    }
}
