//! Simulation results and statistics.

use dda_mem::{DataCacheStats, L2Stats};
use dda_stats::Histogram;

use crate::fault::FaultStats;

/// Per-queue (LSQ or LVAQ) statistics.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct QueueStats {
    /// Loads and stores that passed through the queue.
    pub loads: u64,
    /// Stores that passed through the queue.
    pub stores: u64,
    /// Loads satisfied by in-queue store→load forwarding (1-cycle).
    pub forwards: u64,
    /// Loads satisfied by *fast* data forwarding (offset-matched before
    /// address generation; LVAQ only).
    pub fast_forwards: u64,
    /// Cache accesses saved by access combining (each combined member
    /// after the first saves one port use; LVAQ only).
    pub combined: u64,
    /// Combining transactions (groups of ≥ 2 same-line accesses).
    pub combine_groups: u64,
    /// Cycles a ready load waited because no cache port was free.
    pub port_stall_cycles: u64,
    /// Occupancy sampled once per cycle.
    pub occupancy: Histogram,
}

impl QueueStats {
    /// Fraction of loads satisfied by any kind of in-queue forwarding.
    pub fn forward_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            (self.forwards + self.fast_forwards) as f64 / self.loads as f64
        }
    }
}

/// The outcome of one simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// Cycles elapsed until the last committed instruction.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Whether the program ran to `Halt` (as opposed to the instruction
    /// budget ending the run).
    pub halted: bool,
    /// Dispatch stalls because the ROB was full.
    pub stall_rob_full: u64,
    /// Dispatch stalls because the LSQ was full.
    pub stall_lsq_full: u64,
    /// Dispatch stalls because the LVAQ was full.
    pub stall_lvaq_full: u64,
    /// Memory accesses steered into the wrong queue (recovered with a
    /// penalty).
    pub misclassifications: u64,
    /// LSQ statistics.
    pub lsq: QueueStats,
    /// LVAQ statistics (all-zero when decoupling is off).
    pub lvaq: QueueStats,
    /// L1 D-cache statistics.
    pub l1: DataCacheStats,
    /// LVC statistics (`None` when no LVC).
    pub lvc: Option<DataCacheStats>,
    /// L2/bus statistics.
    pub l2: L2Stats,
    /// Sum of load latencies (issue/forward decision to data ready), for
    /// average-latency reporting.
    pub load_latency_sum: u64,
    /// Number of loads contributing to `load_latency_sum`.
    pub load_latency_count: u64,
    /// Fault-injection accounting; all-zero under
    /// [`crate::FaultPlan::none`].
    pub faults: FaultStats,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average load latency in cycles (0 when no loads).
    pub fn avg_load_latency(&self) -> f64 {
        if self.load_latency_count == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.load_latency_count as f64
        }
    }

    /// Speedup of this run over a baseline (ratio of IPCs; both runs must
    /// have committed the same instruction stream for this to be
    /// meaningful).
    pub fn speedup_over(&self, base: &SimResult) -> f64 {
        if base.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / base.ipc()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimResult {
        SimResult {
            cycles: 0,
            committed: 0,
            halted: false,
            stall_rob_full: 0,
            stall_lsq_full: 0,
            stall_lvaq_full: 0,
            misclassifications: 0,
            lsq: QueueStats::default(),
            lvaq: QueueStats::default(),
            l1: DataCacheStats::default(),
            lvc: None,
            l2: L2Stats::default(),
            load_latency_sum: 0,
            load_latency_count: 0,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn ipc_and_latency_handle_zero() {
        let r = blank();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.avg_load_latency(), 0.0);
    }

    #[test]
    fn ipc_and_speedup() {
        let mut a = blank();
        a.cycles = 100;
        a.committed = 400;
        let mut b = blank();
        b.cycles = 100;
        b.committed = 200;
        assert_eq!(a.ipc(), 4.0);
        assert_eq!(a.speedup_over(&b), 2.0);
        assert_eq!(a.speedup_over(&blank()), 0.0);
    }

    #[test]
    fn forward_fraction() {
        let mut q = QueueStats::default();
        assert_eq!(q.forward_fraction(), 0.0);
        q.loads = 10;
        q.forwards = 2;
        q.fast_forwards = 3;
        assert_eq!(q.forward_fraction(), 0.5);
    }
}
