//! Per-instruction pipeline traces.
//!
//! When enabled (via [`crate::Simulator::run_traced`]), the core records
//! the cycle each instruction passed each pipeline stage, plus how its
//! memory access was satisfied — invaluable when explaining *why* a
//! configuration wins or loses, and the substrate for the
//! `pipeline_viewer` example.

use dda_isa::Instr;
use std::collections::HashMap;

/// How a memory access was ultimately serviced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemPath {
    /// Not a memory instruction.
    None,
    /// Load serviced by the cache (hit or miss; see the latency).
    Cache,
    /// Load satisfied by in-queue store→load forwarding (1 cycle).
    Forwarded,
    /// Load satisfied by LVAQ fast data forwarding (no AGU, no port).
    FastForwarded,
    /// Store retired into the cache at commit.
    StoreRetired,
}

/// The life of one instruction through the pipeline.
#[derive(Clone, PartialEq, Debug)]
pub struct InstrTrace {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Fetch pc.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
    /// Cycle it entered the ROB.
    pub dispatched_at: u64,
    /// Cycle it issued to a functional unit (AGU for memory ops); `None`
    /// for fast-forwarded loads, which never issue.
    pub issued_at: Option<u64>,
    /// Cycle the effective address became known (memory ops).
    pub addr_ready_at: Option<u64>,
    /// Cycle the load's data arrived / the result completed.
    pub completed_at: Option<u64>,
    /// Cycle it retired.
    pub committed_at: u64,
    /// Steered to the LVAQ (`Some(true)`), the LSQ (`Some(false)`), or
    /// not a memory op (`None`).
    pub in_lvaq: Option<bool>,
    /// How the memory access was serviced.
    pub mem_path: MemPath,
}

impl InstrTrace {
    /// Total in-flight cycles (dispatch to commit).
    pub fn lifetime(&self) -> u64 {
        self.committed_at.saturating_sub(self.dispatched_at)
    }

    /// One compact timeline line, e.g.
    /// `   12 @5      lw $t0, 8($sp) !local  D5 I6 A7 C8 R9 [LVAQ fast-fwd]`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:>6} @{:<5} {:<34}",
            self.seq,
            self.pc,
            self.instr.to_string()
        );
        s.push_str(&format!(" D{}", self.dispatched_at));
        if let Some(i) = self.issued_at {
            s.push_str(&format!(" I{i}"));
        }
        if let Some(a) = self.addr_ready_at {
            s.push_str(&format!(" A{a}"));
        }
        if let Some(c) = self.completed_at {
            s.push_str(&format!(" C{c}"));
        }
        s.push_str(&format!(" R{}", self.committed_at));
        match (self.in_lvaq, self.mem_path) {
            (Some(q), path) if path != MemPath::None => {
                let queue = if q { "LVAQ" } else { "LSQ" };
                let how = match path {
                    MemPath::Cache => "cache",
                    MemPath::Forwarded => "fwd",
                    MemPath::FastForwarded => "fast-fwd",
                    MemPath::StoreRetired => "store",
                    MemPath::None => unreachable!(),
                };
                s.push_str(&format!(" [{queue} {how}]"));
            }
            _ => {}
        }
        s
    }
}

/// Collects traces for the first `limit` dispatched instructions.
#[derive(Clone, Debug)]
pub(crate) struct Tracer {
    limit: u64,
    live: HashMap<u64, InstrTrace>,
    done: Vec<InstrTrace>,
}

impl Tracer {
    pub fn new(limit: u64) -> Tracer {
        Tracer {
            limit,
            live: HashMap::new(),
            done: Vec::new(),
        }
    }

    #[inline]
    pub fn wants(&self, uid: u64) -> bool {
        uid < self.limit
    }

    pub fn dispatch(&mut self, uid: u64, t: InstrTrace) {
        if self.wants(uid) {
            self.live.insert(uid, t);
        }
    }

    pub fn with(&mut self, uid: u64, f: impl FnOnce(&mut InstrTrace)) {
        if let Some(t) = self.live.get_mut(&uid) {
            f(t);
        }
    }

    pub fn commit(&mut self, uid: u64, cycle: u64) {
        if let Some(mut t) = self.live.remove(&uid) {
            t.committed_at = cycle;
            self.done.push(t);
        }
    }

    pub fn into_records(mut self) -> Vec<InstrTrace> {
        self.done.sort_by_key(|t| t.seq);
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstrTrace {
        InstrTrace {
            seq: 12,
            pc: 5,
            instr: Instr::Nop,
            dispatched_at: 5,
            issued_at: Some(6),
            addr_ready_at: None,
            completed_at: Some(7),
            committed_at: 9,
            in_lvaq: None,
            mem_path: MemPath::None,
        }
    }

    #[test]
    fn lifetime_and_render() {
        let t = sample();
        assert_eq!(t.lifetime(), 4);
        let line = t.render();
        assert!(line.contains("D5"));
        assert!(line.contains("I6"));
        assert!(line.contains("C7"));
        assert!(line.contains("R9"));
        assert!(!line.contains('['), "non-memory ops carry no queue tag");
    }

    #[test]
    fn render_tags_memory_paths() {
        let mut t = sample();
        t.in_lvaq = Some(true);
        t.mem_path = MemPath::FastForwarded;
        assert!(t.render().contains("[LVAQ fast-fwd]"));
        t.in_lvaq = Some(false);
        t.mem_path = MemPath::Cache;
        assert!(t.render().contains("[LSQ cache]"));
    }

    #[test]
    fn tracer_respects_limit_and_sorts() {
        let mut tr = Tracer::new(2);
        for uid in [1u64, 0, 5] {
            let mut t = sample();
            t.seq = uid;
            tr.dispatch(uid, t);
        }
        tr.commit(1, 10);
        tr.commit(0, 11);
        tr.commit(5, 12); // beyond limit: never recorded
        let recs = tr.into_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert_eq!(recs[0].committed_at, 11);
    }
}
