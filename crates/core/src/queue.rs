//! The memory queues (LSQ and LVAQ).
//!
//! A queue holds the ROB slots of its in-flight memory instructions in age
//! order. Alongside the entry list it maintains an age-ordered index of
//! just the *stores*, because the schedulers only ever scan older stores:
//! disambiguation and fast forwarding walk "every store older than this
//! load, youngest first", and the index turns that walk from O(queue) over
//! all entries into O(older stores), addressable by binary search.
//!
//! Every push is numbered with a queue-lifetime ordinal (`ord`). Unlike
//! `MemState::q_seq` — which numbers only primary entries, per queue, for
//! the access-combining window — the ordinal counts ghost copies too
//! (footnote-3 replication), so it totally orders all simultaneous
//! residents of one queue and is what the incremental scan cursors in
//! [`crate::pipeline`] are measured in.

use std::collections::VecDeque;

/// One memory queue: age-ordered entries plus a store index.
#[derive(Clone, Debug)]
pub(crate) struct MemQueue {
    /// ROB slots of all resident entries, oldest first.
    q: VecDeque<usize>,
    /// `(ord, slot)` of resident stores, oldest first; `ord` is strictly
    /// increasing, so the deque is binary-searchable by ordinal.
    stores: VecDeque<(u64, usize)>,
    next_ord: u64,
}

impl MemQueue {
    pub fn with_capacity(capacity: usize) -> MemQueue {
        MemQueue {
            q: VecDeque::with_capacity(capacity),
            stores: VecDeque::with_capacity(capacity),
            next_ord: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// The resident entry at age position `i` (0 = oldest).
    #[inline]
    pub fn slot_at(&self, i: usize) -> usize {
        self.q[i]
    }

    /// Appends an entry at the tail; returns its queue ordinal.
    pub fn push_back(&mut self, slot: usize, is_store: bool) -> u64 {
        let ord = self.next_ord;
        self.next_ord += 1;
        self.q.push_back(slot);
        if is_store {
            self.stores.push_back((ord, slot));
        }
        ord
    }

    /// Removes and returns the oldest entry (commit). The caller says
    /// whether it is a store so the store index stays in sync.
    pub fn pop_front(&mut self, is_store: bool) -> Option<usize> {
        let slot = self.q.pop_front()?;
        if is_store {
            let front = self.stores.pop_front();
            debug_assert_eq!(front.map(|(_, s)| s), Some(slot), "store index out of sync");
        }
        slot.into()
    }

    /// Removes a ghost copy (footnote-3 replication) wherever it sits.
    pub fn remove_ghost(&mut self, slot: usize, is_store: bool, ord: u64) {
        if let Some(pos) = self.q.iter().position(|&s| s == slot) {
            self.q.remove(pos);
            if is_store {
                let i = self.stores.partition_point(|&(o, _)| o < ord);
                debug_assert_eq!(
                    self.stores.get(i),
                    Some(&(ord, slot)),
                    "ghost store missing"
                );
                if self.stores.get(i) == Some(&(ord, slot)) {
                    self.stores.remove(i);
                }
            }
        }
    }

    /// The resident stores with ordinal below `ord` (i.e. pushed before the
    /// entry holding `ord`), youngest first — the disambiguation and
    /// fast-forwarding scan order.
    pub fn stores_older_than(&self, ord: u64) -> impl Iterator<Item = (u64, usize)> + '_ {
        let end = self.stores.partition_point(|&(o, _)| o < ord);
        self.stores.range(..end).rev().copied()
    }

    /// The ROB slot of the resident store with exactly ordinal `ord`, if
    /// one exists — how a blocked scan resolves its cursor back to the
    /// blocking store for waiter registration.
    pub fn store_at(&self, ord: u64) -> Option<usize> {
        let i = self.stores.partition_point(|&(o, _)| o < ord);
        self.stores
            .get(i)
            .filter(|&&(o, _)| o == ord)
            .map(|&(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_are_unique_and_increasing() {
        let mut q = MemQueue::with_capacity(4);
        let a = q.push_back(10, false);
        let b = q.push_back(11, true);
        let c = q.push_back(12, true);
        assert!(a < b && b < c);
        assert_eq!(q.len(), 3);
        assert_eq!(q.slot_at(0), 10);
    }

    #[test]
    fn stores_older_than_walks_youngest_first() {
        let mut q = MemQueue::with_capacity(8);
        q.push_back(1, true);
        q.push_back(2, false);
        q.push_back(3, true);
        let load_ord = q.push_back(4, false);
        q.push_back(5, true); // younger than the load: excluded
        let seen: Vec<usize> = q.stores_older_than(load_ord).map(|(_, s)| s).collect();
        assert_eq!(seen, vec![3, 1]);
    }

    #[test]
    fn pop_front_keeps_store_index_in_sync() {
        let mut q = MemQueue::with_capacity(4);
        q.push_back(7, true);
        let load_ord = q.push_back(8, false);
        assert_eq!(q.pop_front(true), Some(7));
        assert_eq!(q.stores_older_than(load_ord).count(), 0);
        assert_eq!(q.pop_front(false), Some(8));
        assert_eq!(q.pop_front(false), None);
    }

    #[test]
    fn ghost_removal_deletes_exactly_one_copy() {
        let mut q = MemQueue::with_capacity(4);
        q.push_back(1, true);
        let ghost_ord = q.push_back(2, true); // ghost store
        let probe = q.push_back(3, false);
        q.remove_ghost(2, true, ghost_ord);
        assert_eq!(q.len(), 2);
        let seen: Vec<usize> = q.stores_older_than(probe).map(|(_, s)| s).collect();
        assert_eq!(seen, vec![1]);
        // Removing an already-gone ghost is a no-op.
        q.remove_ghost(2, true, ghost_ord);
        assert_eq!(q.len(), 2);
    }
}
