//! The typed error model of the simulation runtime.
//!
//! Every way a run can fail is a value: an invalid machine configuration
//! ([`ConfigError`]), a guest-visible fault raised by the workload
//! ([`Trap`]), a wedged pipeline caught by the watchdog
//! ([`SimError::Deadlock`], carrying a full [`DiagnosticDump`]), or a
//! broken scheduler invariant caught by the auditor
//! ([`SimError::InvariantViolation`]). A malformed workload in a parallel
//! sweep therefore degrades to one structured per-run failure instead of
//! a process abort.

use core::fmt;

use dda_mem::HierarchyConfigError;
use dda_vm::VmError;

use crate::diag::DiagnosticDump;

/// A structural problem with a [`crate::MachineConfig`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConfigError {
    /// A dispatch/issue/commit width is zero.
    ZeroPipelineWidth,
    /// The ROB has no entries.
    ZeroRobSize,
    /// The LSQ has no entries.
    ZeroLsqSize,
    /// The LVAQ has no entries.
    ZeroLvaqSize,
    /// A functional-unit pool has no units.
    EmptyFuPool,
    /// The deadlock watchdog window is zero.
    ZeroDeadlockWindow,
    /// A cache geometry is invalid.
    Hierarchy(HierarchyConfigError),
    /// A fault-injection rate is outside `0.0..=1.0` (or not finite).
    FaultRateOutOfRange {
        /// Which rate field is out of range.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `delay_port_grant` is nonzero but `delay_cycles` is zero.
    ZeroFaultDelay,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPipelineWidth => {
                write!(f, "pipeline widths must be at least 1")
            }
            ConfigError::ZeroRobSize => write!(f, "ROB must have at least one entry"),
            ConfigError::ZeroLsqSize => write!(f, "LSQ must have at least one entry"),
            ConfigError::ZeroLvaqSize => write!(f, "LVAQ must have at least one entry"),
            ConfigError::EmptyFuPool => {
                write!(f, "every functional-unit pool needs at least one unit")
            }
            ConfigError::ZeroDeadlockWindow => {
                write!(f, "deadlock watchdog must be positive")
            }
            ConfigError::Hierarchy(e) => write!(f, "{e}"),
            ConfigError::FaultRateOutOfRange { field, value } => {
                write!(f, "fault rate {field} = {value} must be within 0.0..=1.0")
            }
            ConfigError::ZeroFaultDelay => {
                write!(f, "delay_port_grant needs delay_cycles >= 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<HierarchyConfigError> for ConfigError {
    fn from(e: HierarchyConfigError) -> ConfigError {
        ConfigError::Hierarchy(e)
    }
}

/// What kind of guest-visible fault a workload raised.
///
/// These mirror [`VmError`] one-to-one: the functional machine is the
/// authority on architectural faults, and the pipeline wraps them with
/// timing context into a [`Trap`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrapKind {
    /// The pc fell off the end of the program image.
    PcOutOfRange {
        /// The faulting pc.
        pc: u32,
    },
    /// A load or store address was not aligned to the access size.
    Misaligned {
        /// The pc of the access.
        pc: u32,
        /// The effective address.
        addr: u32,
        /// The access size in bytes.
        bytes: u32,
    },
    /// A load or store touched an address outside every mapped region.
    Unmapped {
        /// The pc of the access.
        pc: u32,
        /// The effective address.
        addr: u32,
    },
    /// A frame layout ran past the stack region.
    StackOverflow {
        /// The pc of the access.
        pc: u32,
        /// The effective address.
        addr: u32,
        /// The lowest legal stack address.
        limit: u32,
    },
    /// A taken control transfer targeted a pc outside the program image
    /// — fetching there would decode garbage (an illegal instruction).
    IllegalInstruction {
        /// The pc of the control transfer.
        pc: u32,
        /// The out-of-image target.
        target: u32,
    },
    /// `Ret` executed with no outstanding call.
    ReturnWithoutCall {
        /// The pc of the return.
        pc: u32,
    },
}

impl From<VmError> for TrapKind {
    fn from(e: VmError) -> TrapKind {
        match e {
            VmError::PcOutOfRange { pc } => TrapKind::PcOutOfRange { pc },
            VmError::Misaligned { pc, addr, bytes } => TrapKind::Misaligned { pc, addr, bytes },
            VmError::OutOfRegion { pc, addr } => TrapKind::Unmapped { pc, addr },
            VmError::StackOverflow { pc, addr, limit } => {
                TrapKind::StackOverflow { pc, addr, limit }
            }
            VmError::IllegalTarget { pc, target } => TrapKind::IllegalInstruction { pc, target },
            VmError::ReturnWithoutCall { pc } => TrapKind::ReturnWithoutCall { pc },
        }
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrapKind::PcOutOfRange { pc } => write!(f, "pc {pc} left the program image"),
            TrapKind::Misaligned { pc, addr, bytes } => {
                write!(f, "misaligned {bytes}-byte access to {addr:#x} at pc {pc}")
            }
            TrapKind::Unmapped { pc, addr } => {
                write!(f, "access to unmapped address {addr:#x} at pc {pc}")
            }
            TrapKind::StackOverflow { pc, addr, limit } => {
                write!(
                    f,
                    "stack overflow: access to {addr:#x} past limit {limit:#x} at pc {pc}"
                )
            }
            TrapKind::IllegalInstruction { pc, target } => {
                write!(
                    f,
                    "illegal instruction: control transfer to pc {target} at pc {pc}"
                )
            }
            TrapKind::ReturnWithoutCall { pc } => {
                write!(f, "return without a matching call at pc {pc}")
            }
        }
    }
}

/// A guest-visible fault, with the timing context at which the front-end
/// saw it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Trap {
    /// What faulted.
    pub kind: TrapKind,
    /// The cycle at which the fault reached the pipeline (dispatch).
    pub cycle: u64,
    /// Instructions committed before the fault.
    pub committed: u64,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (cycle {}, {} committed)",
            self.kind, self.cycle, self.committed
        )
    }
}

/// A scheduler invariant the auditor found broken, with the full
/// diagnostic state at the moment of detection.
#[derive(Clone, PartialEq, Debug)]
pub struct InvariantViolation {
    /// Which invariant failed, human-readable.
    pub what: String,
    /// Pipeline state at detection.
    pub dump: DiagnosticDump,
}

/// Any way a simulation run can fail, as a value.
#[derive(Clone, PartialEq, Debug)]
pub enum SimError {
    /// The machine configuration is structurally invalid.
    Config(ConfigError),
    /// The workload raised an architectural fault.
    Trap(Trap),
    /// No instruction committed for the watchdog window; the dump holds
    /// the wedged pipeline state.
    Deadlock(Box<DiagnosticDump>),
    /// The cycle-by-cycle auditor caught a broken scheduler invariant.
    InvariantViolation(Box<InvariantViolation>),
    /// A sweep worker panicked while running this task; the payload is
    /// the panic message. The panic is caught at the task boundary so one
    /// poisoned run degrades to one structured failure instead of
    /// tearing down the whole sweep.
    WorkerPanic(String),
    /// Warm cache-tag state handed to [`crate::Simulator::run_from_warm`]
    /// does not fit this machine's hierarchy (LVC presence or a cache
    /// geometry differs).
    WarmStateMismatch,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::Trap(t) => write!(f, "trap: {t}"),
            SimError::Deadlock(d) => {
                write!(
                    f,
                    "deadlock: no commit for {} cycles (cycle {}, {} committed)",
                    d.watchdog_window, d.cycle, d.committed
                )
            }
            SimError::InvariantViolation(v) => {
                write!(
                    f,
                    "invariant violation at cycle {}: {}",
                    v.dump.cycle, v.what
                )
            }
            SimError::WorkerPanic(msg) => write!(f, "sweep worker panicked: {msg}"),
            SimError::WarmStateMismatch => {
                write!(
                    f,
                    "warm cache-tag state does not match the machine's hierarchy"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_errors_map_to_trap_kinds() {
        assert_eq!(
            TrapKind::from(VmError::PcOutOfRange { pc: 7 }),
            TrapKind::PcOutOfRange { pc: 7 }
        );
        assert_eq!(
            TrapKind::from(VmError::Misaligned {
                pc: 1,
                addr: 3,
                bytes: 4
            }),
            TrapKind::Misaligned {
                pc: 1,
                addr: 3,
                bytes: 4
            }
        );
        assert_eq!(
            TrapKind::from(VmError::OutOfRegion { pc: 1, addr: 0x40 }),
            TrapKind::Unmapped { pc: 1, addr: 0x40 }
        );
        assert_eq!(
            TrapKind::from(VmError::StackOverflow {
                pc: 2,
                addr: 8,
                limit: 16
            }),
            TrapKind::StackOverflow {
                pc: 2,
                addr: 8,
                limit: 16
            }
        );
        assert_eq!(
            TrapKind::from(VmError::IllegalTarget { pc: 2, target: 999 }),
            TrapKind::IllegalInstruction { pc: 2, target: 999 }
        );
        assert_eq!(
            TrapKind::from(VmError::ReturnWithoutCall { pc: 0 }),
            TrapKind::ReturnWithoutCall { pc: 0 }
        );
    }

    #[test]
    fn displays_are_informative() {
        let t = Trap {
            kind: TrapKind::Unmapped { pc: 3, addr: 0x40 },
            cycle: 17,
            committed: 2,
        };
        let s = SimError::Trap(t).to_string();
        assert!(s.contains("0x40") && s.contains("cycle 17"));
        let c = SimError::Config(ConfigError::ZeroRobSize).to_string();
        assert!(c.contains("invalid machine configuration"));
    }
}
