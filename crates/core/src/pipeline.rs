//! The cycle-stepped out-of-order pipeline.
//!
//! Stage order within a cycle follows `sim-outorder` (reverse pipeline
//! order, so information produced in cycle *t* is consumed in *t + 1*):
//!
//! 1. **commit** — retire completed instructions in order; stores access
//!    their data cache here (claiming a port, possibly combining);
//! 2. **writeback** — functional-unit and cache completions land; wake
//!    dependents;
//! 3. **memory scheduling** — fast data forwarding, then per-queue load
//!    launch with disambiguation, store→load forwarding and access
//!    combining;
//! 4. **issue** — select ready instructions oldest-first onto functional
//!    units (memory instructions issue their address generation here);
//! 5. **dispatch** — rename the next instructions of the dynamic stream
//!    into the ROB and the memory queues, steering each memory access to
//!    the LSQ or the LVAQ.
//!
//! The front-end is perfect (Table 1), so dispatch consumes the
//! architectural stream directly from the functional simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use dda_isa::{FuClass, Instr};
use dda_mem::{Hierarchy, HierarchyTags, PortMeter};
use dda_program::Program;
use dda_vm::{DynInst, TCacheStats, Vm, VmError};

use crate::classify::Classifier;
use crate::config::{FuCounts, MachineConfig};
use crate::diag::{DiagnosticDump, HeadMemSnapshot, HeadSnapshot, RetiredPcRing};
use crate::entry::{DepKind, Dependent, MemState, Rob, RobEntry};
use crate::error::{InvariantViolation, SimError, Trap, TrapKind};
use crate::fault::FaultState;
use crate::fu::FuPools;
use crate::queue::MemQueue;
use crate::result::{QueueStats, SimResult, WindowRun};
use crate::trace::{InstrTrace, MemPath, Tracer};

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EvKind {
    AddrReady,
    Complete,
    /// Fast kernel only: a memory entry's penalty-delayed address becomes
    /// *effective* at this cycle — re-arm the entry (and, for stores, the
    /// loads blocked on it) for re-examination. A pure scheduling hint:
    /// it carries no architectural state change, so it may legally
    /// outlive its ROB entry (e.g. a load that fast-forwarded and retired
    /// inside its own penalty window).
    MemWake,
}

type Ev = (u64, u64, usize, EvKind); // (cycle, uid, slot, kind)

/// Calendar wheel of pending writeback events.
///
/// Event horizons are short (functional-unit and cache latencies), so a
/// power-of-two ring of per-cycle buckets replaces a binary heap: O(1)
/// insertion, and each cycle drains exactly one bucket. The drained batch
/// is sorted into the heap's `(cycle, uid, slot, kind)` pop order, which
/// the writeback loop relies on. The ring doubles on the rare event
/// scheduled beyond the current horizon.
struct EventWheel {
    buckets: Vec<Vec<Ev>>,
    pending: usize,
}

impl EventWheel {
    fn new() -> EventWheel {
        EventWheel {
            buckets: (0..64).map(|_| Vec::new()).collect(),
            pending: 0,
        }
    }

    #[inline]
    fn push(&mut self, now: u64, ev: Ev) {
        // Strictly-future times keep bucket indices unambiguous: every
        // resident of a bucket is due within one full ring revolution.
        debug_assert!(ev.0 > now, "event scheduled in the past");
        while ev.0 - now >= self.buckets.len() as u64 {
            self.grow();
        }
        let idx = (ev.0 as usize) & (self.buckets.len() - 1);
        self.buckets[idx].push(ev);
        self.pending += 1;
    }

    /// Doubles the horizon, redistributing buffered events.
    #[cold]
    fn grow(&mut self) {
        let cap = self.buckets.len() * 2;
        let mut next: Vec<Vec<Ev>> = (0..cap).map(|_| Vec::new()).collect();
        for b in &mut self.buckets {
            for ev in b.drain(..) {
                next[(ev.0 as usize) & (cap - 1)].push(ev);
            }
        }
        self.buckets = next;
    }

    /// Appends the events due exactly at `now` to `out` (bucket order,
    /// i.e. unsorted).
    #[inline]
    fn drain_due(&mut self, now: u64, out: &mut Vec<Ev>) {
        let idx = (now as usize) & (self.buckets.len() - 1);
        let b = &mut self.buckets[idx];
        self.pending -= b.len();
        out.append(b);
    }
}

/// The access-combining seed of the current cycle: (cycle, in_lvaq,
/// is_store, line key = ($sp version, offset / line size), queue sequence
/// number of the port-claiming leader).
type CombineSeed = (u64, bool, bool, (u64, i32), u64);

/// Indices into the class-split issue-candidate lists.
const READY_FU: usize = 0;
const READY_LSQ: usize = 1;
const READY_LVAQ: usize = 2;

/// Which ready list an entry lives on — fixed at dispatch (memory-ness
/// and queue side never change over an entry's lifetime).
#[inline]
fn ready_class(mem: Option<&MemState>) -> usize {
    match mem {
        None => READY_FU,
        Some(m) if m.in_lvaq => READY_LVAQ,
        Some(_) => READY_LSQ,
    }
}

/// Per-cycle resource-exhaustion latches for the fast kernel's issue
/// walk. Within one cycle both kinds of resource are monotone — port
/// claims and unit issues only consume, nothing frees until the next
/// cycle's roll — so one refusal means every later ask this cycle would
/// be refused too, and the walk can skip the re-ask.
#[derive(Default)]
struct IssueLatches {
    /// Port meters, `[l1, lvc]`: a latched queue takes its port-stall
    /// charge without re-asking the meter.
    port: [bool; 2],
    /// Functional-unit pools by [`FuCounts::pool_of`] index: a latched
    /// pool's candidates are skipped without any charge, exactly like
    /// the reference walk's failed pool scan.
    pool: [bool; 4],
}

/// The simulator: builds a machine from a [`MachineConfig`] and runs
/// programs on it.
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: MachineConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when the configuration fails
    /// [`MachineConfig::validate`] — a structurally invalid machine is
    /// rejected here, before any run starts.
    pub fn new(cfg: MachineConfig) -> Result<Simulator, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        Ok(Simulator { cfg })
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Runs `program` until it halts or `max_instructions` have been
    /// committed, whichever is first.
    ///
    /// # Errors
    ///
    /// A malformed workload degrades to a structured per-run failure:
    ///
    /// * [`SimError::Trap`] — the program raised an architectural fault
    ///   (misaligned or unmapped access, stack overflow, illegal control
    ///   transfer, pc escape), wrapped with the cycle and commit count at
    ///   which the front-end saw it;
    /// * [`SimError::Deadlock`] — no instruction committed for
    ///   `deadlock_cycles` cycles; the error carries a full
    ///   [`DiagnosticDump`] of the wedged pipeline;
    /// * [`SimError::InvariantViolation`] — the cycle-by-cycle auditor
    ///   (enabled by [`MachineConfig::with_audit`], on by default in
    ///   debug builds) caught a broken scheduler invariant.
    pub fn run(&self, program: &Program, max_instructions: u64) -> Result<SimResult, SimError> {
        self.run_shared(Arc::new(program.clone()), max_instructions)
    }

    /// Like [`Simulator::run`] but borrowing an already-shared program
    /// image: the `Arc` is handed to the functional simulator as-is, so a
    /// configuration sweep (or repeated runs of one workload) never clones
    /// the program.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`].
    pub fn run_shared(
        &self,
        program: Arc<Program>,
        max_instructions: u64,
    ) -> Result<SimResult, SimError> {
        let mut core = Core::new(&self.cfg, Vm::new(program), None);
        core.run(max_instructions)
    }

    /// Like [`Simulator::run_shared`], additionally returning the
    /// translation-cache counters of the run's front-end.
    ///
    /// The counters live outside [`SimResult`] on purpose: they describe
    /// the simulator's own front-end machinery, not the modelled machine,
    /// and the fast-vs-reference bit-identity checks compare `SimResult`s
    /// directly (the reference kernel interprets instruction by
    /// instruction, so its counters are all zero).
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`].
    pub fn run_shared_detailed(
        &self,
        program: Arc<Program>,
        max_instructions: u64,
    ) -> Result<(SimResult, TCacheStats), SimError> {
        let mut core = Core::new(&self.cfg, Vm::new(program), None);
        let res = core.run(max_instructions)?;
        let tcache = core.vm.tcache_stats();
        Ok((res, tcache))
    }

    /// Like [`Simulator::run`], additionally recording an [`InstrTrace`]
    /// for each of the first `trace_limit` dispatched instructions.
    ///
    /// ```
    /// use dda_core::{MachineConfig, Simulator};
    /// use dda_program::assemble;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let program = assemble("main:\n    li $t0, 1\n    halt\n")?;
    /// let sim = Simulator::new(MachineConfig::iscapaper_base())?;
    /// let (result, traces) = sim.run_traced(&program, 100, 100)?;
    /// assert_eq!(traces.len(), result.committed as usize);
    /// println!("{}", traces[0].render());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`].
    pub fn run_traced(
        &self,
        program: &Program,
        max_instructions: u64,
        trace_limit: u64,
    ) -> Result<(SimResult, Vec<InstrTrace>), SimError> {
        let mut core = Core::new(
            &self.cfg,
            Vm::new(program.clone()),
            Some(Tracer::new(trace_limit)),
        );
        let res = core.run(max_instructions)?;
        let records = match core.tracer.take() {
            Some(tr) => tr.into_records(),
            None => unreachable!("tracer installed above"),
        };
        Ok((res, records))
    }

    /// Runs from an already-positioned functional machine — the hand-off
    /// point of a fast-forwarded or checkpoint-restored [`Vm`] — until it
    /// halts or `max_instructions` *more* have been committed.
    ///
    /// The pipeline and caches start cold, exactly as a detailed run
    /// started from the same architectural state would; two calls with
    /// bit-identical `vm` states produce bit-identical results.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`].
    pub fn run_from(&self, vm: Vm, max_instructions: u64) -> Result<SimResult, SimError> {
        let mut core = Core::new(&self.cfg, vm, None);
        core.run(max_instructions)
    }

    /// Like [`Simulator::run_from`], first importing functionally-warmed
    /// cache-tag state into the (otherwise cold) hierarchy.
    ///
    /// # Errors
    ///
    /// [`SimError::WarmStateMismatch`] when `tags` does not fit this
    /// machine's hierarchy (LVC presence or any cache geometry differs);
    /// otherwise as for [`Simulator::run`].
    pub fn run_from_warm(
        &self,
        vm: Vm,
        tags: Option<&HierarchyTags>,
        max_instructions: u64,
    ) -> Result<SimResult, SimError> {
        let mut core = Core::new(&self.cfg, vm, None);
        if let Some(t) = tags {
            if !core.hier.import_tags(t) {
                return Err(SimError::WarmStateMismatch);
            }
        }
        core.run(max_instructions)
    }

    /// Runs a detailed measurement window from a positioned [`Vm`]: a
    /// warm-up prefix of `warmup_insts` commits (simulated in full detail
    /// but discarded from the window statistics), then `window_insts`
    /// measured commits. Optional `tags` pre-warm the caches as in
    /// [`Simulator::run_from_warm`]. The warm-up boundary is quantized by
    /// the wide commit stage — the prefix ends at the first commit-stage
    /// boundary at or after `warmup_insts`, so the measured window may be
    /// up to commit-width − 1 instructions short of `window_insts`; use
    /// `window.committed`, not the request, as the denominator.
    ///
    /// The returned [`WindowRun`] carries both the whole run (`total`)
    /// and the carved-out window (`window`). The marking machinery never
    /// perturbs the simulation: `total` is bit-identical to what
    /// [`Simulator::run_from_warm`] would return for the same budget.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run_from_warm`].
    pub fn run_window(
        &self,
        vm: Vm,
        tags: Option<&HierarchyTags>,
        warmup_insts: u64,
        window_insts: u64,
    ) -> Result<WindowRun, SimError> {
        let mut core = Core::new(&self.cfg, vm, None);
        if let Some(t) = tags {
            if !core.hier.import_tags(t) {
                return Err(SimError::WarmStateMismatch);
            }
        }
        let budget = warmup_insts.saturating_add(window_insts);
        if warmup_insts == 0 {
            let total = core.run(budget)?;
            let window = total.clone();
            return Ok(WindowRun { total, window });
        }
        let (total, at_mark) = core.run_marked(budget, Some(warmup_insts))?;
        let window = match &at_mark {
            Some(m) => total.delta(m),
            // Halted inside the warm-up prefix: no measured work.
            None => total.delta(&total),
        };
        Ok(WindowRun { total, window })
    }
}

/// Per-pc static decode memo for the fast kernel's dispatch stage: FU
/// class, defined register, and source operands are a function of the
/// static instruction alone, so they are resolved once per program here
/// instead of once per dynamic instance. Register slots hold unified
/// indices into the rename table, [`NO_REG`] for none. The reference
/// kernel keeps decoding per dispatch, as the seed implementation did.
#[derive(Clone, Copy)]
struct SDec {
    fu: FuClass,
    def: u16,
    uses: [u16; 3],
}

/// "No register" sentinel in [`SDec`] slots.
const NO_REG: u16 = u16::MAX;

impl SDec {
    fn of(instr: &Instr) -> SDec {
        let uses = instr.uses();
        SDec {
            fu: instr.fu_class(),
            def: instr.def().map_or(NO_REG, |r| r.unified_index() as u16),
            uses: std::array::from_fn(|k| uses[k].map_or(NO_REG, |r| r.unified_index() as u16)),
        }
    }
}

struct Core<'c> {
    cfg: &'c MachineConfig,
    vm: Vm,
    rob: Rob,
    rename: Vec<Option<(usize, u64)>>,
    /// Static decode memo indexed by pc (fast kernel only; empty under
    /// the reference kernel).
    sdec: Vec<SDec>,
    lsq: MemQueue,
    lvaq: MemQueue,
    fus: FuPools,
    hier: Hierarchy,
    l1_ports: PortMeter,
    lvc_ports: Option<PortMeter>,
    classifier: Classifier,
    events: EventWheel,
    /// The seed implementation's event queue, used (exclusively) by the
    /// reference kernel so its per-cycle costs stay faithful to the
    /// pre-optimization baseline.
    events_heap: BinaryHeap<Reverse<Ev>>,
    /// Scratch buffer for the current cycle's event batch (capacity kept
    /// across cycles).
    wb_batch: Vec<Ev>,
    /// Flat per-occupancy-value counters, flushed into the result
    /// histograms once at the end of the run (a map insert per cycle is
    /// measurable at simulation rates).
    occ_lsq: Vec<u64>,
    occ_lvaq: Vec<u64>,
    pending: Option<DynInst>,
    /// Dispatch ring (fast kernel): dynamic instructions pre-pulled from
    /// the VM one basic block at a time via [`Vm::step_block`], drained
    /// front to back. The reference kernel never touches it.
    inst_ring: Vec<DynInst>,
    /// Index of the next undelivered record in `inst_ring`.
    ring_head: usize,
    /// A [`VmError`] raised while refilling the ring, held back until the
    /// ring drains: the instructions ahead of the fault are real, and the
    /// trap must surface at exactly the dispatch pull where the
    /// interpreter would have faulted.
    ring_err: Option<VmError>,
    dispatched: u64,
    issue_combine: Option<CombineSeed>,
    /// `log2` of the LVC line size — combining's line key uses a shift
    /// instead of a division (line sizes are validated powers of two).
    lvc_line_shift: u32,
    lsq_seq: u64,
    lvaq_seq: u64,
    /// Issue candidates — entries whose operands have all resolved but
    /// which have not issued — as `(uid, slot)` sorted by uid, split by
    /// issue resource class (`ReadyClass`): LSQ memory ops, LVAQ memory
    /// ops, everything else. Dispatch order makes uid monotone with age,
    /// so a three-way merge walk oldest-first selects exactly like the
    /// full ROB walk — and once a queue's port meter is exhausted for
    /// the cycle, the rest of that class can be charged its port stalls
    /// without touching the ROB at all. Unused (left empty) under the
    /// reference kernel.
    ready: [Vec<(u64, usize)>; 3],
    /// Entries that became ready since the last issue pass (woken at
    /// writeback or dispatched with no pending producers); merged into
    /// `ready` by uid at the start of issue().
    newly_ready: [Vec<(u64, usize)>; 3],
    /// Per-queue wakeup worklists of the event-driven memory scheduler
    /// (fast kernel): `(queue ordinal, slot, uid)` of primary loads that
    /// may have become actionable since their last examination — their
    /// address turned effective, a store they were blocked on changed, or
    /// a refused cache access wants a retry. Sorted and deduplicated at
    /// the top of `memory_schedule`, so examination order is queue age
    /// order, exactly the reference walk's order. A cycle with no memory
    /// event leaves both lists empty and does zero queue work.
    lsq_wake: Vec<(u64, usize, u64)>,
    lvaq_wake: Vec<(u64, usize, u64)>,
    /// Double buffers for the wake lists, swapped in each scheduling
    /// pass so wakes pushed *during* a pass land in the next cycle's
    /// list without reallocating.
    lsq_wake_spare: Vec<(u64, usize, u64)>,
    lvaq_wake_spare: Vec<(u64, usize, u64)>,
    /// Recycled waiter vectors (see [`MemState::waiters`]), pooled like
    /// `dep_pool`.
    waiter_pool: Vec<Vec<(usize, u64)>>,
    /// Recycled `dependents` vectors (fast kernel): dispatch draws from
    /// here and retire/writeback return emptied vectors, so steady-state
    /// execution performs no per-instruction heap traffic.
    dep_pool: Vec<Vec<Dependent>>,
    /// Recycled [`MemState`] boxes (both kernels): retire returns them,
    /// dispatch reuses them, so memory instructions allocate only until
    /// the pool warms up to the peak number in flight (≤ ROB size).
    // The boxes themselves are the pooled resource — they move into
    // `RobEntry::mem` unchanged, so `Vec<MemState>` would re-allocate
    // on every dispatch.
    #[allow(clippy::vec_box)]
    mem_pool: Vec<Box<MemState>>,
    tracer: Option<Tracer>,
    /// The fault injector; `None` under [`crate::FaultPlan::none`], so the
    /// fault-free path costs one branch per hook.
    faults: Option<FaultState>,
    /// The last few retired pcs, kept for the diagnostic dump.
    retired_pcs: RetiredPcRing,
    cycle: u64,
    halted: bool,
    last_commit_cycle: u64,
    // Per-cycle store-combining run at commit: (in_lvaq, line, run length).
    // Per-cycle load-combining at launch is tracked locally.
    res: SimResult,
}

impl<'c> Core<'c> {
    fn new(cfg: &'c MachineConfig, vm: Vm, tracer: Option<Tracer>) -> Core<'c> {
        let hier = Hierarchy::new(cfg.hierarchy);
        let sdec = if cfg.reference_kernel {
            Vec::new()
        } else {
            vm.program().instrs().iter().map(SDec::of).collect()
        };
        Core {
            vm,
            rob: Rob::new(cfg.rob_size),
            rename: vec![None; dda_isa::Reg::UNIFIED_COUNT],
            sdec,
            lsq: MemQueue::with_capacity(cfg.lsq_size),
            lvaq: MemQueue::with_capacity(cfg.decoupling.lvaq_size),
            fus: FuPools::new(cfg.fu_counts, cfg.latencies.clone()),
            l1_ports: PortMeter::new(cfg.hierarchy.l1.ports),
            lvc_ports: cfg.hierarchy.lvc.map(|c| PortMeter::new(c.ports)),
            classifier: Classifier::new(cfg.decoupling.steer),
            events: EventWheel::new(),
            events_heap: BinaryHeap::new(),
            wb_batch: Vec::new(),
            occ_lsq: vec![0; cfg.lsq_size + 1],
            occ_lvaq: vec![0; cfg.decoupling.lvaq_size + 1],
            pending: None,
            // One basic block per refill; blocks are capped well below
            // this, so the ring never reallocates.
            inst_ring: Vec::with_capacity(72),
            ring_head: 0,
            ring_err: None,
            dispatched: 0,
            issue_combine: None,
            lvc_line_shift: cfg
                .hierarchy
                .lvc
                .map(|c| c.line_bytes)
                .unwrap_or(32)
                .trailing_zeros(),
            lsq_seq: 0,
            lvaq_seq: 0,
            ready: std::array::from_fn(|_| Vec::with_capacity(cfg.rob_size)),
            newly_ready: std::array::from_fn(|_| Vec::with_capacity(cfg.rob_size)),
            lsq_wake: Vec::with_capacity(cfg.lsq_size),
            lvaq_wake: Vec::with_capacity(cfg.decoupling.lvaq_size),
            lsq_wake_spare: Vec::with_capacity(cfg.lsq_size),
            lvaq_wake_spare: Vec::with_capacity(cfg.decoupling.lvaq_size),
            waiter_pool: Vec::new(),
            dep_pool: Vec::with_capacity(cfg.rob_size),
            mem_pool: Vec::with_capacity(cfg.rob_size),
            tracer,
            faults: FaultState::from_plan(cfg.fault_plan),
            retired_pcs: RetiredPcRing::new(),
            cycle: 0,
            halted: false,
            last_commit_cycle: 0,
            res: SimResult {
                cycles: 0,
                committed: 0,
                halted: false,
                stall_rob_full: 0,
                stall_lsq_full: 0,
                stall_lvaq_full: 0,
                misclassifications: 0,
                lsq: QueueStats::default(),
                lvaq: QueueStats::default(),
                l1: Default::default(),
                lvc: None,
                l2: Default::default(),
                load_latency_sum: 0,
                load_latency_count: 0,
                faults: Default::default(),
            },
            hier,
            cfg,
        }
    }

    fn trace(&mut self, slot: usize, f: impl FnOnce(&mut InstrTrace)) {
        if let Some(tr) = &mut self.tracer {
            let uid = self.rob.get(slot).uid;
            tr.with(uid, f);
        }
    }

    /// Enqueues an event. `uid` must be the current uid of `slot` —
    /// every call site already holds the entry, so re-reading the ROB
    /// here would be a wasted random access on the hot path.
    #[inline]
    fn schedule(&mut self, cycle: u64, uid: u64, slot: usize, kind: EvKind) {
        debug_assert_eq!(uid, self.rob.get(slot).uid);
        if self.cfg.reference_kernel {
            self.events_heap.push(Reverse((cycle, uid, slot, kind)));
        } else {
            self.events.push(self.cycle, (cycle, uid, slot, kind));
        }
    }

    fn run(&mut self, max_instructions: u64) -> Result<SimResult, SimError> {
        self.run_marked(max_instructions, None).map(|(res, _)| res)
    }

    /// Runs like [`Core::run`], additionally snapshotting the statistics
    /// the first time the commit count reaches `mark`. The snapshot is
    /// taken between the commit stage and every later stage of that
    /// cycle, so `final.delta(&snapshot)` is exactly the work after the
    /// marked commit — and the marking itself never perturbs the
    /// simulation ([`Core::flush_occupancy`] drains, so the final result
    /// is bit-identical with or without a mark).
    fn run_marked(
        &mut self,
        max_instructions: u64,
        mark: Option<u64>,
    ) -> Result<(SimResult, Option<SimResult>), SimError> {
        let mut at_mark: Option<SimResult> = None;
        loop {
            self.commit();
            if let Some(m) = mark {
                if at_mark.is_none() && self.res.committed >= m {
                    at_mark = Some(self.snapshot_result());
                }
            }
            if self.done(max_instructions) {
                break;
            }
            self.writeback();
            self.memory_schedule();
            self.issue();
            self.dispatch(max_instructions)?;
            self.sample_occupancy();
            if self.cfg.audit {
                if let Some(what) = self.audit_cycle() {
                    return Err(SimError::InvariantViolation(Box::new(InvariantViolation {
                        what,
                        dump: self.diagnostic_dump(0),
                    })));
                }
            }
            if self.cycle - self.last_commit_cycle > self.cfg.deadlock_cycles {
                return Err(SimError::Deadlock(Box::new(
                    self.diagnostic_dump(self.cfg.deadlock_cycles),
                )));
            }
            self.cycle += 1;
        }
        Ok((self.snapshot_result(), at_mark))
    }

    /// Assembles the statistics as of now into a [`SimResult`]. Safe to
    /// call mid-run: occupancy counters are drained (not copied), and
    /// everything else is read-only against the simulation state.
    fn snapshot_result(&mut self) -> SimResult {
        self.flush_occupancy();
        let mut res = self.res.clone();
        res.cycles = self.cycle.max(1);
        res.halted = self.halted;
        res.l1 = self.hier.l1_stats();
        res.lvc = self.hier.lvc_stats();
        res.l2 = self.hier.l2_stats();
        if let Some(f) = &self.faults {
            res.faults = f.stats;
            res.faults.flips_evicted = self.hier.poison_evictions();
            res.faults.flips_latent = self.hier.poisoned_lines() as u64;
        }
        res
    }

    /// Wraps a functional-execution fault with the timing context at
    /// which the front-end saw it.
    fn trap(&self, e: VmError) -> SimError {
        SimError::Trap(Trap {
            kind: TrapKind::from(e),
            cycle: self.cycle,
            committed: self.res.committed,
        })
    }

    /// Snapshots the pipeline for a watchdog or auditor error.
    fn diagnostic_dump(&self, watchdog_window: u64) -> DiagnosticDump {
        let head = self.rob.head_slot().map(|s| {
            let e = self.rob.get(s);
            HeadSnapshot {
                uid: e.uid,
                seq: e.d.seq,
                pc: e.d.pc,
                instr: e.d.instr,
                issued: e.issued,
                completed: e.completed,
                waiting: e.waiting,
                mem: e.mem.as_ref().map(|m| HeadMemSnapshot {
                    in_lvaq: m.in_lvaq,
                    is_store: m.is_store,
                    addr: m.addr,
                    addr_ready_at: m.addr_ready_at,
                    data_ready_at: m.data_ready_at,
                    launched: m.launched,
                    replicated: m.replicated,
                }),
            }
        });
        DiagnosticDump {
            cycle: self.cycle,
            committed: self.res.committed,
            dispatched: self.dispatched,
            watchdog_window,
            deadlock_window: self.cfg.deadlock_cycles,
            rob_len: self.rob.len(),
            rob_cap: self.cfg.rob_size,
            lsq_len: self.lsq.len(),
            lsq_cap: self.cfg.lsq_size,
            lvaq_len: self.lvaq.len(),
            lvaq_cap: self.cfg.decoupling.lvaq_size,
            pending_events: self.events.pending + self.events_heap.len(),
            l1_port_stalls: self.res.lsq.port_stall_cycles,
            lvc_port_stalls: self.res.lvaq.port_stall_cycles,
            head,
            recent_pcs: self.retired_pcs.snapshot(),
        }
    }

    /// The invariant auditor: cross-checks queue/ROB consistency, queue
    /// age order, and the store index once per cycle (when
    /// `MachineConfig::audit` is on). Returns a description of the first
    /// violated invariant. Pure observation — auditing never changes the
    /// simulation.
    fn audit_cycle(&self) -> Option<String> {
        if self.lsq.len() > self.cfg.lsq_size {
            return Some(format!(
                "LSQ over capacity: {} > {}",
                self.lsq.len(),
                self.cfg.lsq_size
            ));
        }
        if self.lvaq.len() > self.cfg.decoupling.lvaq_size {
            return Some(format!(
                "LVAQ over capacity: {} > {}",
                self.lvaq.len(),
                self.cfg.decoupling.lvaq_size
            ));
        }
        for (name, q, here) in [("LSQ", &self.lsq, false), ("LVAQ", &self.lvaq, true)] {
            let mut prev: Option<u64> = None;
            let mut resident_stores = 0usize;
            for i in 0..q.len() {
                let slot = q.slot_at(i);
                if !self.rob.is_alive(slot) {
                    return Some(format!(
                        "{name} position {i} references dead ROB slot {slot}"
                    ));
                }
                let e = self.rob.get(slot);
                let Some(m) = e.mem.as_ref() else {
                    return Some(format!(
                        "{name} position {i} (slot {slot}) has no memory state"
                    ));
                };
                if m.is_store {
                    resident_stores += 1;
                }
                // A resident belongs to this queue either primarily or as
                // a not-yet-resolved ghost copy (footnote-3 replication).
                let ord = if m.in_lvaq == here {
                    m.ord
                } else if m.replicated {
                    m.ghost_ord
                } else {
                    return Some(format!(
                        "{name} position {i} (slot {slot}) belongs to the other queue \
                         and is not replicated"
                    ));
                };
                if let Some(p) = prev {
                    if ord <= p {
                        return Some(format!(
                            "{name} age order broken at position {i}: ordinal {ord} after {p}"
                        ));
                    }
                }
                prev = Some(ord);
            }
            let indexed = q.stores_older_than(u64::MAX).count();
            if indexed != resident_stores {
                return Some(format!(
                    "{name} store index out of sync: {indexed} indexed, {resident_stores} resident"
                ));
            }
        }
        if !self.cfg.reference_kernel {
            if let Some(what) = self.audit_wake_liveness() {
                return Some(what);
            }
        }
        None
    }

    /// Event-driven scheduler liveness (fast kernel): every primary load
    /// whose address is effective but which has neither launched nor
    /// completed must be reachable from a wake list or registered on a
    /// resident store's waiter list — otherwise no future event would
    /// ever examine it and the pipeline would wedge.
    fn audit_wake_liveness(&self) -> Option<String> {
        let mut reachable: std::collections::HashSet<(usize, u64)> =
            std::collections::HashSet::new();
        for &(_, slot, uid) in self.lsq_wake.iter().chain(self.lvaq_wake.iter()) {
            reachable.insert((slot, uid));
        }
        for q in [&self.lsq, &self.lvaq] {
            for i in 0..q.len() {
                let e = self.rob.get(q.slot_at(i));
                if let Some(m) = e.mem.as_ref() {
                    for &w in &m.waiters {
                        reachable.insert(w);
                    }
                }
            }
        }
        for (name, q, here) in [("LSQ", &self.lsq, false), ("LVAQ", &self.lvaq, true)] {
            for i in 0..q.len() {
                let slot = q.slot_at(i);
                let e = self.rob.get(slot);
                let Some(m) = e.mem.as_ref() else { continue };
                if m.in_lvaq != here || m.is_store || m.launched || e.completed {
                    continue;
                }
                if m.addr_known(self.cycle) && !reachable.contains(&(slot, e.uid)) {
                    return Some(format!(
                        "{name} position {i} (slot {slot}): actionable load unreachable \
                         from wake lists and waiter lists"
                    ));
                }
            }
        }
        None
    }

    fn done(&self, max_instructions: u64) -> bool {
        if self.halted || self.res.committed >= max_instructions {
            return true;
        }
        // Stream exhausted (program halted in the VM, no undelivered ring
        // records or deferred fault) and pipeline empty. Under block
        // batching the VM halts as soon as the refill *executes* `Halt`,
        // which may be several dispatch cycles before the pipeline sees
        // it — the ring conditions keep `done` firing at exactly the
        // cycle the one-at-a-time front-end would.
        self.vm.is_halted()
            && self.pending.is_none()
            && self.ring_head >= self.inst_ring.len()
            && self.ring_err.is_none()
            && self.rob.is_empty()
    }

    // ----- commit ---------------------------------------------------------

    fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        while budget > 0 {
            let Some(head) = self.rob.head_slot() else {
                break;
            };
            let e = self.rob.get(head);
            let mem = e.mem.as_ref().map(|m| {
                (
                    m.is_store,
                    m.in_lvaq,
                    m.addr,
                    m.addr_known(self.cycle) && m.data_known(self.cycle),
                    m.poisoned,
                )
            });
            if let Some((is_store, in_lvaq, addr, store_ready, poisoned)) = mem {
                if is_store {
                    // The store's port was paid at address generation
                    // (sim-outorder issues stores through the memory
                    // ports); commit just retires the value into the
                    // cache.
                    if !store_ready {
                        break;
                    }
                    let accepted = if in_lvaq {
                        self.hier.lvc_try_access(self.cycle, addr, true)
                    } else {
                        self.hier.l1_try_access(self.cycle, addr, true)
                    };
                    if accepted.is_none() {
                        // The cache cannot accept the store's miss (MSHRs
                        // busy): commit stalls this cycle.
                        break;
                    }
                    self.fault_cache_access(in_lvaq, addr);
                    // Test-only planted defect (see MachineConfig): the
                    // fast kernel charges a phantom LVAQ port-stall cycle
                    // for stores retiring to word index 6 mod 16, so a
                    // differential campaign has a real bug to catch.
                    if self.cfg.planted_defect
                        && !self.cfg.reference_kernel
                        && in_lvaq
                        && (addr >> 2) & 0xf == 0x6
                    {
                        self.res.lvaq.port_stall_cycles += 1;
                    }
                    self.trace(head, |tr| tr.mem_path = MemPath::StoreRetired);
                    self.pop_mem_head(head, in_lvaq, true);
                } else {
                    if !e.completed {
                        break;
                    }
                    if poisoned {
                        // Commit-time audit of a forwarded value: the
                        // corruption is caught (and scrubbed) before the
                        // load retires.
                        if let Some(f) = self.faults.as_mut() {
                            f.stats.forwards_detected += 1;
                        }
                    }
                    self.pop_mem_head(head, in_lvaq, false);
                }
            } else {
                if !e.completed {
                    break;
                }
                let is_halt = matches!(e.d.instr, Instr::Halt);
                let (uid, pc, deps, _mem) = self.rob.pop_head_parts();
                debug_assert!(_mem.is_none(), "non-memory entry with memory state");
                self.retired_pcs.push(pc);
                if let Some(tr) = &mut self.tracer {
                    tr.commit(uid, self.cycle);
                }
                self.recycle_deps(deps);
                self.res.committed += 1;
                self.last_commit_cycle = self.cycle;
                if is_halt {
                    self.halted = true;
                    return;
                }
                budget -= 1;
                continue;
            }
            self.res.committed += 1;
            self.last_commit_cycle = self.cycle;
            budget -= 1;
        }
    }

    fn pop_mem_head(&mut self, head: usize, in_lvaq: bool, is_store: bool) {
        // A fault-delayed address-ready event can leave a fast-forwarded
        // load's footnote-3 ghost in the other queue past retirement;
        // the ghost must not outlive its ROB entry.
        let ghost = {
            let m = self.rob.get(head).mem();
            if m.replicated {
                Some((m.is_store, m.ghost_ord))
            } else {
                None
            }
        };
        if let Some((gstore, gord)) = ghost {
            debug_assert!(self.faults.is_some(), "ghost survived to retirement");
            let other = if in_lvaq {
                &mut self.lsq
            } else {
                &mut self.lvaq
            };
            other.remove_ghost(head, gstore, gord);
        }
        let q = if in_lvaq {
            &mut self.lvaq
        } else {
            &mut self.lsq
        };
        let front = q.pop_front(is_store);
        debug_assert_eq!(front, Some(head), "memory queue out of sync with ROB");
        let (uid, pc, deps, mem) = self.rob.pop_head_parts();
        self.retired_pcs.push(pc);
        if let Some(tr) = &mut self.tracer {
            tr.commit(uid, self.cycle);
        }
        self.recycle_deps(deps);
        if let Some(mut m) = mem {
            // The waiter vector's capacity recycles through `waiter_pool`
            // (inside `drain_waiter_list`), the box through `mem_pool`.
            let waiters = std::mem::take(&mut m.waiters);
            self.mem_pool.push(m);
            if !self.cfg.reference_kernel {
                // A departing store unblocks the loads scanned up against
                // it (commit runs before memory scheduling, so they
                // re-examine this same cycle — just like the reference
                // rescan would).
                self.drain_waiter_list(waiters);
            }
        }
    }

    /// Fault hooks around one data-cache data access: first a parity
    /// check on the touched line (detecting — and scrubbing — an earlier
    /// injected flip), then a chance to flip the line just accessed.
    /// Detection runs before injection so a fresh flip is never
    /// self-detected by the access that created it.
    fn fault_cache_access(&mut self, in_lvaq: bool, addr: u32) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        let rate = if in_lvaq {
            f.plan.flip_lvc_line
        } else {
            f.plan.flip_l1_line
        };
        if rate == 0.0 {
            return;
        }
        // Draw first so the injector borrow ends before the hierarchy is
        // touched.
        let inject = f.rng.gen_bool(rate);
        let detected = if in_lvaq {
            self.hier.lvc_check_poison(addr)
        } else {
            self.hier.l1_check_poison(addr)
        };
        let injected = inject
            && if in_lvaq {
                self.hier.lvc_poison_line(addr)
            } else {
                self.hier.l1_poison_line(addr)
            };
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        if detected {
            f.stats.flips_detected += 1;
        }
        if injected {
            if in_lvaq {
                f.stats.lvc_flips_injected += 1;
            } else {
                f.stats.l1_flips_injected += 1;
            }
        }
    }

    /// Returns a retired entry's `dependents` vector to the pool.
    ///
    /// Only capacity-carrying vectors are kept: a vector drained at
    /// writeback leaves a fresh zero-capacity `Vec` behind, so each
    /// allocation re-enters the pool exactly once (at writeback or at
    /// retire, never both).
    #[inline]
    fn recycle_deps(&mut self, mut deps: Vec<Dependent>) {
        if !self.cfg.reference_kernel && deps.capacity() > 0 {
            deps.clear();
            self.dep_pool.push(deps);
        }
    }

    // ----- writeback ------------------------------------------------------

    fn writeback(&mut self) {
        if self.cfg.reference_kernel {
            // Seed implementation: pop the binary heap while due.
            while let Some(&Reverse((t, _, _, _))) = self.events_heap.peek() {
                if t > self.cycle {
                    break;
                }
                let Some(Reverse((t, uid, slot, kind))) = self.events_heap.pop() else {
                    break;
                };
                self.writeback_event(t, uid, slot, kind);
            }
            return;
        }
        let mut batch = std::mem::take(&mut self.wb_batch);
        self.events.drain_due(self.cycle, &mut batch);
        // Restore the heap's pop order: within one cycle, ascending
        // (uid, slot, kind). Nothing in the event handler schedules new
        // same-cycle events, so one batch is the whole cycle.
        batch.sort_unstable();
        for &(t, uid, slot, kind) in &batch {
            debug_assert_eq!(t, self.cycle, "event missed its cycle");
            self.writeback_event(t, uid, slot, kind);
        }
        batch.clear();
        self.wb_batch = batch;
    }

    /// Applies one due event: address availability or result completion
    /// (with dependent wakeup).
    fn writeback_event(&mut self, t: u64, uid: u64, slot: usize, kind: EvKind) {
        if kind == EvKind::MemWake {
            // A pure scheduling hint (fast kernel only): re-arm the entry
            // if it is still alive. A penalty-delayed load can
            // fast-forward and retire before its wake fires, so a dead
            // target here is normal even without fault injection.
            if self.rob.holds(slot, uid) {
                self.mem_wake(slot);
            }
            return;
        }
        if !self.rob.holds(slot, uid) {
            // Only a fault-delayed address-ready event can outlive its
            // entry: the load was fast-forwarded (§2.2.2 needs no AGU
            // result) and retired inside the injected delay window.
            debug_assert!(self.faults.is_some(), "event for a dead entry");
            return;
        }
        {
            match kind {
                EvKind::MemWake => unreachable!("handled above"),
                EvKind::AddrReady => {
                    let penalty = self.rob.get(slot).mem().penalty;
                    let (replicated, in_lvaq, is_store, ghost_ord) = {
                        let m = self.rob.get_mut(slot).mem_mut();
                        m.addr_ready_at = Some(t + penalty);
                        (m.replicated, m.in_lvaq, m.is_store, m.ghost_ord)
                    };
                    if replicated {
                        // Region resolved: kill the wrongly inserted copy
                        // (paper §2.1, footnote 3).
                        let other = if in_lvaq {
                            &mut self.lsq
                        } else {
                            &mut self.lvaq
                        };
                        other.remove_ghost(slot, is_store, ghost_ord);
                        self.rob.get_mut(slot).mem_mut().replicated = false;
                    }
                    if !self.cfg.reference_kernel {
                        if penalty == 0 {
                            // The address is effective this very cycle
                            // (writeback precedes memory scheduling).
                            if is_store {
                                self.drain_waiters_of(slot);
                            } else {
                                self.wake_load(slot);
                            }
                        } else {
                            if is_store && replicated {
                                // The ghost's departure may unblock the
                                // other queue now, even though this
                                // store's own address is not yet
                                // effective.
                                self.drain_waiters_of(slot);
                            }
                            self.schedule(t + penalty, uid, slot, EvKind::MemWake);
                        }
                    }
                    self.trace(slot, |tr| tr.addr_ready_at = Some(t + penalty));
                }
                EvKind::Complete => {
                    self.trace(slot, |tr| tr.completed_at = Some(t));
                    let mut deps = {
                        let e = self.rob.get_mut(slot);
                        e.completed = true;
                        std::mem::take(&mut e.dependents)
                    };
                    let track_ready = !self.cfg.reference_kernel;
                    for Dependent { slot: ds, kind } in deps.drain(..) {
                        let de = self.rob.get_mut(ds);
                        match kind {
                            DepKind::Operand => {
                                debug_assert!(de.waiting > 0);
                                de.waiting -= 1;
                                // Wakeup: the last operand arriving makes
                                // the consumer an issue candidate. Loads
                                // already satisfied by fast forwarding
                                // (`issued` set without operands) never
                                // re-enter.
                                let woke = de.waiting == 0 && !de.issued;
                                let duid = de.uid;
                                let class = ready_class(de.mem.as_deref());
                                if track_ready && woke {
                                    self.newly_ready[class].push((duid, ds));
                                }
                            }
                            DepKind::StoreData => {
                                de.mem_mut().data_ready_at = Some(t);
                                if track_ready {
                                    // Loads blocked on this store's value
                                    // can now forward from it.
                                    self.drain_waiters_of(ds);
                                }
                            }
                        }
                    }
                    self.recycle_deps(deps);
                }
            }
        }
    }

    // ----- memory scheduling ---------------------------------------------

    /// Re-arms an alive entry whose penalty-delayed address just became
    /// effective (fast kernel, [`EvKind::MemWake`]).
    fn mem_wake(&mut self, slot: usize) {
        if self.rob.get(slot).mem().is_store {
            self.drain_waiters_of(slot);
        } else {
            let e = self.rob.get(slot);
            if !e.completed && !e.mem().launched {
                self.wake_load(slot);
            }
        }
    }

    /// Queues a load for (re-)examination by the next `memory_schedule`
    /// pass over its own queue.
    fn wake_load(&mut self, slot: usize) {
        let uid = self.rob.get(slot).uid;
        let (in_lvaq, ord) = {
            let m = self.rob.get(slot).mem();
            (m.in_lvaq, m.ord)
        };
        let wl = if in_lvaq {
            &mut self.lvaq_wake
        } else {
            &mut self.lsq_wake
        };
        wl.push((ord, slot, uid));
    }

    /// Registers a load on the waiter list of the store its scheduling
    /// scan stopped at: the load re-enters its queue's wake list when
    /// that store's address or data readiness changes or it leaves a
    /// queue. Spurious wakeups are harmless — the load just re-examines
    /// (in O(1) from its scan cursor) and re-registers.
    fn register_waiter(&mut self, store_slot: usize, load_slot: usize) {
        debug_assert!(
            self.rob.get(store_slot).is_store(),
            "waiter registered on a non-store"
        );
        let uid = self.rob.get(load_slot).uid;
        if self.rob.get(store_slot).mem().waiters.capacity() == 0 {
            if let Some(v) = self.waiter_pool.pop() {
                self.rob.get_mut(store_slot).mem_mut().waiters = v;
            }
        }
        let w = &mut self.rob.get_mut(store_slot).mem_mut().waiters;
        // A load re-blocking on the same store is the common case; keep
        // the list duplicate-free for it (full dedup happens in the wake
        // lists anyway).
        if w.last() != Some(&(load_slot, uid)) {
            w.push((load_slot, uid));
        }
    }

    /// Wakes every load registered on the store in `store_slot`.
    fn drain_waiters_of(&mut self, store_slot: usize) {
        let w = std::mem::take(&mut self.rob.get_mut(store_slot).mem_mut().waiters);
        self.drain_waiter_list(w);
    }

    /// Wakes the still-alive, still-idle loads of a taken waiter list and
    /// recycles its allocation.
    fn drain_waiter_list(&mut self, mut w: Vec<(usize, u64)>) {
        for (slot, uid) in w.drain(..) {
            if !self.rob.holds(slot, uid) {
                continue;
            }
            let e = self.rob.get(slot);
            if e.completed || e.mem().launched {
                continue;
            }
            self.wake_load(slot);
        }
        if w.capacity() > 0 {
            self.waiter_pool.push(w);
        }
    }

    fn memory_schedule(&mut self) {
        if self.cfg.reference_kernel {
            // Seed implementation: rescan every queue resident, every
            // cycle.
            if self.cfg.decoupling.fast_forwarding && self.hier.has_lvc() {
                self.fast_forward_pass();
            }
            self.launch_queue(false);
            if self.hier.has_lvc() {
                self.launch_queue(true);
            }
            return;
        }
        // Event-driven fast kernel: only woken loads are examined. Every
        // state change that can make a load actionable funnels into the
        // wake lists (address-ready and penalty expiry in
        // `writeback_event`, store data arrival via `drain_waiters_of`,
        // store departure in `pop_mem_head` / ghost removal, MSHR-refusal
        // retries below, initial fast-forward eligibility at dispatch),
        // so an empty list cycle provably has no scheduling work.
        if self.lsq_wake.is_empty() && self.lvaq_wake.is_empty() {
            return;
        }
        let mut lv = std::mem::replace(
            &mut self.lvaq_wake,
            std::mem::take(&mut self.lvaq_wake_spare),
        );
        let mut ls =
            std::mem::replace(&mut self.lsq_wake, std::mem::take(&mut self.lsq_wake_spare));
        // Sorting by queue ordinal restores the reference walk's age
        // order; examination order decides fault-RNG draw order, so this
        // is a bit-identity requirement, not a heuristic.
        lv.sort_unstable();
        lv.dedup();
        ls.sort_unstable();
        ls.dedup();
        if self.cfg.decoupling.fast_forwarding && self.hier.has_lvc() {
            for &(_, slot, uid) in &lv {
                if self.rob.holds(slot, uid) {
                    self.ff_exam(slot);
                }
            }
        }
        for &(_, slot, uid) in &ls {
            if self.rob.holds(slot, uid) {
                self.launch_exam(false, slot, uid);
            }
        }
        if self.hier.has_lvc() {
            for &(_, slot, uid) in &lv {
                if self.rob.holds(slot, uid) {
                    self.launch_exam(true, slot, uid);
                }
            }
        }
        lv.clear();
        ls.clear();
        self.lvaq_wake_spare = lv;
        self.lsq_wake_spare = ls;
    }

    /// Examines one woken LVAQ load for fast forwarding (fast kernel):
    /// resumes the CAM scan from its cursor, applies a ready match, and
    /// otherwise registers the load on the store that stopped the scan.
    fn ff_exam(&mut self, slot: usize) {
        let Some((lver, loff, lbytes)) = self.ff_candidate(slot) else {
            return;
        };
        let (ord, ff_ord) = {
            let m = self.rob.get(slot).mem();
            (m.ord, m.ff_ord)
        };
        let (out, cursor) = ff_scan(&self.rob, &self.lvaq, ff_ord, lver, loff, lbytes);
        debug_assert_eq!(
            out,
            ff_scan(&self.rob, &self.lvaq, ord, lver, loff, lbytes).0,
            "incremental fast-forward scan diverged from the full rescan"
        );
        self.rob.get_mut(slot).mem_mut().ff_ord = cursor;
        match out {
            FfScan::Match(store_slot) => {
                if self.rob.get(store_slot).mem().data_known(self.cycle) {
                    self.apply_fast_forward(slot, out);
                } else {
                    // Re-examine when the matched store's data arrives.
                    self.register_waiter(store_slot, slot);
                }
            }
            FfScan::Blocked => {
                // The cursor sits just above the youngest blocking store.
                let Some(blocker) = self.lvaq.store_at(cursor - 1) else {
                    debug_assert!(false, "blocked fast-forward scan without a blocking store");
                    return;
                };
                self.register_waiter(blocker, slot);
            }
            FfScan::NoMatch => {}
        }
    }

    /// Examines one woken load of a queue for launch (fast kernel):
    /// resumes the disambiguation scan from its cursor, launches on
    /// forward/cache outcomes (re-arming a refused cache access for the
    /// next cycle), and registers blocked loads on their blocking store.
    fn launch_exam(&mut self, in_lvaq: bool, slot: usize, uid: u64) {
        let Some((addr, bytes)) = self.launch_candidate(slot, in_lvaq) else {
            return;
        };
        let cycle = self.cycle;
        let (ord, scan_ord) = {
            let m = self.rob.get(slot).mem();
            (m.ord, m.scan_ord)
        };
        // Conservative disambiguation against older stores in *this*
        // queue only — the decoupling benefit.
        let (outcome, cursor) = {
            let q = if in_lvaq { &self.lvaq } else { &self.lsq };
            let (out, cursor) = disamb_scan(&self.rob, q, scan_ord, cycle, addr, bytes);
            debug_assert_eq!(
                out,
                disamb_scan(&self.rob, q, ord, cycle, addr, bytes).0,
                "incremental disambiguation scan diverged from the full rescan"
            );
            (out, cursor)
        };
        self.rob.get_mut(slot).mem_mut().scan_ord = cursor;
        if let DisambScan::Blocked = outcome {
            let blocker = {
                let q = if in_lvaq { &self.lvaq } else { &self.lsq };
                q.store_at(cursor - 1)
            };
            let Some(blocker) = blocker else {
                debug_assert!(
                    false,
                    "blocked disambiguation scan without a blocking store"
                );
                return;
            };
            self.register_waiter(blocker, slot);
        } else if !self.apply_launch(in_lvaq, slot, addr, outcome) {
            // Structural hazard (every MSHR busy): the reference kernel
            // retries each cycle, so re-arm for the very next one.
            let wl = if in_lvaq {
                &mut self.lvaq_wake
            } else {
                &mut self.lsq_wake
            };
            wl.push((ord, slot, uid));
        }
    }

    /// Fast data forwarding (paper §2.2.2): match an LVAQ load to an
    /// earlier LVAQ store on `($sp` version, static offset)` — *before*
    /// effective addresses are computed — and bypass the value in one
    /// cycle, using neither the AGU result nor an LVC port.
    fn fast_forward_pass(&mut self) {
        // The reference kernel replays the original implementation
        // verbatim: snapshot the queue, then rescan every older entry
        // for every candidate load, every cycle. (The fast kernel's
        // event-driven counterpart is `ff_exam`.)
        let snapshot: Vec<usize> = (0..self.lvaq.len()).map(|j| self.lvaq.slot_at(j)).collect();
        for (i, &slot) in snapshot.iter().enumerate() {
            let Some((lver, loff, lbytes)) = self.ff_candidate(slot) else {
                continue;
            };
            let outcome = ff_scan_full(&self.rob, &snapshot[..i], lver, loff, lbytes);
            self.apply_fast_forward(slot, outcome);
        }
    }

    /// The per-load eligibility filter of the fast-forwarding pass;
    /// returns the load's `($sp` version, offset, bytes)` identity.
    fn ff_candidate(&self, slot: usize) -> Option<(u64, i32, u32)> {
        let e = self.rob.get(slot);
        let m = e.mem.as_ref()?;
        if !m.in_lvaq || m.is_store || m.launched || e.completed {
            return None;
        }
        let (lver, loff) = m.stack_slot?;
        Some((lver, loff, m.bytes))
    }

    /// Applies a fast-forwarding scan outcome: on an exact match with the
    /// store data ready, bypass in one cycle (no AGU, no LVC port).
    fn apply_fast_forward(&mut self, slot: usize, outcome: FfScan) {
        let cycle = self.cycle;
        if let FfScan::Match(store_slot) = outcome {
            let data_ready = self.rob.get(store_slot).mem().data_known(cycle);
            if data_ready {
                let e = self.rob.get_mut(slot);
                let uid = e.uid;
                e.issued = true; // skip AGU if not yet issued
                e.mem_mut().launched = true;
                self.fault_corrupt_forward(slot);
                self.trace(slot, |tr| tr.mem_path = MemPath::FastForwarded);
                self.res.lvaq.fast_forwards += 1;
                self.res.load_latency_sum += 1;
                self.res.load_latency_count += 1;
                self.schedule(cycle + 1, uid, slot, EvKind::Complete);
            }
            // If the data is not ready yet, retry next cycle.
        }
    }

    /// Fault hook on a store→load forward: maybe corrupts the bypassed
    /// value. The poison rides the load's queue entry until the
    /// commit-time audit catches it.
    fn fault_corrupt_forward(&mut self, slot: usize) {
        let mut corrupt = false;
        if let Some(f) = self.faults.as_mut() {
            if f.plan.corrupt_forward > 0.0 && f.rng.gen_bool(f.plan.corrupt_forward) {
                f.stats.forwards_corrupted += 1;
                corrupt = true;
            }
        }
        if corrupt {
            self.rob.get_mut(slot).mem_mut().poisoned = true;
        }
    }

    /// Launch ready loads of one queue to the cache (or forward from an
    /// earlier store), respecting intra-queue disambiguation. Ports were
    /// claimed at address-generation issue, so no arbitration happens
    /// here.
    fn launch_queue(&mut self, in_lvaq: bool) {
        // Reference kernel: the original snapshot-and-rescan
        // implementation. (The fast kernel's event-driven counterpart is
        // `launch_exam`.)
        let cycle = self.cycle;
        let qlen = if in_lvaq {
            self.lvaq.len()
        } else {
            self.lsq.len()
        };
        let snapshot: Vec<usize> = (0..qlen)
            .map(|j| {
                if in_lvaq {
                    self.lvaq.slot_at(j)
                } else {
                    self.lsq.slot_at(j)
                }
            })
            .collect();
        for (i, &slot) in snapshot.iter().enumerate() {
            let Some((addr, bytes)) = self.launch_candidate(slot, in_lvaq) else {
                continue;
            };
            let outcome = disamb_scan_full(&self.rob, &snapshot[..i], cycle, addr, bytes);
            self.apply_launch(in_lvaq, slot, addr, outcome);
        }
    }

    /// The per-load eligibility filter of the launch pass: a primary
    /// (non-ghost) load of this queue, not yet launched, whose effective
    /// address is known. A ghost copy (replication, footnote 3) never
    /// launches from the wrong queue.
    fn launch_candidate(&self, slot: usize, in_lvaq: bool) -> Option<(u32, u32)> {
        let e = self.rob.get(slot);
        let m = e.mem.as_ref()?;
        if m.in_lvaq != in_lvaq
            || m.is_store
            || m.launched
            || e.completed
            || !m.addr_known(self.cycle)
        {
            return None;
        }
        Some((m.addr, m.bytes))
    }

    /// Applies a disambiguation outcome: forward from the covering store,
    /// or access the cache (which may refuse when every MSHR is busy — a
    /// structural hazard retried next cycle). `Blocked` loads just wait.
    /// Returns `false` exactly when a cache access was refused, so the
    /// fast kernel knows to re-arm the load for the next cycle.
    fn apply_launch(&mut self, in_lvaq: bool, slot: usize, addr: u32, outcome: DisambScan) -> bool {
        let cycle = self.cycle;
        match outcome {
            DisambScan::Blocked => {}
            DisambScan::Forward(_) => {
                // In-queue store→load forwarding: 1 cycle (the port was
                // already paid at address generation).
                let qstats = if in_lvaq {
                    &mut self.res.lvaq
                } else {
                    &mut self.res.lsq
                };
                qstats.forwards += 1;
                self.res.load_latency_sum += 1;
                self.res.load_latency_count += 1;
                let e = self.rob.get_mut(slot);
                let uid = e.uid;
                e.mem_mut().launched = true;
                self.fault_corrupt_forward(slot);
                self.trace(slot, |tr| tr.mem_path = MemPath::Forwarded);
                self.schedule(cycle + 1, uid, slot, EvKind::Complete);
            }
            DisambScan::Cache => {
                let completion = if in_lvaq {
                    self.hier.lvc_try_access(cycle, addr, false)
                } else {
                    self.hier.l1_try_access(cycle, addr, false)
                };
                let Some(c) = completion else {
                    // Structural hazard: every MSHR busy — retry next
                    // cycle.
                    return false;
                };
                self.fault_cache_access(in_lvaq, addr);
                let complete_at = c.complete_at;
                self.res.load_latency_sum += complete_at - cycle;
                self.res.load_latency_count += 1;
                let e = self.rob.get_mut(slot);
                let uid = e.uid;
                e.mem_mut().launched = true;
                self.trace(slot, |tr| tr.mem_path = MemPath::Cache);
                self.schedule(complete_at, uid, slot, EvKind::Complete);
            }
        }
        true
    }

    // ----- issue ----------------------------------------------------------

    fn issue(&mut self) {
        let mut budget = self.cfg.issue_width;
        if self.cfg.reference_kernel {
            // Reference kernel: the original walk over a per-cycle
            // materialization of every live ROB slot.
            let slots: Vec<usize> = self.rob.slots_in_age_order().collect();
            for slot in slots {
                if budget == 0 {
                    break;
                }
                self.try_issue_slot(slot, &mut budget, None);
            }
            return;
        }
        // Fast kernel: walk only the ready entries (all operands
        // resolved, not yet issued). uid is monotone with dispatch
        // order, so keeping each class list uid-sorted and merge-walking
        // the three lists oldest-first selects exactly like the full ROB
        // walk, since entries still waiting on operands cannot issue
        // (and charge nothing) there either.
        for class in 0..3 {
            if self.newly_ready[class].is_empty() {
                continue;
            }
            self.newly_ready[class].sort_unstable();
            if self.ready[class]
                .last()
                .is_none_or(|&(last, _)| last < self.newly_ready[class][0].0)
            {
                // Common case: every newcomer is younger than the tail.
                let mut newly = std::mem::take(&mut self.newly_ready[class]);
                self.ready[class].append(&mut newly);
                self.newly_ready[class] = newly;
            } else {
                let old = std::mem::take(&mut self.ready[class]);
                let new = std::mem::take(&mut self.newly_ready[class]);
                self.ready[class] = merge_by_uid(old, new);
            }
        }

        // Three-way merge walk by uid (= age). The latches record a
        // port meter or FU pool exhausted earlier this cycle: once the
        // L1 (or LVC) meter has refused a claim, every later claim this
        // cycle refuses too, so the rest of that class needs only its
        // port-stall charge — no ROB access, no meter call — taken as
        // one bulk run per consecutive stretch (a stalled run contains
        // no issues, so the budget cannot change inside it and the
        // reference walk charges the whole stretch too). That charge is
        // exact only when every resident entry of the class must reach
        // the port claim: LSQ ops always do (AGU issue comes first; a
        // resident LSQ entry is live and unissued), but an LVAQ entry
        // can be rescued portlessly by access combining or completed in
        // place by fast forwarding (`apply_fast_forward` marks it
        // issued without an `issue()` exam), so LVAQ bulk charging is
        // off under either optimization.
        let mut lists = std::mem::take(&mut self.ready);
        let [fu_l, lsq_l, lvaq_l] = &mut lists;
        let mut latches = IssueLatches::default();
        let lvaq_bulk = self.cfg.decoupling.combining_degree <= 1
            && !(self.cfg.decoupling.fast_forwarding && self.hier.has_lvc());
        let (mut fr, mut fw) = (0usize, 0usize);
        let (mut lr, mut lw) = (0usize, 0usize);
        let (mut vr, mut vw) = (0usize, 0usize);
        // Cached head uids: only the cursor that advanced refreshes its
        // head, so steady-state iterations touch one list, not three.
        let head = |l: &Vec<(u64, usize)>, r: usize| l.get(r).map(|e| e.0).unwrap_or(u64::MAX);
        let mut fuid = head(fu_l, fr);
        let mut luid = head(lsq_l, lr);
        let mut vuid = head(lvaq_l, vr);
        while budget > 0 {
            let next = fuid.min(luid).min(vuid);
            if next == u64::MAX {
                break;
            }
            if next == luid && latches.port[0] {
                // Bulk-charge the stalled run up to the next candidate
                // from another list.
                let other = fuid.min(vuid);
                let start = lr;
                while lr < lsq_l.len() && lsq_l[lr].0 < other {
                    debug_assert!(self.rob.holds(lsq_l[lr].1, lsq_l[lr].0));
                    lr += 1;
                }
                self.res.lsq.port_stall_cycles += (lr - start) as u64;
                lsq_l.copy_within(start..lr, lw);
                lw += lr - start;
                luid = head(lsq_l, lr);
                continue;
            }
            if next == vuid && latches.port[1] && lvaq_bulk {
                let other = fuid.min(luid);
                let start = vr;
                while vr < lvaq_l.len() && lvaq_l[vr].0 < other {
                    debug_assert!(self.rob.holds(lvaq_l[vr].1, lvaq_l[vr].0));
                    vr += 1;
                }
                self.res.lvaq.port_stall_cycles += (vr - start) as u64;
                lvaq_l.copy_within(start..vr, vw);
                vw += vr - start;
                vuid = head(lvaq_l, vr);
                continue;
            }
            let (list, r, w, h) = if next == fuid {
                (&mut *fu_l, &mut fr, &mut fw, &mut fuid)
            } else if next == luid {
                (&mut *lsq_l, &mut lr, &mut lw, &mut luid)
            } else {
                (&mut *lvaq_l, &mut vr, &mut vw, &mut vuid)
            };
            let (uid, slot) = list[*r];
            *r += 1;
            *h = head(list, *r);
            if !self.rob.holds(slot, uid) {
                continue; // committed: drop
            }
            self.try_issue_slot(slot, &mut budget, Some(&mut latches));
            let e = self.rob.get(slot);
            if !e.issued && !e.completed {
                list[*w] = (uid, slot);
                *w += 1;
            }
        }
        // Keep the unexamined tails untouched (the reference walk breaks
        // on budget exhaustion without charging them either).
        fu_l.copy_within(fr.., fw);
        let flen = fw + fu_l.len() - fr;
        fu_l.truncate(flen);
        lsq_l.copy_within(lr.., lw);
        let llen = lw + lsq_l.len() - lr;
        lsq_l.truncate(llen);
        lvaq_l.copy_within(vr.., vw);
        let vlen = vw + lvaq_l.len() - vr;
        lvaq_l.truncate(vlen);
        self.ready = lists;
    }

    /// Tries to issue the entry in `slot` onto a functional unit (memory
    /// instructions: the AGU plus their cache-port slot), decrementing
    /// `budget` on success. Not-ready entries return without charge.
    ///
    /// `latches` (fast kernel only) records per-cycle port-meter and
    /// FU-pool exhaustion: when this entry's meter is already
    /// known-exhausted and combining cannot rescue it, the stall is
    /// charged without touching the meter, and a known-exhausted FU
    /// pool skips its scan without any charge; a refusal sets the
    /// corresponding latch. The reference kernel passes `None` and
    /// re-asks every resource every time, as the seed implementation
    /// did.
    fn try_issue_slot(
        &mut self,
        slot: usize,
        budget: &mut u32,
        mut latches: Option<&mut IssueLatches>,
    ) {
        let (mem, fu, uid) = {
            let e = self.rob.get(slot);
            if e.issued || e.completed || e.waiting > 0 {
                return;
            }
            (
                e.mem
                    .as_ref()
                    .map(|m| (m.in_lvaq, m.is_store, m.stack_slot, m.q_seq)),
                e.fu,
                e.uid,
            )
        };
        if let Some((in_lvaq, is_store, stack_slot, q_seq)) = mem {
            // A memory instruction enters the memory pipeline here:
            // address generation plus the cache-port slot it will use
            // (as in sim-outorder, where loads and stores issue
            // through the memory ports). Access combining merges
            // consecutive same-line, same-kind LVAQ entries into one
            // port slot — line identity is established *before*
            // addresses exist via the ($sp version, offset) pair, the
            // same CAM the fast-forwarding hardware uses.
            let degree = if in_lvaq {
                self.cfg.decoupling.combining_degree
            } else {
                1
            };
            // The line key only matters to combining (`degree > 1`, LVAQ
            // side); the shift is exact because line sizes are powers of
            // two and `>> k` floors like `div_euclid(2^k)`.
            let line_key = if degree > 1 {
                stack_slot.map(|(v, off)| (v, off >> self.lvc_line_shift))
            } else {
                None
            };
            let combinable = degree > 1
                && line_key.is_some()
                && matches!(self.issue_combine,
                    Some((c, lv, st, lk, sq)) if c == self.cycle
                        && lv == in_lvaq
                        && st == is_store
                        && Some(lk) == line_key
                        && q_seq.saturating_sub(sq) < degree as u64);
            if !combinable {
                if let Some(l) = latches.as_deref_mut() {
                    if l.port[in_lvaq as usize] {
                        let qstats = if in_lvaq {
                            &mut self.res.lvaq
                        } else {
                            &mut self.res.lsq
                        };
                        qstats.port_stall_cycles += 1;
                        return;
                    }
                }
                let meter = if in_lvaq {
                    match self.lvc_ports.as_mut() {
                        Some(m) => m,
                        None => unreachable!("LVAQ without LVC"),
                    }
                } else {
                    &mut self.l1_ports
                };
                if !meter.try_claim(self.cycle) {
                    if let Some(l) = latches {
                        l.port[in_lvaq as usize] = true;
                    }
                    let qstats = if in_lvaq {
                        &mut self.res.lvaq
                    } else {
                        &mut self.res.lsq
                    };
                    qstats.port_stall_cycles += 1;
                    return;
                }
                // Fault hook: a granted port slot can be revoked after
                // arbitration. The port cycle is consumed; the entry
                // retries next cycle.
                let mut dropped = false;
                if let Some(f) = self.faults.as_mut() {
                    if f.plan.drop_port_grant > 0.0 && f.rng.gen_bool(f.plan.drop_port_grant) {
                        f.stats.grants_dropped += 1;
                        dropped = true;
                    }
                }
                if dropped {
                    let qstats = if in_lvaq {
                        &mut self.res.lvaq
                    } else {
                        &mut self.res.lsq
                    };
                    qstats.port_stall_cycles += 1;
                    return;
                }
            }
            if let Some(l) = latches.as_deref_mut() {
                if l.pool[FuCounts::pool_of(FuClass::IntAlu)] {
                    // AGU pool known-exhausted, but only discovered
                    // after the port claim above — the port cycle is
                    // consumed and the entry retries, exactly as the
                    // reference's failed pool scan leaves it.
                    return;
                }
            }
            if self.fus.try_issue(FuClass::IntAlu, self.cycle).is_some() {
                self.rob.get_mut(slot).issued = true;
                let now = self.cycle;
                self.trace(slot, |tr| tr.issued_at = Some(now));
                // Fault hook: a granted port's address-ready event can be
                // held back by `delay_cycles`.
                let mut extra = 0u64;
                if let Some(f) = self.faults.as_mut() {
                    if f.plan.delay_port_grant > 0.0 && f.rng.gen_bool(f.plan.delay_port_grant) {
                        f.stats.grants_delayed += 1;
                        extra = f.plan.delay_cycles as u64;
                    }
                }
                self.schedule(self.cycle + 1 + extra, uid, slot, EvKind::AddrReady);
                *budget -= 1;
                if combinable {
                    self.res.lvaq.combined += 1;
                } else if degree > 1 {
                    if let Some(lk) = line_key {
                        self.issue_combine = Some((self.cycle, in_lvaq, is_store, lk, q_seq));
                    } else {
                        self.issue_combine = None;
                    }
                }
            } else if let Some(l) = latches {
                l.pool[FuCounts::pool_of(FuClass::IntAlu)] = true;
            }
        } else {
            let pool = FuCounts::pool_of(fu);
            if let Some(l) = latches.as_deref_mut() {
                if l.pool[pool] {
                    return;
                }
            }
            match self.fus.try_issue(fu, self.cycle) {
                Some(done) => {
                    self.rob.get_mut(slot).issued = true;
                    let now = self.cycle;
                    self.trace(slot, |tr| tr.issued_at = Some(now));
                    self.schedule(done, uid, slot, EvKind::Complete);
                    *budget -= 1;
                }
                None => {
                    if let Some(l) = latches {
                        l.pool[pool] = true;
                    }
                }
            }
        }
    }

    // ----- dispatch -------------------------------------------------------

    /// Ensures the ring holds an undelivered instruction, refilling one
    /// basic block at a time through the VM's translation cache (fast
    /// kernel only). Both kernels deliver bit-identical streams, and a
    /// fault surfaces at exactly the same pull — a refill fault is
    /// stashed in `ring_err` and returned only once the instructions
    /// ahead of it have been delivered. `Ok(false)` = stream exhausted.
    fn fill_ring(&mut self) -> Result<bool, VmError> {
        loop {
            if self.ring_head < self.inst_ring.len() {
                return Ok(true);
            }
            if let Some(e) = self.ring_err.take() {
                return Err(e);
            }
            if self.vm.is_halted() {
                return Ok(false);
            }
            self.inst_ring.clear();
            self.ring_head = 0;
            self.ring_err = self.vm.step_block(&mut self.inst_ring);
        }
    }

    fn dispatch(&mut self, max_instructions: u64) -> Result<(), SimError> {
        for _ in 0..self.cfg.dispatch_width {
            if self.dispatched >= max_instructions {
                break;
            }
            // Fetch. The reference kernel buffers the interpreter's pull
            // in `pending` across stalled attempts (a stepped instruction
            // cannot be un-stepped); the fast kernel leaves the ring head
            // in place until the stall checks pass, so a stalled cycle
            // re-examines it where it lies instead of bouncing it through
            // a side buffer.
            if self.cfg.reference_kernel {
                if self.pending.is_none() {
                    match self.vm.step() {
                        Ok(Some(d)) => self.pending = Some(d),
                        Ok(None) => break,
                        // The workload raised an architectural fault:
                        // surface it as a structured trap with timing
                        // context.
                        Err(e) => return Err(self.trap(e)),
                    }
                }
            } else {
                match self.fill_ring() {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(e) => return Err(self.trap(e)),
                }
            }
            if self.rob.is_full() {
                self.res.stall_rob_full += 1;
                break;
            }
            // Steering and queue-space check for memory instructions
            // (examined in place: a stalled attempt repeats the exam next
            // cycle, re-training the region predictor exactly like the
            // seed implementation did).
            let (is_mem, steer) = {
                let d: &DynInst = match &self.pending {
                    Some(p) => p,
                    None => &self.inst_ring[self.ring_head],
                };
                let steer = if d.mem.is_some() && self.hier.has_lvc() {
                    Some(self.classifier.steer(d))
                } else {
                    None
                };
                (d.mem.is_some(), steer)
            };
            let in_lvaq = steer.map(|s| s.actual_local).unwrap_or(false);
            let replicated = steer.is_some_and(|s| s.replicated);
            if is_mem {
                let need_lvaq = in_lvaq || replicated;
                let need_lsq = !in_lvaq || replicated;
                if need_lvaq && self.lvaq.len() >= self.cfg.decoupling.lvaq_size {
                    self.res.stall_lvaq_full += 1;
                    break;
                }
                if need_lsq && self.lsq.len() >= self.cfg.lsq_size {
                    self.res.stall_lsq_full += 1;
                    break;
                }
            }
            let mispredicted = steer.is_some_and(|s| s.mispredicted());
            if mispredicted {
                self.res.misclassifications += 1;
            }

            // All stall checks passed: take the instruction off the
            // stream.
            let d: DynInst = match self.pending.take() {
                Some(p) => p,
                None => {
                    let v = self.inst_ring[self.ring_head];
                    self.ring_head += 1;
                    v
                }
            };

            // Static decode: memoized per pc for the fast kernel, redone
            // per dynamic instance by the reference kernel (seed
            // behaviour).
            let sd = if self.cfg.reference_kernel {
                SDec::of(&d.instr)
            } else {
                self.sdec[d.pc as usize]
            };

            let uid = self.rob.next_uid();
            // The entry is assembled in full — memory state, rename
            // wiring, queue residency — before the one move into its ROB
            // slot, so nothing below re-finds it through the ROB.
            let slot = self.rob.next_slot();
            let is_store = d.mem.is_some_and(|m| m.is_store);
            let mut mem_state = d.mem.map(|m| {
                let mut st = self.mem_pool.pop().unwrap_or_default();
                *st = MemState {
                    in_lvaq,
                    q_seq: if in_lvaq { self.lvaq_seq } else { self.lsq_seq },
                    is_store: m.is_store,
                    addr: m.addr,
                    bytes: m.bytes,
                    stack_slot: m.stack_slot,
                    addr_ready_at: None,
                    // Stores start with their data operand ready unless
                    // the rename scan below finds an in-flight producer.
                    data_ready_at: if m.is_store { Some(self.cycle) } else { None },
                    launched: false,
                    penalty: if mispredicted {
                        self.cfg.decoupling.misclass_penalty as u64
                    } else {
                        0
                    },
                    replicated,
                    // Queue ordinals and scan cursors are assigned at the
                    // queue push below.
                    ord: 0,
                    ghost_ord: 0,
                    scan_ord: 0,
                    ff_ord: 0,
                    poisoned: false,
                    waiters: Vec::new(),
                };
                st
            });

            // Rename: wire source operands to in-flight producers.
            let store_data_src = if is_store { sd.uses[0] } else { NO_REG };
            let mut waiting: u8 = 0;
            for (i, &ri) in sd.uses.iter().enumerate() {
                if ri == NO_REG {
                    continue;
                }
                if is_store && i == 0 {
                    continue; // the data operand is tracked separately
                }
                if let Some((pslot, puid)) = self.rename[ri as usize] {
                    if let Some(pe) = self.rob.alive_mut(pslot, puid) {
                        if !pe.completed {
                            pe.dependents.push(Dependent {
                                slot,
                                kind: DepKind::Operand,
                            });
                            waiting += 1;
                        }
                    }
                }
            }
            if store_data_src != NO_REG {
                if let Some((pslot, puid)) = self.rename[store_data_src as usize] {
                    if let Some(pe) = self.rob.alive_mut(pslot, puid) {
                        if !pe.completed {
                            pe.dependents.push(Dependent {
                                slot,
                                kind: DepKind::StoreData,
                            });
                            if let Some(m) = mem_state.as_deref_mut() {
                                m.data_ready_at = None;
                            }
                        }
                    }
                }
            }
            if sd.def != NO_REG {
                self.rename[sd.def as usize] = Some((slot, uid));
            }
            if !self.cfg.reference_kernel && waiting == 0 {
                // No pending producers: an issue candidate immediately.
                let class = ready_class(mem_state.as_deref());
                self.newly_ready[class].push((uid, slot));
            }

            if let Some(tr) = &mut self.tracer {
                if tr.wants(uid) {
                    tr.dispatch(
                        uid,
                        InstrTrace {
                            seq: d.seq,
                            pc: d.pc,
                            instr: d.instr,
                            dispatched_at: self.cycle,
                            issued_at: None,
                            addr_ready_at: None,
                            completed_at: None,
                            committed_at: 0,
                            in_lvaq: mem_state.as_ref().map(|m| m.in_lvaq),
                            mem_path: MemPath::None,
                        },
                    );
                }
            }

            // Enqueue in the memory queue and count stream statistics.
            if let Some(m) = mem_state.as_deref_mut() {
                if m.in_lvaq {
                    self.lvaq_seq += 1;
                } else {
                    self.lsq_seq += 1;
                }
                let q = if m.in_lvaq {
                    &mut self.lvaq
                } else {
                    &mut self.lsq
                };
                let ord = q.push_back(slot, m.is_store);
                let ghost_ord = if m.replicated {
                    // Footnote 3: the ghost copy occupies the other queue
                    // until the address resolves.
                    let other = if m.in_lvaq {
                        &mut self.lsq
                    } else {
                        &mut self.lvaq
                    };
                    other.push_back(slot, m.is_store)
                } else {
                    0
                };
                m.ord = ord;
                m.ghost_ord = ghost_ord;
                // Empty cleared segment: the scans start just below `ord`.
                m.scan_ord = ord;
                m.ff_ord = ord;
                if !m.is_store
                    && !self.cfg.reference_kernel
                    && m.in_lvaq
                    && self.cfg.decoupling.fast_forwarding
                    && m.stack_slot.is_some()
                {
                    // Fast forwarding needs no address (§2.2.2): this
                    // load is examinable from the cycle after dispatch,
                    // before any event fires for it. Loads on the
                    // address path instead get their first wake from
                    // their own AddrReady event.
                    self.lvaq_wake.push((ord, slot, uid));
                }
                let qs = if m.in_lvaq {
                    &mut self.res.lvaq
                } else {
                    &mut self.res.lsq
                };
                if m.is_store {
                    qs.stores += 1;
                } else {
                    qs.loads += 1;
                }
            }

            let pushed = self.rob.push(RobEntry {
                uid,
                fu: sd.fu,
                waiting,
                dependents: if self.cfg.reference_kernel {
                    Vec::new()
                } else {
                    self.dep_pool.pop().unwrap_or_default()
                },
                issued: false,
                completed: false,
                mem: mem_state,
                d,
            });
            debug_assert_eq!(pushed, slot, "dispatch raced the ROB tail");
            self.dispatched += 1;
        }
        Ok(())
    }

    fn sample_occupancy(&mut self) {
        if self.cfg.reference_kernel {
            // Seed implementation: a histogram map insert per cycle.
            self.res.lsq.occupancy.record(self.lsq.len() as u64);
            if self.hier.has_lvc() {
                self.res.lvaq.occupancy.record(self.lvaq.len() as u64);
            }
            return;
        }
        self.occ_lsq[self.lsq.len()] += 1;
        if self.hier.has_lvc() {
            self.occ_lvaq[self.lvaq.len()] += 1;
        }
    }

    /// Moves the flat occupancy counters into the result histograms,
    /// draining them: a mid-run snapshot and the end of the run can both
    /// flush without double-counting (the remainder re-accumulates after
    /// a drain, so end-of-run totals are unchanged by intermediate
    /// flushes).
    fn flush_occupancy(&mut self) {
        for (v, n) in self.occ_lsq.iter_mut().enumerate() {
            self.res.lsq.occupancy.record_n(v as u64, *n);
            *n = 0;
        }
        for (v, n) in self.occ_lvaq.iter_mut().enumerate() {
            self.res.lvaq.occupancy.record_n(v as u64, *n);
            *n = 0;
        }
    }
}

/// Outcome of the fast-forwarding CAM scan for one LVAQ load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FfScan {
    /// An older store prevents a match (unknown `$sp` identity, a frame
    /// change, or a partial overlap).
    Blocked,
    /// Exact-slot match: forward from this store's ROB slot.
    Match(usize),
    /// No older store is a candidate; the load proceeds on the normal
    /// address path.
    NoMatch,
}

/// Outcome of the in-queue disambiguation scan for one load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DisambScan {
    /// An older store is unresolved or overlapping without forwardable
    /// data: the load cannot launch this cycle.
    Blocked,
    /// A fully-containing older store with its data ready: forward from
    /// this ROB slot.
    Forward(usize),
    /// No conflict — access the cache.
    Cache,
}

/// The reference-kernel fast-forwarding scan: walks a queue snapshot's
/// older entries youngest-first, skipping non-stores — the original
/// rescan-per-cycle implementation, kept as the oracle and throughput
/// baseline. Must decide exactly like [`ff_scan`].
fn ff_scan_full(rob: &Rob, older: &[usize], lver: u64, loff: i32, lbytes: u32) -> FfScan {
    for &sslot in older.iter().rev() {
        let Some(sm) = &rob.get(sslot).mem else {
            continue;
        };
        if !sm.is_store {
            continue;
        }
        match sm.stack_slot {
            None => return FfScan::Blocked,
            Some((sver, soff)) => {
                if sver != lver {
                    return FfScan::Blocked;
                } else if soff == loff && sm.bytes == lbytes {
                    return FfScan::Match(sslot);
                } else if ranges_overlap(soff, sm.bytes, loff, lbytes) {
                    return FfScan::Blocked;
                }
            }
        }
    }
    FfScan::NoMatch
}

/// The reference-kernel disambiguation scan, mirroring [`disamb_scan`]
/// the way [`ff_scan_full`] mirrors [`ff_scan`].
fn disamb_scan_full(rob: &Rob, older: &[usize], cycle: u64, addr: u32, bytes: u32) -> DisambScan {
    for &sslot in older.iter().rev() {
        let Some(sm) = &rob.get(sslot).mem else {
            continue;
        };
        if !sm.is_store {
            continue;
        }
        if !sm.addr_known(cycle) {
            return DisambScan::Blocked;
        }
        if ranges_overlap_u32(sm.addr, sm.bytes, addr, bytes) {
            return if contains(sm.addr, sm.bytes, addr, bytes) {
                if sm.data_known(cycle) {
                    DisambScan::Forward(sslot)
                } else {
                    DisambScan::Blocked
                }
            } else if sm.data_known(cycle) {
                DisambScan::Cache
            } else {
                DisambScan::Blocked
            };
        }
    }
    DisambScan::Cache
}

/// Scans the stores of `q` older than ordinal `start`, youngest first, for
/// a fast-forwarding candidate matching the load's `($sp` version,
/// offset, bytes)`. Returns the outcome plus the new scan cursor: every
/// store with an ordinal at or above the cursor (and below the load's own
/// ordinal) is proven same-version and slot-disjoint — permanent facts,
/// since `stack_slot` identities are static — so later scans resume from
/// the cursor. A terminal store leaves the cursor just above itself and is
/// re-examined (in O(1)) until it resolves or leaves the queue.
fn ff_scan(
    rob: &Rob,
    q: &MemQueue,
    start: u64,
    lver: u64,
    loff: i32,
    lbytes: u32,
) -> (FfScan, u64) {
    for (so, sslot) in q.stores_older_than(start) {
        let sm = rob.get(sslot).mem();
        match sm.stack_slot {
            None => return (FfScan::Blocked, so + 1), // cannot prove independence
            Some((sver, soff)) => {
                if sver != lver {
                    return (FfScan::Blocked, so + 1); // incomparable across $sp change
                } else if soff == loff && sm.bytes == lbytes {
                    return (FfScan::Match(sslot), so + 1);
                } else if ranges_overlap(soff, sm.bytes, loff, lbytes) {
                    return (FfScan::Blocked, so + 1); // partial overlap
                }
                // Provably disjoint in the same frame version: skip, and
                // never rescan.
            }
        }
    }
    (FfScan::NoMatch, 0)
}

/// Scans the stores of `q` older than ordinal `start`, youngest first, for
/// an address conflict with a load at `addr`/`bytes`. Same cursor contract
/// as [`ff_scan`]: skipped stores were address-known and disjoint, which
/// stays true (addresses are static, readiness is monotone), so the
/// returned cursor is where the next cycle's scan resumes.
fn disamb_scan(
    rob: &Rob,
    q: &MemQueue,
    start: u64,
    cycle: u64,
    addr: u32,
    bytes: u32,
) -> (DisambScan, u64) {
    for (so, sslot) in q.stores_older_than(start) {
        let sm = rob.get(sslot).mem();
        if !sm.addr_known(cycle) {
            return (DisambScan::Blocked, so + 1);
        }
        if ranges_overlap_u32(sm.addr, sm.bytes, addr, bytes) {
            let out = if contains(sm.addr, sm.bytes, addr, bytes) {
                if sm.data_known(cycle) {
                    DisambScan::Forward(sslot)
                } else {
                    DisambScan::Blocked
                }
            } else if sm.data_known(cycle) {
                // Partial overlap with the data available: conservatively
                // go to the cache (after the store drains).
                DisambScan::Cache
            } else {
                DisambScan::Blocked
            };
            return (out, so + 1);
        }
        // Address known and disjoint: permanently skippable.
    }
    (DisambScan::Cache, 0)
}

/// Merges two uid-sorted issue-candidate lists, preserving order.
fn merge_by_uid(a: Vec<(u64, usize)>, b: Vec<(u64, usize)>) -> Vec<(u64, usize)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn ranges_overlap(a_off: i32, a_bytes: u32, b_off: i32, b_bytes: u32) -> bool {
    let (a0, a1) = (a_off as i64, a_off as i64 + a_bytes as i64);
    let (b0, b1) = (b_off as i64, b_off as i64 + b_bytes as i64);
    a0 < b1 && b0 < a1
}

fn ranges_overlap_u32(a: u32, a_bytes: u32, b: u32, b_bytes: u32) -> bool {
    let (a0, a1) = (a as u64, a as u64 + a_bytes as u64);
    let (b0, b1) = (b as u64, b as u64 + b_bytes as u64);
    a0 < b1 && b0 < a1
}

fn contains(outer: u32, outer_bytes: u32, inner: u32, inner_bytes: u32) -> bool {
    outer as u64 <= inner as u64
        && inner as u64 + inner_bytes as u64 <= outer as u64 + outer_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::SteerPolicy;
    use dda_isa::{AluOp, Gpr, MemWidth, StreamHint};
    use dda_program::{FunctionBuilder, ProgramBuilder};

    fn build(mut f: FunctionBuilder) -> Program {
        f.halt();
        let mut b = ProgramBuilder::new();
        b.add_function(f);
        b.build().unwrap()
    }

    fn run(cfg: MachineConfig, p: &Program) -> SimResult {
        Simulator::new(cfg).unwrap().run(p, 10_000_000).unwrap()
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..4000 {
            f.load_imm(Gpr::T0, i);
        }
        let r = run(MachineConfig::iscapaper_base(), &build(f));
        assert!(r.halted);
        assert_eq!(r.committed, 4001);
        assert!(r.ipc() > 10.0, "ipc was {}", r.ipc());
    }

    #[test]
    fn dependent_chain_is_serialised() {
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 0);
        for _ in 0..1000 {
            f.addi(Gpr::T0, Gpr::T0, 1);
        }
        let r = run(MachineConfig::iscapaper_base(), &build(f));
        // One add per cycle at best: cycles >= 1000.
        assert!(r.cycles >= 1000, "cycles was {}", r.cycles);
        assert!(r.ipc() < 1.5);
    }

    #[test]
    fn committed_matches_dynamic_stream_across_configs() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -64);
        for i in 0..50 {
            f.store_local(Gpr::T0, (i % 8) * 4);
            f.load_local(Gpr::T1, (i % 8) * 4);
            f.load(
                Gpr::T2,
                Gpr::GP,
                (i % 16) * 4,
                MemWidth::Word,
                StreamHint::NonLocal,
            );
        }
        f.addi(Gpr::SP, Gpr::SP, 64);
        let p = build(f);
        let base = run(MachineConfig::iscapaper_base(), &p);
        let dec = run(MachineConfig::n_plus_m(2, 2).with_optimizations(), &p);
        assert_eq!(base.committed, dec.committed);
        assert!(base.halted && dec.halted);
        // Decoupled machine actually used the LVAQ.
        assert_eq!(dec.lvaq.loads + dec.lvaq.stores, 100);
        assert_eq!(dec.lsq.loads, 50);
        assert_eq!(base.lvaq.loads + base.lvaq.stores, 0);
    }

    #[test]
    fn load_hit_latency_visible_in_dependent_chain() {
        // Pointer-chase style: each load depends on the previous value.
        let mut f = FunctionBuilder::new("main");
        f.load_imm(Gpr::T0, 0);
        for _ in 0..200 {
            f.load(Gpr::T1, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
            f.alu(AluOp::Add, Gpr::T0, Gpr::T0, Gpr::T1);
        }
        let r = run(MachineConfig::iscapaper_base(), &build(f));
        // All 200 loads touch one line: one primary miss, the rest hit or
        // merge into the outstanding fill.
        assert_eq!(r.l1.misses, 1);
        assert_eq!(r.l1.hits + r.l1.miss_merges, 199);
        assert!(r.l1.hits > 50, "hits = {}", r.l1.hits);
    }

    #[test]
    fn store_to_load_forwarding_in_lsq() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..100 {
            f.load_imm(Gpr::T0, i);
            f.store(Gpr::T0, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
            f.load(Gpr::T1, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
        }
        let r = run(MachineConfig::iscapaper_base(), &build(f));
        assert!(r.lsq.forwards > 50, "forwards = {}", r.lsq.forwards);
    }

    #[test]
    fn fast_forwarding_counts_in_lvaq() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        for i in 0..100 {
            f.load_imm(Gpr::T0, i);
            f.store_local(Gpr::T0, 8);
            f.load_local(Gpr::T1, 8);
        }
        f.addi(Gpr::SP, Gpr::SP, 32);
        let p = build(f);
        let no_ff = run(MachineConfig::n_plus_m(2, 2), &p);
        let ff = run(MachineConfig::n_plus_m(2, 2).with_fast_forwarding(true), &p);
        assert_eq!(no_ff.lvaq.fast_forwards, 0);
        assert!(
            ff.lvaq.fast_forwards > 50,
            "fast forwards = {}",
            ff.lvaq.fast_forwards
        );
        assert!(ff.cycles <= no_ff.cycles);
    }

    #[test]
    fn fast_forwarding_blocked_by_sp_change() {
        // Store, then change $sp, then load the same offset: versions
        // differ, so fast forwarding must not match.
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        f.load_imm(Gpr::T0, 7);
        f.store_local(Gpr::T0, 8);
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.load_local(Gpr::T1, 24); // same address, different version
        f.addi(Gpr::SP, Gpr::SP, 48);
        let p = build(f);
        let r = run(MachineConfig::n_plus_m(2, 2).with_fast_forwarding(true), &p);
        assert_eq!(r.lvaq.fast_forwards, 0);
    }

    #[test]
    fn combining_groups_same_line_loads() {
        // Bursty sequential local loads (register-restore style).
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -64);
        for i in 0..8 {
            f.store_local(Gpr::T0, i * 4);
        }
        // Separate dependence chains so loads are simultaneously ready.
        for _ in 0..50 {
            for i in 0..8 {
                f.load_local(Gpr::new(8 + i as u8), i * 4);
            }
        }
        f.addi(Gpr::SP, Gpr::SP, 64);
        let p = build(f);
        let off = run(MachineConfig::n_plus_m(3, 1), &p);
        let on = run(MachineConfig::n_plus_m(3, 1).with_combining(4), &p);
        assert_eq!(off.lvaq.combined, 0);
        assert!(on.lvaq.combined > 100, "combined = {}", on.lvaq.combined);
        assert!(on.cycles < off.cycles, "{} !< {}", on.cycles, off.cycles);
    }

    #[test]
    fn more_l1_ports_help_bandwidth_bound_code() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..1500 {
            f.load(
                Gpr::new((8 + i % 8) as u8),
                Gpr::GP,
                (i % 64) * 4,
                MemWidth::Word,
                StreamHint::NonLocal,
            );
        }
        let p = build(f);
        let one = run(MachineConfig::n_plus_m(1, 0), &p);
        let four = run(MachineConfig::n_plus_m(4, 0), &p);
        assert!(
            four.cycles * 2 < one.cycles,
            "4 ports {} vs 1 port {}",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn misclassification_is_detected_and_penalised() {
        // A stack access through a copied register under SpBase steering.
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        f.mov(Gpr::T5, Gpr::SP);
        f.store(Gpr::T0, Gpr::T5, 0, MemWidth::Word, StreamHint::Unknown);
        f.addi(Gpr::SP, Gpr::SP, 32);
        let p = build(f);
        let mut cfg = MachineConfig::n_plus_m(2, 2);
        cfg.decoupling.steer = SteerPolicy::SpBase;
        let r = run(cfg, &p);
        assert_eq!(r.misclassifications, 1);
        // Oracle steering never mispredicts.
        let mut cfg = MachineConfig::n_plus_m(2, 2);
        cfg.decoupling.steer = SteerPolicy::Oracle;
        let r = run(cfg, &p);
        assert_eq!(r.misclassifications, 0);
    }

    #[test]
    fn small_lsq_causes_dispatch_stalls() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..200 {
            f.load(
                Gpr::T0,
                Gpr::GP,
                (i % 512) * 32,
                MemWidth::Word,
                StreamHint::NonLocal,
            );
        }
        let p = build(f);
        let mut cfg = MachineConfig::iscapaper_base();
        cfg.lsq_size = 4;
        let r = run(cfg, &p);
        assert!(r.stall_lsq_full > 0);
    }

    #[test]
    fn instruction_budget_cuts_run_short() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..1000 {
            f.load_imm(Gpr::T0, i);
        }
        let p = build(f);
        let r = Simulator::new(MachineConfig::iscapaper_base())
            .unwrap()
            .run(&p, 100)
            .unwrap();
        assert_eq!(r.committed, 100);
        assert!(!r.halted);
    }

    #[test]
    fn recursion_runs_correctly_under_decoupling() {
        // Recursive sum with frame saves — heavy LVAQ traffic.
        let mut main = FunctionBuilder::new("main");
        main.load_imm(Gpr::A0, 40);
        main.call("sum");
        main.halt();
        let mut sum = FunctionBuilder::with_frame("sum", 8);
        let rec = sum.new_label();
        sum.bnez(Gpr::A0, rec);
        sum.load_imm(Gpr::V0, 0);
        sum.ret();
        sum.bind(rec);
        sum.addi(Gpr::SP, Gpr::SP, -8);
        sum.store_local(Gpr::RA, 0);
        sum.store_local(Gpr::A0, 4);
        sum.addi(Gpr::A0, Gpr::A0, -1);
        sum.call("sum");
        sum.load_local(Gpr::RA, 0);
        sum.load_local(Gpr::A0, 4);
        sum.alu(AluOp::Add, Gpr::V0, Gpr::V0, Gpr::A0);
        sum.addi(Gpr::SP, Gpr::SP, 8);
        sum.ret();
        let mut b = ProgramBuilder::new();
        b.add_function(main);
        b.add_function(sum);
        let p = b.build().unwrap();
        let base = run(MachineConfig::iscapaper_base(), &p);
        let dec = run(MachineConfig::n_plus_m(2, 2).with_optimizations(), &p);
        assert_eq!(base.committed, dec.committed);
        assert!(dec.lvaq.loads > 0 && dec.lvaq.stores > 0);
        assert!(dec.lvc.unwrap().accesses() > 0);
    }

    #[test]
    fn commit_width_bounds_retirement_rate() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..2000 {
            f.load_imm(Gpr::T0, i);
        }
        let p = build(f);
        for width in [1u32, 2, 4] {
            let mut cfg = MachineConfig::iscapaper_base();
            cfg.commit_width = width;
            let r = run(cfg, &p);
            // 2001 instructions at `width` per cycle is a hard floor.
            assert!(
                r.cycles >= 2001 / width as u64,
                "width {width}: {} cycles",
                r.cycles
            );
            assert!(
                r.ipc() <= width as f64 + 1e-9,
                "width {width}: IPC {}",
                r.ipc()
            );
        }
    }

    #[test]
    fn issue_width_bounds_throughput() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..2000 {
            f.load_imm(Gpr::T0, i);
        }
        let p = build(f);
        let mut cfg = MachineConfig::iscapaper_base();
        cfg.issue_width = 2;
        let r = run(cfg, &p);
        assert!(r.ipc() <= 2.0 + 1e-9, "IPC {}", r.ipc());
    }

    #[test]
    fn combining_window_excludes_non_adjacent_entries() {
        // Two same-line local loads separated by more than the window
        // must not combine under 2-way combining.
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        for _ in 0..50 {
            f.load_local(Gpr::T0, 0);
            f.load_local(Gpr::T1, 4); // same line, adjacent: combinable
            f.store(Gpr::T2, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
            f.load_local(Gpr::T3, 8); // same line but 2 entries away in LVAQ? no:
                                      // LSQ entries do not occupy LVAQ slots, so
                                      // this is still adjacent — include a local
                                      // store to break adjacency instead.
            f.store_local(Gpr::T4, 28);
            f.load_local(Gpr::T5, 12);
        }
        f.addi(Gpr::SP, Gpr::SP, 32);
        let p = build(f);
        let two = run(MachineConfig::n_plus_m(3, 1).with_combining(2), &p);
        let four = run(MachineConfig::n_plus_m(3, 1).with_combining(4), &p);
        // A wider window can only combine at least as much.
        assert!(four.lvaq.combined >= two.lvaq.combined);
        assert!(two.lvaq.combined > 0);
    }

    #[test]
    fn misclassification_penalty_slows_resolution() {
        // An ambiguous stack access under SpBase steering pays the
        // recovery penalty on its address path.
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        for _ in 0..100 {
            f.mov(Gpr::T5, Gpr::SP);
            f.store(Gpr::T0, Gpr::T5, 0, MemWidth::Word, StreamHint::Unknown);
            // The dependent reload keeps the store's resolution on the
            // critical path.
            f.load(Gpr::T1, Gpr::T5, 0, MemWidth::Word, StreamHint::Unknown);
        }
        f.addi(Gpr::SP, Gpr::SP, 32);
        let p = build(f);
        let mk = |penalty: u32| {
            let mut c = MachineConfig::n_plus_m(2, 2);
            c.decoupling.steer = SteerPolicy::SpBase;
            c.decoupling.misclass_penalty = penalty;
            c
        };
        let cheap = run(mk(0), &p);
        let costly = run(mk(32), &p);
        assert_eq!(cheap.misclassifications, costly.misclassifications);
        assert!(cheap.misclassifications >= 100);
        assert!(
            costly.cycles > cheap.cycles,
            "penalty 32: {} vs penalty 0: {}",
            costly.cycles,
            cheap.cycles
        );
    }

    #[test]
    fn queue_occupancy_is_sampled() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        for _ in 0..50 {
            f.store_local(Gpr::T0, 0);
            f.load(Gpr::T1, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
        }
        f.addi(Gpr::SP, Gpr::SP, 16);
        let p = build(f);
        let r = run(MachineConfig::n_plus_m(2, 2), &p);
        assert_eq!(r.lsq.occupancy.samples(), r.cycles);
        assert_eq!(r.lvaq.occupancy.samples(), r.cycles);
        assert!(r.lvaq.occupancy.max().unwrap_or(0) >= 1);
    }

    #[test]
    fn replication_commits_identically_and_frees_ghosts() {
        // Figure 4-style ambiguous access (frame slot via a pointer) plus
        // surrounding local/global traffic, run under footnote-3
        // replication.
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        for i in 0..40 {
            f.load_imm(Gpr::T0, i);
            f.addi(Gpr::AT, Gpr::SP, 8);
            f.store(Gpr::T0, Gpr::AT, 0, MemWidth::Word, StreamHint::Unknown);
            f.load(Gpr::T1, Gpr::AT, 0, MemWidth::Word, StreamHint::Unknown);
            f.store_local(Gpr::T1, 12);
            f.load(Gpr::T2, Gpr::GP, 4, MemWidth::Word, StreamHint::NonLocal);
        }
        f.addi(Gpr::SP, Gpr::SP, 32);
        let p = build(f);

        let mut oracle_cfg = MachineConfig::n_plus_m(2, 2).with_optimizations();
        oracle_cfg.decoupling.steer = SteerPolicy::Oracle;
        let mut repl_cfg = MachineConfig::n_plus_m(2, 2).with_optimizations();
        repl_cfg.decoupling.steer = SteerPolicy::Replicate;

        let oracle = run(oracle_cfg, &p);
        let repl = run(repl_cfg, &p);
        assert_eq!(oracle.committed, repl.committed);
        assert!(oracle.halted && repl.halted);
        // Replication never counts a misprediction.
        assert_eq!(repl.misclassifications, 0);
        // The ambiguous accesses still end up accounted in their
        // ground-truth queue.
        assert_eq!(repl.lvaq.loads, oracle.lvaq.loads);
        assert_eq!(repl.lvaq.stores, oracle.lvaq.stores);
        // Ghost occupancy makes replication at best as fast as oracle.
        assert!(repl.cycles >= oracle.cycles);
    }

    #[test]
    fn replication_needs_space_in_both_queues() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -64);
        for i in 0..64 {
            f.addi(Gpr::AT, Gpr::SP, (i % 8) * 4);
            f.store(Gpr::T0, Gpr::AT, 0, MemWidth::Word, StreamHint::Unknown);
        }
        f.addi(Gpr::SP, Gpr::SP, 64);
        let p = build(f);
        let mut cfg = MachineConfig::n_plus_m(2, 2);
        cfg.decoupling.steer = SteerPolicy::Replicate;
        cfg.lsq_size = 2; // ghosts of the (actually local) stores need LSQ room
        let r = run(cfg, &p);
        assert!(r.halted);
        assert!(r.stall_lsq_full > 0, "ghost copies must occupy the LSQ");
    }

    #[test]
    fn traces_record_monotone_stage_times() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -32);
        f.load_imm(Gpr::T0, 7);
        f.store_local(Gpr::T0, 8);
        f.load_local(Gpr::T1, 8);
        f.load(Gpr::T2, Gpr::GP, 0, MemWidth::Word, StreamHint::NonLocal);
        let p = build(f);
        let sim = Simulator::new(MachineConfig::n_plus_m(2, 2).with_optimizations()).unwrap();
        let (res, traces) = sim.run_traced(&p, 1000, 1000).unwrap();
        assert_eq!(res.committed as usize, traces.len());
        for t in &traces {
            if let Some(i) = t.issued_at {
                assert!(i > t.dispatched_at, "{t:?}");
            }
            if let Some(c) = t.completed_at {
                assert!(c >= t.dispatched_at, "{t:?}");
                assert!(t.committed_at > c || t.instr.is_store(), "{t:?}");
            }
            assert!(t.committed_at >= t.dispatched_at, "{t:?}");
        }
        // Sequence numbers are contiguous and sorted.
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.seq, i as u64);
        }
        // The local store retired through the LVAQ; the global load used
        // the LSQ cache path.
        use crate::trace::MemPath;
        let store = traces.iter().find(|t| t.instr.is_store()).unwrap();
        assert_eq!(store.in_lvaq, Some(true));
        assert_eq!(store.mem_path, MemPath::StoreRetired);
        let gload = traces
            .iter()
            .find(|t| t.instr.is_load() && t.in_lvaq == Some(false))
            .unwrap();
        assert_eq!(gload.mem_path, MemPath::Cache);
    }

    #[test]
    fn traces_flag_fast_forwarded_loads() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        f.load_imm(Gpr::T0, 3);
        f.store_local(Gpr::T0, 4);
        for _ in 0..20 {
            f.nop();
        }
        f.load_local(Gpr::T1, 4);
        let p = build(f);
        let sim = Simulator::new(MachineConfig::n_plus_m(2, 2).with_fast_forwarding(true)).unwrap();
        let (res, traces) = sim.run_traced(&p, 1000, 1000).unwrap();
        assert!(res.lvaq.fast_forwards >= 1);
        use crate::trace::MemPath;
        assert!(traces.iter().any(|t| t.mem_path == MemPath::FastForwarded));
    }

    #[test]
    fn trace_limit_caps_recording() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..50 {
            f.load_imm(Gpr::T0, i);
        }
        let p = build(f);
        let sim = Simulator::new(MachineConfig::iscapaper_base()).unwrap();
        let (_, traces) = sim.run_traced(&p, 1000, 10).unwrap();
        assert_eq!(traces.len(), 10);
    }

    #[test]
    fn lvc_and_l1_hit_latencies_respected() {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -16);
        // Warm both caches, then measure dependent-load chains.
        f.store_local(Gpr::T0, 0);
        for _ in 0..100 {
            f.load_local(Gpr::T1, 0);
        }
        f.addi(Gpr::SP, Gpr::SP, 16);
        let p = build(f);
        let r = run(MachineConfig::n_plus_m(2, 2), &p);
        // While the store sits in the LVAQ the loads forward from it (the
        // §4.3 observation that 50–90 % of LVC accesses are satisfied in
        // the queue); after it commits they hit in the LVC.
        let lvc = r.lvc.unwrap();
        assert_eq!(
            lvc.hits + r.lvaq.forwards + lvc.miss_merges,
            100,
            "lvc = {lvc:?}"
        );
        assert!(r.lvaq.forwards > 0);
        assert!(lvc.hits > 0);
    }

    /// Memory-heavy straight-line workload for the window/hand-off tests:
    /// local stores/loads interleaved with global traffic (~2000 dynamic
    /// instructions).
    fn windowed_program() -> Program {
        let mut f = FunctionBuilder::new("main");
        f.addi(Gpr::SP, Gpr::SP, -64);
        for i in 0..400 {
            f.load_imm(Gpr::T0, i);
            f.store_local(Gpr::T0, (i % 8) * 4);
            f.load_local(Gpr::T1, (i % 8) * 4);
            f.load(
                Gpr::T2,
                Gpr::GP,
                (i % 32) * 4,
                MemWidth::Word,
                StreamHint::NonLocal,
            );
            f.alu(AluOp::Add, Gpr::T3, Gpr::T1, Gpr::T2);
        }
        f.addi(Gpr::SP, Gpr::SP, 64);
        build(f)
    }

    #[test]
    fn marking_never_perturbs_the_run() {
        let p = windowed_program();
        let sim = Simulator::new(MachineConfig::n_plus_m(4, 2).with_optimizations()).unwrap();
        let plain = sim.run_from(Vm::new(p.clone()), 1200).unwrap();
        let w = sim.run_window(Vm::new(p.clone()), None, 500, 700).unwrap();
        // The mark snapshot (draining occupancy flush included) must not
        // change anything about the run itself.
        assert_eq!(w.total, plain);
        // The warm-up boundary is quantized by the wide commit stage: the
        // prefix may run over the requested 500 by up to commit width - 1.
        let prefix = plain.committed - w.window.committed;
        assert!((500..500 + 16).contains(&prefix), "prefix = {prefix}");
        assert!(w.window.cycles < plain.cycles);
        assert!(w.window.lsq.occupancy.samples() < plain.lsq.occupancy.samples());
        // A zero warm-up window is the whole run.
        let w0 = sim.run_window(Vm::new(p), None, 0, 1200).unwrap();
        assert_eq!(w0.window, w0.total);
        assert_eq!(w0.total, plain);
    }

    #[test]
    fn window_is_empty_when_the_program_halts_inside_warmup() {
        let mut f = FunctionBuilder::new("main");
        for i in 0..20 {
            f.load_imm(Gpr::T0, i);
        }
        let p = build(f);
        let sim = Simulator::new(MachineConfig::iscapaper_base()).unwrap();
        let w = sim.run_window(Vm::new(p), None, 10_000, 500).unwrap();
        assert!(w.total.halted);
        assert_eq!(w.window.committed, 0);
        assert_eq!(w.window.cycles, 0);
    }

    #[test]
    fn run_from_a_fast_forwarded_vm_is_deterministic_and_continues() {
        let p = windowed_program();
        let sim = Simulator::new(MachineConfig::n_plus_m(4, 2).with_optimizations()).unwrap();
        let mut vm1 = Vm::new(p.clone());
        vm1.fast_forward(700).unwrap();
        let mut vm2 = Vm::new(p);
        vm2.fast_forward(700).unwrap();
        let a = sim.run_from(vm1, 300).unwrap();
        let b = sim.run_from(vm2, 300).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.committed, 300);
        assert!(!a.halted);
    }

    #[test]
    fn warm_tags_must_match_the_hierarchy() {
        let p = windowed_program();
        // Tags from a machine with an LVC cannot warm a machine without.
        let donor = Hierarchy::new(dda_mem::HierarchyConfig::n_plus_m(4, 2));
        let tags = donor.export_tags();
        let sim = Simulator::new(MachineConfig::iscapaper_base()).unwrap();
        let err = sim.run_from_warm(Vm::new(p), Some(&tags), 100).unwrap_err();
        assert_eq!(err, SimError::WarmStateMismatch);
    }

    #[test]
    fn functionally_warmed_tags_remove_cold_misses() {
        let p = windowed_program();
        let cfg = MachineConfig::n_plus_m(4, 2).with_optimizations();
        let sim = Simulator::new(cfg.clone()).unwrap();
        // Functionally execute the whole program once, feeding every
        // access to the timing-free warmup model — the sampling driver's
        // fast-forward flow.
        let mut warm = dda_mem::FunctionalWarmup::new(&cfg.hierarchy);
        let mut vm = Vm::new(p.clone());
        vm.fast_forward_observed(u64::MAX, |d| {
            if let Some(m) = &d.mem {
                warm.touch(m.addr, m.is_store, m.is_local());
            }
        })
        .unwrap();
        let tags = warm.tags();
        let cold = sim.run_from(Vm::new(p.clone()), 2_000).unwrap();
        let warmed = sim.run_from_warm(Vm::new(p), Some(&tags), 2_000).unwrap();
        assert_eq!(cold.committed, warmed.committed);
        assert!(
            warmed.l1.misses < cold.l1.misses,
            "warmed {} vs cold {}",
            warmed.l1.misses,
            cold.l1.misses
        );
        let (wl, cl) = (warmed.lvc.unwrap(), cold.lvc.unwrap());
        assert!(
            wl.misses <= cl.misses,
            "lvc warmed {} vs cold {}",
            wl.misses,
            cl.misses
        );
    }
}
