//! Deterministic fault injection for the memory pipeline.
//!
//! A [`FaultPlan`] in the [`crate::MachineConfig`] arms a per-run
//! injector driven by the in-tree xoshiro PRNG ([`dda_stats::Rng`]): it
//! can flip bits in resident LVC/L1 lines (modeled as line poisoning
//! with parity-check detection), drop or delay a memory-port grant, and
//! corrupt a fast-forwarded store value (detected by the commit-time
//! auditor). Same seed, same workload, same machine → bit-identical
//! injections, so every campaign run is reproducible.
//!
//! With [`FaultPlan::none`] (the default) the injector is not even
//! instantiated and the simulation is bit-identical to an unfaulted
//! build — the acceptance gate for every fault-free experiment.

use dda_stats::Rng;

use crate::error::ConfigError;

/// Per-class injection rates for one run. All rates are per-opportunity
/// probabilities in `0.0..=1.0` (e.g. `flip_l1_line` is drawn on every
/// L1 data access).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultPlan {
    /// PRNG seed; same seed → same injections.
    pub seed: u64,
    /// Probability of flipping bits in the accessed LVC line.
    pub flip_lvc_line: f64,
    /// Probability of flipping bits in the accessed L1 line.
    pub flip_l1_line: f64,
    /// Probability of revoking a granted memory-port slot (the port
    /// cycle is consumed; the instruction retries later).
    pub drop_port_grant: f64,
    /// Probability of delaying a granted port's address-ready event.
    pub delay_port_grant: f64,
    /// How many extra cycles a delayed grant costs.
    pub delay_cycles: u32,
    /// Probability of corrupting a store value forwarded to a load.
    pub corrupt_forward: f64,
}

impl FaultPlan {
    /// No injection at all — the plan of every ordinary run.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            flip_lvc_line: 0.0,
            flip_l1_line: 0.0,
            drop_port_grant: 0.0,
            delay_port_grant: 0.0,
            delay_cycles: 0,
            corrupt_forward: 0.0,
        }
    }

    /// Whether every rate is zero (no injector will be instantiated).
    pub fn is_none(&self) -> bool {
        self.flip_lvc_line == 0.0
            && self.flip_l1_line == 0.0
            && self.drop_port_grant == 0.0
            && self.delay_port_grant == 0.0
            && self.corrupt_forward == 0.0
    }

    /// Validates rates and delay.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for a rate outside `0.0..=1.0` (or not
    /// finite), or a delay plan with zero delay cycles.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("flip_lvc_line", self.flip_lvc_line),
            ("flip_l1_line", self.flip_l1_line),
            ("drop_port_grant", self.drop_port_grant),
            ("delay_port_grant", self.delay_port_grant),
            ("corrupt_forward", self.corrupt_forward),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::FaultRateOutOfRange { field, value });
            }
        }
        if self.delay_port_grant > 0.0 && self.delay_cycles == 0 {
            return Err(ConfigError::ZeroFaultDelay);
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// Injection and detection accounting for one run, carried in
/// [`crate::SimResult`]. All-zero (and bit-identical to a fault-free
/// run) under [`FaultPlan::none`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStats {
    /// Bit flips injected into resident L1 lines.
    pub l1_flips_injected: u64,
    /// Bit flips injected into resident LVC lines.
    pub lvc_flips_injected: u64,
    /// Flipped lines caught by a parity check on a later access.
    pub flips_detected: u64,
    /// Flipped lines evicted before any parity check saw them (the
    /// corruption left the cache silently).
    pub flips_evicted: u64,
    /// Flipped lines still resident and undetected at the end of the run.
    pub flips_latent: u64,
    /// Port grants revoked after arbitration.
    pub grants_dropped: u64,
    /// Port grants delayed by `delay_cycles`.
    pub grants_delayed: u64,
    /// Forwarded store values corrupted.
    pub forwards_corrupted: u64,
    /// Corrupted forwards caught by the commit-time auditor.
    pub forwards_detected: u64,
}

impl FaultStats {
    /// Total injections of every class.
    pub fn injected(&self) -> u64 {
        self.l1_flips_injected
            + self.lvc_flips_injected
            + self.grants_dropped
            + self.grants_delayed
            + self.forwards_corrupted
    }

    /// Total detections (parity checks plus commit-time audits).
    pub fn detected(&self) -> u64 {
        self.flips_detected + self.forwards_detected
    }
}

/// The live injector owned by a running core: the plan, the PRNG stream,
/// and the counters accumulated so far.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) rng: Rng,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// An injector for `plan`, or `None` when the plan injects nothing —
    /// the fault-free fast path costs one pointer check per hook.
    pub(crate) fn from_plan(plan: FaultPlan) -> Option<FaultState> {
        if plan.is_none() {
            return None;
        }
        Some(FaultState {
            plan,
            rng: Rng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_valid() {
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::none().validate(), Ok(()));
        assert!(FaultState::from_plan(FaultPlan::none()).is_none());
    }

    #[test]
    fn rates_are_validated() {
        let bad = FaultPlan {
            flip_l1_line: 1.5,
            ..FaultPlan::none()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            corrupt_forward: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            delay_port_grant: 0.5,
            delay_cycles: 0,
            ..FaultPlan::none()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroFaultDelay));
        let ok = FaultPlan {
            delay_port_grant: 0.5,
            delay_cycles: 3,
            ..FaultPlan::none()
        };
        assert_eq!(ok.validate(), Ok(()));
        assert!(!ok.is_none());
    }

    #[test]
    fn injector_streams_are_seed_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            drop_port_grant: 0.5,
            ..FaultPlan::none()
        };
        let mut a = FaultState::from_plan(plan).unwrap();
        let mut b = FaultState::from_plan(plan).unwrap();
        for _ in 0..100 {
            assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        }
    }
}
