//! Machine configuration.

use dda_isa::{FuClass, LatencyTable};
use dda_mem::HierarchyConfig;

use crate::classify::SteerPolicy;
use crate::error::ConfigError;
use crate::fault::FaultPlan;

/// Configuration of the data-decoupling machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecouplingConfig {
    /// LVAQ capacity (the paper uses 64 entries, §4.2).
    pub lvaq_size: usize,
    /// Enable fast data forwarding in the LVAQ (§2.2.2).
    pub fast_forwarding: bool,
    /// Access-combining window: up to this many *consecutive* LVAQ entries
    /// falling on one LVC line share a port (§2.2.2). `1` disables
    /// combining.
    pub combining_degree: u32,
    /// How memory instructions are steered to a queue at dispatch.
    pub steer: SteerPolicy,
    /// Extra cycles charged to an access steered into the wrong queue
    /// (the paper's §2.1 recovery, "similar to the one for a branch
    /// misprediction").
    pub misclass_penalty: u32,
}

impl Default for DecouplingConfig {
    fn default() -> Self {
        DecouplingConfig {
            lvaq_size: 64,
            fast_forwarding: false,
            combining_degree: 1,
            steer: SteerPolicy::Hint,
            misclass_penalty: 8,
        }
    }
}

/// Full configuration of the simulated machine.
///
/// [`MachineConfig::iscapaper_base`] reproduces the paper's Table 1; the
/// `with_*` builders derive the per-experiment variants.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineConfig {
    /// Instructions dispatched (renamed) per cycle. The paper sets decode
    /// and commit width equal to the 16-wide issue width.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer (RUU) capacity (paper: 128).
    pub rob_size: usize,
    /// Load/store-queue capacity (paper: 64).
    pub lsq_size: usize,
    /// Functional-unit counts, indexed by [`FuClass`]. The paper's machine
    /// has 16 integer ALUs, 16 FP ALUs, 4 integer and 4 FP MULT/DIV units;
    /// multiply and divide share the same physical units here, as there.
    pub fu_counts: FuCounts,
    /// Execution latencies (paper: MIPS R10000).
    pub latencies: LatencyTable,
    /// The data-memory hierarchy (L1 ports, optional LVC, L2).
    pub hierarchy: HierarchyConfig,
    /// Data-decoupling parameters; only meaningful when the hierarchy has
    /// an LVC.
    pub decoupling: DecouplingConfig,
    /// Abort if this many cycles elapse with no commit (a simulator-bug
    /// backstop, not a micro-architectural feature).
    pub deadlock_cycles: u64,
    /// Run the memory schedulers with the straightforward rescan-per-cycle
    /// implementation instead of the incrementally cached one. The two are
    /// architecturally identical — debug builds cross-check every decision
    /// and a regression test compares full [`crate::SimResult`]s — so this
    /// exists as the oracle for that comparison and as the baseline the
    /// throughput benchmark measures kernel speedup against. Simulation
    /// *results* never depend on this flag, only wall-clock time.
    pub reference_kernel: bool,
    /// Fault-injection plan; [`FaultPlan::none`] (the default) injects
    /// nothing and leaves results bit-identical to an unfaulted run.
    pub fault_plan: FaultPlan,
    /// Run the cycle-by-cycle invariant auditor (queue/age-order/
    /// forwarding cross-checks; a broken invariant becomes a structured
    /// [`crate::SimError::InvariantViolation`] instead of silent
    /// corruption). Defaults to on in debug builds, off in release.
    pub audit: bool,
    /// **Test-only.** Plants a deterministic counter defect in the *fast*
    /// kernel (the reference kernel is untouched): LVAQ stores retiring
    /// to certain addresses charge a phantom port-stall cycle, so the two
    /// kernels' [`crate::SimResult`]s diverge. The differential fuzzer's
    /// self-test flips this on to prove its oracle catches and minimizes
    /// a real kernel bug. Never set outside tests; defaults to off and
    /// has zero effect on any counter while off.
    pub planted_defect: bool,
}

/// Functional-unit pool sizes. Multiply and divide of the same register
/// file share units (MULT/DIV units, as in the paper's Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuCounts {
    /// Integer ALUs (also execute branches and address generation).
    pub int_alu: u32,
    /// Integer MULT/DIV units.
    pub int_mul_div: u32,
    /// FP ALUs (adds, compares, conversions).
    pub fp_alu: u32,
    /// FP MULT/DIV units.
    pub fp_mul_div: u32,
}

impl FuCounts {
    /// The paper's Table 1 pool: 16 + 16 ALUs, 4 + 4 MULT/DIV units.
    pub fn iscapaper_base() -> FuCounts {
        FuCounts {
            int_alu: 16,
            int_mul_div: 4,
            fp_alu: 16,
            fp_mul_div: 4,
        }
    }

    /// The pool a [`FuClass`] executes on, as a dense index `0..4`.
    pub fn pool_of(class: FuClass) -> usize {
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::MemRead | FuClass::MemWrite => 0,
            FuClass::IntMul | FuClass::IntDiv => 1,
            FuClass::FpAdd => 2,
            FuClass::FpMul | FuClass::FpDiv => 3,
        }
    }

    /// Pool sizes as an array indexed by pool id.
    pub fn pool_sizes(&self) -> [u32; 4] {
        [self.int_alu, self.int_mul_div, self.fp_alu, self.fp_mul_div]
    }
}

impl MachineConfig {
    /// The paper's base machine (Table 1) with the default 2-port L1 and
    /// no LVC — the "(2+0)" reference configuration of §4.
    pub fn iscapaper_base() -> MachineConfig {
        MachineConfig {
            dispatch_width: 16,
            issue_width: 16,
            commit_width: 16,
            rob_size: 128,
            lsq_size: 64,
            fu_counts: FuCounts::iscapaper_base(),
            latencies: LatencyTable::r10000(),
            hierarchy: HierarchyConfig::iscapaper_base(),
            decoupling: DecouplingConfig::default(),
            deadlock_cycles: 200_000,
            reference_kernel: false,
            fault_plan: FaultPlan::none(),
            audit: cfg!(debug_assertions),
            planted_defect: false,
        }
    }

    /// The "(N+M)" machine of §4: N L1 ports, and when `m > 0` an M-port
    /// 2 KB LVC with the decoupling machinery enabled.
    pub fn n_plus_m(n: u32, m: u32) -> MachineConfig {
        MachineConfig {
            hierarchy: HierarchyConfig::n_plus_m(n, m),
            ..MachineConfig::iscapaper_base()
        }
    }

    /// Returns a copy with fast data forwarding enabled/disabled.
    pub fn with_fast_forwarding(mut self, on: bool) -> MachineConfig {
        self.decoupling.fast_forwarding = on;
        self
    }

    /// Returns a copy with the given access-combining degree (1 = off).
    pub fn with_combining(mut self, degree: u32) -> MachineConfig {
        self.decoupling.combining_degree = degree.max(1);
        self
    }

    /// Returns a copy with both §2.2.2 optimizations on (2-way combining,
    /// the paper's recommended design point).
    pub fn with_optimizations(self) -> MachineConfig {
        self.with_fast_forwarding(true).with_combining(2)
    }

    /// Returns a copy with a different L1 hit latency (the §4.3 study).
    pub fn with_l1_hit_latency(mut self, cycles: u32) -> MachineConfig {
        self.hierarchy.l1.hit_latency = cycles;
        self
    }

    /// Returns a copy with a different LVC hit latency (the §4.3 study).
    ///
    /// # Panics
    ///
    /// Panics if the machine has no LVC.
    pub fn with_lvc_hit_latency(mut self, cycles: u32) -> MachineConfig {
        match self.hierarchy.lvc.as_mut() {
            Some(lvc) => lvc.hit_latency = cycles,
            None => panic!("machine has no LVC"),
        }
        self
    }

    /// Returns a copy with a different LVC size in bytes (the Fig. 6
    /// sweep).
    ///
    /// # Panics
    ///
    /// Panics if the machine has no LVC.
    pub fn with_lvc_size(mut self, bytes: u32) -> MachineConfig {
        match self.hierarchy.lvc.as_mut() {
            Some(lvc) => lvc.size_bytes = bytes,
            None => panic!("machine has no LVC"),
        }
        self
    }

    /// Returns a copy with the given fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> MachineConfig {
        self.fault_plan = plan;
        self
    }

    /// Returns a copy with the invariant auditor forced on or off.
    pub fn with_audit(mut self, on: bool) -> MachineConfig {
        self.audit = on;
        self
    }

    /// Returns a copy with the deadlock-watchdog window set to `cycles`
    /// (how long the pipeline may go without committing before the run
    /// aborts with a structured [`crate::SimError::Deadlock`]).
    ///
    /// The 200 000-cycle default suits interactive runs; fuzz campaigns
    /// set a much tighter window so a wedged input is bounded by
    /// `budget × window` cycles instead of hanging a worker. A zero
    /// window is rejected by [`MachineConfig::validate`].
    pub fn with_deadlock_window(mut self, cycles: u64) -> MachineConfig {
        self.deadlock_cycles = cycles;
        self
    }

    /// Whether data decoupling is active (an LVC exists).
    pub fn decoupled(&self) -> bool {
        self.hierarchy.lvc.is_some()
    }

    /// A stable textual rendering of every *result-affecting* field — the
    /// content a design-space-exploration cache keys simulation results
    /// by (hashed together with the program, seed, sampling plan and
    /// kernel version).
    ///
    /// Two flags are deliberately normalized out: `reference_kernel` and
    /// `audit` select between implementations proven bit-identical (the
    /// determinism suite, the differential fuzzer and every throughput
    /// run enforce it), so a result computed under either serves the
    /// other. Everything else — widths, capacities, latencies, hierarchy
    /// geometry, decoupling knobs, the fault plan, even the test-only
    /// planted defect — changes counters and therefore the fingerprint.
    pub fn result_fingerprint_text(&self) -> String {
        let mut canon = self.clone();
        canon.reference_kernel = false;
        canon.audit = false;
        format!("{canon:?}")
    }

    /// Validates widths, capacities, the hierarchy and the fault plan.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dispatch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err(ConfigError::ZeroPipelineWidth);
        }
        if self.rob_size == 0 {
            return Err(ConfigError::ZeroRobSize);
        }
        if self.lsq_size == 0 {
            return Err(ConfigError::ZeroLsqSize);
        }
        if self.decoupled() && self.decoupling.lvaq_size == 0 {
            return Err(ConfigError::ZeroLvaqSize);
        }
        if self.fu_counts.pool_sizes().contains(&0) {
            return Err(ConfigError::EmptyFuPool);
        }
        if self.deadlock_cycles == 0 {
            return Err(ConfigError::ZeroDeadlockWindow);
        }
        self.fault_plan.validate()?;
        self.hierarchy.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::iscapaper_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_machine_matches_table_1() {
        let c = MachineConfig::iscapaper_base();
        assert_eq!(c.issue_width, 16);
        assert_eq!(c.dispatch_width, 16);
        assert_eq!(c.commit_width, 16);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.decoupling.lvaq_size, 64);
        assert_eq!(c.fu_counts.int_alu, 16);
        assert_eq!(c.fu_counts.fp_alu, 16);
        assert_eq!(c.fu_counts.int_mul_div, 4);
        assert_eq!(c.fu_counts.fp_mul_div, 4);
        assert_eq!(c.hierarchy.l1.size_bytes, 32 << 10);
        assert_eq!(c.hierarchy.l1.hit_latency, 2);
        assert_eq!(c.hierarchy.l2.latency, 12);
        assert_eq!(c.hierarchy.l2.memory_latency, 50);
        assert!(!c.decoupled());
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn n_plus_m_builder() {
        let c = MachineConfig::n_plus_m(3, 2);
        assert_eq!(c.hierarchy.l1.ports, 3);
        assert_eq!(c.hierarchy.lvc.unwrap().ports, 2);
        assert!(c.decoupled());
        assert!(!MachineConfig::n_plus_m(4, 0).decoupled());
    }

    #[test]
    fn optimization_builders() {
        let c = MachineConfig::n_plus_m(3, 2).with_optimizations();
        assert!(c.decoupling.fast_forwarding);
        assert_eq!(c.decoupling.combining_degree, 2);
        let c = c.with_combining(0);
        assert_eq!(c.decoupling.combining_degree, 1, "degree clamps to 1");
    }

    #[test]
    fn latency_builders() {
        let c = MachineConfig::n_plus_m(2, 2)
            .with_l1_hit_latency(3)
            .with_lvc_hit_latency(2);
        assert_eq!(c.hierarchy.l1.hit_latency, 3);
        assert_eq!(c.hierarchy.lvc.unwrap().hit_latency, 2);
    }

    #[test]
    #[should_panic(expected = "no LVC")]
    fn lvc_builder_without_lvc_panics() {
        let _ = MachineConfig::iscapaper_base().with_lvc_hit_latency(2);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = MachineConfig::iscapaper_base();
        c.rob_size = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::iscapaper_base();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::iscapaper_base();
        c.fu_counts.int_alu = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn deadlock_window_builder_and_validation() {
        let c = MachineConfig::iscapaper_base();
        assert_eq!(c.deadlock_cycles, 200_000, "default window");
        let c = c.with_deadlock_window(25_000);
        assert_eq!(c.deadlock_cycles, 25_000);
        assert_eq!(c.validate(), Ok(()));
        let c = c.with_deadlock_window(0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroDeadlockWindow));
    }

    #[test]
    fn planted_defect_defaults_off() {
        assert!(!MachineConfig::iscapaper_base().planted_defect);
        assert!(
            !MachineConfig::n_plus_m(4, 2)
                .with_optimizations()
                .planted_defect
        );
    }

    #[test]
    fn result_fingerprint_tracks_result_affecting_fields_only() {
        let base = MachineConfig::n_plus_m(4, 2);
        assert_eq!(
            base.result_fingerprint_text(),
            base.clone().result_fingerprint_text()
        );
        // Kernel choice and auditing are proven result-neutral: same text.
        let mut reference = base.clone();
        reference.reference_kernel = true;
        let audited = base.clone().with_audit(true);
        assert_eq!(
            base.result_fingerprint_text(),
            reference.result_fingerprint_text()
        );
        assert_eq!(
            base.result_fingerprint_text(),
            audited.result_fingerprint_text()
        );
        // Anything that moves a counter changes the text.
        for variant in [
            base.clone().with_combining(2),
            base.clone().with_fast_forwarding(true),
            base.clone().with_lvc_size(4096),
            base.clone().with_l1_hit_latency(3),
            MachineConfig::n_plus_m(4, 0),
            {
                let mut c = base.clone();
                c.rob_size = 64;
                c
            },
            {
                let mut c = base.clone();
                c.planted_defect = true;
                c
            },
        ] {
            assert_ne!(
                base.result_fingerprint_text(),
                variant.result_fingerprint_text(),
                "variant {variant:?} should change the fingerprint"
            );
        }
    }

    #[test]
    fn fault_plan_is_validated_with_the_machine() {
        let mut c = MachineConfig::iscapaper_base();
        c.fault_plan.drop_port_grant = 2.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultRateOutOfRange { .. })
        ));
    }

    #[test]
    fn pool_mapping_covers_all_classes() {
        for class in FuClass::ALL {
            assert!(FuCounts::pool_of(class) < 4);
        }
        assert_eq!(
            FuCounts::pool_of(FuClass::IntMul),
            FuCounts::pool_of(FuClass::IntDiv)
        );
        assert_eq!(
            FuCounts::pool_of(FuClass::FpMul),
            FuCounts::pool_of(FuClass::FpDiv)
        );
        assert_ne!(
            FuCounts::pool_of(FuClass::IntAlu),
            FuCounts::pool_of(FuClass::FpAdd)
        );
    }
}
