//! Functional-unit pools.

use dda_isa::{FuClass, LatencyTable};

use crate::config::FuCounts;

/// The machine's functional units, grouped into four pools (integer ALU,
/// integer MULT/DIV, FP ALU, FP MULT/DIV).
///
/// Each unit tracks when it can next accept an instruction; non-pipelined
/// units (dividers) are busy for their full issue interval, pipelined
/// units accept one instruction per cycle.
#[derive(Clone, Debug)]
pub struct FuPools {
    // next_free cycle per unit, grouped per pool.
    pools: [Vec<u64>; 4],
    latencies: LatencyTable,
}

impl FuPools {
    /// Creates idle pools.
    pub fn new(counts: FuCounts, latencies: LatencyTable) -> FuPools {
        let sizes = counts.pool_sizes();
        FuPools {
            pools: [
                vec![0; sizes[0] as usize],
                vec![0; sizes[1] as usize],
                vec![0; sizes[2] as usize],
                vec![0; sizes[3] as usize],
            ],
            latencies,
        }
    }

    /// Tries to issue an instruction of `class` at `cycle`.
    ///
    /// On success returns the cycle the result becomes available and marks
    /// one unit busy for the class's issue interval. Returns `None` when
    /// every unit of the pool is busy.
    pub fn try_issue(&mut self, class: FuClass, cycle: u64) -> Option<u64> {
        let pool = &mut self.pools[FuCounts::pool_of(class)];
        let unit = pool.iter_mut().find(|f| **f <= cycle)?;
        *unit = cycle + self.latencies.issue_interval(class) as u64;
        Some(cycle + self.latencies.latency(class) as u64)
    }

    /// Units of the class's pool that could accept work at `cycle`.
    pub fn free_units(&self, class: FuClass, cycle: u64) -> usize {
        self.pools[FuCounts::pool_of(class)]
            .iter()
            .filter(|f| **f <= cycle)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> FuPools {
        FuPools::new(FuCounts::iscapaper_base(), LatencyTable::r10000())
    }

    #[test]
    fn pipelined_alu_accepts_every_cycle() {
        let mut p = pools();
        for _ in 0..16 {
            assert_eq!(p.try_issue(FuClass::IntAlu, 5), Some(6));
        }
        // Pool of 16 exhausted within one cycle.
        assert_eq!(p.try_issue(FuClass::IntAlu, 5), None);
        // Next cycle: all free again (fully pipelined).
        assert_eq!(p.free_units(FuClass::IntAlu, 6), 16);
    }

    #[test]
    fn divider_blocks_for_issue_interval() {
        let mut p = pools();
        for _ in 0..4 {
            assert_eq!(p.try_issue(FuClass::IntDiv, 0), Some(34));
        }
        assert_eq!(p.try_issue(FuClass::IntDiv, 0), None);
        // Still busy at cycle 33; free at 34.
        assert_eq!(p.free_units(FuClass::IntDiv, 33), 0);
        assert_eq!(p.free_units(FuClass::IntDiv, 34), 4);
    }

    #[test]
    fn mul_and_div_share_units() {
        let mut p = pools();
        // Fill the 4 integer MULT/DIV units with divides.
        for _ in 0..4 {
            assert!(p.try_issue(FuClass::IntDiv, 0).is_some());
        }
        // A multiply cannot issue: same pool.
        assert_eq!(p.try_issue(FuClass::IntMul, 0), None);
    }

    #[test]
    fn fp_latencies() {
        let mut p = pools();
        assert_eq!(p.try_issue(FuClass::FpAdd, 10), Some(12));
        assert_eq!(p.try_issue(FuClass::FpMul, 10), Some(12));
        assert_eq!(p.try_issue(FuClass::FpDiv, 10), Some(29));
    }

    #[test]
    fn branch_uses_int_alu_pool() {
        let mut p = pools();
        for _ in 0..16 {
            assert!(p.try_issue(FuClass::IntAlu, 0).is_some());
        }
        assert_eq!(p.try_issue(FuClass::Branch, 0), None);
    }
}
