//! Memory-stream classification: steering accesses to the LSQ or LVAQ.

use dda_isa::{Gpr, StreamHint};
use dda_stats::FastMap;
use dda_vm::DynInst;

/// How the dispatch stage decides which memory access queue an instruction
/// is steered to (paper §2.1/§2.2.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SteerPolicy {
    /// Use the compiler's per-instruction [`StreamHint`]; ambiguous
    /// (`Unknown`) references fall back to the 1-bit hardware predictor —
    /// the hybrid scheme the paper assumes (99.9 % accurate, §2.2.3).
    #[default]
    Hint,
    /// Hardware-only: accesses whose base register is `$sp` or `$fp` are
    /// predicted local (§2.2.3, after Ditzel & McLellan).
    SpBase,
    /// Oracle: always steer by the ground-truth region. Useful as the
    /// upper bound in the misclassification ablation.
    Oracle,
    /// The paper's footnote-3 alternative: ambiguous (`Unknown`-hinted)
    /// references are *copied into both* memory access queues, "to
    /// eliminate any communication between them; in this case, the
    /// wrongly inserted copy in LSQ or LVAQ will be killed at a later
    /// time". No misprediction recovery is ever needed, at the cost of
    /// occupying an entry in each queue (and conservatively blocking
    /// younger loads) until the address resolves.
    Replicate,
}

/// The 1-bit last-region predictor of §2.2.3, indexed by pc.
///
/// "Using a simple 1-bit hardware predictor storing the previous access
/// region of these small number of instructions results in about 99.9% of
/// all the dynamic memory references correctly classified."
#[derive(Clone, Debug, Default)]
pub struct RegionPredictor {
    // true = predict local. Unknown pcs predict non-local.
    last_region: FastMap<u32, bool>,
    predictions: u64,
    mispredictions: u64,
}

impl RegionPredictor {
    /// Creates an empty predictor (every pc initially predicts
    /// non-local).
    pub fn new() -> RegionPredictor {
        RegionPredictor::default()
    }

    /// Predicts whether the access at `pc` is local.
    pub fn predict(&mut self, pc: u32) -> bool {
        self.predictions += 1;
        self.last_region.get(&pc).copied().unwrap_or(false)
    }

    /// Trains with the resolved region and records accuracy.
    pub fn update(&mut self, pc: u32, predicted: bool, actual_local: bool) {
        if predicted != actual_local {
            self.mispredictions += 1;
        }
        self.last_region.insert(pc, actual_local);
    }

    /// Predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Wrong predictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

/// The steering decision for one dynamic memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Steer {
    /// Whether dispatch predicted the access local (LVAQ).
    pub predicted_local: bool,
    /// Whether it actually is local (ground truth).
    pub actual_local: bool,
    /// Under [`SteerPolicy::Replicate`]: the access is inserted into both
    /// queues and the wrong copy killed when the address resolves.
    pub replicated: bool,
}

impl Steer {
    /// Whether the access was steered into the wrong queue and needs the
    /// §2.1 recovery. Replicated accesses are in both queues, so they can
    /// never be mispredicted.
    pub fn mispredicted(&self) -> bool {
        !self.replicated && self.predicted_local != self.actual_local
    }
}

/// Applies a [`SteerPolicy`] to dynamic memory instructions.
#[derive(Clone, Debug)]
pub struct Classifier {
    policy: SteerPolicy,
    predictor: RegionPredictor,
}

impl Classifier {
    /// Creates a classifier with the given policy.
    pub fn new(policy: SteerPolicy) -> Classifier {
        Classifier {
            policy,
            predictor: RegionPredictor::new(),
        }
    }

    /// Decides the queue for a dynamic memory access and trains the
    /// predictor.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not a memory instruction.
    pub fn steer(&mut self, d: &DynInst) -> Steer {
        let mem = match d.mem {
            Some(m) => m,
            None => unreachable!("steer requires a memory instruction"),
        };
        let actual_local = mem.is_local();
        let (predicted_local, replicated) = match self.policy {
            SteerPolicy::Oracle => (actual_local, false),
            SteerPolicy::SpBase => (
                d.instr
                    .mem_operand()
                    .map(|(base, ..)| base.is_stack_base())
                    .unwrap_or(false),
                false,
            ),
            SteerPolicy::Hint => match mem.hint {
                StreamHint::Local => (true, false),
                StreamHint::NonLocal => (false, false),
                StreamHint::Unknown => {
                    let p = self.predictor.predict(d.pc);
                    self.predictor.update(d.pc, p, actual_local);
                    (p, false)
                }
            },
            SteerPolicy::Replicate => match mem.hint {
                StreamHint::Local => (true, false),
                StreamHint::NonLocal => (false, false),
                StreamHint::Unknown => (actual_local, true),
            },
        };
        Steer {
            predicted_local,
            actual_local,
            replicated,
        }
    }

    /// The underlying 1-bit predictor (for accuracy statistics).
    pub fn predictor(&self) -> &RegionPredictor {
        &self.predictor
    }
}

/// Convenience: whether a base register makes an access `$sp`-indexed.
pub fn is_sp_based(base: Gpr) -> bool {
    base.is_stack_base()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_isa::{Instr, MemWidth};
    use dda_program::MemRegion;
    use dda_vm::MemInfo;

    fn dyn_load(pc: u32, base: Gpr, region: MemRegion, hint: StreamHint) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            instr: Instr::Load {
                rd: Gpr::T0,
                base,
                offset: 0,
                width: MemWidth::Word,
                hint,
            },
            next_pc: pc + 1,
            mem: Some(MemInfo {
                addr: 0x7fff_ff00,
                bytes: 4,
                is_store: false,
                region,
                hint,
                stack_slot: None,
            }),
        }
    }

    #[test]
    fn hint_policy_follows_hints() {
        let mut c = Classifier::new(SteerPolicy::Hint);
        let s = c.steer(&dyn_load(0, Gpr::SP, MemRegion::Stack, StreamHint::Local));
        assert!(s.predicted_local && s.actual_local && !s.mispredicted());
        let s = c.steer(&dyn_load(
            1,
            Gpr::GP,
            MemRegion::Global,
            StreamHint::NonLocal,
        ));
        assert!(!s.predicted_local && !s.mispredicted());
    }

    #[test]
    fn unknown_hint_uses_predictor_and_learns() {
        let mut c = Classifier::new(SteerPolicy::Hint);
        // First sighting of pc 7: predicts non-local, actually stack.
        let s = c.steer(&dyn_load(7, Gpr::T1, MemRegion::Stack, StreamHint::Unknown));
        assert!(s.mispredicted());
        // Second sighting: learned local.
        let s = c.steer(&dyn_load(7, Gpr::T1, MemRegion::Stack, StreamHint::Unknown));
        assert!(!s.mispredicted());
        assert_eq!(c.predictor().predictions(), 2);
        assert_eq!(c.predictor().mispredictions(), 1);
    }

    #[test]
    fn sp_base_policy_uses_base_register() {
        let mut c = Classifier::new(SteerPolicy::SpBase);
        let s = c.steer(&dyn_load(0, Gpr::SP, MemRegion::Stack, StreamHint::Unknown));
        assert!(s.predicted_local && !s.mispredicted());
        // Stack access via a copied pointer register: mispredicted.
        let s = c.steer(&dyn_load(1, Gpr::T3, MemRegion::Stack, StreamHint::Unknown));
        assert!(!s.predicted_local && s.mispredicted());
        // $fp counts as a stack base.
        let s = c.steer(&dyn_load(2, Gpr::FP, MemRegion::Stack, StreamHint::Unknown));
        assert!(s.predicted_local);
    }

    #[test]
    fn oracle_never_mispredicts() {
        let mut c = Classifier::new(SteerPolicy::Oracle);
        for region in [MemRegion::Stack, MemRegion::Heap, MemRegion::Global] {
            let s = c.steer(&dyn_load(0, Gpr::T1, region, StreamHint::Unknown));
            assert!(!s.mispredicted());
        }
    }

    #[test]
    fn is_sp_based_helper() {
        assert!(is_sp_based(Gpr::SP));
        assert!(is_sp_based(Gpr::FP));
        assert!(!is_sp_based(Gpr::GP));
    }
}
