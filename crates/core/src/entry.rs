//! Reorder-buffer entries and the RUU ring buffer.

use dda_isa::FuClass;
use dda_vm::DynInst;

/// What a dependent is waiting for from its producer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DepKind {
    /// An input operand (issue cannot happen before it is ready).
    Operand,
    /// A store's data value (the store's address generation does not wait
    /// for it, but commit and forwarding do).
    StoreData,
}

/// A (consumer slot, kind) edge in the dataflow graph.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Dependent {
    pub slot: usize,
    pub kind: DepKind,
}

/// Memory-specific pipeline state of a load or store.
///
/// Boxed inside [`RobEntry`]: loads/stores are a minority of the
/// stream, and keeping the ~140-byte state out of line keeps the
/// dispatch-time entry construction (and the ring-slot move) a small
/// copy. The box itself is recycled through the core's `mem_pool`, so
/// the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
pub(crate) struct MemState {
    /// Steered to the LVAQ (`true`) or the LSQ (`false`).
    pub in_lvaq: bool,
    /// Position of this entry in its queue's lifetime order (used by the
    /// access-combining window check).
    pub q_seq: u64,
    pub is_store: bool,
    pub addr: u32,
    pub bytes: u32,
    /// `$sp`-relative identity used by fast data forwarding.
    pub stack_slot: Option<(u64, i32)>,
    /// Cycle the effective address becomes known (after AGU), plus any
    /// misclassification recovery penalty.
    pub addr_ready_at: Option<u64>,
    /// For stores: the cycle the data value became ready.
    pub data_ready_at: Option<u64>,
    /// For loads: the cache access / forwarding has been performed.
    pub launched: bool,
    /// Misclassification recovery penalty to add to address availability.
    pub penalty: u64,
    /// Footnote-3 replication: a ghost copy of this entry also sits in the
    /// *other* queue until the address resolves.
    pub replicated: bool,
    /// Push ordinal in this entry's own queue (see
    /// [`crate::queue::MemQueue`]); unlike `q_seq` it counts ghost pushes,
    /// so it totally orders the residents of one queue.
    pub ord: u64,
    /// Push ordinal of the ghost copy in the *other* queue (only
    /// meaningful while `replicated`).
    pub ghost_ord: u64,
    /// Disambiguation scan cursor (loads): every store in this queue with
    /// ordinal in `[scan_ord, ord)` has been proven address-known and
    /// disjoint from this load — permanent facts, so the scan never
    /// revisits them.
    pub scan_ord: u64,
    /// Fast-forwarding scan cursor (LVAQ loads): stores in `[ff_ord, ord)`
    /// are proven same-`$sp`-version and slot-disjoint.
    pub ff_ord: u64,
    /// Fault injection corrupted the value this load received from a
    /// forwarded store; the commit-time auditor detects (and scrubs) it.
    /// Always `false` outside fault campaigns.
    pub poisoned: bool,
    /// Loads whose scheduling scan blocked on *this* store, as
    /// `(slot, uid)` — the event-driven kernel's wakeup index. Drained
    /// (re-waking every registrant) whenever this store's address or data
    /// becomes ready or it leaves a queue; always empty for loads and
    /// under the reference kernel.
    pub waiters: Vec<(usize, u64)>,
}

impl MemState {
    /// Whether the address is known by `cycle`.
    #[inline]
    pub fn addr_known(&self, cycle: u64) -> bool {
        self.addr_ready_at.is_some_and(|t| t <= cycle)
    }

    /// Whether the store's data is ready by `cycle`.
    #[inline]
    pub fn data_known(&self, cycle: u64) -> bool {
        self.data_ready_at.is_some_and(|t| t <= cycle)
    }
}

/// One in-flight instruction in the RUU/ROB.
#[derive(Clone, Debug)]
pub(crate) struct RobEntry {
    /// Unique id distinguishing reuses of the same slot.
    pub uid: u64,
    /// The dynamic instruction.
    pub d: DynInst,
    /// Functional-unit class.
    pub fu: FuClass,
    /// Number of not-yet-ready input operands.
    pub waiting: u8,
    /// Consumers to wake when the result completes.
    pub dependents: Vec<Dependent>,
    /// Has been issued to a functional unit (or AGU for memory ops).
    pub issued: bool,
    /// Result available (loads: data arrived; ALU: FU done). Stores use
    /// `mem` readiness instead.
    pub completed: bool,
    /// Memory state for loads/stores.
    pub mem: Option<Box<MemState>>,
}

impl RobEntry {
    /// The memory state of a load/store entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not a memory instruction — queue residency
    /// guarantees the state exists, so a miss here is a scheduler bug.
    #[inline]
    pub fn mem(&self) -> &MemState {
        match self.mem.as_deref() {
            Some(m) => m,
            None => unreachable!("queue resident without memory state"),
        }
    }

    /// Mutable access to the memory state of a load/store entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not a memory instruction.
    #[inline]
    pub fn mem_mut(&mut self) -> &mut MemState {
        match self.mem.as_deref_mut() {
            Some(m) => m,
            None => unreachable!("queue resident without memory state"),
        }
    }

    /// Whether this entry is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.mem.as_ref().is_some_and(|m| m.is_store)
    }

    /// Whether this entry is a load.
    #[allow(dead_code)] // used by tests and kept for symmetry
    #[inline]
    pub fn is_load(&self) -> bool {
        self.mem.as_ref().is_some_and(|m| !m.is_store)
    }
}

/// The Register Update Unit's reorder buffer: a fixed-capacity ring with
/// stable slot indices while an entry is alive.
#[derive(Clone, Debug)]
pub(crate) struct Rob {
    slots: Vec<Option<RobEntry>>,
    head: usize,
    len: usize,
    next_uid: u64,
}

impl Rob {
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB capacity must be at least 1");
        Rob {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            next_uid: 0,
        }
    }

    #[allow(dead_code)] // introspection helper
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates a fresh uid.
    pub fn next_uid(&mut self) -> u64 {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// The slot index the next [`Rob::push`] will occupy. Dispatch
    /// assembles an entry's dataflow wiring (which records this index in
    /// producer dependent lists) before the entry itself is pushed.
    #[inline]
    pub fn next_slot(&self) -> usize {
        // Compare-and-wrap instead of `%`: the capacity is not a compile-
        // time constant, and an integer divide here lands on the per-
        // instruction hot path of both kernels.
        let s = self.head + self.len;
        if s >= self.slots.len() {
            s - self.slots.len()
        } else {
            s
        }
    }

    /// Pushes at the tail; returns the slot index.
    ///
    /// # Panics
    ///
    /// Panics if full.
    pub fn push(&mut self, entry: RobEntry) -> usize {
        assert!(!self.is_full(), "ROB overflow");
        let slot = self.next_slot();
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(entry);
        self.len += 1;
        slot
    }

    /// The oldest slot, if any.
    #[inline]
    pub fn head_slot(&self) -> Option<usize> {
        (self.len > 0).then_some(self.head)
    }

    /// Retires the oldest entry in place, returning only the pieces
    /// commit needs: `(uid, pc, dependents, mem)`. The entry body is
    /// dropped inside its slot rather than memcpy'd out — the extracted
    /// allocations recycle through the core's pools, so the drop itself
    /// is trivial.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn pop_head_parts(&mut self) -> (u64, u32, Vec<Dependent>, Option<Box<MemState>>) {
        let e = match self.slots[self.head].as_mut() {
            Some(e) => e,
            None => panic!("ROB underflow"),
        };
        let uid = e.uid;
        let pc = e.d.pc;
        let deps = std::mem::take(&mut e.dependents);
        let mem = e.mem.take();
        self.slots[self.head] = None;
        self.head += 1;
        if self.head == self.slots.len() {
            self.head = 0;
        }
        self.len -= 1;
        (uid, pc, deps, mem)
    }

    /// Immutable access by slot (alive entries only).
    #[inline]
    pub fn get(&self, slot: usize) -> &RobEntry {
        match self.slots[slot].as_ref() {
            Some(e) => e,
            None => panic!("dead ROB slot"),
        }
    }

    /// Mutable access by slot (alive entries only).
    #[inline]
    pub fn get_mut(&mut self, slot: usize) -> &mut RobEntry {
        match self.slots[slot].as_mut() {
            Some(e) => e,
            None => panic!("dead ROB slot"),
        }
    }

    /// Whether `slot` holds an alive entry (auditor introspection).
    #[inline]
    pub fn is_alive(&self, slot: usize) -> bool {
        self.slots[slot].is_some()
    }

    /// Whether `slot` currently holds the entry with `uid`.
    #[inline]
    pub fn holds(&self, slot: usize, uid: u64) -> bool {
        self.slots[slot].as_ref().is_some_and(|e| e.uid == uid)
    }

    /// Mutable access iff `slot` still holds the entry with `uid` — the
    /// one-lookup fusion of [`Rob::holds`] + [`Rob::get_mut`].
    #[inline]
    pub fn alive_mut(&mut self, slot: usize, uid: u64) -> Option<&mut RobEntry> {
        self.slots[slot].as_mut().filter(|e| e.uid == uid)
    }

    /// Slot indices in age order (oldest first).
    pub fn slots_in_age_order(&self) -> impl Iterator<Item = usize> + '_ {
        let cap = self.slots.len();
        let head = self.head;
        (0..self.len).map(move |i| (head + i) % cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_isa::Instr;

    fn entry(uid: u64) -> RobEntry {
        RobEntry {
            uid,
            d: DynInst {
                seq: uid,
                pc: 0,
                instr: Instr::Nop,
                next_pc: 1,
                mem: None,
            },
            fu: FuClass::IntAlu,
            waiting: 0,
            dependents: Vec::new(),
            issued: false,
            completed: false,
            mem: None,
        }
    }

    #[test]
    fn ring_wraps_and_preserves_age_order() {
        let mut r = Rob::new(4);
        let s0 = r.push(entry(0));
        let _s1 = r.push(entry(1));
        assert_eq!(r.pop_head_parts().0, 0);
        let _s2 = r.push(entry(2));
        let _s3 = r.push(entry(3));
        let s4 = r.push(entry(4)); // wraps into slot 0
        assert_eq!(s4, s0);
        assert!(r.is_full());
        let uids: Vec<u64> = r.slots_in_age_order().map(|s| r.get(s).uid).collect();
        assert_eq!(uids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn holds_distinguishes_reuse() {
        let mut r = Rob::new(2);
        let s = r.push(entry(10));
        assert!(r.holds(s, 10));
        r.pop_head_parts();
        assert!(!r.holds(s, 10));
        let s2 = r.push(entry(11));
        let s3 = r.push(entry(12));
        let _ = (s2, s3);
        assert!(!r.holds(s, 10));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut r = Rob::new(1);
        r.push(entry(0));
        r.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Rob::new(1);
        r.pop_head_parts();
    }

    #[test]
    fn uid_allocation_is_monotone() {
        let mut r = Rob::new(2);
        let a = r.next_uid();
        let b = r.next_uid();
        assert!(b > a);
    }

    #[test]
    fn mem_state_readiness() {
        let m = MemState {
            in_lvaq: true,
            q_seq: 0,
            is_store: true,
            addr: 0,
            bytes: 4,
            stack_slot: None,
            addr_ready_at: Some(10),
            data_ready_at: None,
            launched: false,
            penalty: 0,
            replicated: false,
            ord: 0,
            ghost_ord: 0,
            scan_ord: 0,
            ff_ord: 0,
            poisoned: false,
            waiters: Vec::new(),
        };
        assert!(!m.addr_known(9));
        assert!(m.addr_known(10));
        assert!(!m.data_known(u64::MAX));
    }
}
