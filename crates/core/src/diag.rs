//! Diagnostic state captured when a run fails: the watchdog and the
//! invariant auditor both snapshot the pipeline into a
//! [`DiagnosticDump`] so a wedged or corrupted run explains itself
//! instead of aborting the process.

use core::fmt;

use dda_isa::Instr;

/// How many recently retired pcs the dump carries.
pub const RETIRED_PC_WINDOW: usize = 16;

/// Memory-pipeline state of the ROB head entry, if it is a load/store.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HeadMemSnapshot {
    /// Steered to the LVAQ (vs the LSQ).
    pub in_lvaq: bool,
    /// Store (vs load).
    pub is_store: bool,
    /// Effective address.
    pub addr: u32,
    /// Cycle the address generation completed, if it has.
    pub addr_ready_at: Option<u64>,
    /// Cycle the data became available, if it has.
    pub data_ready_at: Option<u64>,
    /// Whether the cache access was launched.
    pub launched: bool,
    /// Whether the entry was replicated into both queues (footnote 3).
    pub replicated: bool,
}

/// Snapshot of the oldest in-flight instruction (the ROB head) — the one
/// whose failure to retire wedges everything behind it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HeadSnapshot {
    /// Unique instruction id.
    pub uid: u64,
    /// Dynamic sequence number.
    pub seq: u64,
    /// Fetch pc.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Whether it has issued to a functional unit.
    pub issued: bool,
    /// Whether it has completed execution.
    pub completed: bool,
    /// Outstanding operand dependencies.
    pub waiting: u8,
    /// Memory-pipeline state for loads/stores.
    pub mem: Option<HeadMemSnapshot>,
}

/// The pipeline state captured when the watchdog fires or the auditor
/// trips: everything needed to see *why* nothing retired.
///
/// Dumps are plain data with structural equality, so determinism tests
/// can assert that two identical runs wedge identically.
#[derive(Clone, PartialEq, Debug)]
pub struct DiagnosticDump {
    /// Cycle at capture.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Instructions dispatched so far.
    pub dispatched: u64,
    /// The watchdog window that expired (0 when captured by the auditor).
    pub watchdog_window: u64,
    /// The *configured* watchdog threshold
    /// ([`crate::MachineConfig::deadlock_cycles`]), populated in every
    /// dump regardless of what tripped it — campaigns run with tightened
    /// windows, and a dump must say which budget it was captured under.
    pub deadlock_window: u64,
    /// ROB occupancy.
    pub rob_len: usize,
    /// ROB capacity.
    pub rob_cap: usize,
    /// LSQ occupancy.
    pub lsq_len: usize,
    /// LSQ capacity.
    pub lsq_cap: usize,
    /// LVAQ occupancy.
    pub lvaq_len: usize,
    /// LVAQ capacity.
    pub lvaq_cap: usize,
    /// Events still queued in the scheduler (wheel + overflow heap).
    pub pending_events: usize,
    /// Cycles the LSQ stream stalled for an L1 port so far.
    pub l1_port_stalls: u64,
    /// Cycles the LVAQ stream stalled for an LVC port so far.
    pub lvc_port_stalls: u64,
    /// The ROB head entry, if the ROB is non-empty.
    pub head: Option<HeadSnapshot>,
    /// The last [`RETIRED_PC_WINDOW`] retired pcs, oldest first.
    pub recent_pcs: Vec<u32>,
}

impl fmt::Display for DiagnosticDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline state at cycle {} ({} committed, {} dispatched):",
            self.cycle, self.committed, self.dispatched
        )?;
        writeln!(
            f,
            "  rob {}/{}, lsq {}/{}, lvaq {}/{}, {} pending events",
            self.rob_len,
            self.rob_cap,
            self.lsq_len,
            self.lsq_cap,
            self.lvaq_len,
            self.lvaq_cap,
            self.pending_events
        )?;
        writeln!(
            f,
            "  port stalls: l1 {}, lvc {} (watchdog window {} cycles)",
            self.l1_port_stalls, self.lvc_port_stalls, self.deadlock_window
        )?;
        match &self.head {
            Some(h) => {
                writeln!(
                    f,
                    "  head: uid {} seq {} pc {} {:?} issued={} completed={} waiting={}",
                    h.uid, h.seq, h.pc, h.instr, h.issued, h.completed, h.waiting
                )?;
                if let Some(m) = &h.mem {
                    writeln!(
                        f,
                        "  head mem: {} {} addr {:#x} addr_ready_at={:?} \
                         data_ready_at={:?} launched={} replicated={}",
                        if m.in_lvaq { "lvaq" } else { "lsq" },
                        if m.is_store { "store" } else { "load" },
                        m.addr,
                        m.addr_ready_at,
                        m.data_ready_at,
                        m.launched,
                        m.replicated
                    )?;
                }
            }
            None => writeln!(f, "  head: rob empty")?,
        }
        write!(f, "  recent retired pcs: {:?}", self.recent_pcs)
    }
}

/// Fixed-size ring of the most recently retired pcs, maintained by the
/// commit stage for diagnostics.
#[derive(Clone, Debug)]
pub(crate) struct RetiredPcRing {
    buf: [u32; RETIRED_PC_WINDOW],
    len: usize,
    next: usize,
}

impl RetiredPcRing {
    pub(crate) fn new() -> RetiredPcRing {
        RetiredPcRing {
            buf: [0; RETIRED_PC_WINDOW],
            len: 0,
            next: 0,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, pc: u32) {
        self.buf[self.next] = pc;
        self.next = (self.next + 1) % RETIRED_PC_WINDOW;
        self.len = (self.len + 1).min(RETIRED_PC_WINDOW);
    }

    /// The retained pcs, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let start = if self.len < RETIRED_PC_WINDOW {
            0
        } else {
            self.next
        };
        for i in 0..self.len {
            out.push(self.buf[(start + i) % RETIRED_PC_WINDOW]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_window_oldest_first() {
        let mut r = RetiredPcRing::new();
        assert!(r.snapshot().is_empty());
        for pc in 0..5u32 {
            r.push(pc);
        }
        assert_eq!(r.snapshot(), vec![0, 1, 2, 3, 4]);
        for pc in 5..40u32 {
            r.push(pc);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), RETIRED_PC_WINDOW);
        assert_eq!(snap[0], 40 - RETIRED_PC_WINDOW as u32);
        assert_eq!(*snap.last().unwrap(), 39);
    }
}
