#![warn(missing_docs)]

//! # dda-core — the cycle-level out-of-order superscalar core
//!
//! A from-scratch reimplementation of the machine the paper evaluates: a
//! SimpleScalar `sim-outorder`-style, Register-Update-Unit (RUU) based
//! out-of-order processor (Sohi's RUU scheme) extended with the paper's
//! contribution, the **data-decoupled architecture**:
//!
//! * the memory stream is partitioned *before the instruction window* into
//!   local-variable accesses (steered to the **LVAQ**, backed by the small
//!   **LVC**) and everything else (the conventional LSQ + L1 D-cache);
//! * each queue enforces load/store ordering only against its own stream —
//!   the decoupling benefit;
//! * the LVAQ supports the paper's two optimizations, **fast data
//!   forwarding** (store→load bypass matched on `$sp`-relative offsets
//!   before effective addresses exist, §2.2.2) and **access combining**
//!   (contiguous same-line LVAQ entries share one LVC port, §2.2.2).
//!
//! The base machine parameters (Table 1) are provided by
//! [`MachineConfig::iscapaper_base`]: 16-wide issue/commit, 128-entry ROB,
//! 64-entry LSQ (+64-entry LVAQ), 16 integer + 16 FP ALUs, 4 integer +
//! 4 FP multiply/divide units with MIPS R10000 latencies, perfect
//! front-end, and the `dda-mem` hierarchy.
//!
//! The entry point is [`Simulator`]:
//!
//! ```
//! use dda_core::{MachineConfig, Simulator};
//! use dda_program::{FunctionBuilder, ProgramBuilder};
//! use dda_isa::Gpr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut main = FunctionBuilder::new("main");
//! for i in 0..32 {
//!     main.load_imm(Gpr::T0, i);
//! }
//! main.halt();
//! let mut b = ProgramBuilder::new();
//! b.add_function(main);
//! let program = b.build()?;
//!
//! let cfg = MachineConfig::iscapaper_base(); // the "(2+0)" machine
//! let result = Simulator::new(cfg)?.run(&program, 1_000_000)?;
//! assert!(result.ipc() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! Every failure mode is a value: [`Simulator::new`] rejects invalid
//! configurations with a [`ConfigError`], and a run returns a
//! [`SimError`] — a guest [`Trap`], a watchdog [`DiagnosticDump`], or an
//! auditor-caught invariant violation — instead of panicking.

mod classify;
mod config;
mod diag;
mod entry;
mod error;
mod fault;
mod fu;
mod pipeline;
mod queue;
mod result;
mod trace;

pub use classify::{is_sp_based, Classifier, RegionPredictor, Steer, SteerPolicy};
pub use config::{DecouplingConfig, MachineConfig};
pub use diag::{DiagnosticDump, HeadMemSnapshot, HeadSnapshot, RETIRED_PC_WINDOW};
pub use error::{ConfigError, InvariantViolation, SimError, Trap, TrapKind};
pub use fault::{FaultPlan, FaultStats};
pub use fu::FuPools;
pub use pipeline::Simulator;
pub use result::{QueueStats, ResultCodecError, SimResult, WindowRun};
pub use trace::{InstrTrace, MemPath};
