//! Generator for the integer (SPECint95-like) benchmark stand-ins.
//!
//! Emitted programs follow real compiler conventions: functions allocate a
//! frame by dropping `$sp`, save the callee-saved registers and `$ra` they
//! use (local stores), run loop bodies mixing ALU work, spill/reload pairs,
//! heap and global traffic and calls, then restore and return. All local
//! accesses are `$sp`-based and hinted [`StreamHint::Local`]; heap/global
//! accesses are hinted `NonLocal` — the compiler-exact classification the
//! paper assumes (§2.2.3).

use dda_stats::Rng;

use dda_isa::{AluOp, Gpr, MemWidth, StreamHint};
use dda_program::{FunctionBuilder, MemoryLayout, Program, ProgramBuilder};

/// Instruction mix of one generated basic block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockMix {
    /// Plain ALU operations.
    pub alu: u32,
    /// Spill/reload pairs: a local store immediately reloaded (short reuse
    /// distance — the fast-forwarding targets).
    pub local_pairs: u32,
    /// Local loads of frame slots (parameter/variable reads).
    pub local_loads: u32,
    /// Local stores to frame slots.
    pub local_stores: u32,
    /// Heap loads through a region pointer.
    pub heap_loads: u32,
    /// Heap stores through a region pointer.
    pub heap_stores: u32,
    /// Loads of `$gp`-based global scalars.
    pub global_loads: u32,
    /// Stores to `$gp`-based global scalars.
    pub global_stores: u32,
}

/// A `ctak`-style recursive component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecursionSpec {
    /// Recursion depth per activation from `main`.
    pub depth: u32,
    /// Frame size of the recursive function, in words.
    pub frame_words: u32,
    /// Tree recursion (two self-calls per level) instead of linear.
    pub binary: bool,
    /// Out of every 8 `main`-loop iterations, how many call the recursive
    /// function instead of a top-level function.
    pub weight_of_8: u32,
    /// Extra frame slots written per activation beyond `$ra`/`$a0`.
    pub touched_slots: u32,
    /// ALU operations per activation.
    pub alu: u32,
    /// Heap loads per activation.
    pub heap_loads: u32,
    /// Heap stores per activation.
    pub heap_stores: u32,
    /// Pointer-chase loads per activation (130.li's `ctak` walks cons
    /// cells); requires the benchmark to have a linked ring.
    pub chase: u32,
}

/// Parameters of one integer benchmark stand-in.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct IntParams {
    /// Benchmark name (used for diagnostics only).
    pub name: &'static str,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// Static function counts at the three call-tree levels.
    pub n_top: usize,
    /// Mid-level functions (called by top functions).
    pub n_mid: usize,
    /// Leaf functions (called by mid functions).
    pub n_leaf: usize,
    /// Frame-size range (words) per level, inclusive.
    pub top_frame_words: (u32, u32),
    /// Frame-size range of mid functions.
    pub mid_frame_words: (u32, u32),
    /// Frame-size range of leaf functions.
    pub leaf_frame_words: (u32, u32),
    /// Callee-saved registers saved by each level (prologue stores +
    /// epilogue loads).
    pub top_saves: u32,
    /// Saves in mid functions.
    pub mid_saves: u32,
    /// Saves in leaf functions.
    pub leaf_saves: u32,
    /// Loop iterations inside each function body.
    pub body_loops: u32,
    /// Blocks per loop iteration.
    pub blocks_per_loop: u32,
    /// The per-block instruction mix.
    pub mix: BlockMix,
    /// Calls to mid functions per top-function loop iteration.
    pub calls_per_loop_top: u32,
    /// Calls to leaf functions per mid-function loop iteration.
    pub calls_per_loop_mid: u32,
    /// Optional recursive component (130.li's `ctak`, 126.gcc's deep
    /// passes).
    pub recursion: Option<RecursionSpec>,
    /// Heap working set in bytes, split into per-function regions.
    pub heap_bytes: u32,
    /// Global (static) data span in bytes.
    pub global_bytes: u32,
    /// Stride between successive heap accesses of one function.
    pub heap_stride: u32,
    /// Use byte-width heap accesses (129.compress is byte-oriented).
    pub byte_heap: bool,
    /// Emit one *ambiguous* local access per mid-level function (the
    /// paper's Figure 4: a frame slot reached through a pointer rather
    /// than `$sp`). These carry `StreamHint::Unknown`, so classification
    /// falls to the hardware's 1-bit region predictor (§2.2.3).
    pub ambiguous_mids: bool,
    /// Pointer-chase loads per block: each loads the next link of a
    /// heap-resident linked ring into the chase register, so the loaded
    /// value is the next load's *address* — the latency-critical pattern
    /// of linked-structure code (130.li's cons cells, 147.vortex's object
    /// graph). Zero for array-style programs.
    pub chase: u32,
    /// Footprint of the linked ring in bytes (one link per 32 B line);
    /// rings larger than the L1 make the chase miss, creating the
    /// stack/data L1 conflicts behind the paper's §4.2.1 L2-traffic
    /// observation. Ignored when `chase == 0`.
    pub ring_bytes: u32,
    /// Number of parallel dependence chains in generated code — the ILP
    /// ceiling of the workload. Real SPECint code sustains a handful of
    /// independent chains; without this cap a synthetic program is pure
    /// bandwidth-limited and the Fig. 5 port sweep loses its shape.
    pub ilp: u32,
    /// `main`-loop iterations at `scale = 1`.
    pub base_iters: u32,
}

const TEMPS: [Gpr; 12] = [
    Gpr::T0,
    Gpr::T1,
    Gpr::T2,
    Gpr::T3,
    Gpr::T4,
    Gpr::T5,
    Gpr::T6,
    Gpr::T7,
    Gpr::V0,
    Gpr::V1,
    Gpr::A1,
    Gpr::A2,
];

const ALU_OPS: [AluOp; 6] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Slt,
];

/// State threaded through the emission of one function body.
///
/// Generated code is organised as `ilp` parallel dependence *chains*
/// carried in the first `ilp` temp registers; loads feed values into the
/// remaining temps and the ALU work folds them into the chains, so the
/// workload's instruction-level parallelism is bounded the way real code's
/// is.
struct Emitter<'a> {
    rng: &'a mut Rng,
    /// Pointer-chase loads per block (0 = none).
    chase: u32,
    /// Number of parallel dependence chains.
    ilp: usize,
    /// Chain count for the current block (`ilp` or `ilp + 1`).
    block_ilp: usize,
    /// Round-robin cursor over the chain registers.
    chain_cursor: usize,
    /// Round-robin cursor over the feed (load-destination) registers.
    feed_cursor: usize,
    /// Recently loaded feed registers awaiting consumption by chain ALU
    /// ops.
    pending_feeds: std::collections::VecDeque<Gpr>,
    /// Heap region assigned to this function.
    heap_base: u32,
    heap_len: u32,
    heap_cursor: u32,
    heap_stride: u32,
    /// Local-slot byte range within the frame, 4-aligned.
    local_lo: u32,
    local_hi: u32,
    global_bytes: u32,
    byte_heap: bool,
}

impl Emitter<'_> {
    /// The next chain register (dependence-carrying).
    fn chain(&mut self) -> Gpr {
        let r = TEMPS[self.chain_cursor % self.block_ilp.max(1)];
        self.chain_cursor += 1;
        r
    }

    /// The next feed register (load destination).
    fn feed(&mut self) -> Gpr {
        let n = TEMPS.len() - self.ilp;
        let r = TEMPS[self.ilp + self.feed_cursor % n];
        self.feed_cursor += 1;
        if self.pending_feeds.len() >= n {
            self.pending_feeds.pop_front();
        }
        self.pending_feeds.push_back(r);
        r
    }

    fn local_off(&mut self) -> i32 {
        if self.local_hi <= self.local_lo {
            return self.local_lo as i32;
        }
        let slots = (self.local_hi - self.local_lo) / 4;
        (self.local_lo + self.rng.gen_range(0..slots) * 4) as i32
    }

    fn heap_off(&mut self) -> i32 {
        let off = self.heap_cursor;
        self.heap_cursor += self.heap_stride;
        if self.heap_cursor + 8 > self.heap_len {
            self.heap_cursor = 0;
        }
        off as i32
    }

    fn global_off(&mut self) -> i32 {
        (self.rng.gen_range(0..self.global_bytes / 4) * 4) as i32
    }

    /// One chain ALU op: folds a pending loaded value (or an immediate)
    /// into the next dependence chain.
    fn chain_alu(&mut self, f: &mut FunctionBuilder) {
        let op = ALU_OPS[self.rng.gen_range(0..ALU_OPS.len())];
        let c = self.chain();
        match self.pending_feeds.pop_front() {
            Some(feed) => {
                f.alu(op, c, c, feed);
            }
            None => {
                f.alui(op, c, c, self.rng.gen_range(-64..64));
            }
        }
    }

    fn emit_block(&mut self, f: &mut FunctionBuilder, mix: &BlockMix) {
        // Vary the chain count block to block so the ILP ceiling is not a
        // hard step function.
        self.block_ilp = (self.ilp + self.rng.gen_range(0..2usize)).min(TEMPS.len() - 4);
        // Spill/reload pairs: the dependence chain passes *through* a
        // stack slot, as real register-pressure spills do. The spill is
        // emitted at the top of the block and the reload at the bottom
        // (registers are reused in between), which is the short-reuse
        // pattern the LVAQ's fast data forwarding attacks.
        let mut reloads: Vec<(Gpr, i32)> = Vec::new();
        for _ in 0..mix.local_pairs {
            let off = self.local_off();
            let c = self.chain();
            f.store_local(c, off);
            reloads.push((c, off));
        }
        for _ in 0..mix.local_stores {
            let off = self.local_off();
            let src = self.chain();
            f.store_local(src, off);
        }
        for _ in 0..mix.local_loads {
            let off = self.local_off();
            let dst = self.feed();
            f.load_local(dst, off);
        }
        for _ in 0..mix.heap_loads {
            let off = self.heap_off();
            let dst = self.feed();
            if self.byte_heap {
                f.load(dst, Gpr::K0, off, MemWidth::Byte, StreamHint::NonLocal);
            } else {
                f.load(dst, Gpr::K0, off & !3, MemWidth::Word, StreamHint::NonLocal);
            }
        }
        for _ in 0..mix.heap_stores {
            let off = self.heap_off();
            let src = self.chain();
            if self.byte_heap {
                f.store(src, Gpr::K0, off, MemWidth::Byte, StreamHint::NonLocal);
            } else {
                f.store(src, Gpr::K0, off & !3, MemWidth::Word, StreamHint::NonLocal);
            }
        }
        for _ in 0..mix.global_loads {
            let off = self.global_off();
            let dst = self.feed();
            f.load(dst, Gpr::GP, off, MemWidth::Word, StreamHint::NonLocal);
        }
        for _ in 0..self.chase {
            // The chase register is both base and destination: a serial
            // load→address chain.
            f.load(Gpr::A3, Gpr::A3, 0, MemWidth::Word, StreamHint::NonLocal);
        }
        for _ in 0..mix.global_stores {
            let off = self.global_off();
            let src = self.chain();
            f.store(src, Gpr::GP, off, MemWidth::Word, StreamHint::NonLocal);
        }
        for _ in 0..mix.alu {
            self.chain_alu(f);
        }
        for (c, off) in reloads {
            f.load_local(c, off);
        }
    }
}

/// Per-level shape of a generated function.
struct Shape {
    frame_words: u32,
    saves: u32,
    makes_calls: bool,
    loops: u32,
    blocks: u32,
    calls_per_loop: u32,
    /// Emit the Figure-4 ambiguous frame access at function entry.
    ambiguous: bool,
}

fn saved_regs(saves: u32) -> Vec<Gpr> {
    (0..saves.min(6)).map(|i| Gpr::new(16 + i as u8)).collect() // s0..s5
}

/// Emits a complete function; callees must already be named.
#[allow(clippy::too_many_arguments)]
fn emit_function(
    name: String,
    shape: &Shape,
    mix: &BlockMix,
    callees: &[String],
    rng: &mut Rng,
    heap_region: (u32, u32),
    cursor_slot: Option<i32>,
    params: &IntParams,
) -> FunctionBuilder {
    // The frame must hold the saved registers, $ra, the loop counter
    // ($s6) and at least one local slot.
    let saves = saved_regs(shape.saves);
    let uses_loop = shape.loops > 0;
    let mut reserved = saves.len() as u32;
    if shape.makes_calls {
        reserved += 1; // $ra
    }
    if uses_loop {
        reserved += 1; // $s6
    }
    let frame_words = shape.frame_words.max(reserved + 2);
    let frame_bytes = frame_words * 4;
    let mut f = FunctionBuilder::with_frame(name, frame_bytes);

    // Prologue.
    f.addi(Gpr::SP, Gpr::SP, -(frame_bytes as i32));
    let mut slot = 0i32;
    for &s in &saves {
        f.store_local(s, slot);
        slot += 4;
    }
    let ra_slot = slot;
    if shape.makes_calls {
        f.store_local(Gpr::RA, ra_slot);
        slot += 4;
    }
    let s6_slot = slot;
    if uses_loop {
        f.store_local(Gpr::S6, s6_slot);
        slot += 4;
    }

    let mut em = Emitter {
        rng,
        chase: if cursor_slot.is_some() {
            params.chase
        } else {
            0
        },
        ilp: (params.ilp.max(1) as usize).min(TEMPS.len() - 4),
        block_ilp: (params.ilp.max(1) as usize).min(TEMPS.len() - 4),
        chain_cursor: 0,
        feed_cursor: 0,
        pending_feeds: std::collections::VecDeque::new(),
        heap_base: heap_region.0,
        heap_len: heap_region.1.max(64),
        heap_cursor: 0,
        heap_stride: params.heap_stride.max(1),
        local_lo: slot as u32,
        local_hi: frame_bytes,
        global_bytes: params.global_bytes.max(64),
        byte_heap: params.byte_heap,
    };

    // The paper's Figure 4 pattern: pass the address of a frame slot
    // through a register and access it without the compiler being able
    // to prove the region — hint Unknown, resolved by the predictor.
    if shape.ambiguous && em.local_lo < em.local_hi {
        let off = em.local_lo as i32;
        f.addi(Gpr::AT, Gpr::SP, off);
        f.store(Gpr::T0, Gpr::AT, 0, MemWidth::Word, StreamHint::Unknown);
        f.load(Gpr::T1, Gpr::AT, 0, MemWidth::Word, StreamHint::Unknown);
    }

    // Region pointer, and the persistent ring cursor for pointer chasing
    // (each invocation continues the walk where the last one stopped).
    f.load_imm(Gpr::K0, em.heap_base as i32);
    if let Some(g) = cursor_slot {
        f.load(Gpr::A3, Gpr::GP, g, MemWidth::Word, StreamHint::NonLocal);
    }

    if uses_loop {
        f.load_imm(Gpr::S6, shape.loops as i32);
        let top = f.new_label();
        f.bind(top);
        for b in 0..shape.blocks {
            em.emit_block(&mut f, mix);
            // Distribute calls across the blocks of one iteration.
            if !callees.is_empty() && b < shape.calls_per_loop {
                let callee = &callees[em.rng.gen_range(0..callees.len())];
                f.call(callee.clone());
                // Caller-saved pointer is re-derived after the call.
                f.load_imm(Gpr::K0, em.heap_base as i32);
            }
        }
        f.addi(Gpr::S6, Gpr::S6, -1);
        f.bnez(Gpr::S6, top);
    } else {
        for _ in 0..shape.blocks {
            em.emit_block(&mut f, mix);
        }
    }

    // Epilogue.
    if let Some(g) = cursor_slot {
        f.store(Gpr::A3, Gpr::GP, g, MemWidth::Word, StreamHint::NonLocal);
    }
    if uses_loop {
        f.load_local(Gpr::S6, s6_slot);
    }
    if shape.makes_calls {
        f.load_local(Gpr::RA, ra_slot);
    }
    let mut slot = 0i32;
    for &s in &saves {
        f.load_local(s, slot);
        slot += 4;
    }
    f.addi(Gpr::SP, Gpr::SP, frame_bytes as i32);
    f.ret();
    f
}

fn emit_recursive(
    spec: &RecursionSpec,
    heap_region: (u32, u32),
    stride: u32,
    rng: &mut Rng,
) -> FunctionBuilder {
    let frame_words = spec.frame_words.max(4 + spec.touched_slots);
    let frame_bytes = frame_words * 4;
    let mut f = FunctionBuilder::with_frame("rec", frame_bytes);
    let work = f.new_label();
    f.bnez(Gpr::A0, work);
    f.load_imm(Gpr::V0, 1);
    f.ret();
    f.bind(work);
    f.addi(Gpr::SP, Gpr::SP, -(frame_bytes as i32));
    f.store_local(Gpr::RA, 0);
    f.store_local(Gpr::A0, 4);
    // Touch further frame slots like a real activation would, spread
    // across the whole frame so a fat frame has a fat cache footprint.
    for i in 0..spec.touched_slots {
        let off = 8 + (frame_bytes - 12) * (i + 1) / (spec.touched_slots + 1);
        f.store_local(Gpr::T0, (off & !3) as i32);
    }
    // Per-activation work: ALU plus heap traffic so the recursive
    // component has the benchmark's non-local side too.
    f.load_imm(Gpr::K0, heap_region.0 as i32);
    let mut cursor = 0u32;
    let heap_off = |c: &mut u32| {
        let off = *c;
        *c = (*c + stride.max(8)) % heap_region.1.max(64).saturating_sub(8).max(1);
        (off & !3) as i32
    };
    for _ in 0..spec.heap_loads {
        let off = heap_off(&mut cursor);
        f.load(Gpr::T2, Gpr::K0, off, MemWidth::Word, StreamHint::NonLocal);
    }
    for _ in 0..spec.heap_stores {
        let off = heap_off(&mut cursor);
        f.store(Gpr::T2, Gpr::K0, off, MemWidth::Word, StreamHint::NonLocal);
    }
    // Two dependence chains only: recursive interpreter-style code has
    // little ILP per activation.
    for i in 0..spec.alu {
        let op = ALU_OPS[rng.gen_range(0..ALU_OPS.len())];
        let d = TEMPS[(i as usize) % 2];
        f.alui(op, d, d, 3);
    }
    for _ in 0..spec.chase {
        f.load(Gpr::A3, Gpr::A3, 0, MemWidth::Word, StreamHint::NonLocal);
    }
    f.addi(Gpr::A0, Gpr::A0, -1);
    f.call("rec");
    if spec.binary {
        f.load_local(Gpr::A0, 4);
        f.addi(Gpr::A0, Gpr::A0, -1);
        f.call("rec");
    }
    f.load_local(Gpr::RA, 0);
    f.load_local(Gpr::A0, 4);
    f.addi(Gpr::SP, Gpr::SP, frame_bytes as i32);
    f.ret();
    f
}

/// Generates the full program for one integer benchmark.
pub(crate) fn generate(p: &IntParams, scale: u32) -> Program {
    let mut rng = Rng::seed_from_u64(p.seed);
    let layout = MemoryLayout::standard();
    let heap_base = layout.heap_base();

    // Partition the heap working set into per-function regions.
    let total_funcs = (p.n_top + p.n_mid + p.n_leaf).max(1) as u32;
    let region_len = (p.heap_bytes / total_funcs).max(256) & !7;

    let top_names: Vec<String> = (0..p.n_top).map(|i| format!("top{i}")).collect();
    let mid_names: Vec<String> = (0..p.n_mid).map(|i| format!("mid{i}")).collect();
    let leaf_names: Vec<String> = (0..p.n_leaf).map(|i| format!("leaf{i}")).collect();

    let mut b = ProgramBuilder::new();
    b.layout(layout);

    // The linked ring lives just past the block regions; one link per
    // 32-byte line.
    let ring_links = if p.chase > 0 {
        (p.ring_bytes / 32).max(8)
    } else {
        0
    };
    let ring_base = heap_base + ((total_funcs + 1) * region_len).next_multiple_of(32);
    // Per-function ring cursors live above the random-global span.
    let cursor_base = (p.global_bytes.max(64) as i32 + 63) & !63;

    // main: the outer driver loop.
    let mut main = FunctionBuilder::with_frame("main", 16);
    main.addi(Gpr::SP, Gpr::SP, -16);
    main.store_local(Gpr::RA, 0);
    if ring_links > 0 {
        // Build the ring: mem[link i] = link i+1, last wraps to the base.
        main.load_imm(Gpr::T0, ring_links as i32 - 1);
        main.load_imm(Gpr::K0, ring_base as i32);
        let init_top = main.new_label();
        main.bind(init_top);
        main.addi(Gpr::T1, Gpr::K0, 32);
        main.store(Gpr::T1, Gpr::K0, 0, MemWidth::Word, StreamHint::NonLocal);
        main.mov(Gpr::K0, Gpr::T1);
        main.addi(Gpr::T0, Gpr::T0, -1);
        main.bnez(Gpr::T0, init_top);
        main.load_imm(Gpr::T1, ring_base as i32);
        main.store(Gpr::T1, Gpr::K0, 0, MemWidth::Word, StreamHint::NonLocal);
        // Scatter the per-function cursors around the ring.
        for i in 0..total_funcs {
            let start = ring_base + (ring_links / (total_funcs + 1)) * 32 * i;
            main.load_imm(Gpr::T1, start as i32);
            main.store(
                Gpr::T1,
                Gpr::GP,
                cursor_base + (i as i32) * 4,
                MemWidth::Word,
                StreamHint::NonLocal,
            );
        }
    }
    let iters = (p.base_iters.max(1) as i64 * scale as i64).min(i32::MAX as i64) as i32;
    main.load_imm(Gpr::S7, iters);
    let top_lbl = main.new_label();
    main.bind(top_lbl);
    let rec_weight = p.recursion.map(|r| r.weight_of_8.min(8)).unwrap_or(0);
    // Emit an 8-way unrolled dispatch: `rec_weight` of 8 slots call the
    // recursive component, the rest call round-robin top functions.
    let rec_cursor = cursor_base + total_funcs as i32 * 4;
    let rec_chases = p.recursion.map(|r| r.chase).unwrap_or(0) > 0 && ring_links > 0;
    if rec_chases {
        // Give the recursive component its own ring cursor.
        main.load_imm(Gpr::T1, ring_base as i32);
        main.store(
            Gpr::T1,
            Gpr::GP,
            rec_cursor,
            MemWidth::Word,
            StreamHint::NonLocal,
        );
    }
    for slot8 in 0..8u32 {
        if slot8 < rec_weight {
            let depth = p.recursion.expect("weight implies recursion").depth;
            main.load_imm(Gpr::A0, depth as i32);
            if rec_chases {
                main.load(
                    Gpr::A3,
                    Gpr::GP,
                    rec_cursor,
                    MemWidth::Word,
                    StreamHint::NonLocal,
                );
            }
            main.call("rec");
            if rec_chases {
                main.store(
                    Gpr::A3,
                    Gpr::GP,
                    rec_cursor,
                    MemWidth::Word,
                    StreamHint::NonLocal,
                );
            }
        } else if !top_names.is_empty() {
            let t = &top_names[rng.gen_range(0..top_names.len())];
            main.call(t.clone());
        }
    }
    main.addi(Gpr::S7, Gpr::S7, -1);
    main.bnez(Gpr::S7, top_lbl);
    main.load_local(Gpr::RA, 0);
    main.addi(Gpr::SP, Gpr::SP, 16);
    main.halt();
    b.add_function(main);

    // Function bodies.
    let mut region = 0u32;
    let mut next_region = || {
        let r = heap_base + (region * region_len) % p.heap_bytes.max(region_len);
        region += 1;
        (r, region_len)
    };

    let mut func_idx = 0u32;
    let next_cursor = |idx: &mut u32| -> Option<i32> {
        if ring_links == 0 {
            return None;
        }
        let g = cursor_base + (*idx as i32) * 4;
        *idx += 1;
        Some(g)
    };
    for name in &top_names {
        let frame = rng.gen_range(p.top_frame_words.0..=p.top_frame_words.1);
        let shape = Shape {
            frame_words: frame,
            saves: p.top_saves,
            makes_calls: !mid_names.is_empty(),
            loops: p.body_loops,
            blocks: p.blocks_per_loop,
            calls_per_loop: p.calls_per_loop_top,
            ambiguous: false,
        };
        let cursor = next_cursor(&mut func_idx);
        let f = emit_function(
            name.clone(),
            &shape,
            &p.mix,
            &mid_names,
            &mut rng,
            next_region(),
            cursor,
            p,
        );
        b.add_function(f);
    }
    for name in &mid_names {
        let frame = rng.gen_range(p.mid_frame_words.0..=p.mid_frame_words.1);
        let shape = Shape {
            frame_words: frame,
            saves: p.mid_saves,
            makes_calls: !leaf_names.is_empty(),
            loops: 1,
            blocks: p.blocks_per_loop,
            calls_per_loop: p.calls_per_loop_mid,
            ambiguous: p.ambiguous_mids && rng.gen_bool(0.5),
        };
        let cursor = next_cursor(&mut func_idx);
        let f = emit_function(
            name.clone(),
            &shape,
            &p.mix,
            &leaf_names,
            &mut rng,
            next_region(),
            cursor,
            p,
        );
        b.add_function(f);
    }
    for name in &leaf_names {
        let frame = rng.gen_range(p.leaf_frame_words.0..=p.leaf_frame_words.1);
        let shape = Shape {
            frame_words: frame,
            saves: p.leaf_saves,
            makes_calls: false,
            loops: 0,
            blocks: p.blocks_per_loop,
            calls_per_loop: 0,
            ambiguous: false,
        };
        let cursor = next_cursor(&mut func_idx);
        let f = emit_function(
            name.clone(),
            &shape,
            &p.mix,
            &[],
            &mut rng,
            next_region(),
            cursor,
            p,
        );
        b.add_function(f);
    }
    if let Some(rec) = &p.recursion {
        b.add_function(emit_recursive(rec, next_region(), p.heap_stride, &mut rng));
    }

    b.build()
        .unwrap_or_else(|e| panic!("{}: generator produced invalid program: {e}", p.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use dda_vm::Vm;

    fn tiny_params() -> IntParams {
        IntParams {
            name: "tiny",
            seed: 7,
            n_top: 2,
            n_mid: 2,
            n_leaf: 2,
            top_frame_words: (8, 12),
            mid_frame_words: (4, 8),
            leaf_frame_words: (2, 4),
            top_saves: 3,
            mid_saves: 2,
            leaf_saves: 0,
            body_loops: 2,
            blocks_per_loop: 1,
            mix: BlockMix {
                alu: 4,
                local_pairs: 1,
                local_loads: 1,
                local_stores: 1,
                heap_loads: 1,
                heap_stores: 1,
                global_loads: 1,
                global_stores: 0,
            },
            calls_per_loop_top: 1,
            calls_per_loop_mid: 1,
            recursion: Some(RecursionSpec {
                depth: 3,
                frame_words: 4,
                binary: false,
                weight_of_8: 2,
                touched_slots: 1,
                alu: 4,
                heap_loads: 1,
                heap_stores: 0,
                chase: 1,
            }),
            heap_bytes: 1 << 14,
            global_bytes: 1 << 12,
            heap_stride: 16,
            byte_heap: false,
            ambiguous_mids: true,
            chase: 1,
            ring_bytes: 4 << 10,
            ilp: 4,
            base_iters: 5,
        }
    }

    #[test]
    fn tiny_program_halts_and_balances_the_stack() {
        let p = generate(&tiny_params(), 1);
        let mut vm = Vm::new(p.clone());
        let s = vm.run(10_000_000).unwrap();
        assert!(s.halted, "did not halt");
        assert_eq!(
            vm.gpr(Gpr::SP) as u32,
            p.layout().stack_base(),
            "unbalanced stack"
        );
        assert_eq!(vm.call_depth(), 0);
    }

    #[test]
    fn scale_multiplies_work() {
        let p1 = generate(&tiny_params(), 1);
        let p3 = generate(&tiny_params(), 3);
        let mut v1 = Vm::new(p1);
        let mut v3 = Vm::new(p3);
        let s1 = v1.run(100_000_000).unwrap();
        let s3 = v3.run(100_000_000).unwrap();
        assert!(s1.halted && s3.halted);
        let ratio = s3.executed as f64 / s1.executed as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn recursion_reaches_declared_depth() {
        let mut params = tiny_params();
        params.recursion = Some(RecursionSpec {
            depth: 6,
            frame_words: 4,
            binary: false,
            weight_of_8: 8,
            touched_slots: 0,
            alu: 2,
            heap_loads: 0,
            heap_stores: 0,
            chase: 0,
        });
        let p = generate(&params, 1);
        let mut vm = Vm::new(p);
        vm.run(10_000_000).unwrap();
        // main(+1) -> rec chain of 6.
        assert!(
            vm.max_call_depth() >= 7,
            "max depth {}",
            vm.max_call_depth()
        );
    }

    #[test]
    fn presets_have_distinct_seeds() {
        use crate::Benchmark;
        let mut seeds: Vec<u64> = Benchmark::INTEGER
            .iter()
            .map(|b| presets::int_params(*b).seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), Benchmark::INTEGER.len());
    }
}
