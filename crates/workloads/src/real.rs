//! Hand-written real programs.
//!
//! The preset stand-ins are *statistical* — calibrated mixes whose only
//! ground truth is the paper's workload tables. The programs here are the
//! opposite: small, real algorithms with an independently checkable
//! answer, so the functional simulator can be validated end-to-end
//! (sortedness, a closed-form matrix checksum, `tak(18,12,6) = 7`) and
//! the timing core gets genuine control-flow and data-dependence
//! patterns the generators cannot produce:
//!
//! * [`RealWorkload::Quicksort`] — in-place Lomuto quicksort of 512
//!   LCG-seeded words: data-dependent branches and recursion depth,
//!   pointer-crossing heap traffic, saved-register frames;
//! * [`RealWorkload::Matmul`] — 24×24 double-precision matrix multiply
//!   with a per-element `dot` call: FP loop nests with few, poorly
//!   interleaved local accesses (the paper's §4.3 FP profile);
//! * [`RealWorkload::Tak`] — the Takeuchi function: tree recursion
//!   ~64 K calls deep in aggregate, nothing but frames and locals (the
//!   LVC's best case, `130.li`'s `ctak` in miniature).
//!
//! Every access carries the compiler-exact stream hint (`$sp`-based ⇒
//! `Local`, heap/global ⇒ `NonLocal`), so the programs run clean under
//! the audit oracle; `examples/dump_real.rs` exports them to
//! `tests/corpus/real-*.s` where the corpus-replay harness runs them
//! through both simulation kernels every CI pass.

use dda_isa::{AluOp, BranchCond, FpuOp, Gpr, MemWidth, StreamHint};
use dda_program::{FunctionBuilder, Program, ProgramBuilder};

const HEAP: i32 = 0x2000_0000;
const NL: StreamHint = StreamHint::NonLocal;
const W: MemWidth = MemWidth::Word;

/// Number of words sorted by [`RealWorkload::Quicksort`].
pub const QSORT_N: u32 = 512;
/// LCG seed for the quicksort input.
pub const QSORT_SEED: i32 = 0x5eed;
/// Matrix dimension of [`RealWorkload::Matmul`].
pub const MATMUL_N: u32 = 24;
/// Arguments of [`RealWorkload::Tak`]: `tak(18, 12, 6) = 7`.
pub const TAK_ARGS: (i32, i32, i32) = (18, 12, 6);

/// The hand-written real programs, exported to `tests/corpus/real-*.s`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RealWorkload {
    /// In-place quicksort of [`QSORT_N`] LCG-generated words.
    Quicksort,
    /// [`MATMUL_N`]² double-precision matrix multiply.
    Matmul,
    /// The Takeuchi function on [`TAK_ARGS`].
    Tak,
}

impl RealWorkload {
    /// All real workloads, in corpus-file order.
    pub const ALL: [RealWorkload; 3] = [
        RealWorkload::Quicksort,
        RealWorkload::Matmul,
        RealWorkload::Tak,
    ];

    /// The corpus-entry stem: `tests/corpus/<name>.s`.
    pub fn name(self) -> &'static str {
        match self {
            RealWorkload::Quicksort => "real-quicksort",
            RealWorkload::Matmul => "real-matmul",
            RealWorkload::Tak => "real-tak",
        }
    }

    /// Builds the program.
    pub fn program(self) -> Program {
        match self {
            RealWorkload::Quicksort => quicksort_program(),
            RealWorkload::Matmul => matmul_program(),
            RealWorkload::Tak => tak_program(),
        }
    }
}

impl core::fmt::Display for RealWorkload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The quicksort input, reproduced host-side for verification.
pub fn qsort_input() -> Vec<i32> {
    let mut v = Vec::with_capacity(QSORT_N as usize);
    let mut x = QSORT_SEED;
    for _ in 0..QSORT_N {
        x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        v.push(x);
    }
    v
}

/// In-place quicksort of [`QSORT_N`] words at the heap base.
///
/// `main` fills the array from the LCG, calls the recursive `qsort`,
/// then re-walks the array counting order violations and summing the
/// (wrapping) checksum. Results land in globals: violation count at
/// `$gp+0` (must be 0) and checksum at `$gp+4`.
fn quicksort_program() -> Program {
    let mut main = FunctionBuilder::with_frame("main", 16);
    main.addi(Gpr::SP, Gpr::SP, -16);
    main.store_local(Gpr::RA, 0);
    // Fill: a[i] = lcg(seed), 4-byte words from HEAP.
    main.load_imm(Gpr::T0, HEAP); // cursor
    main.load_imm(Gpr::T1, HEAP + 4 * QSORT_N as i32); // end
    main.load_imm(Gpr::S0, QSORT_SEED);
    main.load_imm(Gpr::T2, 1_103_515_245);
    let fill = main.new_label();
    main.bind(fill);
    main.alu(AluOp::Mul, Gpr::S0, Gpr::S0, Gpr::T2);
    main.alui(AluOp::Add, Gpr::S0, Gpr::S0, 12_345);
    main.store(Gpr::S0, Gpr::T0, 0, W, NL);
    main.addi(Gpr::T0, Gpr::T0, 4);
    main.branch(BranchCond::Lt, Gpr::T0, Gpr::T1, fill);
    // qsort(&a[0], &a[n-1]).
    main.load_imm(Gpr::A0, HEAP);
    main.load_imm(Gpr::A1, HEAP + 4 * (QSORT_N as i32 - 1));
    main.call("qsort");
    // Verify: violations in T5, wrapping sum in T6.
    main.load_imm(Gpr::T0, HEAP);
    main.load_imm(Gpr::T1, HEAP + 4 * (QSORT_N as i32 - 1));
    main.load_imm(Gpr::T5, 0);
    main.load_imm(Gpr::T6, 0);
    let check = main.new_label();
    let in_order = main.new_label();
    main.bind(check);
    main.load(Gpr::T2, Gpr::T0, 0, W, NL);
    main.load(Gpr::T3, Gpr::T0, 4, W, NL);
    main.alu(AluOp::Add, Gpr::T6, Gpr::T6, Gpr::T2);
    main.branch(BranchCond::Le, Gpr::T2, Gpr::T3, in_order);
    main.addi(Gpr::T5, Gpr::T5, 1);
    main.bind(in_order);
    main.addi(Gpr::T0, Gpr::T0, 4);
    main.branch(BranchCond::Lt, Gpr::T0, Gpr::T1, check);
    main.load(Gpr::T3, Gpr::T0, 0, W, NL); // last element joins the sum
    main.alu(AluOp::Add, Gpr::T6, Gpr::T6, Gpr::T3);
    main.store(Gpr::T5, Gpr::GP, 0, W, NL);
    main.store(Gpr::T6, Gpr::GP, 4, W, NL);
    main.load_local(Gpr::RA, 0);
    main.addi(Gpr::SP, Gpr::SP, 16);
    main.halt();

    // qsort(lo = $a0, hi = $a1): Lomuto partition, pivot = *hi.
    let mut q = FunctionBuilder::with_frame("qsort", 32);
    let done = q.new_label();
    q.branch(BranchCond::Ge, Gpr::A0, Gpr::A1, done);
    q.addi(Gpr::SP, Gpr::SP, -32);
    q.store_local(Gpr::RA, 0);
    q.store_local(Gpr::S0, 4);
    q.store_local(Gpr::S1, 8);
    q.store_local(Gpr::S2, 12);
    q.mov(Gpr::S0, Gpr::A0);
    q.mov(Gpr::S1, Gpr::A1);
    q.load(Gpr::T0, Gpr::S1, 0, W, NL); // pivot
    q.addi(Gpr::T1, Gpr::S0, -4); // i, one slot below lo
    q.mov(Gpr::T2, Gpr::S0); // j
    let ploop = q.new_label();
    let pnext = q.new_label();
    let pdone = q.new_label();
    q.bind(ploop);
    q.branch(BranchCond::Ge, Gpr::T2, Gpr::S1, pdone);
    q.load(Gpr::T3, Gpr::T2, 0, W, NL);
    q.branch(BranchCond::Gt, Gpr::T3, Gpr::T0, pnext);
    q.addi(Gpr::T1, Gpr::T1, 4);
    q.load(Gpr::T4, Gpr::T1, 0, W, NL); // swap a[i] <-> a[j]
    q.store(Gpr::T3, Gpr::T1, 0, W, NL);
    q.store(Gpr::T4, Gpr::T2, 0, W, NL);
    q.bind(pnext);
    q.addi(Gpr::T2, Gpr::T2, 4);
    q.jump(ploop);
    q.bind(pdone);
    q.addi(Gpr::T1, Gpr::T1, 4); // pivot's final slot
    q.load(Gpr::T4, Gpr::T1, 0, W, NL); // swap a[i+1] <-> a[hi]
    q.store(Gpr::T4, Gpr::S1, 0, W, NL);
    q.store(Gpr::T0, Gpr::T1, 0, W, NL);
    q.mov(Gpr::S2, Gpr::T1);
    q.mov(Gpr::A0, Gpr::S0); // qsort(lo, p - 1)
    q.addi(Gpr::A1, Gpr::S2, -4);
    q.call("qsort");
    q.addi(Gpr::A0, Gpr::S2, 4); // qsort(p + 1, hi)
    q.mov(Gpr::A1, Gpr::S1);
    q.call("qsort");
    q.load_local(Gpr::RA, 0);
    q.load_local(Gpr::S0, 4);
    q.load_local(Gpr::S1, 8);
    q.load_local(Gpr::S2, 12);
    q.addi(Gpr::SP, Gpr::SP, 32);
    q.bind(done);
    q.ret();

    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.add_function(main);
    b.add_function(q);
    b.build().expect("quicksort links")
}

/// The matmul operands, reproduced host-side: `A[i] = (i % 7 + 1)`,
/// `B[i] = (i % 5 + 2)`, row-major `n × n` doubles.
pub fn matmul_operands() -> (Vec<f64>, Vec<f64>) {
    let nn = (MATMUL_N * MATMUL_N) as usize;
    let a = (0..nn).map(|i| (i % 7 + 1) as f64).collect();
    let b = (0..nn).map(|i| (i % 5 + 2) as f64).collect();
    (a, b)
}

/// The checksum [`RealWorkload::Matmul`] must produce: every `C[i][j]`
/// accumulated in `k` order, then summed row-major — the exact FP
/// operation order of the emitted loops, so equality is bit-exact.
pub fn matmul_checksum() -> f64 {
    let n = MATMUL_N as usize;
    let (a, b) = matmul_operands();
    let mut sum = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f64;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            sum += acc;
        }
    }
    sum
}

/// 24×24 double matrix multiply, `C = A · B`, with a `dot` call per
/// element. The row-major operand bases are `HEAP`, `HEAP + n²·8` and
/// `HEAP + 2n²·8`; the final checksum (sum of all `C`) is written to
/// `$gp + 8` as a double.
fn matmul_program() -> Program {
    use dda_isa::Fpr;
    let n = MATMUL_N as i32;
    let mat = n * n * 8;
    let (a_base, b_base, c_base) = (HEAP, HEAP + mat, HEAP + 2 * mat);

    let mut main = FunctionBuilder::with_frame("main", 32);
    main.addi(Gpr::SP, Gpr::SP, -32);
    main.store_local(Gpr::RA, 0);
    // Init A and B: small integer patterns, exact in double precision.
    for (base, modulus, bias) in [(a_base, 7, 1), (b_base, 5, 2)] {
        main.load_imm(Gpr::T0, base);
        main.load_imm(Gpr::T1, base + mat);
        main.load_imm(Gpr::T2, 0); // i
        main.load_imm(Gpr::T3, modulus);
        let init = main.new_label();
        main.bind(init);
        main.alu(AluOp::Rem, Gpr::T4, Gpr::T2, Gpr::T3);
        main.alui(AluOp::Add, Gpr::T4, Gpr::T4, bias);
        main.int_to_fp(Fpr::new(1), Gpr::T4);
        main.fstore(Fpr::new(1), Gpr::T0, 0, NL);
        main.addi(Gpr::T0, Gpr::T0, 8);
        main.addi(Gpr::T2, Gpr::T2, 1);
        main.branch(BranchCond::Lt, Gpr::T0, Gpr::T1, init);
    }
    // C[i][j] = dot(&A[i][0], &B[0][j]); checksum accumulates in F20.
    main.load_imm(Gpr::S0, a_base); // A row cursor
    main.load_imm(Gpr::S3, c_base); // C cursor
    main.load_imm(Gpr::S4, c_base + mat); // C end
    main.int_to_fp(Fpr::new(20), Gpr::ZERO);
    let rows = main.new_label();
    let cols = main.new_label();
    main.bind(rows);
    main.load_imm(Gpr::S1, b_base); // B column cursor
    main.load_imm(Gpr::S2, b_base + 8 * n);
    main.bind(cols);
    main.mov(Gpr::A0, Gpr::S0);
    main.mov(Gpr::A1, Gpr::S1);
    main.call("dot");
    main.fstore(Fpr::new(0), Gpr::S3, 0, NL);
    main.fpu(FpuOp::Add, Fpr::new(20), Fpr::new(20), Fpr::new(0));
    main.addi(Gpr::S3, Gpr::S3, 8);
    main.addi(Gpr::S1, Gpr::S1, 8);
    main.branch(BranchCond::Lt, Gpr::S1, Gpr::S2, cols);
    main.addi(Gpr::S0, Gpr::S0, 8 * n);
    main.branch(BranchCond::Lt, Gpr::S3, Gpr::S4, rows);
    main.fstore(Fpr::new(20), Gpr::GP, 8, NL);
    main.load_local(Gpr::RA, 0);
    main.addi(Gpr::SP, Gpr::SP, 32);
    main.halt();

    // dot(row = $a0, col = $a1) -> $f0: n terms, col strided by a row.
    // The loop bound is spilled to the frame and reloaded each
    // iteration — the paper's "poorly interleaved" FP local access.
    let mut dot = FunctionBuilder::with_frame("dot", 16);
    dot.addi(Gpr::SP, Gpr::SP, -16);
    dot.alui(AluOp::Add, Gpr::T0, Gpr::A0, 8 * n);
    dot.store_local(Gpr::T0, 0); // row end, reloaded per iteration
    dot.int_to_fp(Fpr::new(0), Gpr::ZERO);
    let terms = dot.new_label();
    dot.bind(terms);
    dot.fload(Fpr::new(1), Gpr::A0, 0, NL);
    dot.fload(Fpr::new(2), Gpr::A1, 0, NL);
    dot.fpu(FpuOp::Mul, Fpr::new(1), Fpr::new(1), Fpr::new(2));
    dot.fpu(FpuOp::Add, Fpr::new(0), Fpr::new(0), Fpr::new(1));
    dot.addi(Gpr::A0, Gpr::A0, 8);
    dot.addi(Gpr::A1, Gpr::A1, 8 * n);
    dot.load_local(Gpr::T0, 0);
    dot.branch(BranchCond::Lt, Gpr::A0, Gpr::T0, terms);
    dot.addi(Gpr::SP, Gpr::SP, 16);
    dot.ret();

    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.add_function(main);
    b.add_function(dot);
    b.build().expect("matmul links")
}

/// The Takeuchi function, reproduced host-side.
pub fn tak(x: i32, y: i32, z: i32) -> i32 {
    if y < x {
        tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y))
    } else {
        z
    }
}

/// `tak(18, 12, 6)`: ~63 K activations of pure frame traffic. The
/// result (7) is written to `$gp + 24`.
fn tak_program() -> Program {
    let mut main = FunctionBuilder::with_frame("main", 16);
    main.addi(Gpr::SP, Gpr::SP, -16);
    main.store_local(Gpr::RA, 0);
    main.load_imm(Gpr::A0, TAK_ARGS.0);
    main.load_imm(Gpr::A1, TAK_ARGS.1);
    main.load_imm(Gpr::A2, TAK_ARGS.2);
    main.call("tak");
    main.store(Gpr::V0, Gpr::GP, 24, W, NL);
    main.load_local(Gpr::RA, 0);
    main.addi(Gpr::SP, Gpr::SP, 16);
    main.halt();

    // tak(x = $a0, y = $a1, z = $a2) -> $v0.
    let mut t = FunctionBuilder::with_frame("tak", 32);
    let base = t.new_label();
    t.branch(BranchCond::Ge, Gpr::A1, Gpr::A0, base); // !(y < x) -> z
    t.addi(Gpr::SP, Gpr::SP, -32);
    t.store_local(Gpr::RA, 0);
    t.store_local(Gpr::A0, 4);
    t.store_local(Gpr::A1, 8);
    t.store_local(Gpr::A2, 12);
    t.addi(Gpr::A0, Gpr::A0, -1); // tak(x-1, y, z)
    t.call("tak");
    t.store_local(Gpr::V0, 16);
    t.load_local(Gpr::A0, 8); // tak(y-1, z, x)
    t.addi(Gpr::A0, Gpr::A0, -1);
    t.load_local(Gpr::A1, 12);
    t.load_local(Gpr::A2, 4);
    t.call("tak");
    t.store_local(Gpr::V0, 20);
    t.load_local(Gpr::A0, 12); // tak(z-1, x, y)
    t.addi(Gpr::A0, Gpr::A0, -1);
    t.load_local(Gpr::A1, 4);
    t.load_local(Gpr::A2, 8);
    t.call("tak");
    t.mov(Gpr::A2, Gpr::V0); // tak(t1, t2, t3)
    t.load_local(Gpr::A0, 16);
    t.load_local(Gpr::A1, 20);
    t.call("tak");
    t.load_local(Gpr::RA, 0);
    t.addi(Gpr::SP, Gpr::SP, 32);
    t.ret();
    t.bind(base);
    t.mov(Gpr::V0, Gpr::A2);
    t.ret();

    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.add_function(main);
    b.add_function(t);
    b.build().expect("tak links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_vm::Vm;

    fn run_to_halt(p: Program) -> Vm {
        let mut vm = Vm::new(p);
        let s = vm.run(50_000_000).expect("real workload executes cleanly");
        assert!(s.halted, "did not halt within 50M instructions");
        vm
    }

    #[test]
    fn quicksort_sorts_and_checksums() {
        let vm = run_to_halt(RealWorkload::Quicksort.program());
        let gp = 0x1000_0000;
        assert_eq!(vm.memory().read_u32(gp), 0, "order violations detected");
        let mut expect = qsort_input();
        expect.sort_unstable();
        let sum = expect.iter().fold(0i32, |s, &x| s.wrapping_add(x));
        assert_eq!(vm.memory().read_u32(gp + 4), sum as u32);
        // Spot-check the array itself, not just the in-program summary.
        for (i, &want) in expect.iter().enumerate() {
            let got = vm.memory().read_u32(0x2000_0000 + 4 * i as u32) as i32;
            assert_eq!(got, want, "a[{i}]");
        }
    }

    #[test]
    fn matmul_matches_the_host_checksum() {
        let vm = run_to_halt(RealWorkload::Matmul.program());
        let got = vm.memory().read_f64(0x1000_0000 + 8);
        let want = matmul_checksum();
        assert_eq!(got.to_bits(), want.to_bits(), "{got} != {want}");
    }

    #[test]
    fn tak_computes_seven() {
        let (x, y, z) = TAK_ARGS;
        assert_eq!(tak(x, y, z), 7, "host reference disagrees");
        let vm = run_to_halt(RealWorkload::Tak.program());
        assert_eq!(vm.memory().read_u32(0x1000_0000 + 24), 7);
        assert!(vm.max_call_depth() >= 10, "recursion never went deep");
    }

    #[test]
    fn real_programs_assemble_round_trip() {
        for w in RealWorkload::ALL {
            let p = w.program();
            let back = dda_program::assemble(&p.to_asm())
                .unwrap_or_else(|e| panic!("{w}: does not re-assemble: {e}"));
            assert_eq!(
                p.instrs(),
                back.instrs(),
                "{w}: asm round-trip changed code"
            );
        }
    }
}
