//! Generator for the floating-point (SPECfp95-like) benchmark stand-ins.
//!
//! FP programs are loop nests sweeping large `f64` arrays with pointer
//! bumps and FP arithmetic chains — exactly the §4.3 shape in which local
//! and non-local accesses are *not* well interleaved: local traffic
//! appears only in short bursts around kernel calls (prologue/epilogue
//! saves and occasional register spills), so "the performance of the (2+2)
//! configuration is close to that of the (2+0) configuration".

use dda_isa::{AluOp, Fpr, FpuOp, Gpr, StreamHint};
use dda_program::{FunctionBuilder, MemoryLayout, Program, ProgramBuilder};
use dda_stats::Rng;

/// Parameters of one floating-point benchmark stand-in.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FpParams {
    /// Benchmark name (diagnostics only).
    pub name: &'static str,
    /// RNG seed.
    pub seed: u64,
    /// Number of distinct compute kernels.
    pub n_kernels: u32,
    /// Number of `f64` arrays each kernel reads/writes.
    pub arrays: u32,
    /// Elements swept per kernel invocation.
    pub elems_per_call: u32,
    /// Array loads per element.
    pub loads_per_elem: u32,
    /// Array stores per element.
    pub stores_per_elem: u32,
    /// FP operations chained per element.
    pub fp_ops_per_elem: u32,
    /// Integer index/bookkeeping operations per element.
    pub int_ops_per_elem: u32,
    /// Strips per kernel call; each strip boundary spills/reloads FP
    /// temporaries to the frame (103.su2cor-style local traffic).
    pub strips: u32,
    /// FP spill pairs per strip boundary.
    pub spills_per_strip: u32,
    /// Callee-saved integer registers saved by each kernel.
    pub saves: u32,
    /// `main`-loop iterations at `scale = 1`.
    pub base_iters: u32,
}

/// Generates the full program for one FP benchmark.
pub(crate) fn generate(p: &FpParams, scale: u32) -> Program {
    let mut rng = Rng::seed_from_u64(p.seed);
    let layout = MemoryLayout::standard();
    let heap = layout.heap_base();

    let arrays = p.arrays.max(1);
    let elems = p.elems_per_call.max(8);
    let array_bytes = elems * 8;
    let kernel_names: Vec<String> = (0..p.n_kernels.max(1))
        .map(|i| format!("kernel{i}"))
        .collect();

    let mut b = ProgramBuilder::new();
    b.layout(layout);

    // main.
    let mut main = FunctionBuilder::with_frame("main", 16);
    main.addi(Gpr::SP, Gpr::SP, -16);
    main.store_local(Gpr::RA, 0);
    let iters = (p.base_iters.max(1) as i64 * scale as i64).min(i32::MAX as i64) as i32;
    main.load_imm(Gpr::S7, iters);
    let top = main.new_label();
    main.bind(top);
    for k in &kernel_names {
        main.call(k.clone());
    }
    main.addi(Gpr::S7, Gpr::S7, -1);
    main.bnez(Gpr::S7, top);
    main.load_local(Gpr::RA, 0);
    main.addi(Gpr::SP, Gpr::SP, 16);
    main.halt();
    b.add_function(main);

    // Kernels.
    for (ki, name) in kernel_names.iter().enumerate() {
        b.add_function(emit_kernel(
            name.clone(),
            ki as u32,
            p,
            arrays,
            elems,
            array_bytes,
            heap,
            &mut rng,
        ));
    }

    b.build()
        .unwrap_or_else(|e| panic!("{}: generator produced invalid program: {e}", p.name))
}

#[allow(clippy::too_many_arguments)]
fn emit_kernel(
    name: String,
    index: u32,
    p: &FpParams,
    arrays: u32,
    elems: u32,
    array_bytes: u32,
    heap: u32,
    rng: &mut Rng,
) -> FunctionBuilder {
    let saves: Vec<Gpr> = (0..p.saves.min(6))
        .map(|i| Gpr::new(16 + i as u8))
        .collect();
    // Frame: saves + spill slots (8 bytes each) + padding.
    let spill_slots = (p.spills_per_strip.max(1) * 2) as i32;
    let frame_bytes = ((saves.len() as i32 + 1) * 4 + spill_slots * 8 + 8 + 7) & !7;
    let mut f = FunctionBuilder::with_frame(name, frame_bytes as u32);

    f.addi(Gpr::SP, Gpr::SP, -frame_bytes);
    let mut slot = 0i32;
    for &s in &saves {
        f.store_local(s, slot);
        slot += 4;
    }
    // 8-align the FP spill area.
    let spill_base = (slot + 7) & !7;

    // Each kernel works on its own array set, laid out back to back.
    let base = heap + index * arrays * array_bytes;
    f.load_imm(Gpr::K0, base as i32);

    let strips = p.strips.max(1);
    let per_strip = (elems / strips).max(1);

    // Strip loop in $t9 (kernels are leaves: no calls clobber it).
    f.load_imm(Gpr::T9, strips as i32);
    let strip_top = f.new_label();
    f.bind(strip_top);

    // Strip boundary: spill/reload FP temporaries — the bursty local
    // traffic FP codes exhibit.
    for sidx in 0..p.spills_per_strip {
        let off = spill_base + (sidx as i32 % spill_slots) * 8;
        let fr = Fpr::new((8 + sidx % 8) as u8);
        f.fstore(fr, Gpr::SP, off, StreamHint::Local);
        f.fload(fr, Gpr::SP, off, StreamHint::Local);
    }

    // Element loop in $t8.
    f.load_imm(Gpr::T8, per_strip as i32);
    let elem_top = f.new_label();
    f.bind(elem_top);
    let mut freg = 0u8;
    let next_f = |n: &mut u8| {
        let r = Fpr::new(*n % 30);
        *n += 1;
        r
    };
    let mut loaded: Vec<Fpr> = Vec::new();
    for l in 0..p.loads_per_elem {
        let arr = l % arrays;
        let fd = next_f(&mut freg);
        f.fload(
            fd,
            Gpr::K0,
            (arr * array_bytes) as i32,
            StreamHint::NonLocal,
        );
        loaded.push(fd);
    }
    let ops = [FpuOp::Add, FpuOp::Mul, FpuOp::Sub];
    let mut acc = loaded.first().copied().unwrap_or(Fpr::F0);
    for o in 0..p.fp_ops_per_elem {
        let op = ops[rng.gen_range(0..ops.len())];
        let other = loaded
            .get((o as usize + 1) % loaded.len().max(1))
            .copied()
            .unwrap_or(acc);
        let fd = next_f(&mut freg);
        f.fpu(op, fd, acc, other);
        acc = fd;
    }
    for s in 0..p.stores_per_elem {
        let arr = (p.loads_per_elem + s) % arrays;
        f.fstore(
            acc,
            Gpr::K0,
            (arr * array_bytes) as i32,
            StreamHint::NonLocal,
        );
    }
    for _ in 0..p.int_ops_per_elem {
        let d = Gpr::new((8 + rng.gen_range(0..6)) as u8); // t0..t5
        f.alui(AluOp::Add, d, d, 1);
    }
    // Advance the element pointer and close the loops.
    f.addi(Gpr::K0, Gpr::K0, 8);
    f.addi(Gpr::T8, Gpr::T8, -1);
    f.bnez(Gpr::T8, elem_top);

    f.addi(Gpr::T9, Gpr::T9, -1);
    f.bnez(Gpr::T9, strip_top);

    // Epilogue.
    let mut slot = 0i32;
    for &s in &saves {
        f.load_local(s, slot);
        slot += 4;
    }
    f.addi(Gpr::SP, Gpr::SP, frame_bytes);
    f.ret();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_isa::Gpr;
    use dda_vm::{StreamProfiler, Vm};

    fn tiny() -> FpParams {
        FpParams {
            name: "tinyfp",
            seed: 11,
            n_kernels: 2,
            arrays: 3,
            elems_per_call: 64,
            loads_per_elem: 3,
            stores_per_elem: 1,
            fp_ops_per_elem: 3,
            int_ops_per_elem: 1,
            strips: 4,
            spills_per_strip: 2,
            saves: 2,
            base_iters: 3,
        }
    }

    #[test]
    fn fp_program_halts_and_balances_stack() {
        let p = generate(&tiny(), 1);
        let mut vm = Vm::new(p.clone());
        let s = vm.run(10_000_000).unwrap();
        assert!(s.halted);
        assert_eq!(vm.gpr(Gpr::SP) as u32, p.layout().stack_base());
    }

    #[test]
    fn fp_traffic_is_mostly_non_local() {
        let p = generate(&tiny(), 1);
        let mut vm = Vm::new(p.clone());
        let mut prof = StreamProfiler::new(&p);
        while let Some(d) = vm.step().unwrap() {
            prof.observe(&d);
        }
        let s = prof.stats();
        assert!(s.loads > 0 && s.stores > 0);
        assert!(
            s.local_mem_fraction() < 0.35,
            "local fraction {}",
            s.local_mem_fraction()
        );
        assert_eq!(s.hint_mismatches, 0);
    }

    #[test]
    fn element_pointer_stays_in_bounds() {
        // The VM errors on out-of-region accesses, so a clean run is the
        // bound check.
        let mut params = tiny();
        params.elems_per_call = 1024;
        params.strips = 1;
        let p = generate(&params, 1);
        let mut vm = Vm::new(p);
        assert!(vm.run(50_000_000).unwrap().halted);
    }
}
