#![warn(missing_docs)]

//! # dda-workloads — SPEC95-calibrated synthetic benchmarks
//!
//! The paper evaluates on eight SPECint95 and four SPECfp95 programs
//! compiled with EGCS 1.1b. Those binaries (and the SPEC inputs) are not
//! redistributable, so this crate builds **synthetic stand-ins**: real
//! programs in the `dda-isa` instruction set, generated deterministically
//! from per-benchmark parameter models calibrated against the workload
//! statistics the paper itself reports:
//!
//! * the load/store frequency and the local (stack) fraction of each
//!   (Figure 2: 30 % of loads and 48 % of stores are local on average;
//!   over 60 %/80 % in `147.vortex`; only ~10 % of all references in
//!   `129.compress`);
//! * the dynamic frame-size distribution (Figure 3: ~3 words average) and
//!   the small static frames (§2.2.1: ~7 words over 4746 functions);
//! * call depth of 4–5 typical, with deep recursion in `130.li` (it runs
//!   `ctak`), large-frame outliers (`124.m88ksim`'s 11 K-word frames are
//!   represented by a large-frame helper), and bursty save/restore
//!   sequences around calls;
//! * FP programs as array-walking loop nests with few, poorly interleaved
//!   local accesses (§4.3).
//!
//! Each stand-in keeps its SPEC name so the experiment tables read like
//! the paper's. The generators produce *executable* programs — the
//! functional simulator runs them and the timing core consumes the real
//! dynamic stream — so all effects (forwarding, combining, cache
//! conflicts, queue contention) emerge from execution, not from replaying
//! canned statistics.
//!
//! ```
//! use dda_workloads::Benchmark;
//! use dda_vm::Vm;
//!
//! let program = Benchmark::Compress.program(1);
//! let mut vm = Vm::new(program);
//! let s = vm.run(2_000_000).expect("benchmark executes cleanly");
//! assert!(s.halted);
//! ```

mod fpgen;
mod intgen;
mod presets;
mod real;

use dda_program::Program;

pub use fpgen::FpParams;
pub use intgen::{BlockMix, IntParams, RecursionSpec};
pub use real::{
    matmul_checksum, matmul_operands, qsort_input, tak, RealWorkload, MATMUL_N, QSORT_N,
    QSORT_SEED, TAK_ARGS,
};

/// Generates a program from custom integer-benchmark parameters — the
/// same machinery behind the SPECint stand-ins, for building your own
/// calibrated workloads.
///
/// # Panics
///
/// Panics if the parameters produce an unlinkable program (e.g. zero
/// functions) or `scale == 0`.
pub fn generate_int(params: &IntParams, scale: u32) -> Program {
    assert!(scale > 0, "scale must be at least 1");
    intgen::generate(params, scale)
}

/// Generates a program from custom floating-point-benchmark parameters.
///
/// # Panics
///
/// As for [`generate_int`].
pub fn generate_fp(params: &FpParams, scale: u32) -> Program {
    assert!(scale > 0, "scale must be at least 1");
    fpgen::generate(params, scale)
}

/// The twelve benchmark stand-ins, named after the SPEC95 programs they
/// model (paper Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// 099.go — game tree search; moderate locals, large code.
    Go,
    /// 124.m88ksim — CPU simulator; includes huge-frame outlier functions.
    M88ksim,
    /// 126.gcc — compiler; many functions, deeper frames, worst LVC hit
    /// rate in the paper.
    Gcc,
    /// 129.compress — tight compression loop; fewest local accesses but
    /// very short local reuse distance.
    Compress,
    /// 130.li — Lisp interpreter running `ctak`; deep recursion, heavy
    /// local traffic, stack/data conflicts in the L1.
    Li,
    /// 132.ijpeg — image compression; blocked array walks plus helper
    /// calls.
    Ijpeg,
    /// 134.perl — interpreter; call-dense with mixed traffic.
    Perl,
    /// 147.vortex — object database; the most local-heavy program in the
    /// suite (>60 % of loads, >80 % of stores).
    Vortex,
    /// 101.tomcatv — vectorised mesh generation (FP).
    Tomcatv,
    /// 102.swim — shallow-water model, stencil kernels (FP).
    Swim,
    /// 103.su2cor — quantum physics, some local spills in kernels (FP).
    Su2cor,
    /// 107.mgrid — multigrid solver, 3-D stencils (FP).
    Mgrid,
}

impl Benchmark {
    /// All twelve benchmarks, integer first, in the paper's Table 2 order.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Go,
        Benchmark::M88ksim,
        Benchmark::Gcc,
        Benchmark::Compress,
        Benchmark::Li,
        Benchmark::Ijpeg,
        Benchmark::Perl,
        Benchmark::Vortex,
        Benchmark::Tomcatv,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Mgrid,
    ];

    /// The eight integer benchmarks.
    pub const INTEGER: [Benchmark; 8] = [
        Benchmark::Go,
        Benchmark::M88ksim,
        Benchmark::Gcc,
        Benchmark::Compress,
        Benchmark::Li,
        Benchmark::Ijpeg,
        Benchmark::Perl,
        Benchmark::Vortex,
    ];

    /// The four floating-point benchmarks.
    pub const FLOAT: [Benchmark; 4] = [
        Benchmark::Tomcatv,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Mgrid,
    ];

    /// The SPEC95 name (paper Table 2).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Go => "099.go",
            Benchmark::M88ksim => "124.m88ksim",
            Benchmark::Gcc => "126.gcc",
            Benchmark::Compress => "129.compress",
            Benchmark::Li => "130.li",
            Benchmark::Ijpeg => "132.ijpeg",
            Benchmark::Perl => "134.perl",
            Benchmark::Vortex => "147.vortex",
            Benchmark::Tomcatv => "101.tomcatv",
            Benchmark::Swim => "102.swim",
            Benchmark::Su2cor => "103.su2cor",
            Benchmark::Mgrid => "107.mgrid",
        }
    }

    /// The short label used on the paper's figure axes ("099", "124", …).
    pub fn label(self) -> &'static str {
        &self.name()[..3]
    }

    /// The input the paper ran (Table 2) — documentation only; the
    /// stand-ins are parameterised by [`Benchmark::program`]'s `scale`.
    pub fn paper_input(self) -> &'static str {
        match self {
            Benchmark::Go => "train",
            Benchmark::M88ksim => "ref",
            Benchmark::Gcc => "stmt-protoize.i",
            Benchmark::Compress => "train (100K)",
            Benchmark::Li => "ctak.lsp",
            Benchmark::Ijpeg => "penguin.ppm",
            Benchmark::Perl => "scrabbl.pl",
            Benchmark::Vortex => "train (1 iter.)",
            Benchmark::Tomcatv => "test (N = 253, 1 iter.)",
            Benchmark::Swim => "test (3 iter.)",
            Benchmark::Su2cor => "test",
            Benchmark::Mgrid => "train (1 iter.)",
        }
    }

    /// Dynamic instruction count of the paper's run, in millions
    /// (Table 2) — for the Table 2 reproduction.
    pub fn paper_minsts(self) -> u32 {
        match self {
            Benchmark::Go => 541,
            Benchmark::M88ksim => 250,
            Benchmark::Gcc => 220,
            Benchmark::Compress => 293,
            Benchmark::Li => 434,
            Benchmark::Ijpeg => 621,
            Benchmark::Perl => 525,
            Benchmark::Vortex => 284,
            Benchmark::Tomcatv => 549,
            Benchmark::Swim => 473,
            Benchmark::Su2cor => 676,
            Benchmark::Mgrid => 684,
        }
    }

    /// Whether this is a floating-point benchmark.
    pub fn is_float(self) -> bool {
        Benchmark::FLOAT.contains(&self)
    }

    /// Builds the stand-in program.
    ///
    /// `scale` multiplies the outer-loop trip count; `scale = 1` gives a
    /// program of a few million dynamic instructions. Experiments usually
    /// run a fixed instruction budget instead, so any `scale` large enough
    /// for the budget behaves identically.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn program(self, scale: u32) -> Program {
        assert!(scale > 0, "scale must be at least 1");
        if self.is_float() {
            fpgen::generate(&presets::fp_params(self), scale)
        } else {
            intgen::generate(&presets::int_params(self), scale)
        }
    }
}

impl core::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_vm::{StreamProfiler, Vm};

    #[test]
    fn all_covers_integer_and_float() {
        assert_eq!(Benchmark::ALL.len(), 12);
        assert_eq!(Benchmark::INTEGER.len() + Benchmark::FLOAT.len(), 12);
        for b in Benchmark::INTEGER {
            assert!(!b.is_float());
        }
        for b in Benchmark::FLOAT {
            assert!(b.is_float());
        }
    }

    #[test]
    fn names_and_labels() {
        assert_eq!(Benchmark::Vortex.name(), "147.vortex");
        assert_eq!(Benchmark::Vortex.label(), "147");
        assert_eq!(Benchmark::Tomcatv.to_string(), "101.tomcatv");
    }

    #[test]
    fn every_benchmark_builds_and_runs_cleanly() {
        for b in Benchmark::ALL {
            let p = b.program(1);
            assert!(!p.is_empty(), "{b}: empty program");
            let mut vm = Vm::new(p.clone());
            let mut prof = StreamProfiler::new(&p);
            for _ in 0..200_000 {
                match vm.step() {
                    Ok(Some(d)) => prof.observe(&d),
                    Ok(None) => break,
                    Err(e) => panic!("{b}: execution error {e}"),
                }
            }
            let s = prof.stats();
            assert!(
                s.instructions >= 100_000 || vm.is_halted(),
                "{b}: too short"
            );
            assert_eq!(s.hint_mismatches, 0, "{b}: misclassified hints");
            assert!(s.loads > 0 && s.stores > 0, "{b}: no memory traffic");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in [Benchmark::Gcc, Benchmark::Swim] {
            let a = b.program(1);
            let c = b.program(1);
            assert_eq!(a.instrs(), c.instrs(), "{b}: non-deterministic generation");
        }
    }

    #[test]
    fn scale_one_halts() {
        // Compress is the cheapest stand-in; scale 1 must halt within a
        // generous budget.
        let p = Benchmark::Compress.program(1);
        let mut vm = Vm::new(p);
        let s = vm.run(50_000_000).unwrap();
        assert!(s.halted);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let _ = Benchmark::Go.program(0);
    }
}
