//! Regenerates the `tests/corpus/real-*.s` entries from the
//! hand-written real workloads.
//!
//! ```text
//! cargo run -p dda-workloads --example dump_real [-- DIR]
//! ```
//!
//! `DIR` defaults to `tests/corpus/` at the workspace root. The checked-in
//! files must match the generators bit-for-bit — `tests/corpus_replay.rs`
//! enforces it — so rerun this after editing `src/real.rs`.

use dda_workloads::RealWorkload;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus").to_string());
    for w in RealWorkload::ALL {
        let path = std::path::Path::new(&dir).join(format!("{}.s", w.name()));
        let asm = w.program().to_asm();
        std::fs::write(&path, &asm).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {} ({} bytes)", path.display(), asm.len());
    }
}
