//! Cache and hierarchy configuration.

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Number of ideal ports (any combination of reads/writes per cycle).
    pub ports: u32,
    /// Number of MSHRs (outstanding misses); the caches are lockup-free.
    pub mshrs: u32,
}

impl CacheConfig {
    /// The paper's L1 D-cache: 32 KB, 2-way, 32 B lines, 2-cycle hit
    /// (Table 1). Port count is per-experiment; default 2.
    pub fn l1_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 << 10,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 2,
            ports: 2,
            mshrs: 8,
        }
    }

    /// The paper's LVC: 2 KB, direct-mapped, 32 B lines, 1-cycle hit
    /// (§4.2.1). Port count is per-experiment; default 2.
    pub fn lvc_2k() -> CacheConfig {
        CacheConfig {
            size_bytes: 2 << 10,
            assoc: 1,
            line_bytes: 32,
            hit_latency: 1,
            ports: 2,
            mshrs: 4,
        }
    }

    /// Returns a copy with a different size (for the Fig. 6 sweep).
    pub fn with_size(mut self, size_bytes: u32) -> CacheConfig {
        self.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different port count (the "(N+M)" sweeps).
    pub fn with_ports(mut self, ports: u32) -> CacheConfig {
        self.ports = ports;
        self
    }

    /// Returns a copy with a different hit latency (the Fig. 10 study).
    pub fn with_hit_latency(mut self, hit_latency: u32) -> CacheConfig {
        self.hit_latency = hit_latency;
        self
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is zero, not a power of two where
    /// required, or inconsistent (size not divisible into sets).
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!("line size {} must be a power of two", self.line_bytes));
        }
        if self.assoc == 0 {
            return Err("associativity must be at least 1".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes * self.assoc) {
            return Err(format!(
                "size {} is not divisible by line*assoc {}",
                self.size_bytes,
                self.line_bytes * self.assoc
            ));
        }
        if !self.n_sets().is_power_of_two() {
            return Err(format!("set count {} must be a power of two", self.n_sets()));
        }
        if self.hit_latency == 0 {
            return Err("hit latency must be at least 1".into());
        }
        if self.ports == 0 {
            return Err("port count must be at least 1".into());
        }
        if self.mshrs == 0 {
            return Err("MSHR count must be at least 1".into());
        }
        Ok(())
    }
}

/// Geometry and timing of the unified L2 plus main memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L2Config {
    /// Total capacity in bytes (paper: 512 KB).
    pub size_bytes: u32,
    /// Associativity (paper: 4-way).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// L2 access (hit) time in cycles (paper: 12).
    pub latency: u32,
    /// Main-memory access time in cycles (paper: 50, fully interleaved).
    pub memory_latency: u32,
}

impl L2Config {
    /// The paper's L2 and memory (Table 1).
    pub fn iscapaper_base() -> L2Config {
        L2Config {
            size_bytes: 512 << 10,
            assoc: 4,
            line_bytes: 32,
            latency: 12,
            memory_latency: 50,
        }
    }
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config::iscapaper_base()
    }
}

/// Configuration of the whole data-memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    /// The L1 D-cache.
    pub l1: CacheConfig,
    /// The local variable cache, or `None` for the baseline "(N+0)"
    /// machine with no decoupling.
    pub lvc: Option<CacheConfig>,
    /// The shared L2 and memory.
    pub l2: L2Config,
}

impl HierarchyConfig {
    /// The paper's base memory system with a 2-port L1 and no LVC — the
    /// "(2+0)" reference configuration.
    pub fn iscapaper_base() -> HierarchyConfig {
        HierarchyConfig { l1: CacheConfig::l1_32k(), lvc: None, l2: L2Config::iscapaper_base() }
    }

    /// The "(N+M)" notation of §4: an N-port L1, plus an M-port 2 KB LVC
    /// when `m > 0`.
    pub fn n_plus_m(n: u32, m: u32) -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::l1_32k().with_ports(n),
            lvc: (m > 0).then(|| CacheConfig::lvc_2k().with_ports(m)),
            l2: L2Config::iscapaper_base(),
        }
    }

    /// Validates both cache geometries.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid cache geometry, prefixed by which
    /// cache it belongs to.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate().map_err(|e| format!("l1: {e}"))?;
        if let Some(lvc) = &self.lvc {
            lvc.validate().map_err(|e| format!("lvc: {e}"))?;
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::iscapaper_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_are_valid() {
        assert_eq!(CacheConfig::l1_32k().validate(), Ok(()));
        assert_eq!(CacheConfig::lvc_2k().validate(), Ok(()));
        assert_eq!(HierarchyConfig::iscapaper_base().validate(), Ok(()));
    }

    #[test]
    fn set_counts() {
        assert_eq!(CacheConfig::l1_32k().n_sets(), 512); // 32K / (32*2)
        assert_eq!(CacheConfig::lvc_2k().n_sets(), 64); // 2K / 32
    }

    #[test]
    fn n_plus_m_constructor() {
        let c = HierarchyConfig::n_plus_m(3, 2);
        assert_eq!(c.l1.ports, 3);
        assert_eq!(c.lvc.unwrap().ports, 2);
        assert_eq!(c.lvc.unwrap().size_bytes, 2 << 10);
        assert!(HierarchyConfig::n_plus_m(4, 0).lvc.is_none());
    }

    #[test]
    fn invalid_geometries_rejected() {
        let bad = CacheConfig { line_bytes: 24, ..CacheConfig::l1_32k() };
        assert!(bad.validate().is_err());
        let bad = CacheConfig { assoc: 0, ..CacheConfig::l1_32k() };
        assert!(bad.validate().is_err());
        let bad = CacheConfig { size_bytes: 1000, ..CacheConfig::l1_32k() };
        assert!(bad.validate().is_err());
        let bad = CacheConfig { ports: 0, ..CacheConfig::l1_32k() };
        assert!(bad.validate().is_err());
        let bad = CacheConfig { hit_latency: 0, ..CacheConfig::l1_32k() };
        assert!(bad.validate().is_err());
        let bad = CacheConfig { mshrs: 0, ..CacheConfig::l1_32k() };
        assert!(bad.validate().is_err());
        // 3 sets (1.5K direct-mapped 512B lines) -> not a power of two
        let bad = CacheConfig {
            size_bytes: 3 << 9,
            assoc: 1,
            line_bytes: 512,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn with_builders() {
        let c = CacheConfig::lvc_2k().with_size(4 << 10).with_ports(3).with_hit_latency(2);
        assert_eq!(c.size_bytes, 4 << 10);
        assert_eq!(c.ports, 3);
        assert_eq!(c.hit_latency, 2);
    }
}
