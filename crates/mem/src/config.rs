//! Cache and hierarchy configuration.

use core::fmt;

/// A structural problem with one cache's geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheConfigError {
    /// `line_bytes` is zero or not a power of two.
    LineBytesNotPowerOfTwo {
        /// The offending line size.
        line_bytes: u32,
    },
    /// `assoc` is zero.
    ZeroAssociativity,
    /// `size_bytes` is zero or not divisible into whole sets.
    SizeNotDivisible {
        /// The offending capacity.
        size_bytes: u32,
        /// `line_bytes * assoc`, the required divisor.
        line_x_assoc: u32,
    },
    /// The derived set count is not a power of two.
    SetsNotPowerOfTwo {
        /// The derived set count.
        sets: u32,
    },
    /// `hit_latency` is zero.
    ZeroHitLatency,
    /// `ports` is zero.
    ZeroPorts,
    /// `mshrs` is zero.
    ZeroMshrs,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CacheConfigError::LineBytesNotPowerOfTwo { line_bytes } => {
                write!(f, "line size {line_bytes} must be a power of two")
            }
            CacheConfigError::ZeroAssociativity => write!(f, "associativity must be at least 1"),
            CacheConfigError::SizeNotDivisible {
                size_bytes,
                line_x_assoc,
            } => {
                write!(
                    f,
                    "size {size_bytes} is not divisible by line*assoc {line_x_assoc}"
                )
            }
            CacheConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count {sets} must be a power of two")
            }
            CacheConfigError::ZeroHitLatency => write!(f, "hit latency must be at least 1"),
            CacheConfigError::ZeroPorts => write!(f, "port count must be at least 1"),
            CacheConfigError::ZeroMshrs => write!(f, "MSHR count must be at least 1"),
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Which cache of the hierarchy a [`CacheConfigError`] belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheId {
    /// The L1 D-cache.
    L1,
    /// The local variable cache.
    Lvc,
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheId::L1 => write!(f, "l1"),
            CacheId::Lvc => write!(f, "lvc"),
        }
    }
}

/// A structural problem with the hierarchy: which cache, and what.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierarchyConfigError {
    /// The cache whose geometry is invalid.
    pub cache: CacheId,
    /// The underlying geometry error.
    pub error: CacheConfigError,
}

impl fmt::Display for HierarchyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.cache, self.error)
    }
}

impl std::error::Error for HierarchyConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Number of ideal ports (any combination of reads/writes per cycle).
    pub ports: u32,
    /// Number of MSHRs (outstanding misses); the caches are lockup-free.
    pub mshrs: u32,
}

impl CacheConfig {
    /// The paper's L1 D-cache: 32 KB, 2-way, 32 B lines, 2-cycle hit
    /// (Table 1). Port count is per-experiment; default 2.
    pub fn l1_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 << 10,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 2,
            ports: 2,
            mshrs: 8,
        }
    }

    /// The paper's LVC: 2 KB, direct-mapped, 32 B lines, 1-cycle hit
    /// (§4.2.1). Port count is per-experiment; default 2.
    pub fn lvc_2k() -> CacheConfig {
        CacheConfig {
            size_bytes: 2 << 10,
            assoc: 1,
            line_bytes: 32,
            hit_latency: 1,
            ports: 2,
            mshrs: 4,
        }
    }

    /// Returns a copy with a different size (for the Fig. 6 sweep).
    pub fn with_size(mut self, size_bytes: u32) -> CacheConfig {
        self.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different port count (the "(N+M)" sweeps).
    pub fn with_ports(mut self, ports: u32) -> CacheConfig {
        self.ports = ports;
        self
    }

    /// Returns a copy with a different hit latency (the Fig. 10 study).
    pub fn with_hit_latency(mut self, hit_latency: u32) -> CacheConfig {
        self.hit_latency = hit_latency;
        self
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheConfigError`] if any field is zero, not a power
    /// of two where required, or inconsistent (size not divisible into
    /// sets).
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::LineBytesNotPowerOfTwo {
                line_bytes: self.line_bytes,
            });
        }
        if self.assoc == 0 {
            return Err(CacheConfigError::ZeroAssociativity);
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes * self.assoc) {
            return Err(CacheConfigError::SizeNotDivisible {
                size_bytes: self.size_bytes,
                line_x_assoc: self.line_bytes * self.assoc,
            });
        }
        if !self.n_sets().is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo {
                sets: self.n_sets(),
            });
        }
        if self.hit_latency == 0 {
            return Err(CacheConfigError::ZeroHitLatency);
        }
        if self.ports == 0 {
            return Err(CacheConfigError::ZeroPorts);
        }
        if self.mshrs == 0 {
            return Err(CacheConfigError::ZeroMshrs);
        }
        Ok(())
    }
}

/// Geometry and timing of the unified L2 plus main memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L2Config {
    /// Total capacity in bytes (paper: 512 KB).
    pub size_bytes: u32,
    /// Associativity (paper: 4-way).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// L2 access (hit) time in cycles (paper: 12).
    pub latency: u32,
    /// Main-memory access time in cycles (paper: 50, fully interleaved).
    pub memory_latency: u32,
}

impl L2Config {
    /// The paper's L2 and memory (Table 1).
    pub fn iscapaper_base() -> L2Config {
        L2Config {
            size_bytes: 512 << 10,
            assoc: 4,
            line_bytes: 32,
            latency: 12,
            memory_latency: 50,
        }
    }
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config::iscapaper_base()
    }
}

/// Configuration of the whole data-memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    /// The L1 D-cache.
    pub l1: CacheConfig,
    /// The local variable cache, or `None` for the baseline "(N+0)"
    /// machine with no decoupling.
    pub lvc: Option<CacheConfig>,
    /// The shared L2 and memory.
    pub l2: L2Config,
}

impl HierarchyConfig {
    /// The paper's base memory system with a 2-port L1 and no LVC — the
    /// "(2+0)" reference configuration.
    pub fn iscapaper_base() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::l1_32k(),
            lvc: None,
            l2: L2Config::iscapaper_base(),
        }
    }

    /// The "(N+M)" notation of §4: an N-port L1, plus an M-port 2 KB LVC
    /// when `m > 0`.
    pub fn n_plus_m(n: u32, m: u32) -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::l1_32k().with_ports(n),
            lvc: (m > 0).then(|| CacheConfig::lvc_2k().with_ports(m)),
            l2: L2Config::iscapaper_base(),
        }
    }

    /// Validates both cache geometries.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid cache geometry, tagged with which
    /// cache it belongs to.
    pub fn validate(&self) -> Result<(), HierarchyConfigError> {
        self.l1.validate().map_err(|error| HierarchyConfigError {
            cache: CacheId::L1,
            error,
        })?;
        if let Some(lvc) = &self.lvc {
            lvc.validate().map_err(|error| HierarchyConfigError {
                cache: CacheId::Lvc,
                error,
            })?;
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::iscapaper_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_are_valid() {
        assert_eq!(CacheConfig::l1_32k().validate(), Ok(()));
        assert_eq!(CacheConfig::lvc_2k().validate(), Ok(()));
        assert_eq!(HierarchyConfig::iscapaper_base().validate(), Ok(()));
    }

    #[test]
    fn set_counts() {
        assert_eq!(CacheConfig::l1_32k().n_sets(), 512); // 32K / (32*2)
        assert_eq!(CacheConfig::lvc_2k().n_sets(), 64); // 2K / 32
    }

    #[test]
    fn n_plus_m_constructor() {
        let c = HierarchyConfig::n_plus_m(3, 2);
        assert_eq!(c.l1.ports, 3);
        assert_eq!(c.lvc.unwrap().ports, 2);
        assert_eq!(c.lvc.unwrap().size_bytes, 2 << 10);
        assert!(HierarchyConfig::n_plus_m(4, 0).lvc.is_none());
    }

    #[test]
    fn invalid_geometries_rejected() {
        let bad = CacheConfig {
            line_bytes: 24,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            assoc: 0,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            size_bytes: 1000,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            ports: 0,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            hit_latency: 0,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            mshrs: 0,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
        // 3 sets (1.5K direct-mapped 512B lines) -> not a power of two
        let bad = CacheConfig {
            size_bytes: 3 << 9,
            assoc: 1,
            line_bytes: 512,
            ..CacheConfig::l1_32k()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn with_builders() {
        let c = CacheConfig::lvc_2k()
            .with_size(4 << 10)
            .with_ports(3)
            .with_hit_latency(2);
        assert_eq!(c.size_bytes, 4 << 10);
        assert_eq!(c.ports, 3);
        assert_eq!(c.hit_latency, 2);
    }
}
