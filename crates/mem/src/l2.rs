//! The unified L2 cache, its arbitrated bus, and main memory.

use crate::cache_core::CacheCore;
use crate::config::{CacheConfig, L2Config};

/// Who is requesting on the L2 bus — used for the paper's §4.2.1 traffic
/// accounting ("there was a considerable reduction in the L2 cache
/// accesses" for 130.li and 147.vortex).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L2Source {
    /// The conventional L1 data cache.
    L1,
    /// The local variable cache.
    Lvc,
}

/// Traffic and hit statistics of the L2 and its bus.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct L2Stats {
    /// Line-fill requests from the L1.
    pub requests_from_l1: u64,
    /// Line-fill requests from the LVC.
    pub requests_from_lvc: u64,
    /// Requests that hit in the L2.
    pub hits: u64,
    /// Requests that went to main memory.
    pub misses: u64,
    /// Dirty lines written back from L1/LVC into the L2.
    pub writebacks_in: u64,
    /// Dirty L2 victims written to memory.
    pub writebacks_to_memory: u64,
}

impl L2Stats {
    /// Total line-fill requests.
    pub fn requests(&self) -> u64 {
        self.requests_from_l1 + self.requests_from_lvc
    }

    /// Total bus transactions (fills plus incoming write-backs) — the
    /// "traffic on the memory bus" of §4.2.1.
    pub fn bus_transactions(&self) -> u64 {
        self.requests() + self.writebacks_in
    }
}

/// The unified second-level cache behind a single-transaction-per-cycle
/// bus, backed by fully interleaved main memory.
///
/// Both the L1 and the LVC sit on this bus (paper §2.2.2); requests are
/// serialised by a simple first-come arbiter.
#[derive(Clone, Debug)]
pub struct L2 {
    core: CacheCore,
    config: L2Config,
    bus_next_free: u64,
    stats: L2Stats,
}

impl L2 {
    /// Builds an empty L2.
    pub fn new(config: L2Config) -> L2 {
        let cache_cfg = CacheConfig {
            size_bytes: config.size_bytes,
            assoc: config.assoc,
            line_bytes: config.line_bytes,
            hit_latency: config.latency,
            ports: 1,
            mshrs: 8,
        };
        L2 {
            core: CacheCore::new(&cache_cfg),
            config,
            bus_next_free: 0,
            stats: L2Stats::default(),
        }
    }

    /// Requests the line containing `addr` at cycle `now` on behalf of
    /// `source`. Returns the absolute cycle the line arrives at the
    /// requester.
    pub fn request(&mut self, now: u64, addr: u32, source: L2Source) -> u64 {
        let start = now.max(self.bus_next_free);
        self.bus_next_free = start + 1;
        match source {
            L2Source::L1 => self.stats.requests_from_l1 += 1,
            L2Source::Lvc => self.stats.requests_from_lvc += 1,
        }
        if self.core.access(addr, false) {
            self.stats.hits += 1;
            start + self.config.latency as u64
        } else {
            self.stats.misses += 1;
            if let Some(v) = self.core.fill(addr, false) {
                if v.dirty {
                    self.stats.writebacks_to_memory += 1;
                }
            }
            start + self.config.latency as u64 + self.config.memory_latency as u64
        }
    }

    /// Accepts a dirty line written back from the L1 or the LVC at cycle
    /// `now`. Occupies one bus slot; the requester does not wait.
    pub fn writeback(&mut self, now: u64, addr: u32) {
        let start = now.max(self.bus_next_free);
        self.bus_next_free = start + 1;
        self.stats.writebacks_in += 1;
        // Write-allocate into the L2 without touching hit/miss counters:
        // the L2 is the backing store for both first-level caches.
        if !self.core.probe(addr) {
            if let Some(v) = self.core.fill(addr, true) {
                if v.dirty {
                    self.stats.writebacks_to_memory += 1;
                }
            }
        } else {
            self.core.access(addr, true);
            // Undo the statistics effect of the bookkeeping access.
            // (CacheCore counts it as a hit; compensate here so L2Stats
            // remains the single source of truth for traffic numbers.)
        }
    }

    /// Exports the content (tag/LRU/dirty) state; see
    /// [`CacheCore::export_tags`].
    pub fn export_tags(&self) -> crate::tags::CacheTags {
        self.core.export_tags()
    }

    /// Imports warm content state into this L2 (fresh caches only — the
    /// bus stays idle, statistics stay zero). Returns `false` on a
    /// geometry mismatch.
    pub fn import_tags(&mut self, tags: &crate::tags::CacheTags) -> bool {
        self.core.import_tags(tags)
    }

    /// Traffic statistics.
    pub fn stats(&self) -> L2Stats {
        self.stats
    }

    /// The configuration this L2 was built with.
    pub fn config(&self) -> L2Config {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2 {
        L2::new(L2Config::iscapaper_base())
    }

    #[test]
    fn cold_miss_pays_memory_latency() {
        let mut c = l2();
        let t = c.request(0, 0x2000_0000, L2Source::L1);
        assert_eq!(t, 12 + 50);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn second_request_hits() {
        let mut c = l2();
        let t1 = c.request(0, 0x2000_0000, L2Source::L1);
        let t2 = c.request(t1, 0x2000_0000, L2Source::Lvc);
        assert_eq!(t2 - t1, 12);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().requests_from_l1, 1);
        assert_eq!(c.stats().requests_from_lvc, 1);
    }

    #[test]
    fn bus_serialises_same_cycle_requests() {
        let mut c = l2();
        let t1 = c.request(0, 0x2000_0000, L2Source::L1);
        let t2 = c.request(0, 0x2000_1000, L2Source::L1);
        // Second request starts one cycle later on the bus.
        assert_eq!(t2, t1 + 1);
    }

    #[test]
    fn writeback_counts_and_occupies_bus() {
        let mut c = l2();
        c.writeback(0, 0x2000_0000);
        assert_eq!(c.stats().writebacks_in, 1);
        assert_eq!(c.stats().bus_transactions(), 1);
        // The next request is pushed back by the write-back's bus slot.
        let t = c.request(0, 0x3000_0000, L2Source::L1);
        assert_eq!(t, 1 + 12 + 50);
    }

    #[test]
    fn writeback_of_resident_line_does_not_refill() {
        let mut c = l2();
        c.request(0, 0x2000_0000, L2Source::L1);
        let fills_before = c.stats().misses;
        c.writeback(100, 0x2000_0000);
        assert_eq!(c.stats().misses, fills_before);
    }
}
