//! Miss status holding registers — the lockup-free machinery.

/// One outstanding miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrEntry {
    /// Line-aligned address being fetched.
    pub line_addr: u32,
    /// Cycle at which the fill completes.
    pub complete_at: u64,
    /// Whether any merged access was a write (the fill is marked dirty).
    pub any_write: bool,
}

/// A small, fully-associative file of outstanding misses.
///
/// Makes the caches *lockup-free* (paper Table 1: "Both caches are
/// lock-up free"): up to `capacity` misses can be outstanding; further
/// misses to the same line merge into the existing entry, and further
/// misses to new lines stall until a register frees up.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
}

impl MshrFile {
    /// Creates an empty file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> MshrFile {
        assert!(capacity > 0, "MSHR capacity must be at least 1");
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
        }
    }

    /// Removes and returns every entry whose fill has completed by `now`.
    pub fn take_completed(&mut self, now: u64) -> Vec<MshrEntry> {
        let mut done = Vec::new();
        self.entries.retain(|e| {
            if e.complete_at <= now {
                done.push(*e);
                false
            } else {
                true
            }
        });
        done
    }

    /// The outstanding entry for `line_addr`, if any.
    pub fn lookup(&self, line_addr: u32) -> Option<MshrEntry> {
        self.entries
            .iter()
            .find(|e| e.line_addr == line_addr)
            .copied()
    }

    /// Merges a new access into the outstanding miss for `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if there is no outstanding miss for that line.
    pub fn merge(&mut self, line_addr: u32, is_write: bool) {
        match self.entries.iter_mut().find(|e| e.line_addr == line_addr) {
            Some(e) => e.any_write |= is_write,
            None => panic!("merge requires an outstanding miss"),
        }
    }

    /// Whether a new miss can be allocated right now.
    pub fn has_free_slot(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// The earliest cycle (≥ `now`) at which a slot is (or will be) free.
    pub fn earliest_free(&self, now: u64) -> u64 {
        if self.has_free_slot() {
            now
        } else {
            match self.entries.iter().map(|e| e.complete_at).min() {
                Some(t) => t.max(now),
                None => now, // capacity 0 is rejected by config validation
            }
        }
    }

    /// Allocates a new outstanding miss.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line already has an entry.
    pub fn allocate(&mut self, line_addr: u32, complete_at: u64, is_write: bool) {
        assert!(self.has_free_slot(), "MSHR file is full");
        assert!(
            self.lookup(line_addr).is_none(),
            "duplicate MSHR for line {line_addr:#x}"
        );
        self.entries.push(MshrEntry {
            line_addr,
            complete_at,
            any_write: is_write,
        });
    }

    /// Number of outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_complete() {
        let mut m = MshrFile::new(2);
        m.allocate(0x100, 50, false);
        assert_eq!(m.lookup(0x100).unwrap().complete_at, 50);
        assert!(m.lookup(0x200).is_none());
        assert!(m.take_completed(49).is_empty());
        let done = m.take_completed(50);
        assert_eq!(done.len(), 1);
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn merge_sets_write_flag() {
        let mut m = MshrFile::new(1);
        m.allocate(0x100, 50, false);
        m.merge(0x100, true);
        assert!(m.lookup(0x100).unwrap().any_write);
    }

    #[test]
    fn earliest_free_when_full() {
        let mut m = MshrFile::new(2);
        m.allocate(0x100, 50, false);
        m.allocate(0x200, 30, false);
        assert!(!m.has_free_slot());
        assert_eq!(m.earliest_free(10), 30);
        assert_eq!(m.earliest_free(40), 40);
        m.take_completed(30);
        assert!(m.has_free_slot());
        assert_eq!(m.earliest_free(10), 10);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn allocate_when_full_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(0x100, 50, false);
        m.allocate(0x200, 50, false);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_line_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(0x100, 50, false);
        m.allocate(0x100, 60, false);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
