//! A first-level, lockup-free data cache (L1 D-cache or LVC).

use crate::cache_core::CacheCore;
use crate::config::CacheConfig;
use crate::l2::{L2Source, L2};
use crate::mshr::MshrFile;

/// The outcome of one timed cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// Absolute cycle at which the data is available (loads) or the
    /// access is fully absorbed (stores).
    pub complete_at: u64,
    /// Whether the access hit in this cache (miss-merges count as
    /// misses).
    pub hit: bool,
}

/// Access statistics of a [`DataCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DataCacheStats {
    /// Load accesses.
    pub reads: u64,
    /// Store accesses.
    pub writes: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Primary misses (allocated an MSHR and went to the L2).
    pub misses: u64,
    /// Secondary misses merged into an outstanding MSHR.
    pub miss_merges: u64,
    /// Accesses delayed because every MSHR was busy.
    pub mshr_stalls: u64,
}

impl DataCacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Miss rate counting merges as misses (0 if no accesses).
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            (self.misses + self.miss_merges) as f64 / a as f64
        }
    }
}

/// A lockup-free, write-back/write-allocate cache with a finite MSHR file,
/// fetching lines from a shared [`L2`].
///
/// Timing is analytic: calls must present non-decreasing `now` cycles (a
/// cycle-stepped pipeline does this naturally). Fills take architectural
/// effect when their latency has elapsed, so the content model stays
/// faithful to the timing model.
#[derive(Clone, Debug)]
pub struct DataCache {
    core: CacheCore,
    config: CacheConfig,
    mshrs: MshrFile,
    source: L2Source,
    stats: DataCacheStats,
    /// Line-aligned addresses of resident lines whose content has been
    /// corrupted by fault injection. A "parity check" on a later access
    /// detects (and clears) the corruption; an eviction silently drops
    /// it. Empty — and never touched — outside fault campaigns.
    poisoned: Vec<u32>,
    poison_evictions: u64,
}

impl DataCache {
    /// Builds an empty cache that identifies itself to the L2 as `source`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig, source: L2Source) -> DataCache {
        DataCache {
            core: CacheCore::new(&config),
            mshrs: MshrFile::new(config.mshrs),
            config,
            source,
            stats: DataCacheStats::default(),
            poisoned: Vec::new(),
            poison_evictions: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Applies every fill that has completed by `now` (lines become
    /// resident, dirty victims are written back on the L2 bus).
    fn apply_completed_fills(&mut self, now: u64, l2: &mut L2) {
        for e in self.mshrs.take_completed(now) {
            if let Some(v) = self.core.fill(e.line_addr, e.any_write) {
                if v.dirty {
                    l2.writeback(now, v.line_addr);
                }
                // A poisoned victim leaves the cache unnoticed: the
                // corruption escapes without ever tripping a parity check.
                if let Some(i) = self.poisoned.iter().position(|&p| p == v.line_addr) {
                    self.poisoned.swap_remove(i);
                    self.poison_evictions += 1;
                }
            }
        }
    }

    /// Attempts a timed access at cycle `now`.
    ///
    /// Port arbitration is the caller's business (see
    /// [`crate::PortMeter`]); this method models tags, MSHRs and the L2
    /// round trip. Returns `None` when the access misses and every MSHR
    /// is busy — a structural hazard: the cache cannot even *accept* the
    /// miss, and the pipeline must retry the access on a later cycle
    /// (which keeps the number of queued misses bounded by the machine's
    /// instruction window, as in real lockup-free caches).
    pub fn try_access(
        &mut self,
        now: u64,
        addr: u32,
        is_write: bool,
        l2: &mut L2,
    ) -> Option<Completion> {
        let line = self.core.line_addr(addr);
        self.apply_completed_fills(now, l2);

        // Secondary miss: merge into the outstanding fill.
        if let Some(e) = self.mshrs.lookup(line) {
            self.count(is_write);
            self.mshrs.merge(line, is_write);
            self.stats.miss_merges += 1;
            return Some(Completion {
                complete_at: e.complete_at.max(now + self.config.hit_latency as u64),
                hit: false,
            });
        }

        if self.core.access(addr, is_write) {
            self.count(is_write);
            self.stats.hits += 1;
            return Some(Completion {
                complete_at: now + self.config.hit_latency as u64,
                hit: true,
            });
        }

        // Primary miss: needs an MSHR.
        if self.mshrs.has_free_slot() {
            self.count(is_write);
            let fill_done = l2.request(now, line, self.source);
            self.mshrs.allocate(line, fill_done, is_write);
            self.stats.misses += 1;
            return Some(Completion {
                complete_at: fill_done.max(now + self.config.hit_latency as u64),
                hit: false,
            });
        }

        // Every MSHR busy: the access is not accepted this cycle.
        // (The tag probe above counted a miss in the CacheCore stats;
        // that is faithful — the retry will probe again.)
        self.stats.mshr_stalls += 1;
        None
    }

    /// Performs a timed access at cycle `now`, waiting out MSHR
    /// exhaustion internally.
    ///
    /// Convenience wrapper over [`DataCache::try_access`] for callers
    /// without a retry loop of their own (tests, trace-driven studies):
    /// when the miss cannot be accepted, the access is retried at the
    /// cycle an MSHR frees up.
    pub fn access(&mut self, now: u64, addr: u32, is_write: bool, l2: &mut L2) -> Completion {
        let mut start = now;
        loop {
            if let Some(c) = self.try_access(start, addr, is_write, l2) {
                return c;
            }
            start = self.mshrs.earliest_free(start).max(start + 1);
        }
    }

    fn count(&mut self, is_write: bool) {
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
    }

    /// Whether the line containing `addr` is resident (no side effects).
    pub fn probe(&self, addr: u32) -> bool {
        self.core.probe(addr)
    }

    /// Marks the resident line containing `addr` as corrupted (fault
    /// injection). Returns `false` — and injects nothing — when the line
    /// is not resident or is already poisoned.
    pub fn poison_line(&mut self, addr: u32) -> bool {
        let line = self.core.line_addr(addr);
        if !self.core.probe(line) || self.poisoned.contains(&line) {
            return false;
        }
        self.poisoned.push(line);
        true
    }

    /// Parity check on the line containing `addr`: reports whether it was
    /// poisoned, and scrubs the poison if so (the check caught it).
    pub fn check_poison(&mut self, addr: u32) -> bool {
        let line = self.core.line_addr(addr);
        match self.poisoned.iter().position(|&p| p == line) {
            Some(i) => {
                self.poisoned.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Number of currently poisoned (corrupted, undetected) lines.
    pub fn poisoned_lines(&self) -> usize {
        self.poisoned.len()
    }

    /// Poisoned lines that were evicted without a parity check seeing
    /// them — injected corruption that escaped the cache silently.
    pub fn poison_evictions(&self) -> u64 {
        self.poison_evictions
    }

    /// Exports the content (tag/LRU/dirty) state; see
    /// [`CacheCore::export_tags`].
    pub fn export_tags(&self) -> crate::tags::CacheTags {
        self.core.export_tags()
    }

    /// Imports warm content state into this cache. Intended for *fresh*
    /// caches (empty MSHRs, zero statistics) before a detailed window
    /// starts; returns `false` and leaves the cache untouched when the
    /// snapshot does not fit this geometry.
    pub fn import_tags(&mut self, tags: &crate::tags::CacheTags) -> bool {
        self.core.import_tags(tags)
    }

    /// Access statistics.
    pub fn stats(&self) -> DataCacheStats {
        self.stats
    }

    /// Write-backs generated by this cache's evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.core.stats().writebacks
    }

    /// Outstanding misses right now (for occupancy introspection).
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.outstanding()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2Config;

    fn setup() -> (DataCache, L2) {
        (
            DataCache::new(CacheConfig::l1_32k(), L2Source::L1),
            L2::new(L2Config::iscapaper_base()),
        )
    }

    #[test]
    fn hit_takes_hit_latency() {
        let (mut c, mut l2) = setup();
        let m = c.access(0, 0x2000_0000, false, &mut l2);
        assert!(!m.hit);
        assert_eq!(m.complete_at, 62); // 12 + 50
        let h = c.access(m.complete_at, 0x2000_0000, false, &mut l2);
        assert!(h.hit);
        assert_eq!(h.complete_at, m.complete_at + 2);
    }

    #[test]
    fn line_not_resident_until_fill_completes() {
        let (mut c, mut l2) = setup();
        let m = c.access(0, 0x2000_0000, false, &mut l2);
        assert!(!c.probe(0x2000_0000));
        // An access in the shadow of the fill merges, not hits.
        let merged = c.access(10, 0x2000_0004, false, &mut l2);
        assert!(!merged.hit);
        assert_eq!(merged.complete_at, m.complete_at);
        assert_eq!(c.stats().miss_merges, 1);
        // After the fill lands it is resident.
        let h = c.access(m.complete_at, 0x2000_0008, false, &mut l2);
        assert!(h.hit);
        assert!(c.probe(0x2000_0000));
    }

    #[test]
    fn merged_write_dirties_the_fill() {
        let (mut c, mut l2) = setup();
        c.access(0, 0x2000_0000, false, &mut l2); // read miss
        c.access(1, 0x2000_0004, true, &mut l2); // merged write
                                                 // Land the fill, then evict it by filling conflicting lines.
        c.access(100, 0x2000_0000, false, &mut l2);
        let before = c.writebacks();
        // 32KB 2-way, 512 sets * 32B => same-set stride is 16 KB.
        let m1 = c.access(200, 0x2000_4000, false, &mut l2);
        let m2 = c.access(m1.complete_at, 0x2000_8000, false, &mut l2);
        let m3 = c.access(m2.complete_at, 0x2000_c000, false, &mut l2);
        c.access(m3.complete_at + 100, 0x2001_0000, false, &mut l2);
        // Let all fills land.
        c.access(5000, 0x2000_4000, false, &mut l2);
        assert!(
            c.writebacks() > before,
            "dirty line from merged write was evicted"
        );
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let cfg = CacheConfig {
            mshrs: 1,
            ..CacheConfig::l1_32k()
        };
        let mut c = DataCache::new(cfg, L2Source::L1);
        let mut l2 = L2::new(L2Config::iscapaper_base());
        let a = c.access(0, 0x2000_0000, false, &mut l2);
        let b = c.access(0, 0x3000_0000, false, &mut l2);
        assert!(
            b.complete_at > a.complete_at,
            "second miss waited for the only MSHR"
        );
        assert_eq!(c.stats().mshr_stalls, 1);
    }

    #[test]
    fn stats_accounting() {
        let (mut c, mut l2) = setup();
        c.access(0, 0x2000_0000, false, &mut l2);
        c.access(100, 0x2000_0000, true, &mut l2);
        c.access(200, 0x2000_0000, false, &mut l2);
        let s = c.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lvc_geometry_one_cycle_hits() {
        let mut c = DataCache::new(CacheConfig::lvc_2k(), L2Source::Lvc);
        let mut l2 = L2::new(L2Config::iscapaper_base());
        let sp = 0x7fff_ff00;
        let m = c.access(0, sp, true, &mut l2);
        let h = c.access(m.complete_at, sp, false, &mut l2);
        assert!(h.hit);
        assert_eq!(h.complete_at, m.complete_at + 1);
        assert_eq!(l2.stats().requests_from_lvc, 1);
    }
}
