//! The assembled data-memory hierarchy.

use crate::config::{HierarchyConfig, HierarchyConfigError};
use crate::data_cache::{Completion, DataCache, DataCacheStats};
use crate::l2::{L2Source, L2Stats, L2};

/// The whole data-memory side of the machine: L1 D-cache, optional LVC,
/// shared L2 + memory.
///
/// The out-of-order core claims a cache port from its
/// [`crate::PortMeter`]s when a memory instruction enters the memory
/// pipeline (address generation), then performs the timed access through
/// [`Hierarchy::l1_access`] / [`Hierarchy::lvc_access`] — loads when
/// disambiguated, stores at commit.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: DataCache,
    lvc: Option<DataCache>,
    l2: L2,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HierarchyConfig::validate`];
    /// use [`Hierarchy::try_new`] to handle invalid geometries.
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        match Hierarchy::try_new(config) {
            Ok(h) => h,
            Err(e) => panic!("invalid hierarchy configuration: {e}"),
        }
    }

    /// Builds an empty hierarchy, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns the first invalid cache geometry, tagged with which cache
    /// it belongs to.
    pub fn try_new(config: HierarchyConfig) -> Result<Hierarchy, HierarchyConfigError> {
        config.validate()?;
        Ok(Hierarchy {
            config,
            l1: DataCache::new(config.l1, L2Source::L1),
            lvc: config.lvc.map(|c| DataCache::new(c, L2Source::Lvc)),
            l2: L2::new(config.l2),
        })
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Whether an LVC is present (a "(N+M)" machine with M > 0).
    pub fn has_lvc(&self) -> bool {
        self.lvc.is_some()
    }

    /// Timed access through the L1 D-cache.
    pub fn l1_access(&mut self, now: u64, addr: u32, is_write: bool) -> Completion {
        self.l1.access(now, addr, is_write, &mut self.l2)
    }

    /// Non-blocking access through the L1: `None` when the miss cannot be
    /// accepted because every MSHR is busy (retry next cycle).
    pub fn l1_try_access(&mut self, now: u64, addr: u32, is_write: bool) -> Option<Completion> {
        self.l1.try_access(now, addr, is_write, &mut self.l2)
    }

    /// Non-blocking access through the LVC; see
    /// [`Hierarchy::l1_try_access`].
    ///
    /// # Panics
    ///
    /// Panics if the machine has no LVC.
    pub fn lvc_try_access(&mut self, now: u64, addr: u32, is_write: bool) -> Option<Completion> {
        match self.lvc.as_mut() {
            Some(lvc) => lvc.try_access(now, addr, is_write, &mut self.l2),
            None => panic!("machine has no LVC"),
        }
    }

    /// Timed access through the LVC.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no LVC; the core must steer local
    /// accesses to the L1 when decoupling is off.
    pub fn lvc_access(&mut self, now: u64, addr: u32, is_write: bool) -> Completion {
        match self.lvc.as_mut() {
            Some(lvc) => lvc.access(now, addr, is_write, &mut self.l2),
            None => panic!("machine has no LVC"),
        }
    }

    /// Marks the resident L1 line containing `addr` as corrupted (fault
    /// injection); `false` when the line is not resident.
    pub fn l1_poison_line(&mut self, addr: u32) -> bool {
        self.l1.poison_line(addr)
    }

    /// Marks the resident LVC line containing `addr` as corrupted; `false`
    /// when there is no LVC or the line is not resident.
    pub fn lvc_poison_line(&mut self, addr: u32) -> bool {
        self.lvc.as_mut().is_some_and(|c| c.poison_line(addr))
    }

    /// Parity check on the L1 line containing `addr`: whether it was
    /// poisoned (the poison is scrubbed when detected).
    pub fn l1_check_poison(&mut self, addr: u32) -> bool {
        self.l1.check_poison(addr)
    }

    /// Parity check on the LVC line containing `addr`; `false` when there
    /// is no LVC.
    pub fn lvc_check_poison(&mut self, addr: u32) -> bool {
        self.lvc.as_mut().is_some_and(|c| c.check_poison(addr))
    }

    /// Poisoned lines still resident and undetected, across both caches.
    pub fn poisoned_lines(&self) -> usize {
        self.l1.poisoned_lines() + self.lvc.as_ref().map_or(0, |c| c.poisoned_lines())
    }

    /// Poisoned lines evicted without detection, across both caches.
    pub fn poison_evictions(&self) -> u64 {
        self.l1.poison_evictions() + self.lvc.as_ref().map_or(0, |c| c.poison_evictions())
    }

    /// Exports the tag state of all three caches (for checkpoints and
    /// warm-window hand-off).
    pub fn export_tags(&self) -> crate::tags::HierarchyTags {
        crate::tags::HierarchyTags {
            l1: self.l1.export_tags(),
            lvc: self.lvc.as_ref().map(|c| c.export_tags()),
            l2: self.l2.export_tags(),
        }
    }

    /// Imports warm tag state into this (fresh) hierarchy. Returns
    /// `false` — leaving every cache untouched — when the snapshot's
    /// shape does not match (LVC presence or any cache geometry).
    pub fn import_tags(&mut self, tags: &crate::tags::HierarchyTags) -> bool {
        // Validate the whole snapshot before mutating anything.
        if self.lvc.is_some() != tags.lvc.is_some() {
            return false;
        }
        let mut probe = self.clone();
        if !probe.l1.import_tags(&tags.l1) || !probe.l2.import_tags(&tags.l2) {
            return false;
        }
        if let (Some(lvc), Some(t)) = (&mut probe.lvc, &tags.lvc) {
            if !lvc.import_tags(t) {
                return false;
            }
        }
        *self = probe;
        true
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> DataCacheStats {
        self.l1.stats()
    }

    /// LVC statistics (`None` when no LVC is configured).
    pub fn lvc_stats(&self) -> Option<DataCacheStats> {
        self.lvc.as_ref().map(|c| c.stats())
    }

    /// L2/bus statistics.
    pub fn l2_stats(&self) -> L2Stats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_machine_has_no_lvc() {
        let h = Hierarchy::new(HierarchyConfig::iscapaper_base());
        assert!(!h.has_lvc());
        assert!(h.lvc_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "no LVC")]
    fn lvc_access_without_lvc_panics() {
        let mut h = Hierarchy::new(HierarchyConfig::n_plus_m(2, 0));
        h.lvc_access(0, 0x7fff_ff00, false);
    }

    #[test]
    fn l1_and_lvc_share_the_l2() {
        let mut h = Hierarchy::new(HierarchyConfig::n_plus_m(2, 2));
        assert!(h.has_lvc());
        h.l1_access(0, 0x2000_0000, false);
        h.lvc_access(0, 0x7fff_ff00, true);
        let l2 = h.l2_stats();
        assert_eq!(l2.requests_from_l1, 1);
        assert_eq!(l2.requests_from_lvc, 1);
    }

    #[test]
    fn lvc_hits_are_one_cycle() {
        let mut h = Hierarchy::new(HierarchyConfig::n_plus_m(2, 2));
        let sp = 0x7fff_ff00;
        let m = h.lvc_access(0, sp, true);
        let hit = h.lvc_access(m.complete_at, sp, false);
        assert!(hit.hit);
        assert_eq!(hit.complete_at - m.complete_at, 1);
    }

    #[test]
    fn dirty_lvc_victims_write_back_through_the_shared_bus() {
        let mut h = Hierarchy::new(HierarchyConfig::n_plus_m(1, 1));
        // Two stack lines that conflict in the 2 KB direct-mapped LVC.
        let a = 0x7fff_f000u32;
        let b = a - 2048;
        let t1 = h.lvc_access(0, a, true).complete_at; // dirty fill of a
        let t2 = h.lvc_access(t1, b, true).complete_at; // evicts a (dirty)
                                                        // Let the second fill land so the eviction happens.
        h.lvc_access(t2 + 1, b, false);
        let l2 = h.l2_stats();
        assert_eq!(l2.requests_from_lvc, 2);
        assert!(l2.writebacks_in >= 1, "dirty victim must reach the L2");
    }

    #[test]
    fn hierarchy_timing_is_monotone_under_interleaved_traffic() {
        let mut h = Hierarchy::new(HierarchyConfig::n_plus_m(2, 2));
        let mut last = 0;
        for i in 0..200u32 {
            let stack = 0x7fff_0000 + (i % 64) * 32;
            let heap = 0x2000_0000 + i * 32;
            let a = h.lvc_access(i as u64, stack, i % 3 == 0);
            let b = h.l1_access(i as u64, heap, i % 5 == 0);
            assert!(a.complete_at > i as u64);
            assert!(b.complete_at > i as u64);
            last = last.max(a.complete_at).max(b.complete_at);
        }
        assert!(last > 200);
        // All primary misses flowed through the single shared bus.
        let l2 = h.l2_stats();
        assert!(l2.requests_from_l1 > 0 && l2.requests_from_lvc > 0);
    }

    #[test]
    fn config_accessor_round_trips() {
        let cfg = HierarchyConfig::n_plus_m(3, 2);
        let h = Hierarchy::new(cfg);
        assert_eq!(h.config(), cfg);
    }

    #[test]
    fn disjoint_streams_never_share_lines() {
        // A stack line cached in the LVC is never requested by the L1 and
        // vice versa when streams are classified exactly; this test just
        // pins the bookkeeping apart.
        let mut h = Hierarchy::new(HierarchyConfig::n_plus_m(1, 1));
        let stack = 0x7fff_fe00;
        let heap = 0x2000_0000;
        let a = h.lvc_access(0, stack, true);
        let b = h.l1_access(0, heap, true);
        h.lvc_access(a.complete_at, stack, false);
        h.l1_access(b.complete_at, heap, false);
        assert_eq!(h.lvc_stats().unwrap().accesses(), 2);
        assert_eq!(h.l1_stats().accesses(), 2);
        assert_eq!(h.l2_stats().requests(), 2);
    }
}
