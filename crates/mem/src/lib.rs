#![warn(missing_docs)]

//! # dda-mem — the data memory hierarchy
//!
//! Cycle-level models of the caches and memory of the paper's base machine
//! (Table 1):
//!
//! * a lockup-free, write-back/write-allocate, set-associative
//!   [`DataCache`] with LRU replacement and a finite pool of MSHRs — used
//!   both for the 32 KB 2-way L1 D-cache and for the small direct-mapped
//!   **local variable cache** (LVC);
//! * a unified [`L2`] (512 KB, 4-way, 12-cycle) behind a single-issue bus,
//!   shared by the L1 and the LVC exactly as in the paper ("the LVC ...
//!   will be attached to the memory bus connecting to the L2 cache",
//!   §2.2.2), backed by a fully interleaved 50-cycle main memory;
//! * a [`Hierarchy`] bundling the above, the unit the out-of-order core
//!   talks to;
//! * a [`PortMeter`] implementing the paper's *ideal port* model: an
//!   N-port cache can service any combination of N requests per cycle
//!   (§4, footnote 8).
//!
//! Timing is analytic rather than event-driven: callers present accesses
//! in non-decreasing cycle order (which a cycle-stepped pipeline does
//! naturally) and get back the absolute cycle at which the access
//! completes.
//!
//! ```
//! use dda_mem::{CacheConfig, Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::iscapaper_base());
//! let a = h.l1_access(0, 0x2000_0000, false); // cold miss -> L2 miss
//! assert!(!a.hit);
//! let b = h.l1_access(a.complete_at, 0x2000_0000, false); // now a hit
//! assert!(b.hit);
//! assert_eq!(b.complete_at - a.complete_at, 2); // 2-cycle L1 hit
//! let _ = CacheConfig::lvc_2k();
//! ```

mod cache_core;
mod config;
mod data_cache;
mod hierarchy;
mod l2;
mod mshr;
mod port;
mod tags;

pub use cache_core::{CacheCore, CacheCoreStats, Victim};
pub use config::{
    CacheConfig, CacheConfigError, CacheId, HierarchyConfig, HierarchyConfigError, L2Config,
};
pub use data_cache::{Completion, DataCache, DataCacheStats};
pub use hierarchy::Hierarchy;
pub use l2::{L2Source, L2Stats, L2};
pub use mshr::MshrFile;
pub use port::PortMeter;
pub use tags::{CacheTags, FunctionalWarmup, HierarchyTags, TagLine, TagsError};
