//! Cache tag-state snapshots and functional warmup.
//!
//! Sampled simulation needs detailed windows that do not start cold: the
//! functional fast-forward phase streams its accesses through a
//! [`FunctionalWarmup`] — a timing-free model of the same L1/LVC/L2
//! geometry — and the resulting [`HierarchyTags`] are imported into the
//! fresh [`crate::Hierarchy`] a detailed window runs on. Only *content*
//! state travels (tags, valid/dirty bits, LRU order, the LRU clock);
//! statistics stay zero so a window measures nothing but its own
//! traffic, and MSHRs/bus state start idle exactly as a cycle-0 machine
//! expects.
//!
//! Warmup is a pure function of the architectural access stream, which
//! makes it checkpoint-safe: replaying the same prefix — continuously or
//! resumed from a snapshot — produces bit-identical tags.

use dda_stats::{ByteReader, ByteWriter, CodecError};

use crate::cache_core::CacheCore;
use crate::config::HierarchyConfig;

/// One cache line's serializable content state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TagLine {
    /// The address tag (line address >> line shift).
    pub tag: u32,
    /// Whether the line is resident.
    pub valid: bool,
    /// Whether the line is dirty.
    pub dirty: bool,
    /// LRU stamp (larger = more recently used).
    pub lru: u64,
}

/// The content state of one cache: every way of every set, set-major,
/// plus the LRU clock.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CacheTags {
    /// `sets * assoc` lines in set-major order.
    pub lines: Vec<TagLine>,
    /// The LRU clock at export time.
    pub clock: u64,
}

impl CacheTags {
    /// Number of resident (valid) lines in the snapshot.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

/// Tag snapshots for a whole [`crate::Hierarchy`]: L1, optional LVC,
/// shared L2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HierarchyTags {
    /// L1 D-cache tags.
    pub l1: CacheTags,
    /// LVC tags (`None` on a "(N+0)" machine).
    pub lvc: Option<CacheTags>,
    /// L2 tags.
    pub l2: CacheTags,
}

/// File magic for serialized hierarchy tags ("DDATAGS\0").
const MAGIC: &[u8; 8] = b"DDATAGS\0";
/// Current format version.
const VERSION: u32 = 1;

/// Error decoding a [`HierarchyTags`] byte image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TagsError {
    /// The input does not start with the tags magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The input ended mid-field.
    Truncated(CodecError),
    /// A structurally invalid field.
    Corrupt(&'static str),
}

impl std::fmt::Display for TagsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagsError::BadMagic => write!(f, "not a tag snapshot (bad magic)"),
            TagsError::UnsupportedVersion(v) => write!(f, "unsupported tag-snapshot version {v}"),
            TagsError::Truncated(e) => write!(f, "truncated tag snapshot: {e}"),
            TagsError::Corrupt(what) => write!(f, "corrupt tag snapshot: {what}"),
        }
    }
}

impl std::error::Error for TagsError {}

impl From<CodecError> for TagsError {
    fn from(e: CodecError) -> TagsError {
        TagsError::Truncated(e)
    }
}

fn put_cache(w: &mut ByteWriter, tags: &CacheTags) {
    w.put_u64(tags.clock);
    w.put_u32(tags.lines.len() as u32);
    for l in &tags.lines {
        w.put_u32(l.tag);
        w.put_u8(l.valid as u8 | (l.dirty as u8) << 1);
        w.put_u64(l.lru);
    }
}

fn get_cache(r: &mut ByteReader<'_>) -> Result<CacheTags, TagsError> {
    let clock = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut lines = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = r.get_u32()?;
        let flags = r.get_u8()?;
        if flags > 3 {
            return Err(TagsError::Corrupt("line flags"));
        }
        let lru = r.get_u64()?;
        lines.push(TagLine {
            tag,
            valid: flags & 1 != 0,
            dirty: flags & 2 != 0,
            lru,
        });
    }
    Ok(CacheTags { lines, clock })
}

impl HierarchyTags {
    /// Serializes to a versioned binary image (the opaque cache-tag
    /// section a `dda-vm` checkpoint carries).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + self.l1.lines.len() * 13);
        w.put_raw(MAGIC);
        w.put_u32(VERSION);
        put_cache(&mut w, &self.l1);
        match &self.lvc {
            None => w.put_u8(0),
            Some(lvc) => {
                w.put_u8(1);
                put_cache(&mut w, lvc);
            }
        }
        put_cache(&mut w, &self.l2);
        w.into_vec()
    }

    /// Decodes a [`HierarchyTags::to_bytes`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`TagsError`] on bad magic, unknown version, truncation
    /// or structural corruption. Geometry fit is checked at import time
    /// against the actual hierarchy.
    pub fn from_bytes(buf: &[u8]) -> Result<HierarchyTags, TagsError> {
        let mut r = ByteReader::new(buf);
        if r.get_raw(8).map_err(|_| TagsError::BadMagic)? != MAGIC {
            return Err(TagsError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(TagsError::UnsupportedVersion(version));
        }
        let l1 = get_cache(&mut r)?;
        let lvc = match r.get_u8()? {
            0 => None,
            1 => Some(get_cache(&mut r)?),
            _ => return Err(TagsError::Corrupt("lvc flag")),
        };
        let l2 = get_cache(&mut r)?;
        if r.remaining() != 0 {
            return Err(TagsError::Corrupt("trailing bytes"));
        }
        Ok(HierarchyTags { l1, lvc, l2 })
    }
}

/// A timing-free content model of a whole hierarchy, fed one access at a
/// time during functional fast-forward.
///
/// Routing mirrors the detailed machine's steering: local accesses go to
/// the LVC when one is configured, everything else (and everything, on a
/// baseline machine) to the L1; misses consult and fill the shared L2;
/// dirty victims write back into the L2. No MSHRs, no ports, no latency —
/// fills take effect immediately, the standard functional-warmup
/// approximation.
#[derive(Clone, Debug)]
pub struct FunctionalWarmup {
    l1: CacheCore,
    lvc: Option<CacheCore>,
    l2: CacheCore,
}

impl FunctionalWarmup {
    /// Builds an empty warmup model with the hierarchy's geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HierarchyConfig::validate`] —
    /// the same contract as [`crate::Hierarchy::new`].
    pub fn new(config: &HierarchyConfig) -> FunctionalWarmup {
        if let Err(e) = config.validate() {
            panic!("invalid hierarchy configuration: {e}");
        }
        let l2cfg = crate::config::CacheConfig {
            size_bytes: config.l2.size_bytes,
            assoc: config.l2.assoc,
            line_bytes: config.l2.line_bytes,
            hit_latency: config.l2.latency,
            ports: 1,
            mshrs: 8,
        };
        FunctionalWarmup {
            l1: CacheCore::new(&config.l1),
            lvc: config.lvc.as_ref().map(CacheCore::new),
            l2: CacheCore::new(&l2cfg),
        }
    }

    /// Streams one architectural access through the model. `is_local` is
    /// the ground-truth stream classification (stack region), the same
    /// signal the detailed machine's steering uses.
    pub fn touch(&mut self, addr: u32, is_write: bool, is_local: bool) {
        let l2 = &mut self.l2;
        let cache = match (&mut self.lvc, is_local) {
            (Some(lvc), true) => lvc,
            _ => &mut self.l1,
        };
        if cache.access(addr, is_write) {
            return;
        }
        // Miss: the line comes from the L2 (filling it there on an L2
        // miss), and a dirty victim writes back into the L2 — the same
        // content transitions L2::request/L2::writeback perform.
        if !l2.access(addr, false) {
            l2.fill(addr, false);
        }
        if let Some(v) = cache.fill(addr, is_write) {
            if v.dirty {
                if !l2.probe(v.line_addr) {
                    l2.fill(v.line_addr, true);
                } else {
                    l2.access(v.line_addr, true);
                }
            }
        }
    }

    /// Exports the warmed tag state for import into a fresh
    /// [`crate::Hierarchy`].
    pub fn tags(&self) -> HierarchyTags {
        HierarchyTags {
            l1: self.l1.export_tags(),
            lvc: self.lvc.as_ref().map(|c| c.export_tags()),
            l2: self.l2.export_tags(),
        }
    }

    /// Replaces the model's content state with `tags` — resuming warming
    /// from a checkpointed position as if the skipped prefix had been
    /// streamed through [`FunctionalWarmup::touch`]. Returns `false`,
    /// leaving the model untouched, when the snapshot's shape does not
    /// match (LVC presence or any cache geometry).
    pub fn adopt(&mut self, tags: &HierarchyTags) -> bool {
        if self.lvc.is_some() != tags.lvc.is_some() {
            return false;
        }
        let mut probe = self.clone();
        if !probe.l1.import_tags(&tags.l1) || !probe.l2.import_tags(&tags.l2) {
            return false;
        }
        if let (Some(lvc), Some(t)) = (&mut probe.lvc, &tags.lvc) {
            if !lvc.import_tags(t) {
                return false;
            }
        }
        *self = probe;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HierarchyConfig {
        HierarchyConfig::n_plus_m(2, 2)
    }

    #[test]
    fn adopt_resumes_from_exported_tags() {
        let mut a = FunctionalWarmup::new(&cfg());
        let mut b = FunctionalWarmup::new(&cfg());
        let touch = |w: &mut FunctionalWarmup, i: u32| {
            w.touch(0x7fff_f000 - (i % 97) * 32, i % 3 == 0, true);
            w.touch(0x2000_0000 + i * 64, i % 5 == 0, false);
        };
        for i in 0..300 {
            touch(&mut a, i);
        }
        assert!(b.adopt(&a.tags()));
        for i in 300..600 {
            touch(&mut a, i);
            touch(&mut b, i);
        }
        assert_eq!(a.tags().to_bytes(), b.tags().to_bytes());
        // A baseline machine (no LVC) cannot adopt decoupled tags.
        let mut base = FunctionalWarmup::new(&HierarchyConfig::iscapaper_base());
        assert!(!base.adopt(&a.tags()));
    }

    #[test]
    fn tags_binary_round_trip() {
        let mut w = FunctionalWarmup::new(&cfg());
        for i in 0..500u32 {
            w.touch(0x2000_0000 + i * 64, i % 3 == 0, false);
            w.touch(0x7fff_f000u32.wrapping_sub(i * 8), i % 2 == 0, true);
        }
        let tags = w.tags();
        assert!(tags.l1.resident_lines() > 0);
        assert!(tags.lvc.as_ref().is_some_and(|t| t.resident_lines() > 0));
        assert!(tags.l2.resident_lines() > 0);
        let bytes = tags.to_bytes();
        assert_eq!(HierarchyTags::from_bytes(&bytes), Ok(tags));
    }

    #[test]
    fn tags_decoding_rejects_garbage() {
        assert_eq!(HierarchyTags::from_bytes(b"junk"), Err(TagsError::BadMagic));
        let mut bytes = FunctionalWarmup::new(&cfg()).tags().to_bytes();
        bytes[8] = 9;
        assert_eq!(
            HierarchyTags::from_bytes(&bytes),
            Err(TagsError::UnsupportedVersion(9))
        );
        let good = FunctionalWarmup::new(&cfg()).tags().to_bytes();
        for cut in 0..good.len().min(200) {
            assert!(HierarchyTags::from_bytes(&good[..cut]).is_err());
        }
    }

    #[test]
    fn warmup_is_deterministic_and_resumable() {
        // One continuous warmup vs warm-up/export/import-by-value resume:
        // the same access stream must produce identical tags.
        let accesses: Vec<(u32, bool, bool)> = (0..1000u32)
            .map(|i| {
                let local = i % 3 != 0;
                let addr = if local {
                    0x7fff_ff00u32.wrapping_sub((i % 97) * 16)
                } else {
                    0x2000_0000 + (i % 211) * 32
                };
                (addr, i % 5 == 0, local)
            })
            .collect();
        let mut cont = FunctionalWarmup::new(&cfg());
        for &(a, w, l) in &accesses {
            cont.touch(a, w, l);
        }
        let mut first = FunctionalWarmup::new(&cfg());
        for &(a, w, l) in &accesses[..500] {
            first.touch(a, w, l);
        }
        // "Resume" through the serialized form.
        let bytes = first.tags().to_bytes();
        let restored = HierarchyTags::from_bytes(&bytes).unwrap();
        let mut second = FunctionalWarmup::new(&cfg());
        assert!(second.l1.import_tags(&restored.l1));
        if let (Some(lvc), Some(t)) = (&mut second.lvc, &restored.lvc) {
            assert!(lvc.import_tags(t));
        }
        assert!(second.l2.import_tags(&restored.l2));
        for &(a, w, l) in &accesses[500..] {
            second.touch(a, w, l);
        }
        assert_eq!(cont.tags(), second.tags());
    }

    #[test]
    fn import_rejects_wrong_geometry() {
        let small = FunctionalWarmup::new(&HierarchyConfig::n_plus_m(2, 2));
        let lvc_tags = small.tags().lvc.unwrap();
        let mut l1 = CacheCore::new(&crate::config::CacheConfig::l1_32k());
        assert!(!l1.import_tags(&lvc_tags), "LVC tags must not fit an L1");
    }

    #[test]
    fn baseline_machine_routes_local_traffic_to_l1() {
        let mut w = FunctionalWarmup::new(&HierarchyConfig::iscapaper_base());
        w.touch(0x7fff_ff00, true, true);
        let tags = w.tags();
        assert!(tags.lvc.is_none());
        assert_eq!(tags.l1.resident_lines(), 1);
    }
}
