//! Tag array, LRU replacement and dirty bits — the state of one cache.

use crate::config::CacheConfig;
use crate::tags::{CacheTags, TagLine};

/// A line evicted by a fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub line_addr: u32,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
}

/// Hit/miss bookkeeping of a [`CacheCore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheCoreStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Dirty lines evicted (write-backs generated).
    pub writebacks: u64,
}

impl CacheCoreStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in 0..=1 (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

/// The functional content model of one cache: tags, true-LRU replacement
/// within each set, and dirty bits. Timing lives in
/// [`crate::DataCache`]/[`crate::L2`]; this type answers only *what is
/// resident*.
#[derive(Clone, Debug)]
pub struct CacheCore {
    lines: Vec<Line>, // sets * assoc, set-major
    assoc: usize,
    set_shift: u32,
    set_mask: u32,
    line_shift: u32,
    clock: u64,
    stats: CacheCoreStats,
}

impl CacheCore {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheConfig::validate`].
    pub fn new(config: &CacheConfig) -> CacheCore {
        if let Err(e) = config.validate() {
            panic!("invalid cache geometry: {e}");
        }
        let sets = config.n_sets();
        CacheCore {
            lines: vec![Line::default(); (sets * config.assoc) as usize],
            assoc: config.assoc as usize,
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheCoreStats::default(),
        }
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_of(&self, addr: u32) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.assoc;
        &mut self.lines[start..start + self.assoc]
    }

    /// Looks up `addr`; on a hit updates LRU (and the dirty bit for
    /// writes) and returns `true`. Counts toward the statistics.
    pub fn access(&mut self, addr: u32, is_write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let tag = addr >> self.line_shift;
        let set = self.set_of(addr);
        for l in self.set_lines(set) {
            if l.valid && l.tag == tag {
                l.lru = clock;
                if is_write {
                    l.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Whether the line containing `addr` is resident, without touching
    /// LRU or statistics.
    pub fn probe(&self, addr: u32) -> bool {
        let tag = addr >> self.line_shift;
        let set = self.set_of(addr);
        let start = set * self.assoc;
        self.lines[start..start + self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Fills the line containing `addr`, evicting the LRU way if the set
    /// is full. The fill is marked dirty when `is_write` (write-allocate).
    /// Returns the evicted line, if any.
    pub fn fill(&mut self, addr: u32, is_write: bool) -> Option<Victim> {
        self.clock += 1;
        let clock = self.clock;
        let tag = addr >> self.line_shift;
        let line_shift = self.line_shift;
        let set = self.set_of(addr);
        let set_base = (set as u32) & self.set_mask;
        let set_shift = self.set_shift;
        let set_mask = self.set_mask;
        let lines = self.set_lines(set);

        // Already resident (e.g. a second miss merged by MSHRs): refresh.
        if let Some(l) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = clock;
            l.dirty |= is_write;
            return None;
        }

        let way = match lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                // True LRU victim.
                match lines.iter().enumerate().min_by_key(|(_, l)| l.lru) {
                    Some((i, _)) => i,
                    None => unreachable!("associativity is at least 1"),
                }
            }
        };
        let victim = if lines[way].valid {
            let vt = lines[way].tag;
            debug_assert_eq!((vt << line_shift >> set_shift) & set_mask, set_base);
            Some(Victim {
                line_addr: vt << line_shift,
                dirty: lines[way].dirty,
            })
        } else {
            None
        };
        lines[way] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: clock,
        };
        self.stats.fills += 1;
        if victim.is_some_and(|v| v.dirty) {
            self.stats.writebacks += 1;
        }
        victim
    }

    /// Invalidates the line containing `addr`, returning whether it was
    /// resident and dirty.
    pub fn invalidate(&mut self, addr: u32) -> Option<Victim> {
        let tag = addr >> self.line_shift;
        let line_shift = self.line_shift;
        let set = self.set_of(addr);
        for l in self.set_lines(set) {
            if l.valid && l.tag == tag {
                let v = Victim {
                    line_addr: tag << line_shift,
                    dirty: l.dirty,
                };
                l.valid = false;
                l.dirty = false;
                return Some(v);
            }
        }
        None
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheCoreStats {
        self.stats
    }

    /// Exports the tag/LRU/dirty state (and the LRU clock) as a
    /// [`CacheTags`] snapshot. Statistics are *not* part of the snapshot:
    /// warm state is imported into fresh caches whose counters must start
    /// at zero so a detailed window measures only its own traffic.
    pub fn export_tags(&self) -> CacheTags {
        CacheTags {
            lines: self
                .lines
                .iter()
                .map(|l| TagLine {
                    tag: l.tag,
                    valid: l.valid,
                    dirty: l.dirty,
                    lru: l.lru,
                })
                .collect(),
            clock: self.clock,
        }
    }

    /// Imports a [`CacheCore::export_tags`] snapshot, replacing this
    /// cache's content state. Returns `false` — leaving the cache
    /// untouched — when the snapshot does not fit this geometry (wrong
    /// line count, or a valid tag that does not map to the set it sits
    /// in). Statistics are left as they are.
    pub fn import_tags(&mut self, tags: &CacheTags) -> bool {
        if tags.lines.len() != self.lines.len() {
            return false;
        }
        for (idx, l) in tags.lines.iter().enumerate() {
            if l.valid && self.set_of(l.tag << self.line_shift) != idx / self.assoc {
                return false;
            }
        }
        for (dst, src) in self.lines.iter_mut().zip(&tags.lines) {
            *dst = Line {
                tag: src.tag,
                valid: src.valid,
                dirty: src.dirty,
                lru: src.lru,
            };
        }
        self.clock = tags.clock;
        true
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheCore {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        CacheCore::new(&CacheConfig {
            size_bytes: 64,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
            ports: 1,
            mshrs: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.fill(0x100, false).is_none());
        assert!(c.access(0x100, false));
        assert!(c.access(0x10f, false)); // same line
        assert!(!c.access(0x110, false)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = tiny();
        // Set 0 holds lines with (addr >> 4) even... set = (addr>>4) & 1.
        // Addresses 0x00, 0x20, 0x40 all map to set 0.
        c.fill(0x00, false);
        c.fill(0x20, false);
        c.access(0x00, false); // 0x00 now MRU; 0x20 is LRU
        let v = c.fill(0x40, false).unwrap();
        assert_eq!(v.line_addr, 0x20);
        assert!(!v.dirty);
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x00, true); // write-allocate, dirty
        c.fill(0x20, false);
        c.fill(0x40, false); // evicts 0x00 (LRU), dirty
        let s = c.stats();
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.fills, 3);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.fill(0x00, false);
        assert!(c.access(0x00, true)); // dirty now
        c.fill(0x20, false);
        let v = c.fill(0x40, false).unwrap();
        assert_eq!(v.line_addr, 0x00);
        assert!(v.dirty);
    }

    #[test]
    fn refill_of_resident_line_is_a_refresh() {
        let mut c = tiny();
        c.fill(0x00, false);
        assert!(c.fill(0x00, true).is_none());
        assert_eq!(c.stats().fills, 1);
        assert_eq!(c.resident_lines(), 1);
        // The refresh set the dirty bit.
        c.fill(0x20, false);
        let v = c.fill(0x40, false).unwrap();
        assert!(v.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x00, true);
        let v = c.invalidate(0x00).unwrap();
        assert!(v.dirty);
        assert!(!c.probe(0x00));
        assert!(c.invalidate(0x00).is_none());
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.fill(0x00, false);
        c.fill(0x20, false);
        // Probing 0x00 must not refresh its LRU position.
        assert!(c.probe(0x00));
        let before = c.stats();
        assert!(c.probe(0x00));
        assert_eq!(c.stats(), before);
        let v = c.fill(0x40, false).unwrap();
        assert_eq!(v.line_addr, 0x00, "probe must not update LRU");
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets x 1 way x 16B = 64B direct-mapped.
        let mut c = CacheCore::new(&CacheConfig {
            size_bytes: 64,
            assoc: 1,
            line_bytes: 16,
            hit_latency: 1,
            ports: 1,
            mshrs: 1,
        });
        c.fill(0x000, false);
        let v = c.fill(0x040, false).unwrap(); // same set, 4 sets * 16B stride
        assert_eq!(v.line_addr, 0x000);
    }

    #[test]
    fn miss_rate_arithmetic() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0, false);
        c.fill(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(16, false);
        assert_eq!(c.stats().accesses(), 4);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }
}
