//! The ideal cache-port model.

/// A per-cycle budget of ideal cache ports.
///
/// The paper assumes ideal ports: "an N-port cache can service N data
/// requests in any combination per cycle" (§4, footnote 8). A
/// `PortMeter` hands out at most `ports` claims per cycle; the budget
/// refreshes whenever the cycle advances.
///
/// ```
/// use dda_mem::PortMeter;
///
/// let mut ports = PortMeter::new(2);
/// assert!(ports.try_claim(0));
/// assert!(ports.try_claim(0));
/// assert!(!ports.try_claim(0)); // budget spent this cycle
/// assert!(ports.try_claim(1)); // refreshed next cycle
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortMeter {
    ports: u32,
    cycle: u64,
    used: u32,
}

impl PortMeter {
    /// Creates a meter with `ports` ports per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(ports: u32) -> PortMeter {
        assert!(ports > 0, "port count must be at least 1");
        PortMeter {
            ports,
            cycle: 0,
            used: 0,
        }
    }

    /// Total ports per cycle.
    pub fn ports(&self) -> u32 {
        self.ports
    }

    #[inline]
    fn roll(&mut self, cycle: u64) {
        if cycle != self.cycle {
            debug_assert!(cycle > self.cycle, "cycles must be non-decreasing");
            self.cycle = cycle;
            self.used = 0;
        }
    }

    /// Ports still available in `cycle`.
    pub fn available(&mut self, cycle: u64) -> u32 {
        self.roll(cycle);
        self.ports - self.used
    }

    /// Claims one port in `cycle`; returns whether a port was available.
    pub fn try_claim(&mut self, cycle: u64) -> bool {
        self.roll(cycle);
        if self.used < self.ports {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Claims `n` ports at once (an access-combined transaction still uses
    /// one port, but wide transfers may be modelled as multi-port).
    pub fn try_claim_n(&mut self, cycle: u64, n: u32) -> bool {
        self.roll(cycle);
        if self.used + n <= self.ports {
            self.used += n;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_per_cycle() {
        let mut p = PortMeter::new(2);
        assert_eq!(p.available(0), 2);
        assert!(p.try_claim(0));
        assert!(p.try_claim(0));
        assert!(!p.try_claim(0));
        assert_eq!(p.available(0), 0);
    }

    #[test]
    fn budget_refreshes_next_cycle() {
        let mut p = PortMeter::new(1);
        assert!(p.try_claim(0));
        assert!(!p.try_claim(0));
        assert!(p.try_claim(1));
        assert!(p.try_claim(5));
    }

    #[test]
    fn claim_n() {
        let mut p = PortMeter::new(3);
        assert!(p.try_claim_n(0, 2));
        assert!(!p.try_claim_n(0, 2));
        assert!(p.try_claim_n(0, 1));
    }

    #[test]
    #[should_panic(expected = "port count")]
    fn zero_ports_panics() {
        let _ = PortMeter::new(0);
    }
}
