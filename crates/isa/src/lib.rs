#![warn(missing_docs)]

//! # dda-isa — the instruction set of the DDA simulator
//!
//! A small MIPS-flavoured load/store RISC ISA used by every layer of the
//! data-decoupled architecture (DDA) simulator:
//!
//! * 32 general-purpose registers ([`Gpr`]) and 32 floating-point registers
//!   ([`Fpr`]), with the MIPS software conventions for `$sp`, `$fp`, `$ra`,
//!   argument and temporary registers;
//! * base+offset loads and stores carrying a [`StreamHint`] — the compiler
//!   classification bit that steers an access to the LSQ or the LVAQ
//!   (the paper's §2.2.3);
//! * direct calls/returns so the run-time stack discipline of the paper's
//!   workloads (prologue/epilogue register save/restore, argument passing,
//!   spill code) can be expressed faithfully;
//! * a dense 64-bit binary encoding with exact round-tripping
//!   ([`Instr::encode`] / [`Instr::decode`]) and a MIPS-like disassembly
//!   via [`core::fmt::Display`].
//!
//! Program counters are in *instruction units*: `pc + 1` is the next
//! instruction. Data addresses are 32-bit byte addresses.
//!
//! ```
//! use dda_isa::{Instr, Gpr, StreamHint, MemWidth};
//!
//! let ld = Instr::Load {
//!     rd: Gpr::T0,
//!     base: Gpr::SP,
//!     offset: 8,
//!     width: MemWidth::Word,
//!     hint: StreamHint::Local,
//! };
//! assert!(ld.is_load());
//! assert_eq!(Instr::decode(ld.encode()).unwrap(), ld);
//! assert_eq!(ld.to_string(), "lw    $t0, 8($sp) !local");
//! ```

mod disasm;
mod encode;
mod instr;
mod latency;
mod op;
mod regs;

pub use encode::DecodeError;
pub use instr::{Instr, MemWidth, StreamHint};
pub use latency::{FuClass, LatencyTable};
pub use op::{AluOp, BranchCond, FpCond, FpuOp};
pub use regs::{Fpr, Gpr, Reg, NUM_FPRS, NUM_GPRS};
