//! Functional-unit classes and instruction latencies.
//!
//! The base machine model (paper Table 1) uses the MIPS R10000 instruction
//! latencies; [`LatencyTable::r10000`] encodes them. Memory latencies are
//! *not* in this table — loads and stores are timed by the cache hierarchy.

use core::fmt;

/// The class of functional unit an instruction executes on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FuClass {
    /// Integer ALU (adds, logic, shifts, compares). R10000 latency 1.
    IntAlu = 0,
    /// Integer multiplier. R10000 latency 5 (integer multiply hi word: 6).
    IntMul,
    /// Integer divider, not pipelined. R10000 latency 34.
    IntDiv,
    /// FP adder (also compares and conversions). R10000 latency 2.
    FpAdd,
    /// FP multiplier. R10000 latency 2.
    FpMul,
    /// FP divider/sqrt, not pipelined. R10000 latency 19 (double).
    FpDiv,
    /// Memory read port (address generation + cache access).
    MemRead,
    /// Memory write port.
    MemWrite,
    /// Branch/jump resolution unit.
    Branch,
}

impl FuClass {
    /// All classes, in discriminant order.
    pub const ALL: [FuClass; 9] = [
        FuClass::IntAlu,
        FuClass::IntMul,
        FuClass::IntDiv,
        FuClass::FpAdd,
        FuClass::FpMul,
        FuClass::FpDiv,
        FuClass::MemRead,
        FuClass::MemWrite,
        FuClass::Branch,
    ];

    /// Dense index for per-class tables.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMul => "int-mul",
            FuClass::IntDiv => "int-div",
            FuClass::FpAdd => "fp-add",
            FuClass::FpMul => "fp-mul",
            FuClass::FpDiv => "fp-div",
            FuClass::MemRead => "mem-read",
            FuClass::MemWrite => "mem-write",
            FuClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Execution latency and pipelining of each functional-unit class.
///
/// `latency` is the number of cycles from issue to result availability;
/// `issue_interval` is the minimum number of cycles between successive
/// issues to the same unit (1 = fully pipelined).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LatencyTable {
    latency: [u32; 9],
    issue_interval: [u32; 9],
}

impl LatencyTable {
    /// The MIPS R10000 latencies used by the paper's base machine
    /// (Table 1: "Inst. latencies: same as those of MIPS R10000").
    ///
    /// Memory classes carry a nominal 1-cycle address-generation latency;
    /// the cache model adds the access time on top.
    pub fn r10000() -> LatencyTable {
        let mut t = LatencyTable {
            latency: [1; 9],
            issue_interval: [1; 9],
        };
        t.set(FuClass::IntAlu, 1, 1);
        t.set(FuClass::IntMul, 5, 1);
        t.set(FuClass::IntDiv, 34, 34);
        t.set(FuClass::FpAdd, 2, 1);
        t.set(FuClass::FpMul, 2, 1);
        t.set(FuClass::FpDiv, 19, 19);
        t.set(FuClass::MemRead, 1, 1);
        t.set(FuClass::MemWrite, 1, 1);
        t.set(FuClass::Branch, 1, 1);
        t
    }

    /// A unit-latency table (every class 1 cycle, fully pipelined); useful
    /// for isolating memory effects in tests and ablations.
    pub fn unit() -> LatencyTable {
        LatencyTable {
            latency: [1; 9],
            issue_interval: [1; 9],
        }
    }

    /// Overrides one class.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` or `issue_interval == 0`.
    pub fn set(&mut self, class: FuClass, latency: u32, issue_interval: u32) -> &mut Self {
        assert!(latency > 0, "latency must be at least 1 cycle");
        assert!(
            issue_interval > 0,
            "issue interval must be at least 1 cycle"
        );
        self.latency[class.index()] = latency;
        self.issue_interval[class.index()] = issue_interval;
        self
    }

    /// Cycles from issue to result availability for `class`.
    #[inline]
    pub fn latency(&self, class: FuClass) -> u32 {
        self.latency[class.index()]
    }

    /// Minimum cycles between issues to one unit of `class`.
    #[inline]
    pub fn issue_interval(&self, class: FuClass) -> u32 {
        self.issue_interval[class.index()]
    }

    /// Whether units of `class` are fully pipelined.
    #[inline]
    pub fn is_pipelined(&self, class: FuClass) -> bool {
        self.issue_interval[class.index()] == 1
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::r10000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r10000_values() {
        let t = LatencyTable::r10000();
        assert_eq!(t.latency(FuClass::IntAlu), 1);
        assert_eq!(t.latency(FuClass::IntMul), 5);
        assert_eq!(t.latency(FuClass::IntDiv), 34);
        assert_eq!(t.latency(FuClass::FpAdd), 2);
        assert_eq!(t.latency(FuClass::FpMul), 2);
        assert_eq!(t.latency(FuClass::FpDiv), 19);
        assert!(t.is_pipelined(FuClass::FpMul));
        assert!(!t.is_pipelined(FuClass::IntDiv));
        assert!(!t.is_pipelined(FuClass::FpDiv));
    }

    #[test]
    fn default_is_r10000() {
        assert_eq!(LatencyTable::default(), LatencyTable::r10000());
    }

    #[test]
    fn set_overrides_one_class() {
        let mut t = LatencyTable::unit();
        t.set(FuClass::FpDiv, 12, 12);
        assert_eq!(t.latency(FuClass::FpDiv), 12);
        assert_eq!(t.latency(FuClass::FpMul), 1);
    }

    #[test]
    #[should_panic(expected = "latency must be")]
    fn zero_latency_rejected() {
        LatencyTable::unit().set(FuClass::IntAlu, 0, 1);
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in FuClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
