//! Operation kinds: integer ALU ops, FPU ops, branch conditions.

use core::fmt;

/// Integer ALU operations (register–register or register–immediate forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum AluOp {
    /// Two's-complement addition (wrapping).
    Add = 0,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Signed multiplication (wrapping, low 32 bits).
    Mul,
    /// Signed division; division by zero yields 0 as on the simulator's
    /// well-defined semantics (real MIPS leaves it undefined).
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Logical shift left (shift amount taken modulo 32).
    Sll,
    /// Logical shift right (shift amount taken modulo 32).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Sra,
    /// Set-if-less-than, signed: `rd = (rs < rt) as i32`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// All ALU operations, in discriminant order.
    pub const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Evaluates the operation on two 32-bit values.
    ///
    /// All operations are total: shifts mask the amount to 5 bits and
    /// division/remainder by zero produce 0, so the functional simulator
    /// never traps.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Sra => a >> (b as u32 & 31),
            AluOp::Slt => (a < b) as i32,
            AluOp::Sltu => ((a as u32) < (b as u32)) as i32,
        }
    }

    /// The assembly mnemonic (register–register form).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<AluOp> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point operations on `f64` register values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FpuOp {
    /// `fd = fs + ft`.
    Add = 0,
    /// `fd = fs - ft`.
    Sub,
    /// `fd = fs * ft`.
    Mul,
    /// `fd = fs / ft` (IEEE semantics; divide by zero yields ±inf).
    Div,
    /// `fd = -fs` (`ft` ignored).
    Neg,
    /// `fd = |fs|` (`ft` ignored).
    Abs,
    /// `fd = fs` (`ft` ignored).
    Mov,
    /// `fd = sqrt(fs)` (`ft` ignored); negative input yields NaN.
    Sqrt,
}

impl FpuOp {
    /// All FPU operations, in discriminant order.
    pub const ALL: [FpuOp; 8] = [
        FpuOp::Add,
        FpuOp::Sub,
        FpuOp::Mul,
        FpuOp::Div,
        FpuOp::Neg,
        FpuOp::Abs,
        FpuOp::Mov,
        FpuOp::Sqrt,
    ];

    /// Evaluates the operation. Unary operations ignore `b`.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::Add => a + b,
            FpuOp::Sub => a - b,
            FpuOp::Mul => a * b,
            FpuOp::Div => a / b,
            FpuOp::Neg => -a,
            FpuOp::Abs => a.abs(),
            FpuOp::Mov => a,
            FpuOp::Sqrt => a.sqrt(),
        }
    }

    /// Whether the second source operand participates.
    pub const fn is_binary(self) -> bool {
        matches!(self, FpuOp::Add | FpuOp::Sub | FpuOp::Mul | FpuOp::Div)
    }

    /// The assembly mnemonic (`.d` suffix in disassembly).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "add.d",
            FpuOp::Sub => "sub.d",
            FpuOp::Mul => "mul.d",
            FpuOp::Div => "div.d",
            FpuOp::Neg => "neg.d",
            FpuOp::Abs => "abs.d",
            FpuOp::Mov => "mov.d",
            FpuOp::Sqrt => "sqrt.d",
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<FpuOp> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for FpuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conditions for integer conditional branches (`rs` compared to `rt`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum BranchCond {
    /// Branch if equal.
    Eq = 0,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if signed less-or-equal.
    Le,
    /// Branch if signed greater-than.
    Gt,
}

impl BranchCond {
    /// All branch conditions, in discriminant order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Le,
        BranchCond::Gt,
    ];

    /// Evaluates the condition on two signed 32-bit values.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// The logically negated condition.
    pub const fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Le => BranchCond::Gt,
            BranchCond::Gt => BranchCond::Le,
        }
    }

    /// The branch mnemonic, e.g. `beq`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<BranchCond> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conditions for floating-point compares ([`crate::Instr::FpCmp`]), whose
/// boolean result is written to a GPR.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FpCond {
    /// True if operands compare equal.
    Eq = 0,
    /// True if `fs < ft`.
    Lt,
    /// True if `fs <= ft`.
    Le,
}

impl FpCond {
    /// All FP compare conditions, in discriminant order.
    pub const ALL: [FpCond; 3] = [FpCond::Eq, FpCond::Lt, FpCond::Le];

    /// Evaluates the condition; any comparison with NaN is false.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FpCond::Eq => a == b,
            FpCond::Lt => a < b,
            FpCond::Le => a <= b,
        }
    }

    /// The compare mnemonic, e.g. `c.eq.d`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FpCond::Eq => "c.eq.d",
            FpCond::Lt => "c.lt.d",
            FpCond::Le => "c.le.d",
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<FpCond> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for FpCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_arithmetic_wraps() {
        assert_eq!(AluOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(AluOp::Sub.eval(i32::MIN, 1), i32::MAX);
        assert_eq!(AluOp::Mul.eval(1 << 20, 1 << 20), 0);
    }

    #[test]
    fn alu_division_by_zero_is_total() {
        assert_eq!(AluOp::Div.eval(42, 0), 0);
        assert_eq!(AluOp::Rem.eval(42, 0), 0);
        assert_eq!(AluOp::Div.eval(i32::MIN, -1), i32::MIN.wrapping_div(-1));
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 33), 2);
        assert_eq!(AluOp::Srl.eval(-1, 1), i32::MAX);
        assert_eq!(AluOp::Sra.eval(-8, 2), -2);
    }

    #[test]
    fn alu_comparisons() {
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1, 0), 0); // -1 is u32::MAX unsigned
        assert_eq!(AluOp::Slt.eval(3, 3), 0);
    }

    #[test]
    fn alu_bitwise() {
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Nor.eval(0, 0), -1);
    }

    #[test]
    fn fpu_unary_ops_ignore_second_operand() {
        assert_eq!(FpuOp::Neg.eval(2.5, 99.0), -2.5);
        assert_eq!(FpuOp::Abs.eval(-2.5, 99.0), 2.5);
        assert_eq!(FpuOp::Mov.eval(7.0, 99.0), 7.0);
        assert!(!FpuOp::Neg.is_binary());
        assert!(FpuOp::Add.is_binary());
    }

    #[test]
    fn fpu_division_follows_ieee() {
        assert_eq!(FpuOp::Div.eval(1.0, 0.0), f64::INFINITY);
        assert!(FpuOp::Sqrt.eval(-1.0, 0.0).is_nan());
    }

    #[test]
    fn branch_conditions_and_negation() {
        for c in BranchCond::ALL {
            for (a, b) in [(0, 0), (-5, 3), (3, -5), (7, 7)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c} on ({a},{b})");
            }
        }
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(BranchCond::Ge.eval(0, 0));
    }

    #[test]
    fn fp_compare_nan_is_false() {
        for c in FpCond::ALL {
            assert!(!c.eval(f64::NAN, 0.0));
            assert!(!c.eval(0.0, f64::NAN));
        }
        assert!(FpCond::Le.eval(1.0, 1.0));
        assert!(!FpCond::Lt.eval(1.0, 1.0));
    }

    #[test]
    fn op_code_round_trips() {
        for (i, op) in AluOp::ALL.iter().enumerate() {
            assert_eq!(AluOp::from_code(i as u8), Some(*op));
        }
        assert_eq!(AluOp::from_code(200), None);
        for (i, op) in FpuOp::ALL.iter().enumerate() {
            assert_eq!(FpuOp::from_code(i as u8), Some(*op));
        }
        for (i, op) in BranchCond::ALL.iter().enumerate() {
            assert_eq!(BranchCond::from_code(i as u8), Some(*op));
        }
        for (i, op) in FpCond::ALL.iter().enumerate() {
            assert_eq!(FpCond::from_code(i as u8), Some(*op));
        }
    }
}
