//! The instruction type and its static properties.

use crate::latency::FuClass;
use crate::op::{AluOp, BranchCond, FpCond, FpuOp};
use crate::regs::{Fpr, Gpr, Reg};

/// Width of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MemWidth {
    /// One byte (sign-extended on load).
    Byte = 0,
    /// Two bytes (sign-extended on load); address must be 2-aligned.
    Half,
    /// Four bytes; address must be 4-aligned.
    Word,
}

impl MemWidth {
    /// The access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<MemWidth> {
        match code {
            0 => Some(MemWidth::Byte),
            1 => Some(MemWidth::Half),
            2 => Some(MemWidth::Word),
            _ => None,
        }
    }
}

/// The compiler's memory-stream classification attached to each load/store.
///
/// This is the per-instruction annotation of the paper's §2.2.3: it tells
/// the dispatch stage which memory access queue the instruction should be
/// steered to. `Unknown` models the ambiguous references (less than 1% of
/// static memory instructions in the paper's measurements) that are left to
/// run-time prediction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[repr(u8)]
pub enum StreamHint {
    /// The compiler could not prove the access region; the hardware
    /// predictor decides at dispatch.
    #[default]
    Unknown = 0,
    /// A local-variable (run-time stack) access: steer to the LVAQ/LVC.
    Local,
    /// A heap/global/static access: steer to the LSQ/L1 data cache.
    NonLocal,
}

impl StreamHint {
    pub(crate) fn from_code(code: u8) -> Option<StreamHint> {
        match code {
            0 => Some(StreamHint::Unknown),
            1 => Some(StreamHint::Local),
            2 => Some(StreamHint::NonLocal),
            _ => None,
        }
    }
}

/// A machine instruction.
///
/// Program counters and branch/call targets are in instruction units.
/// The textual form (via [`core::fmt::Display`]) is MIPS-like; loads and
/// stores append `!local` / `!nonlocal` when the [`StreamHint`] is known.
#[derive(Clone, Copy, PartialEq, Debug)]
#[allow(missing_docs)] // operand fields are named by MIPS convention (rd/rs/rt/fd/fs/ft)
pub enum Instr {
    /// Integer register–register ALU operation: `rd = op(rs, rt)`.
    Alu {
        op: AluOp,
        rd: Gpr,
        rs: Gpr,
        rt: Gpr,
    },
    /// Integer register–immediate ALU operation: `rd = op(rs, imm)`.
    AluImm {
        op: AluOp,
        rd: Gpr,
        rs: Gpr,
        imm: i32,
    },
    /// Load a 32-bit constant: `rd = imm` (the `lui`/`ori` pair folded).
    LoadImm { rd: Gpr, imm: i32 },
    /// Floating-point operation: `fd = op(fs, ft)` (`ft` ignored if unary).
    Fpu {
        op: FpuOp,
        fd: Fpr,
        fs: Fpr,
        ft: Fpr,
    },
    /// Floating-point compare into an integer register:
    /// `rd = cond(fs, ft) as i32`.
    FpCmp {
        cond: FpCond,
        rd: Gpr,
        fs: Fpr,
        ft: Fpr,
    },
    /// Move GPR to FPR, converting to `f64`: `fd = rs as f64`.
    IntToFp { fd: Fpr, rs: Gpr },
    /// Move FPR to GPR, truncating: `rd = fs as i32` (saturating).
    FpToInt { rd: Gpr, fs: Fpr },
    /// Integer load: `rd = mem[rs(base) + offset]`.
    Load {
        rd: Gpr,
        base: Gpr,
        offset: i32,
        width: MemWidth,
        hint: StreamHint,
    },
    /// Integer store: `mem[base + offset] = rs`.
    Store {
        rs: Gpr,
        base: Gpr,
        offset: i32,
        width: MemWidth,
        hint: StreamHint,
    },
    /// Floating-point load (8 bytes): `fd = mem[base + offset]`.
    FLoad {
        fd: Fpr,
        base: Gpr,
        offset: i32,
        hint: StreamHint,
    },
    /// Floating-point store (8 bytes): `mem[base + offset] = fs`.
    FStore {
        fs: Fpr,
        base: Gpr,
        offset: i32,
        hint: StreamHint,
    },
    /// Conditional branch: `if cond(rs, rt) pc = target`.
    Branch {
        cond: BranchCond,
        rs: Gpr,
        rt: Gpr,
        target: u32,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Direct call: `ra = pc + 1; pc = target`.
    Call { target: u32 },
    /// Indirect call through a register: `ra = pc + 1; pc = rs`.
    CallReg { rs: Gpr },
    /// Return: `pc = ra`.
    Ret,
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

/// Fixed-capacity list of source registers (an instruction reads at most 3).
pub type SrcRegs = [Option<Reg>; 3];

impl Instr {
    /// The destination register, if the instruction writes one with
    /// architectural effect (writes to `$zero` are reported as `None`).
    ///
    /// Calls report `$ra` as their destination.
    pub fn def(&self) -> Option<Reg> {
        let d: Option<Reg> = match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::LoadImm { rd, .. }
            | Instr::FpCmp { rd, .. }
            | Instr::FpToInt { rd, .. }
            | Instr::Load { rd, .. } => Some(rd.into()),
            Instr::Fpu { fd, .. } | Instr::IntToFp { fd, .. } | Instr::FLoad { fd, .. } => {
                Some(fd.into())
            }
            Instr::Call { .. } | Instr::CallReg { .. } => Some(Gpr::RA.into()),
            Instr::Store { .. }
            | Instr::FStore { .. }
            | Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Ret
            | Instr::Halt
            | Instr::Nop => None,
        };
        d.filter(|r| r.is_writable())
    }

    /// The source registers. Reads of `$zero` are reported (its value is
    /// always ready, so this never creates a stall).
    pub fn uses(&self) -> SrcRegs {
        match *self {
            Instr::Alu { rs, rt, .. } => [Some(rs.into()), Some(rt.into()), None],
            Instr::AluImm { rs, .. } => [Some(rs.into()), None, None],
            Instr::LoadImm { .. } => [None, None, None],
            Instr::Fpu { op, fs, ft, .. } => {
                if op.is_binary() {
                    [Some(fs.into()), Some(ft.into()), None]
                } else {
                    [Some(fs.into()), None, None]
                }
            }
            Instr::FpCmp { fs, ft, .. } => [Some(fs.into()), Some(ft.into()), None],
            Instr::IntToFp { rs, .. } => [Some(rs.into()), None, None],
            Instr::FpToInt { fs, .. } => [Some(fs.into()), None, None],
            Instr::Load { base, .. } => [Some(base.into()), None, None],
            Instr::Store { rs, base, .. } => [Some(rs.into()), Some(base.into()), None],
            Instr::FLoad { base, .. } => [Some(base.into()), None, None],
            Instr::FStore { fs, base, .. } => [Some(fs.into()), Some(base.into()), None],
            Instr::Branch { rs, rt, .. } => [Some(rs.into()), Some(rt.into()), None],
            Instr::Jump { .. } | Instr::Halt | Instr::Nop => [None, None, None],
            Instr::Call { .. } => [None, None, None],
            Instr::CallReg { rs } => [Some(rs.into()), None, None],
            Instr::Ret => [Some(Gpr::RA.into()), None, None],
        }
    }

    /// Whether the instruction reads data memory.
    #[inline]
    pub const fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::FLoad { .. })
    }

    /// Whether the instruction writes data memory.
    #[inline]
    pub const fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::FStore { .. })
    }

    /// Whether the instruction accesses data memory.
    #[inline]
    pub const fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether the instruction can redirect control flow.
    #[inline]
    pub const fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::Call { .. }
                | Instr::CallReg { .. }
                | Instr::Ret
        )
    }

    /// Whether the instruction is a call (direct or indirect).
    #[inline]
    pub const fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. } | Instr::CallReg { .. })
    }

    /// The memory operand `(base, offset, bytes, hint)` for loads/stores.
    pub fn mem_operand(&self) -> Option<(Gpr, i32, u32, StreamHint)> {
        match *self {
            Instr::Load {
                base,
                offset,
                width,
                hint,
                ..
            }
            | Instr::Store {
                base,
                offset,
                width,
                hint,
                ..
            } => Some((base, offset, width.bytes(), hint)),
            Instr::FLoad {
                base, offset, hint, ..
            }
            | Instr::FStore {
                base, offset, hint, ..
            } => Some((base, offset, 8, hint)),
            _ => None,
        }
    }

    /// Returns a copy with the stream hint replaced (loads/stores only;
    /// other instructions are returned unchanged).
    pub fn with_hint(mut self, new: StreamHint) -> Instr {
        match &mut self {
            Instr::Load { hint, .. }
            | Instr::Store { hint, .. }
            | Instr::FLoad { hint, .. }
            | Instr::FStore { hint, .. } => *hint = new,
            _ => {}
        }
        self
    }

    /// The functional-unit class that executes this instruction.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => match op {
                AluOp::Mul => FuClass::IntMul,
                AluOp::Div | AluOp::Rem => FuClass::IntDiv,
                _ => FuClass::IntAlu,
            },
            Instr::LoadImm { .. } => FuClass::IntAlu,
            Instr::Fpu { op, .. } => match op {
                FpuOp::Mul => FuClass::FpMul,
                FpuOp::Div | FpuOp::Sqrt => FuClass::FpDiv,
                _ => FuClass::FpAdd,
            },
            Instr::FpCmp { .. } | Instr::IntToFp { .. } | Instr::FpToInt { .. } => FuClass::FpAdd,
            Instr::Load { .. } | Instr::FLoad { .. } => FuClass::MemRead,
            Instr::Store { .. } | Instr::FStore { .. } => FuClass::MemWrite,
            Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Call { .. }
            | Instr::CallReg { .. }
            | Instr::Ret => FuClass::Branch,
            Instr::Halt | Instr::Nop => FuClass::IntAlu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lw(rd: Gpr, base: Gpr, offset: i32) -> Instr {
        Instr::Load {
            rd,
            base,
            offset,
            width: MemWidth::Word,
            hint: StreamHint::Unknown,
        }
    }

    #[test]
    fn defs_and_uses_of_alu() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Gpr::T0,
            rs: Gpr::T1,
            rt: Gpr::T2,
        };
        assert_eq!(i.def(), Some(Reg::Gpr(Gpr::T0)));
        assert_eq!(
            i.uses(),
            [Some(Reg::Gpr(Gpr::T1)), Some(Reg::Gpr(Gpr::T2)), None]
        );
    }

    #[test]
    fn write_to_zero_has_no_def() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Gpr::ZERO,
            rs: Gpr::T0,
            imm: 1,
        };
        assert_eq!(i.def(), None);
    }

    #[test]
    fn call_defines_ra_and_ret_uses_ra() {
        let c = Instr::Call { target: 10 };
        assert_eq!(c.def(), Some(Reg::Gpr(Gpr::RA)));
        assert_eq!(Instr::Ret.uses()[0], Some(Reg::Gpr(Gpr::RA)));
        assert!(c.is_call() && c.is_control());
        assert!(Instr::Ret.is_control() && !Instr::Ret.is_call());
    }

    #[test]
    fn unary_fpu_has_single_use() {
        let i = Instr::Fpu {
            op: FpuOp::Neg,
            fd: Fpr::new(1),
            fs: Fpr::new(2),
            ft: Fpr::new(3),
        };
        assert_eq!(i.uses(), [Some(Reg::Fpr(Fpr::new(2))), None, None]);
        let b = Instr::Fpu {
            op: FpuOp::Add,
            fd: Fpr::new(1),
            fs: Fpr::new(2),
            ft: Fpr::new(3),
        };
        assert_eq!(b.uses()[1], Some(Reg::Fpr(Fpr::new(3))));
    }

    #[test]
    fn memory_classification() {
        let l = lw(Gpr::T0, Gpr::SP, 4);
        assert!(l.is_load() && l.is_mem() && !l.is_store());
        let s = Instr::Store {
            rs: Gpr::T0,
            base: Gpr::GP,
            offset: 0,
            width: MemWidth::Word,
            hint: StreamHint::NonLocal,
        };
        assert!(s.is_store() && s.is_mem() && !s.is_load());
        assert_eq!(s.mem_operand(), Some((Gpr::GP, 0, 4, StreamHint::NonLocal)));
        assert_eq!(l.def(), Some(Reg::Gpr(Gpr::T0)));
        assert_eq!(s.def(), None);
    }

    #[test]
    fn fload_is_eight_bytes() {
        let f = Instr::FLoad {
            fd: Fpr::F0,
            base: Gpr::SP,
            offset: 16,
            hint: StreamHint::Local,
        };
        assert_eq!(f.mem_operand(), Some((Gpr::SP, 16, 8, StreamHint::Local)));
        assert_eq!(f.fu_class(), FuClass::MemRead);
    }

    #[test]
    fn with_hint_rewrites_loads_only() {
        let l = lw(Gpr::T0, Gpr::SP, 4).with_hint(StreamHint::Local);
        assert_eq!(l.mem_operand().unwrap().3, StreamHint::Local);
        let n = Instr::Nop.with_hint(StreamHint::Local);
        assert_eq!(n, Instr::Nop);
    }

    #[test]
    fn fu_classes() {
        assert_eq!(
            Instr::AluImm {
                op: AluOp::Mul,
                rd: Gpr::T0,
                rs: Gpr::T1,
                imm: 3
            }
            .fu_class(),
            FuClass::IntMul
        );
        assert_eq!(
            Instr::Alu {
                op: AluOp::Div,
                rd: Gpr::T0,
                rs: Gpr::T1,
                rt: Gpr::T2
            }
            .fu_class(),
            FuClass::IntDiv
        );
        assert_eq!(
            Instr::Fpu {
                op: FpuOp::Sqrt,
                fd: Fpr::F0,
                fs: Fpr::F0,
                ft: Fpr::F0
            }
            .fu_class(),
            FuClass::FpDiv
        );
        assert_eq!(Instr::Jump { target: 0 }.fu_class(), FuClass::Branch);
    }

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }
}
