//! Architectural register names.

use core::fmt;

/// Number of general-purpose (integer) registers.
pub const NUM_GPRS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FPRS: usize = 32;

/// A general-purpose (integer) register, `$0`–`$31`.
///
/// Register 0 is hard-wired to zero as on MIPS. The associated constants
/// follow the MIPS o32 software conventions; the simulator itself only
/// gives special meaning to [`Gpr::ZERO`], [`Gpr::SP`], [`Gpr::FP`] and
/// [`Gpr::RA`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// Hard-wired zero register (`$zero`).
    pub const ZERO: Gpr = Gpr(0);
    /// Assembler temporary (`$at`).
    pub const AT: Gpr = Gpr(1);
    /// Function result registers `$v0`/`$v1`.
    pub const V0: Gpr = Gpr(2);
    /// Second function-result register (`$v1`).
    pub const V1: Gpr = Gpr(3);
    /// Argument registers `$a0`–`$a3`.
    pub const A0: Gpr = Gpr(4);
    /// Second argument register (`$a1`).
    pub const A1: Gpr = Gpr(5);
    /// Third argument register (`$a2`).
    pub const A2: Gpr = Gpr(6);
    /// Fourth argument register (`$a3`).
    pub const A3: Gpr = Gpr(7);
    /// Caller-saved temporaries `$t0`–`$t9`.
    pub const T0: Gpr = Gpr(8);
    /// Caller-saved temporary (`$t1`).
    pub const T1: Gpr = Gpr(9);
    /// Caller-saved temporary (`$t2`).
    pub const T2: Gpr = Gpr(10);
    /// Caller-saved temporary (`$t3`).
    pub const T3: Gpr = Gpr(11);
    /// Caller-saved temporary (`$t4`).
    pub const T4: Gpr = Gpr(12);
    /// Caller-saved temporary (`$t5`).
    pub const T5: Gpr = Gpr(13);
    /// Caller-saved temporary (`$t6`).
    pub const T6: Gpr = Gpr(14);
    /// Caller-saved temporary (`$t7`).
    pub const T7: Gpr = Gpr(15);
    /// Callee-saved registers `$s0`–`$s7`.
    pub const S0: Gpr = Gpr(16);
    /// Callee-saved register (`$s1`).
    pub const S1: Gpr = Gpr(17);
    /// Callee-saved register (`$s2`).
    pub const S2: Gpr = Gpr(18);
    /// Callee-saved register (`$s3`).
    pub const S3: Gpr = Gpr(19);
    /// Callee-saved register (`$s4`).
    pub const S4: Gpr = Gpr(20);
    /// Callee-saved register (`$s5`).
    pub const S5: Gpr = Gpr(21);
    /// Callee-saved register (`$s6`).
    pub const S6: Gpr = Gpr(22);
    /// Callee-saved register (`$s7`).
    pub const S7: Gpr = Gpr(23);
    /// Caller-saved temporary (`$t8`).
    pub const T8: Gpr = Gpr(24);
    /// Caller-saved temporary (`$t9`).
    pub const T9: Gpr = Gpr(25);
    /// Reserved-for-kernel registers, used as scratch by generators.
    pub const K0: Gpr = Gpr(26);
    /// Second scratch register (`$k1`).
    pub const K1: Gpr = Gpr(27);
    /// Global pointer (`$gp`), base of the global data region.
    pub const GP: Gpr = Gpr(28);
    /// Stack pointer (`$sp`). Accesses based on it are local-variable
    /// accesses in the sense of the paper's §2.2.
    pub const SP: Gpr = Gpr(29);
    /// Frame pointer (`$fp`), also an index into the run-time stack.
    pub const FP: Gpr = Gpr(30);
    /// Return-address register (`$ra`), written by calls.
    pub const RA: Gpr = Gpr(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Gpr {
        assert!(n < NUM_GPRS as u8, "GPR number out of range");
        Gpr(n)
    }

    /// The register number, `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this register indexes the run-time stack (`$sp` or `$fp`).
    ///
    /// The paper's hardware-only classification treats accesses based on
    /// these registers as local-variable accesses (§2.2.3).
    #[inline]
    pub const fn is_stack_base(self) -> bool {
        self.0 == 29 || self.0 == 30
    }

    /// Iterator over all 32 GPRs in numeric order.
    pub fn all() -> impl Iterator<Item = Gpr> {
        (0..NUM_GPRS as u8).map(Gpr)
    }

    const NAMES: [&'static str; 32] = [
        "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
        "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
        "fp", "ra",
    ];

    /// The conventional assembly name, without the `$` sigil.
    pub const fn name(self) -> &'static str {
        Self::NAMES[self.0 as usize]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

impl fmt::Debug for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gpr(${})", self.name())
    }
}

/// A floating-point register, `$f0`–`$f31`, holding an `f64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fpr(u8);

impl Fpr {
    /// FP result register.
    pub const F0: Fpr = Fpr(0);
    /// FP argument registers.
    pub const F12: Fpr = Fpr(12);
    /// FP argument register (`$f13`).
    pub const F13: Fpr = Fpr(13);
    /// FP argument register (`$f14`).
    pub const F14: Fpr = Fpr(14);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Fpr {
        assert!(n < NUM_FPRS as u8, "FPR number out of range");
        Fpr(n)
    }

    /// The register number, `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all 32 FPRs in numeric order.
    pub fn all() -> impl Iterator<Item = Fpr> {
        (0..NUM_FPRS as u8).map(Fpr)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

impl fmt::Debug for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fpr($f{})", self.0)
    }
}

/// A unified register identifier used for dependence tracking.
///
/// The out-of-order core renames integer and floating-point registers in one
/// namespace; `Reg` gives each architectural register a stable dense index
/// via [`Reg::unified_index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Reg {
    /// An integer register.
    Gpr(Gpr),
    /// A floating-point register.
    Fpr(Fpr),
}

impl Reg {
    /// Total number of architectural registers in the unified namespace.
    pub const UNIFIED_COUNT: usize = NUM_GPRS + NUM_FPRS;

    /// Dense index in `0..Reg::UNIFIED_COUNT`: GPRs first, then FPRs.
    #[inline]
    pub const fn unified_index(self) -> usize {
        match self {
            Reg::Gpr(g) => g.index(),
            Reg::Fpr(f) => NUM_GPRS + f.index(),
        }
    }

    /// Inverse of [`Reg::unified_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Reg::UNIFIED_COUNT`.
    #[inline]
    pub fn from_unified_index(idx: usize) -> Reg {
        assert!(
            idx < Self::UNIFIED_COUNT,
            "unified register index out of range"
        );
        if idx < NUM_GPRS {
            Reg::Gpr(Gpr::new(idx as u8))
        } else {
            Reg::Fpr(Fpr::new((idx - NUM_GPRS) as u8))
        }
    }

    /// Whether a write to this register has an architectural effect.
    ///
    /// Writes to `$zero` are discarded, so instructions whose only
    /// destination is `$zero` create no register dependence.
    #[inline]
    pub const fn is_writable(self) -> bool {
        match self {
            Reg::Gpr(g) => !g.is_zero(),
            Reg::Fpr(_) => true,
        }
    }
}

impl From<Gpr> for Reg {
    fn from(g: Gpr) -> Reg {
        Reg::Gpr(g)
    }
}

impl From<Fpr> for Reg {
    fn from(f: Fpr) -> Reg {
        Reg::Fpr(f)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Gpr(g) => g.fmt(f),
            Reg::Fpr(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_names_match_conventions() {
        assert_eq!(Gpr::ZERO.to_string(), "$zero");
        assert_eq!(Gpr::SP.to_string(), "$sp");
        assert_eq!(Gpr::FP.to_string(), "$fp");
        assert_eq!(Gpr::RA.to_string(), "$ra");
        assert_eq!(Gpr::new(8), Gpr::T0);
    }

    #[test]
    fn stack_base_registers() {
        assert!(Gpr::SP.is_stack_base());
        assert!(Gpr::FP.is_stack_base());
        assert!(!Gpr::GP.is_stack_base());
        assert!(!Gpr::T0.is_stack_base());
    }

    #[test]
    fn zero_register_identity() {
        assert!(Gpr::ZERO.is_zero());
        assert!(!Gpr::AT.is_zero());
        assert!(!Reg::Gpr(Gpr::ZERO).is_writable());
        assert!(Reg::Gpr(Gpr::T0).is_writable());
        assert!(Reg::Fpr(Fpr::F0).is_writable());
    }

    #[test]
    fn unified_index_round_trips() {
        for i in 0..Reg::UNIFIED_COUNT {
            let r = Reg::from_unified_index(i);
            assert_eq!(r.unified_index(), i);
        }
        assert_eq!(Reg::Gpr(Gpr::SP).unified_index(), 29);
        assert_eq!(Reg::Fpr(Fpr::F0).unified_index(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_out_of_range_panics() {
        let _ = Gpr::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unified_out_of_range_panics() {
        let _ = Reg::from_unified_index(64);
    }

    #[test]
    fn all_iterators_cover_register_files() {
        assert_eq!(Gpr::all().count(), 32);
        assert_eq!(Fpr::all().count(), 32);
        assert_eq!(Gpr::all().next(), Some(Gpr::ZERO));
    }
}
