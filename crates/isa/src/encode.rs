//! Dense 64-bit binary encoding of instructions.
//!
//! Layout (LSB first):
//!
//! ```text
//! bits  0..6   opcode tag (instruction kind)
//! bits  6..11  sub-operation (ALU op, FPU op, branch/FP condition)
//! bits 11..13  memory width
//! bits 13..15  stream hint
//! bits 15..20  register 1 (rd / fd)
//! bits 20..25  register 2 (rs / fs / base)
//! bits 25..30  register 3 (rt / ft)
//! bits 32..64  32-bit immediate / offset / target
//! ```
//!
//! Every instruction round-trips exactly: `Instr::decode(i.encode()) == Ok(i)`.

use core::fmt;

use crate::instr::{Instr, MemWidth, StreamHint};
use crate::op::{AluOp, BranchCond, FpCond, FpuOp};
use crate::regs::{Fpr, Gpr};

/// An instruction word failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode tag does not name an instruction kind.
    BadOpcode(u8),
    /// A field carried an out-of-range value.
    BadField {
        /// Which field was malformed.
        field: &'static str,
        /// The raw field value.
        value: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode tag {op}"),
            DecodeError::BadField { field, value } => {
                write!(f, "invalid {field} field value {value}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

mod tag {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const ALU: u8 = 2;
    pub const ALU_IMM: u8 = 3;
    pub const LOAD_IMM: u8 = 4;
    pub const FPU: u8 = 5;
    pub const FP_CMP: u8 = 6;
    pub const INT_TO_FP: u8 = 7;
    pub const FP_TO_INT: u8 = 8;
    pub const LOAD: u8 = 9;
    pub const STORE: u8 = 10;
    pub const FLOAD: u8 = 11;
    pub const FSTORE: u8 = 12;
    pub const BRANCH: u8 = 13;
    pub const JUMP: u8 = 14;
    pub const CALL: u8 = 15;
    pub const CALL_REG: u8 = 16;
    pub const RET: u8 = 17;
}

#[derive(Default)]
struct Word(u64);

impl Word {
    fn tag(mut self, t: u8) -> Word {
        self.0 |= t as u64;
        self
    }
    fn sub(mut self, s: u8) -> Word {
        self.0 |= (s as u64 & 0x1f) << 6;
        self
    }
    fn width(mut self, w: MemWidth) -> Word {
        self.0 |= (w as u64) << 11;
        self
    }
    fn hint(mut self, h: StreamHint) -> Word {
        self.0 |= (h as u64) << 13;
        self
    }
    fn r1(mut self, r: u8) -> Word {
        self.0 |= (r as u64 & 0x1f) << 15;
        self
    }
    fn r2(mut self, r: u8) -> Word {
        self.0 |= (r as u64 & 0x1f) << 20;
        self
    }
    fn r3(mut self, r: u8) -> Word {
        self.0 |= (r as u64 & 0x1f) << 25;
        self
    }
    fn imm(mut self, v: i32) -> Word {
        self.0 |= (v as u32 as u64) << 32;
        self
    }
    fn target(mut self, v: u32) -> Word {
        self.0 |= (v as u64) << 32;
        self
    }
}

struct Fields {
    tag: u8,
    sub: u8,
    width: u8,
    hint: u8,
    r1: u8,
    r2: u8,
    r3: u8,
    imm: i32,
    target: u32,
}

impl Fields {
    fn of(w: u64) -> Fields {
        Fields {
            tag: (w & 0x3f) as u8,
            sub: ((w >> 6) & 0x1f) as u8,
            width: ((w >> 11) & 0x3) as u8,
            hint: ((w >> 13) & 0x3) as u8,
            r1: ((w >> 15) & 0x1f) as u8,
            r2: ((w >> 20) & 0x1f) as u8,
            r3: ((w >> 25) & 0x1f) as u8,
            imm: (w >> 32) as u32 as i32,
            target: (w >> 32) as u32,
        }
    }

    fn gpr1(&self) -> Gpr {
        Gpr::new(self.r1)
    }
    fn gpr2(&self) -> Gpr {
        Gpr::new(self.r2)
    }
    fn gpr3(&self) -> Gpr {
        Gpr::new(self.r3)
    }
    fn fpr1(&self) -> Fpr {
        Fpr::new(self.r1)
    }
    fn fpr2(&self) -> Fpr {
        Fpr::new(self.r2)
    }
    fn fpr3(&self) -> Fpr {
        Fpr::new(self.r3)
    }
    fn alu_op(&self) -> Result<AluOp, DecodeError> {
        AluOp::from_code(self.sub).ok_or(DecodeError::BadField {
            field: "alu-op",
            value: self.sub,
        })
    }
    fn fpu_op(&self) -> Result<FpuOp, DecodeError> {
        FpuOp::from_code(self.sub).ok_or(DecodeError::BadField {
            field: "fpu-op",
            value: self.sub,
        })
    }
    fn branch_cond(&self) -> Result<BranchCond, DecodeError> {
        BranchCond::from_code(self.sub).ok_or(DecodeError::BadField {
            field: "branch-cond",
            value: self.sub,
        })
    }
    fn fp_cond(&self) -> Result<FpCond, DecodeError> {
        FpCond::from_code(self.sub).ok_or(DecodeError::BadField {
            field: "fp-cond",
            value: self.sub,
        })
    }
    fn mem_width(&self) -> Result<MemWidth, DecodeError> {
        MemWidth::from_code(self.width).ok_or(DecodeError::BadField {
            field: "width",
            value: self.width,
        })
    }
    fn stream_hint(&self) -> Result<StreamHint, DecodeError> {
        StreamHint::from_code(self.hint).ok_or(DecodeError::BadField {
            field: "hint",
            value: self.hint,
        })
    }
}

impl Instr {
    /// Encodes the instruction as a 64-bit word. See the module docs for
    /// the layout. Inverse of [`Instr::decode`].
    pub fn encode(&self) -> u64 {
        let w = Word::default();
        let w = match *self {
            Instr::Nop => w.tag(tag::NOP),
            Instr::Halt => w.tag(tag::HALT),
            Instr::Alu { op, rd, rs, rt } => w
                .tag(tag::ALU)
                .sub(op as u8)
                .r1(rd.index() as u8)
                .r2(rs.index() as u8)
                .r3(rt.index() as u8),
            Instr::AluImm { op, rd, rs, imm } => w
                .tag(tag::ALU_IMM)
                .sub(op as u8)
                .r1(rd.index() as u8)
                .r2(rs.index() as u8)
                .imm(imm),
            Instr::LoadImm { rd, imm } => w.tag(tag::LOAD_IMM).r1(rd.index() as u8).imm(imm),
            Instr::Fpu { op, fd, fs, ft } => w
                .tag(tag::FPU)
                .sub(op as u8)
                .r1(fd.index() as u8)
                .r2(fs.index() as u8)
                .r3(ft.index() as u8),
            Instr::FpCmp { cond, rd, fs, ft } => w
                .tag(tag::FP_CMP)
                .sub(cond as u8)
                .r1(rd.index() as u8)
                .r2(fs.index() as u8)
                .r3(ft.index() as u8),
            Instr::IntToFp { fd, rs } => w
                .tag(tag::INT_TO_FP)
                .r1(fd.index() as u8)
                .r2(rs.index() as u8),
            Instr::FpToInt { rd, fs } => w
                .tag(tag::FP_TO_INT)
                .r1(rd.index() as u8)
                .r2(fs.index() as u8),
            Instr::Load {
                rd,
                base,
                offset,
                width,
                hint,
            } => w
                .tag(tag::LOAD)
                .width(width)
                .hint(hint)
                .r1(rd.index() as u8)
                .r2(base.index() as u8)
                .imm(offset),
            Instr::Store {
                rs,
                base,
                offset,
                width,
                hint,
            } => w
                .tag(tag::STORE)
                .width(width)
                .hint(hint)
                .r1(rs.index() as u8)
                .r2(base.index() as u8)
                .imm(offset),
            Instr::FLoad {
                fd,
                base,
                offset,
                hint,
            } => w
                .tag(tag::FLOAD)
                .hint(hint)
                .r1(fd.index() as u8)
                .r2(base.index() as u8)
                .imm(offset),
            Instr::FStore {
                fs,
                base,
                offset,
                hint,
            } => w
                .tag(tag::FSTORE)
                .hint(hint)
                .r1(fs.index() as u8)
                .r2(base.index() as u8)
                .imm(offset),
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => w
                .tag(tag::BRANCH)
                .sub(cond as u8)
                .r2(rs.index() as u8)
                .r3(rt.index() as u8)
                .target(target),
            Instr::Jump { target } => w.tag(tag::JUMP).target(target),
            Instr::Call { target } => w.tag(tag::CALL).target(target),
            Instr::CallReg { rs } => w.tag(tag::CALL_REG).r2(rs.index() as u8),
            Instr::Ret => w.tag(tag::RET),
        };
        w.0
    }

    /// Decodes a 64-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode tag is unknown or a
    /// sub-operation / width / hint field is out of range.
    pub fn decode(word: u64) -> Result<Instr, DecodeError> {
        let f = Fields::of(word);
        Ok(match f.tag {
            tag::NOP => Instr::Nop,
            tag::HALT => Instr::Halt,
            tag::ALU => Instr::Alu {
                op: f.alu_op()?,
                rd: f.gpr1(),
                rs: f.gpr2(),
                rt: f.gpr3(),
            },
            tag::ALU_IMM => Instr::AluImm {
                op: f.alu_op()?,
                rd: f.gpr1(),
                rs: f.gpr2(),
                imm: f.imm,
            },
            tag::LOAD_IMM => Instr::LoadImm {
                rd: f.gpr1(),
                imm: f.imm,
            },
            tag::FPU => Instr::Fpu {
                op: f.fpu_op()?,
                fd: f.fpr1(),
                fs: f.fpr2(),
                ft: f.fpr3(),
            },
            tag::FP_CMP => Instr::FpCmp {
                cond: f.fp_cond()?,
                rd: f.gpr1(),
                fs: f.fpr2(),
                ft: f.fpr3(),
            },
            tag::INT_TO_FP => Instr::IntToFp {
                fd: f.fpr1(),
                rs: f.gpr2(),
            },
            tag::FP_TO_INT => Instr::FpToInt {
                rd: f.gpr1(),
                fs: f.fpr2(),
            },
            tag::LOAD => Instr::Load {
                rd: f.gpr1(),
                base: f.gpr2(),
                offset: f.imm,
                width: f.mem_width()?,
                hint: f.stream_hint()?,
            },
            tag::STORE => Instr::Store {
                rs: f.gpr1(),
                base: f.gpr2(),
                offset: f.imm,
                width: f.mem_width()?,
                hint: f.stream_hint()?,
            },
            tag::FLOAD => Instr::FLoad {
                fd: f.fpr1(),
                base: f.gpr2(),
                offset: f.imm,
                hint: f.stream_hint()?,
            },
            tag::FSTORE => Instr::FStore {
                fs: f.fpr1(),
                base: f.gpr2(),
                offset: f.imm,
                hint: f.stream_hint()?,
            },
            tag::BRANCH => Instr::Branch {
                cond: f.branch_cond()?,
                rs: f.gpr2(),
                rt: f.gpr3(),
                target: f.target,
            },
            tag::JUMP => Instr::Jump { target: f.target },
            tag::CALL => Instr::Call { target: f.target },
            tag::CALL_REG => Instr::CallReg { rs: f.gpr2() },
            tag::RET => Instr::Ret,
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::Jump { target: 0xdead },
            Instr::Call { target: u32::MAX },
            Instr::CallReg { rs: Gpr::T9 },
            Instr::LoadImm {
                rd: Gpr::GP,
                imm: i32::MIN,
            },
            Instr::IntToFp {
                fd: Fpr::new(31),
                rs: Gpr::A0,
            },
            Instr::FpToInt {
                rd: Gpr::V0,
                fs: Fpr::new(17),
            },
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu {
                op,
                rd: Gpr::T0,
                rs: Gpr::S1,
                rt: Gpr::A2,
            });
            v.push(Instr::AluImm {
                op,
                rd: Gpr::SP,
                rs: Gpr::SP,
                imm: -64,
            });
        }
        for op in FpuOp::ALL {
            v.push(Instr::Fpu {
                op,
                fd: Fpr::new(2),
                fs: Fpr::new(4),
                ft: Fpr::new(6),
            });
        }
        for cond in BranchCond::ALL {
            v.push(Instr::Branch {
                cond,
                rs: Gpr::T0,
                rt: Gpr::ZERO,
                target: 12345,
            });
        }
        for cond in FpCond::ALL {
            v.push(Instr::FpCmp {
                cond,
                rd: Gpr::T1,
                fs: Fpr::new(8),
                ft: Fpr::new(9),
            });
        }
        for hint in [StreamHint::Unknown, StreamHint::Local, StreamHint::NonLocal] {
            for width in [MemWidth::Byte, MemWidth::Half, MemWidth::Word] {
                v.push(Instr::Load {
                    rd: Gpr::T3,
                    base: Gpr::SP,
                    offset: -8,
                    width,
                    hint,
                });
                v.push(Instr::Store {
                    rs: Gpr::T3,
                    base: Gpr::GP,
                    offset: 1 << 20,
                    width,
                    hint,
                });
            }
            v.push(Instr::FLoad {
                fd: Fpr::new(12),
                base: Gpr::FP,
                offset: 16,
                hint,
            });
            v.push(Instr::FStore {
                fs: Fpr::new(12),
                base: Gpr::SP,
                offset: -16,
                hint,
            });
        }
        v
    }

    #[test]
    fn every_exemplar_round_trips() {
        for i in exemplars() {
            let w = i.encode();
            assert_eq!(Instr::decode(w), Ok(i), "word {w:#018x}");
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let ex = exemplars();
        for (a_idx, a) in ex.iter().enumerate() {
            for b in &ex[a_idx + 1..] {
                if a != b {
                    assert_ne!(a.encode(), b.encode(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn bad_opcode_is_reported() {
        assert_eq!(Instr::decode(63), Err(DecodeError::BadOpcode(63)));
    }

    #[test]
    fn bad_subop_is_reported() {
        // ALU with sub-op 31 (no such ALU op).
        let w = (31u64 << 6) | tag::ALU as u64;
        assert_eq!(
            Instr::decode(w),
            Err(DecodeError::BadField {
                field: "alu-op",
                value: 31
            })
        );
    }

    #[test]
    fn bad_width_is_reported() {
        let w = (3u64 << 11) | tag::LOAD as u64;
        assert_eq!(
            Instr::decode(w),
            Err(DecodeError::BadField {
                field: "width",
                value: 3
            })
        );
    }

    #[test]
    fn bad_hint_is_reported() {
        let w = (3u64 << 13) | (2u64 << 11).wrapping_sub(1 << 11) | tag::FLOAD as u64;
        assert_eq!(
            Instr::decode(w),
            Err(DecodeError::BadField {
                field: "hint",
                value: 3
            })
        );
    }

    #[test]
    fn decode_error_messages() {
        assert_eq!(
            DecodeError::BadOpcode(9).to_string(),
            "unknown opcode tag 9"
        );
        assert_eq!(
            DecodeError::BadField {
                field: "hint",
                value: 3
            }
            .to_string(),
            "invalid hint field value 3"
        );
    }
}
