//! MIPS-like disassembly via [`core::fmt::Display`].

use core::fmt;

use crate::instr::{Instr, MemWidth, StreamHint};

fn hint_suffix(h: StreamHint) -> &'static str {
    match h {
        StreamHint::Unknown => "",
        StreamHint::Local => " !local",
        StreamHint::NonLocal => " !nonlocal",
    }
}

fn load_mnemonic(w: MemWidth) -> &'static str {
    match w {
        MemWidth::Byte => "lb",
        MemWidth::Half => "lh",
        MemWidth::Word => "lw",
    }
}

fn store_mnemonic(w: MemWidth) -> &'static str {
    match w {
        MemWidth::Byte => "sb",
        MemWidth::Half => "sh",
        MemWidth::Word => "sw",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
            Instr::Ret => f.write_str("jr    $ra"),
            Instr::Alu { op, rd, rs, rt } => {
                write!(f, "{:<5} {rd}, {rs}, {rt}", op.mnemonic())
            }
            Instr::AluImm { op, rd, rs, imm } => {
                write!(f, "{:<5} {rd}, {rs}, {imm}", format!("{}i", op.mnemonic()))
            }
            Instr::LoadImm { rd, imm } => write!(f, "li    {rd}, {imm}"),
            Instr::Fpu { op, fd, fs, ft } => {
                if op.is_binary() {
                    write!(f, "{:<5} {fd}, {fs}, {ft}", op.mnemonic())
                } else {
                    write!(f, "{:<5} {fd}, {fs}", op.mnemonic())
                }
            }
            Instr::FpCmp { cond, rd, fs, ft } => {
                write!(f, "{:<5} {rd}, {fs}, {ft}", cond.mnemonic())
            }
            Instr::IntToFp { fd, rs } => write!(f, "mtc1d {fd}, {rs}"),
            Instr::FpToInt { rd, fs } => write!(f, "mfc1d {rd}, {fs}"),
            Instr::Load {
                rd,
                base,
                offset,
                width,
                hint,
            } => {
                write!(
                    f,
                    "{:<5} {rd}, {offset}({base}){}",
                    load_mnemonic(width),
                    hint_suffix(hint)
                )
            }
            Instr::Store {
                rs,
                base,
                offset,
                width,
                hint,
            } => {
                write!(
                    f,
                    "{:<5} {rs}, {offset}({base}){}",
                    store_mnemonic(width),
                    hint_suffix(hint)
                )
            }
            Instr::FLoad {
                fd,
                base,
                offset,
                hint,
            } => {
                write!(f, "l.d   {fd}, {offset}({base}){}", hint_suffix(hint))
            }
            Instr::FStore {
                fs,
                base,
                offset,
                hint,
            } => {
                write!(f, "s.d   {fs}, {offset}({base}){}", hint_suffix(hint))
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                write!(f, "{:<5} {rs}, {rt}, {target}", cond.mnemonic())
            }
            Instr::Jump { target } => write!(f, "j     {target}"),
            Instr::Call { target } => write!(f, "jal   {target}"),
            Instr::CallReg { rs } => write!(f, "jalr  {rs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, BranchCond, FpuOp};
    use crate::regs::{Fpr, Gpr};

    #[test]
    fn alu_forms() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Gpr::T0,
            rs: Gpr::T1,
            rt: Gpr::T2,
        };
        assert_eq!(i.to_string(), "add   $t0, $t1, $t2");
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Gpr::SP,
            rs: Gpr::SP,
            imm: -32,
        };
        assert_eq!(i.to_string(), "addi  $sp, $sp, -32");
    }

    #[test]
    fn memory_forms_show_hints() {
        let i = Instr::Load {
            rd: Gpr::T0,
            base: Gpr::SP,
            offset: 8,
            width: MemWidth::Word,
            hint: StreamHint::Local,
        };
        assert_eq!(i.to_string(), "lw    $t0, 8($sp) !local");
        let i = Instr::Store {
            rs: Gpr::V0,
            base: Gpr::GP,
            offset: 0,
            width: MemWidth::Byte,
            hint: StreamHint::NonLocal,
        };
        assert_eq!(i.to_string(), "sb    $v0, 0($gp) !nonlocal");
        let i = Instr::FLoad {
            fd: Fpr::F0,
            base: Gpr::T0,
            offset: 24,
            hint: StreamHint::Unknown,
        };
        assert_eq!(i.to_string(), "l.d   $f0, 24($t0)");
    }

    #[test]
    fn control_forms() {
        assert_eq!(Instr::Jump { target: 42 }.to_string(), "j     42");
        assert_eq!(Instr::Call { target: 7 }.to_string(), "jal   7");
        assert_eq!(Instr::Ret.to_string(), "jr    $ra");
        let b = Instr::Branch {
            cond: BranchCond::Ne,
            rs: Gpr::T0,
            rt: Gpr::ZERO,
            target: 3,
        };
        assert_eq!(b.to_string(), "bne   $t0, $zero, 3");
    }

    #[test]
    fn fpu_forms() {
        let b = Instr::Fpu {
            op: FpuOp::Mul,
            fd: Fpr::new(2),
            fs: Fpr::new(4),
            ft: Fpr::new(6),
        };
        assert_eq!(b.to_string(), "mul.d $f2, $f4, $f6");
        let u = Instr::Fpu {
            op: FpuOp::Neg,
            fd: Fpr::new(2),
            fs: Fpr::new(4),
            ft: Fpr::new(6),
        };
        assert_eq!(u.to_string(), "neg.d $f2, $f4");
    }
}
