//! Small deterministic PRNG so the workspace needs no external `rand`
//! crates (the build must work fully offline).
//!
//! [`Rng`] is xoshiro256** (Blackman & Vigna), seeded from a single `u64`
//! via SplitMix64 — the reference seeding procedure recommended by the
//! xoshiro authors. The API mirrors the subset of `rand::Rng` the workload
//! generators and tests use (`seed_from_u64`, `gen_range`, `gen_bool`), so
//! call sites read the same as before the migration.
//!
//! Not cryptographic; for workload generation and property tests only.
//! The stream is stable: changing it changes every generated benchmark
//! program, which invalidates golden numbers in calibration tests.

use core::ops::{Range, RangeInclusive};

/// xoshiro256** generator with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// similar seeds give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// The next raw 32-bit output (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value from `range`, which may be a
    /// half-open `a..b` or inclusive `a..=b` range of any supported
    /// integer type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // Compare against the top 53 bits for an unbiased draw in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw from `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128 + 1) as u64;
                (a as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, u32, i64, u64, usize, u8, u16);

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn matches_reference_vectors() {
        // xoshiro256** seeded with SplitMix64(0) — guards the stream
        // against accidental algorithm changes (golden numbers in the
        // calibration tests depend on it).
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            [
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i32 = r.gen_range(-64..64);
            assert!((-64..64).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
            let x: u32 = r.gen_range(5..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = Rng::seed_from_u64(9);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _: u32 = r.gen_range(5..5);
    }
}
