//! A minimal multiply-shift hasher for small integer keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fibonacci multiplicative hasher for low-entropy integer keys (page
/// numbers, program counters).
///
/// SipHash — the `HashMap` default — costs more than the lookup it
/// guards on simulator hot paths, and HashDoS resistance is irrelevant
/// for keys the simulator generates itself. Multiplying by the golden
/// ratio constant spreads dense key ranges across the table.
#[derive(Default)]
pub struct FibHasher(u64);

impl Hasher for FibHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(PHI);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(PHI);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(PHI);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed by small integers, using [`FibHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FibHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u32, u64> = FastMap::default();
        for k in 0..1000u32 {
            m.insert(k, k as u64 * 3);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u32 {
            assert_eq!(m.get(&k), Some(&(k as u64 * 3)));
        }
    }

    #[test]
    fn dense_keys_spread() {
        // Consecutive keys must not collapse onto a few hash values.
        let hashes: std::collections::HashSet<u64> = (0..256u32)
            .map(|k| {
                let mut h = FibHasher::default();
                h.write_u32(k);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 256);
    }
}
